//! A heavier end-to-end workload: federated training of an MLP on the
//! noisy seven-segment digits dataset (10 classes), with the model split
//! into 4 partitions, two aggregators per partition, and authenticated
//! verifiable aggregation — every protocol feature enabled at once.
//!
//! Run with: `cargo run --release --example digits_mlp`

use decentralized_fl::ml::{data, metrics, Mlp, Model, SgdConfig};
use decentralized_fl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TaskConfig::builder()
        .trainers(10)
        .partitions(4)
        .aggregators_per_partition(2)
        .ipfs_nodes(5)
        .verifiable(true)
        .authenticate(true)
        .replication(2)
        .rounds(6)
        .seed(31)
        .build()?;

    let pool = data::make_digits(3000, 0.15, 4);
    let train = pool.subset(&(0..2400).collect::<Vec<_>>());
    let eval = pool.subset(&(2400..3000).collect::<Vec<_>>());
    let clients = data::partition_iid(&train, cfg.trainers, 1);

    let model = Mlp::new(7, 16, 10, 13);
    println!(
        "MLP with {} parameters over {} partitions; verifiable + authenticated; {} trainers",
        model.param_count(),
        cfg.partitions,
        cfg.trainers
    );
    let initial = model.params();
    let sgd = SgdConfig {
        lr: 0.5,
        batch_size: 32,
        epochs: 2,
        clip: Some(5.0),
    };

    let report = run_task(
        cfg.clone(),
        model.clone(),
        initial.clone(),
        clients,
        sgd,
        &[],
    )?;
    assert!(report.succeeded(&cfg), "all rounds must complete");

    let mut evaluate = model.clone();
    evaluate.set_params(&initial);
    let before = metrics::accuracy(&evaluate.predict(&eval.x), &eval.y);
    evaluate.set_params(&report.consensus_params().expect("consensus"));
    let after = metrics::accuracy(&evaluate.predict(&eval.x), &eval.y);

    println!(
        "held-out accuracy: {:.1}% → {:.1}%",
        before * 100.0,
        after * 100.0
    );
    for round in &report.rounds {
        println!(
            "  round {}: total aggregation {:.2}s, round {:.2}s",
            round.round, round.total_aggregation_delay, round.round_duration
        );
    }
    println!("verification failures: {}", report.verification_failures);
    Ok(())
}
