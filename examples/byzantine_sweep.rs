//! Byzantine sweep: accountability under an increasing number of
//! malicious aggregators. For each adversary count `f` and each attack,
//! runs a 4-aggregator deployment (2 partitions × 2 slots, replication 2)
//! and reports the accountability counters the runner surfaces:
//! detections, evictions, recovered rounds, wasted bytes — and whether the
//! final model still matches the all-honest run bit for bit.
//!
//! With one malicious aggregator per partition (`f ≤ partitions`, i.e.
//! `f < replicas` per slot group), every attack is absorbed: provable
//! misbehavior is evicted, the slot is re-aggregated from the original
//! gradient blobs, and the model is unchanged. At `f = 2` with both slots
//! of one partition malicious there is no honest aggregator left to
//! recover the partition — rounds stall, which the table makes visible.
//!
//! Run with: `cargo run --release --example byzantine_sweep`

use decentralized_fl::ml::{data, LogisticRegression, Model, SgdConfig};
use decentralized_fl::prelude::*;

fn cfg() -> TaskConfig {
    TaskConfig::builder()
        .trainers(6)
        .partitions(2)
        .aggregators_per_partition(2)
        .ipfs_nodes(4)
        .comm(CommMode::Indirect)
        .rounds(2)
        .replication(2)
        .verifiable(true)
        .authenticate(true)
        .accountability(true)
        .seed(11)
        .t_train(SimDuration::from_secs(15))
        .t_sync(SimDuration::from_secs(20))
        .sync_watchdog(Some(SimDuration::from_secs(5)))
        .fetch_timeout(SimDuration::from_secs(2))
        .build()
        .expect("valid config")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let c = cfg();
    let dataset = data::make_blobs(180, 3, 2, 0.5, 9);
    let clients = data::partition_iid(&dataset, c.trainers, 3);
    let model = LogisticRegression::new(3, 2);
    let initial = model.params();
    let sgd = SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    };

    let run = |behaviors: &[(usize, Behavior)]| {
        run_task(
            c.clone(),
            model.clone(),
            initial.clone(),
            clients.clone(),
            sgd,
            behaviors,
        )
        .expect("valid run")
    };

    let honest = run(&[]);
    let reference = honest.consensus_params().expect("honest consensus");

    println!(
        "Deployment: {} trainers, {} partitions x {} aggregator slots, replication {}, \
         {} rounds (verifiable + authenticated + accountable)\n",
        c.trainers, c.partitions, c.aggregators_per_partition, c.replication, c.rounds
    );
    println!(
        "{:<24} {:>2}  {:>7}  {:>6}  {:>7}  {:>9}  {:>11}  {:>6}",
        "attack", "f", "rounds", "detect", "evicted", "recovered", "wasted (B)", "model"
    );

    // Malicious aggregators are assigned one per partition first (slot 0
    // of each), so `f <= partitions` leaves every slot group an honest
    // member; beyond that a partition loses all honest coverage.
    type MkBehavior = fn() -> Behavior;
    let attacks: [(&str, MkBehavior); 3] = [
        ("drop-gradients", || Behavior::DropGradients { count: 2 }),
        ("alter-update", || Behavior::AlterUpdate),
        ("equivocate", || Behavior::Equivocate),
    ];
    let assign = |f: usize, mk: fn() -> Behavior| -> Vec<(usize, Behavior)> {
        // Global indices: 0 = (p0, j0), 1 = (p0, j1), 2 = (p1, j0), ...
        // First spread across partitions (0, 2), then double up (1, 3).
        let order = [0usize, 2, 1, 3];
        order.iter().take(f).map(|&g| (g, mk())).collect()
    };

    for (name, mk) in attacks {
        for f in 1..=3usize {
            let report = run(&assign(f, mk));
            let intact = report.consensus_params().as_ref() == Some(&reference);
            println!(
                "{:<24} {:>2}  {:>4}/{}  {:>6}  {:>7}  {:>9}  {:>11}  {:>6}",
                name,
                f,
                report.completed_rounds,
                c.rounds,
                report.detections,
                report.evictions,
                report.recovered_rounds,
                report.wasted_bytes,
                if intact { "exact" } else { "-" }
            );
        }
    }

    println!(
        "\n'model = exact' means the final parameters are bit-identical to the \
         all-honest run: recovery re-aggregates the original gradient blobs and \
         the order-independent i128 sum reproduces the honest bits."
    );
    Ok(())
}
