//! Regenerates Figure 3 of the paper: time to compute the SHA-256 hash and
//! the Pedersen commitment of a model's parameters (secp256k1 and
//! secp256r1), versus the number of parameters.
//!
//! The naive-MSM columns correspond to the paper's "rather
//! straight-forward" implementation; the Pippenger column is the
//! multi-exponentiation optimization the paper cites as future work
//! [Möller '01; Borges et al. '17].
//!
//! Sizes default to 2^10 … 2^16 parameters (the paper sweeps to ~25 M,
//! which takes minutes per point — both series are linear, so the shape is
//! fully visible at these sizes; see EXPERIMENTS.md). Set `FIG3_MAX_LOG2`
//! to raise the cap, e.g. `FIG3_MAX_LOG2=18`.
//!
//! Run with: `cargo run --release --example fig3_commitment`

use dfl_bench::{fig3_commitment, fig3_default_sizes};

fn main() {
    let sizes = match std::env::var("FIG3_MAX_LOG2")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
    {
        Some(max_log2) => (10..=max_log2).step_by(2).map(|l| 1usize << l).collect(),
        None => fig3_default_sizes(),
    };
    println!("Figure 3 — hashing vs commitment time (wall clock, this machine)");
    println!(
        "{:>12} {:>14} {:>18} {:>18} {:>20} {:>14} {:>14}",
        "#params",
        "SHA-256 (ms)",
        "Pedersen k1 (ms)",
        "Pedersen r1 (ms)",
        "Pippenger k1 (ms)",
        "fast k1 (ms)",
        "fast r1 (ms)"
    );
    for p in fig3_commitment(&sizes) {
        println!(
            "{:>12} {:>14.3} {:>18.1} {:>18.1} {:>20.1} {:>14.1} {:>14.1}",
            p.elements,
            p.sha256_ms,
            p.pedersen_k1_ms,
            p.pedersen_r1_ms,
            p.pippenger_k1_ms,
            p.fast_k1_ms,
            p.fast_r1_ms
        );
    }
    println!(
        "\nExpected shape: commitments are linear in #params and orders of magnitude more \
         expensive than hashing; Pippenger recovers a large constant factor and the \
         precomputed-table fast path a larger one still."
    );
}
