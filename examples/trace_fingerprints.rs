//! Prints trace fingerprints of the canonical experiment configurations.
//!
//! Used to prove refactors of the protocol core leave the observable
//! behaviour of the simulation bit-identical: capture the hashes before a
//! change, capture them after, diff. Covers the fig1/fig2 delay
//! experiments (plain and verifiable) and the 2k-trainer swarm.

use dfl_bench::{
    fig1_config, fig2_config, run_network_experiment, swarm_trace_hash, trace_fingerprint,
};
use ipls::TaskConfig;

fn main() {
    let params = 1_024;
    let fig1 = run_network_experiment(fig1_config(), params);
    println!("fig1            {:016x}", trace_fingerprint(&fig1.trace));
    let fig2 = run_network_experiment(fig2_config(), params);
    println!("fig2            {:016x}", trace_fingerprint(&fig2.trace));
    let fig2v = run_network_experiment(
        TaskConfig {
            verifiable: true,
            ..fig2_config()
        },
        params,
    );
    println!("fig2-verifiable {:016x}", trace_fingerprint(&fig2v.trace));
    let fig2b = run_network_experiment(
        TaskConfig {
            verifiable: true,
            trainer_verifies: true,
            batch_verify: true,
            ..fig2_config()
        },
        params,
    );
    println!("fig2-batched    {:016x}", trace_fingerprint(&fig2b.trace));
    println!("swarm-2k        {:016x}", swarm_trace_hash(2_000, false));
}
