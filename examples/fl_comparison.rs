//! Compares the three federated-learning organizations the paper
//! discusses, on the same non-IID dataset:
//!
//! 1. **Centralized FedAvg** — the traditional design with a single
//!    aggregation server;
//! 2. **Gossip averaging** — purely decentralized, no aggregator at all
//!    (the paper's intro notes it "may not always achieve the same
//!    performance ... as centralized FL");
//! 3. **IPLS over decentralized storage** — the paper's protocol, which
//!    keeps FedAvg's exact aggregation while removing the central server.
//!
//! Run with: `cargo run --release --example fl_comparison`

use decentralized_fl::ml::{
    data, metrics, FedAvg, Gossip, GossipTopology, LogisticRegression, Model, SgdConfig,
};
use decentralized_fl::prelude::*;

const ROUNDS: usize = 10;
const PEERS: usize = 8;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One pool of data; the first 800 points are split (non-IID) across
    // peers and the remaining 400 are held out for evaluation.
    let pool = data::make_blobs(1200, 4, 4, 1.0, 5);
    let dataset = pool.subset(&(0..800).collect::<Vec<_>>());
    let eval = pool.subset(&(800..1200).collect::<Vec<_>>());
    let clients: Vec<_> = data::partition_dirichlet(&dataset, PEERS, 0.05, 1)
        .into_iter()
        .map(|p| {
            if p.is_empty() {
                dataset.subset(&[0])
            } else {
                p
            }
        })
        .collect();
    let sgd = SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 2,
        clip: None,
    };
    let model = LogisticRegression::new(4, 4);
    let seed = 11u64;

    let accuracy_of = |params: &[f32]| {
        let mut m = model.clone();
        m.set_params(params);
        metrics::accuracy(&m.predict(&eval.x), &eval.y)
    };

    // 1. Centralized FedAvg.
    let mut fedavg = FedAvg::new(model.clone(), clients.clone(), sgd);
    // 2. Gossip averaging.
    let mut gossip = Gossip::new(model.clone(), clients.clone(), sgd, GossipTopology::Ring);

    println!(
        "{:>6} {:>10} {:>10} {:>12}",
        "round", "fedavg", "gossip", "ipls (ours)"
    );
    for round in 0..ROUNDS {
        let round_seed = seed + (round as u64) * 1000;
        let fed_params = fedavg.run_round(round_seed);
        gossip.run_round(round_seed);

        // 3. The decentralized protocol, run for (round+1) rounds from
        // scratch with identical seeds. (Its aggregation is exact FedAvg,
        // so accuracy must track column 1; we re-run to keep all three
        // columns independent.)
        let cfg = TaskConfig::builder()
            .trainers(PEERS)
            .partitions(2)
            .aggregators_per_partition(2)
            .ipfs_nodes(4)
            .rounds((round + 1) as u64)
            .seed(seed)
            .build()?;
        let report = run_task(
            cfg,
            model.clone(),
            model.params(),
            clients.clone(),
            sgd,
            &[],
        )?;
        let ipls_params = report.consensus_params().expect("consensus");

        println!(
            "{:>6} {:>9.1}% {:>9.1}% {:>11.1}%",
            round + 1,
            accuracy_of(&fed_params) * 100.0,
            accuracy_of(&gossip.consensus()) * 100.0,
            accuracy_of(&ipls_params) * 100.0,
        );
    }

    println!(
        "\nIPLS tracks centralized FedAvg exactly (same averages, decentralized execution);\n\
         gossip converges too but trails on non-IID data — the paper's motivation for\n\
         keeping FedAvg semantics while decentralizing the aggregator."
    );
    Ok(())
}
