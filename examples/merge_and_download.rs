//! Interactive exploration of the merge-and-download trade-off (§III-E):
//! sweeps the provider count on a fixed topology and reports where the
//! completion-time optimum lands versus the paper's √|T_ij| prediction.
//!
//! Run with: `cargo run --release --example merge_and_download`
//! Optionally set `TRAINERS` (default 16) to move the optimum.

use decentralized_fl::prelude::*;
use dfl_bench::{fig1_config, fig1_param_count, run_network_experiment};

fn main() {
    let trainers: usize = std::env::var("TRAINERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16);
    let sqrt = (trainers as f64).sqrt();
    println!("Merge-and-download sweep: {trainers} trainers, 1.3 MB partition, 10 Mbps");
    println!("(paper's model: τ = S·(|T|/(d·|P|) + |P|/b), minimized at |P| ≈ √|T| = {sqrt:.1})\n");
    println!(
        "{:>10} {:>12} {:>14} {:>12}",
        "providers", "upload (s)", "aggregate (s)", "total (s)"
    );

    let mut best: Option<(usize, f64)> = None;
    let mut providers = 1usize;
    while providers <= trainers {
        let mut cfg = fig1_config();
        cfg.trainers = trainers;
        cfg.ipfs_nodes = trainers;
        cfg.comm = CommMode::MergeAndDownload;
        cfg.providers_per_aggregator = providers;
        let report = run_network_experiment(cfg, fig1_param_count());
        let round = &report.rounds[0];
        let total = round.upload_delay_avg + round.aggregation_delay;
        println!(
            "{:>10} {:>12.2} {:>14.2} {:>12.2}",
            providers, round.upload_delay_avg, round.aggregation_delay, total
        );
        if best.is_none_or(|(_, t)| total < t) {
            best = Some((providers, total));
        }
        providers *= 2;
    }

    let (best_p, best_t) = best.expect("at least one point");
    println!(
        "\nMeasured optimum: |P| = {best_p} ({best_t:.2}s total) — prediction √|T| = {sqrt:.1}."
    );
}
