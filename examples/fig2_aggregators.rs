//! Regenerates Figure 2 of the paper: total aggregation delay split into
//! gradient aggregation + synchronization (top) and data received per
//! aggregator (bottom), versus the number of aggregators per partition.
//!
//! Setup (§V): 16 trainers, 8 IPFS nodes, 4 partitions of 1.1 MB, 20 Mbps,
//! no merge-and-download, |A_i| ∈ {1, 2, 4}.
//!
//! Run with: `cargo run --release --example fig2_aggregators`

use dfl_bench::fig2_aggregators;

fn main() {
    println!("Figure 2 — effect of |A_i| (16 trainers, 8 nodes, 4×1.1 MB partitions, 20 Mbps)");
    println!(
        "{:>6} {:>16} {:>12} {:>12} {:>16} {:>14}",
        "|A_i|", "aggregation (s)", "sync (s)", "total (s)", "MB/aggregator", "expected MB"
    );
    let points = fig2_aggregators();
    for p in &points {
        println!(
            "{:>6} {:>16.2} {:>12.2} {:>12.2} {:>16.2} {:>14.2}",
            p.aggregators_per_partition,
            p.aggregation_delay,
            p.sync_delay,
            p.total_delay,
            p.mb_per_aggregator,
            p.expected_mb
        );
    }
    println!(
        "\nExpected shape: aggregation delay ~halves per doubling of |A_i|, sync delay grows, \
         total still decreases; bytes follow D = (|T_ij| + |A_i| − 1)·1.1 MB."
    );
}
