//! Regenerates Figure 1 of the paper: aggregation delay (top) and trainer
//! upload delay (bottom) for one FL iteration, versus the number of IPFS
//! provider nodes per aggregator.
//!
//! Setup (§V): 16 trainers, one 1.3 MB partition, one aggregator, all links
//! 10 Mbps. The merge-and-download series sweeps |P| ∈ {1, 2, 4, 8, 16};
//! `8 (naive)` is indirect communication without merging and `8 (direct)`
//! is the original IPLS direct-link design.
//!
//! Run with: `cargo run --release --example fig1_providers`

use dfl_bench::fig1_providers;

fn main() {
    println!("Figure 1 — delays vs providers (16 trainers, 1.3 MB partition, 10 Mbps)");
    println!(
        "{:<12} {:>22} {:>22}",
        "providers", "aggregation delay (s)", "upload delay (s)"
    );
    let points = fig1_providers();
    for p in &points {
        println!(
            "{:<12} {:>22.2} {:>22.2}",
            p.label, p.aggregation_delay, p.upload_delay
        );
    }

    // The √|T| optimum from §III-E: the provider count that minimizes the
    // overall completion time τ ≈ upload + aggregation.
    let best = points
        .iter()
        .filter(|p| !p.label.contains('('))
        .min_by(|a, b| {
            (a.aggregation_delay + a.upload_delay)
                .partial_cmp(&(b.aggregation_delay + b.upload_delay))
                .expect("finite")
        })
        .expect("points");
    println!(
        "\nBest upload/aggregation trade-off at |P| = {} (paper predicts √16 = 4).",
        best.providers
    );
}
