//! Records the commitment-pipeline before/after numbers into
//! `BENCH_crypto.json`: every MSM kernel (naive, wNAF, Jacobian Pippenger,
//! batch-affine Pippenger, precomputed table) plus the end-to-end Pedersen
//! commit, on both protocol curves, at the acceptance size d = 8192.
//!
//! Run with: `cargo run --release --example bench_crypto`
//! (add `--features parallel` to also record the multi-threaded table path;
//! set `BENCH_CRYPTO_ELEMENTS` to override the vector length).

use dfl_bench::{crypto_report, crypto_report_json};

fn main() {
    let elements = std::env::var("BENCH_CRYPTO_ELEMENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8192);
    println!("Commitment pipeline, d = {elements} (wall clock, this machine)");
    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>14} {:>12} {:>10} {:>12} {:>10}",
        "curve",
        "naive",
        "wnaf",
        "pippenger",
        "batch-affine",
        "table-build",
        "table",
        "commit-naive",
        "commit"
    );
    let profiles = crypto_report(elements);
    for p in &profiles {
        println!(
            "{:>12} {:>10.1} {:>10.1} {:>12.1} {:>14.1} {:>12.1} {:>10.1} {:>12.1} {:>10.1}",
            p.curve,
            p.naive_ms,
            p.wnaf_ms,
            p.pippenger_ms,
            p.batch_affine_ms,
            p.table_build_ms,
            p.table_ms,
            p.commit_naive_ms,
            p.commit_fast_ms
        );
        if let Some(par) = p.table_parallel_ms {
            println!("{:>12} table (parallel): {par:.1} ms", "");
        }
        println!(
            "{:>12} commit speedup over seed naive path: {:.1}x",
            "",
            p.commit_speedup()
        );
    }
    let json = crypto_report_json(&profiles);
    std::fs::write("BENCH_crypto.json", &json).expect("write BENCH_crypto.json");
    println!("\nwrote BENCH_crypto.json");
}
