//! Records the commitment-pipeline before/after numbers into
//! `BENCH_crypto.json`: every MSM kernel (naive, wNAF, Jacobian Pippenger,
//! batch-affine Pippenger, precomputed table) plus the end-to-end Pedersen
//! commit, on both protocol curves, at the acceptance size d = 8192 — and
//! the verifiable-round sweep (per-blob vs one RLC batch per round) up to
//! the paper's 10k-trainer swarm.
//!
//! Run with: `cargo run --release --example bench_crypto`
//! (add `--features parallel` to also record the multi-threaded paths;
//! set `BENCH_CRYPTO_ELEMENTS` to override the vector length and
//! `BENCH_VERIFIABLE_TRAINERS` to override the largest sweep point).
//!
//! `-- --test` runs the CI smoke check instead: a small verifiable round
//! at d = 8192 where the batched check must beat per-blob verification.

use dfl_bench::{
    crypto_report, crypto_report_json, verifiable_round_point, verifiable_round_sweep,
};

/// CI smoke mode: quick, asserting, no JSON write. Batching must beat
/// per-blob at the acceptance blob length even for a handful of blobs.
fn smoke() {
    let point = verifiable_round_point(4, 8192);
    println!(
        "smoke: 4 trainers x d=8192: per-blob {:.1} ms, batched {:.1} ms ({:.1}x)",
        point.per_blob_ms,
        point.batched_ms,
        point.speedup()
    );
    assert!(
        point.speedup() > 1.0,
        "batched round check must beat per-blob at d=8192: \
         per-blob {:.2} ms vs batched {:.2} ms",
        point.per_blob_ms,
        point.batched_ms
    );
    println!("smoke: OK");
}

fn main() {
    if std::env::args().any(|a| a == "--test") {
        smoke();
        return;
    }
    let elements = std::env::var("BENCH_CRYPTO_ELEMENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(8192);
    println!("Commitment pipeline, d = {elements} (wall clock, this machine)");
    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>14} {:>12} {:>10} {:>12} {:>10}",
        "curve",
        "naive",
        "wnaf",
        "pippenger",
        "batch-affine",
        "table-build",
        "table",
        "commit-naive",
        "commit"
    );
    let profiles = crypto_report(elements);
    for p in &profiles {
        println!(
            "{:>12} {:>10.1} {:>10.1} {:>12.1} {:>14.1} {:>12.1} {:>10.1} {:>12.1} {:>10.1}",
            p.curve,
            p.naive_ms,
            p.wnaf_ms,
            p.pippenger_ms,
            p.batch_affine_ms,
            p.table_build_ms,
            p.table_ms,
            p.commit_naive_ms,
            p.commit_fast_ms
        );
        if let Some(par) = p.table_parallel_ms {
            println!("{:>12} table (parallel): {par:.1} ms", "");
        }
        println!(
            "{:>12} commit speedup over seed naive path: {:.1}x",
            "",
            p.commit_speedup()
        );
    }

    // Verifiable-round before/after: d = 257 matches the protocol's
    // 256-parameter partitions plus the averaging-counter element.
    let max_trainers = std::env::var("BENCH_VERIFIABLE_TRAINERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(10_000);
    let sizes: Vec<usize> = [100, 1_000, max_trainers]
        .into_iter()
        .filter(|&n| n <= max_trainers)
        .collect();
    println!("\nVerifiable round, d = 257 per blob (wall clock, this machine)");
    println!(
        "{:>10} {:>14} {:>12} {:>9}",
        "trainers", "per-blob(ms)", "batched(ms)", "speedup"
    );
    let rounds = verifiable_round_sweep(&sizes, 257);
    for r in &rounds {
        println!(
            "{:>10} {:>14.1} {:>12.1} {:>8.1}x",
            r.trainers,
            r.per_blob_ms,
            r.batched_ms,
            r.speedup()
        );
    }

    let json = crypto_report_json(&profiles, &rounds);
    std::fs::write("BENCH_crypto.json", &json).expect("write BENCH_crypto.json");
    println!("\nwrote BENCH_crypto.json");
}
