//! Demonstrates verifiable aggregation (§IV): a malicious aggregator
//! alters the aggregated update, the directory catches it against the
//! accumulated Pedersen commitment, and — when the partition has an honest
//! peer aggregator — the round still completes with the correct model.
//!
//! Run with: `cargo run --release --example verifiable_aggregation`

use decentralized_fl::ml::{
    data, metrics::param_distance, FedAvg, LogisticRegression, Model, SgdConfig,
};
use decentralized_fl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TaskConfig::builder()
        .trainers(8)
        .partitions(2)
        .aggregators_per_partition(1)
        .ipfs_nodes(4)
        .verifiable(true)
        .rounds(1)
        .seed(3)
        .t_train(SimDuration::from_secs(15))
        .t_sync(SimDuration::from_secs(30))
        .build()?;
    let dataset = data::make_blobs(320, 3, 2, 0.5, 2);
    let clients = data::partition_iid(&dataset, cfg.trainers, 1);
    let model = LogisticRegression::new(3, 2);
    let initial = model.params();
    let sgd = SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    };

    // The honest FedAvg reference for comparison.
    let reference = FedAvg::new(model.clone(), clients.clone(), sgd).run(1, cfg.seed);

    println!("== Attack 1: aggregator 0 alters the update (single aggregator) ==");
    let report = run_task(
        cfg.clone(),
        model.clone(),
        initial.clone(),
        clients.clone(),
        sgd,
        &[(0, Behavior::AlterUpdate)],
    )?;
    println!(
        "  detected: {} rejection(s); round completed: {}",
        report.verification_failures,
        report.succeeded(&cfg)
    );
    println!("  (with no honest aggregator for the partition, the round cannot finish —");
    println!("   but the poisoned model is never accepted)\n");

    println!("== Attack 2: same attacker, but |A_i| = 2 with an honest peer ==");
    let cfg2 = TaskConfig {
        aggregators_per_partition: 2,
        ..cfg.clone()
    };
    let report = run_task(
        cfg2.clone(),
        model.clone(),
        initial.clone(),
        clients.clone(),
        sgd,
        &[(0, Behavior::AlterUpdate)],
    )?;
    let consensus = report.consensus_params().expect("trainers agree");
    println!(
        "  round completed: {}; distance from honest FedAvg: {:.2e}",
        report.succeeded(&cfg2),
        param_distance(&consensus, &reference)
    );
    println!("  (the honest peer's verified update wins; the poison is excluded)\n");

    println!("== Control: honest re-run ==");
    let report = run_task(cfg.clone(), model, initial, clients, sgd, &[])?;
    let consensus = report.consensus_params().expect("trainers agree");
    println!(
        "  round completed: {}; rejections: {}; distance from FedAvg: {:.2e}",
        report.succeeded(&cfg),
        report.verification_failures,
        param_distance(&consensus, &reference)
    );
    Ok(())
}
