//! Records the trace-query before/after numbers into `BENCH_netsim.json`:
//! the standard query battery (per-label count/sum, per-node event lookup)
//! timed through the seed's linear-scan access pattern and through the
//! interned-label index, on a Fig. 2-scale protocol trace and on a
//! million-event synthetic trace — plus the churn sweep's wire-cost
//! accounting (total vs wasted bytes per outage length).
//!
//! Run with: `cargo run --release --example bench_netsim`
//! (set `BENCH_NETSIM_EVENTS` to override the synthetic trace size).

use dfl_bench::{churn_sweep, netsim_report, netsim_report_json};

fn main() {
    let events = std::env::var("BENCH_NETSIM_EVENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1_000_000);

    println!("Trace-query battery (wall clock, this machine)");
    println!(
        "{:>10} {:>9} {:>7} {:>14} {:>14} {:>9} {:>12} {:>12} {:>9}",
        "source",
        "events",
        "labels",
        "scan-agg (ms)",
        "idx-agg (ms)",
        "speedup",
        "scan-find",
        "idx-find",
        "speedup"
    );
    let profiles = netsim_report(events);
    for p in &profiles {
        println!(
            "{:>10} {:>9} {:>7} {:>14.3} {:>14.3} {:>8.0}x {:>12.3} {:>12.3} {:>8.0}x",
            p.source,
            p.events,
            p.labels,
            p.scan_aggregate_ms,
            p.indexed_aggregate_ms,
            p.aggregate_speedup(),
            p.scan_find_ms,
            p.indexed_find_ms,
            p.find_speedup()
        );
    }

    println!("\nChurn wire cost (bytes on the wire vs bytes wasted by churn)");
    println!(
        "{:>10} {:>9} {:>14} {:>14} {:>14}",
        "outage (s)", "rounds", "total tx", "wire wasted", "wasted (all)"
    );
    let churn = churn_sweep();
    for p in &churn {
        println!(
            "{:>10} {:>6}/{} {:>14} {:>14} {:>14}",
            p.outage_secs,
            p.completed_rounds,
            p.rounds,
            p.total_tx_bytes,
            p.wire_wasted_bytes,
            p.wasted_bytes
        );
    }

    let json = netsim_report_json(&profiles, &churn);
    std::fs::write("BENCH_netsim.json", &json).expect("write BENCH_netsim.json");
    println!("\nwrote BENCH_netsim.json");
}
