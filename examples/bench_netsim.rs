//! Records the netsim before/after numbers into `BENCH_netsim.json`:
//! the swarm scale sweep (incremental component-scoped reallocation vs
//! the reference global recompute, wall clock and peak RSS per swarm
//! size), the trace-query battery (per-label count/sum, per-node event
//! lookup) through the seed's linear-scan pattern and the interned-label
//! index, and the churn sweep's wire-cost accounting.
//!
//! Run with: `cargo run --release --example bench_netsim`
//!
//! Knobs:
//! - `--test`: CI smoke mode — run only the 2k-trainer scale point (both
//!   allocators), assert the speedup, skip the artifact write.
//! - `--overlay-smoke`: CI smoke mode for the aggregation overlay — one
//!   10k-trainer verifiable round through the branching-8 overlay, with
//!   the per-node work bounds asserted, skip the artifact write.
//! - `--dedup-smoke`: CI smoke mode for chunked-storage dedup — the
//!   frozen-gradient point with the wire-byte reduction asserted, skip
//!   the artifact write.
//! - `BENCH_NETSIM_EVENTS`: synthetic trace size (default 1 000 000).
//! - `BENCH_NETSIM_SCALE`: comma-separated swarm sizes
//!   (default `2000,5000,10000`).
//! - `BENCH_NETSIM_SCALE_REF_MAX`: largest size that also times the
//!   reference allocator (default 2000 — the global recompute is the
//!   "before" and takes minutes beyond that).
//! - `BENCH_NETSIM_OVERLAY`: comma-separated overlay swarm sizes
//!   (default `1000,10000,100000`).

use dfl_bench::{
    churn_sweep, dedup_run, dedup_sweep, netsim_report, netsim_report_json, overlay_point,
    overlay_sweep, scale_point, scale_sweep,
};

fn print_scale(points: &[dfl_bench::ScalePoint]) {
    println!(
        "{:>9} {:>9} {:>9} {:>16} {:>14} {:>9} {:>12}",
        "trainers", "nodes", "uploads", "reference (ms)", "incr (ms)", "speedup", "peak RSS kB"
    );
    for p in points {
        println!(
            "{:>9} {:>9} {:>9} {:>16} {:>14.1} {:>9} {:>12}",
            p.trainers,
            p.nodes,
            p.uploads,
            p.reference_ms.map_or("-".into(), |v| format!("{v:.1}")),
            p.incremental_ms,
            p.speedup().map_or("-".into(), |v| format!("{v:.0}x")),
            p.peak_rss_kb.map_or("-".into(), |v| v.to_string()),
        );
    }
}

fn print_overlay(points: &[dfl_bench::OverlayPoint]) {
    println!(
        "{:>9} {:>9} {:>7} {:>13} {:>11} {:>11} {:>12} {:>13}",
        "trainers",
        "branching",
        "levels",
        "agg msgs max",
        "work bound",
        "fan-in max",
        "round (s)",
        "wall (ms)"
    );
    for p in points {
        println!(
            "{:>9} {:>9} {:>7} {:>13} {:>11} {:>11} {:>12.2} {:>13.1}",
            p.trainers,
            p.branching,
            p.levels,
            p.agg_msgs_max,
            p.work_bound,
            p.fan_in_max,
            p.round_secs,
            p.wall_ms,
        );
    }
}

fn print_dedup(points: &[dfl_bench::DedupPoint]) {
    println!(
        "{:>9} {:>7} {:>11} {:>14} {:>14} {:>7} {:>8} {:>10}",
        "regime", "rounds", "chunk (B)", "plain tx", "chunked tx", "sent", "deduped", "reduction"
    );
    for p in points {
        println!(
            "{:>9} {:>7} {:>11} {:>14} {:>14} {:>7} {:>8} {:>9.1}%",
            p.regime,
            p.rounds,
            p.chunk_size,
            p.plain_tx_bytes,
            p.chunked_tx_bytes,
            p.chunks_sent,
            p.chunks_deduped,
            p.wire_reduction() * 100.0,
        );
    }
}

fn main() {
    if std::env::args().any(|a| a == "--dedup-smoke") {
        // CI smoke: chunked storage must save wire bytes when blobs repeat
        // across rounds — the number recorded in BENCH_netsim.json's
        // "dedup" section.
        println!("Chunked-storage dedup smoke (frozen gradients, 3 rounds)");
        let point = dedup_run(true);
        print_dedup(std::slice::from_ref(&point));
        assert!(point.chunks_deduped > 0, "no chunks deduped");
        assert!(
            point.wire_reduction() > 0.2,
            "chunked storage must cut wire bytes on repeated blobs: plain {} vs chunked {}",
            point.plain_tx_bytes,
            point.chunked_tx_bytes
        );
        println!(
            "ok: {:.1}% wire bytes saved over {} rounds",
            point.wire_reduction() * 100.0,
            point.rounds
        );
        return;
    }
    if std::env::args().any(|a| a == "--overlay-smoke") {
        // CI smoke: one 10k-trainer verifiable round through the overlay.
        // overlay_point asserts completion and the per-node work bounds.
        println!("Overlay smoke (10000 trainers, branching 8, verifiable)");
        let point = overlay_point(10_000);
        print_overlay(std::slice::from_ref(&point));
        println!(
            "ok: busiest aggregator processed {} overlay messages (bound {}, flat would be {})",
            point.agg_msgs_max, point.work_bound, point.trainers
        );
        return;
    }
    if std::env::args().any(|a| a == "--test") {
        // CI smoke: the 2k-trainer point through both allocators.
        println!("Swarm scale smoke (2000 trainers, both allocators)");
        let point = scale_point(2_000, true);
        print_scale(std::slice::from_ref(&point));
        let speedup = point.speedup().expect("reference timed in smoke mode");
        assert!(
            speedup >= 10.0,
            "incremental allocator must be ≥10x at 2k trainers, got {speedup:.1}x"
        );
        println!("ok: {speedup:.0}x at 2000 trainers");
        return;
    }

    let events = std::env::var("BENCH_NETSIM_EVENTS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1_000_000);
    let sizes: Vec<usize> = std::env::var("BENCH_NETSIM_SCALE")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![2_000, 5_000, 10_000]);
    let ref_max = std::env::var("BENCH_NETSIM_SCALE_REF_MAX")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(2_000);

    // Scale sweep first (ascending) so the peak-RSS column reflects the
    // swarm runs, not the million-event query battery below.
    println!("Swarm scale sweep (wall clock, this machine)");
    let scale = scale_sweep(&sizes, ref_max);
    print_scale(&scale);

    println!("\nTrace-query battery (wall clock, this machine)");
    println!(
        "{:>10} {:>9} {:>7} {:>14} {:>14} {:>9} {:>12} {:>12} {:>9}",
        "source",
        "events",
        "labels",
        "scan-agg (ms)",
        "idx-agg (ms)",
        "speedup",
        "scan-find",
        "idx-find",
        "speedup"
    );
    let profiles = netsim_report(events);
    for p in &profiles {
        println!(
            "{:>10} {:>9} {:>7} {:>14.3} {:>14.3} {:>8.0}x {:>12.3} {:>12.3} {:>8.0}x",
            p.source,
            p.events,
            p.labels,
            p.scan_aggregate_ms,
            p.indexed_aggregate_ms,
            p.aggregate_speedup(),
            p.scan_find_ms,
            p.indexed_find_ms,
            p.find_speedup()
        );
    }

    println!("\nChurn wire cost (bytes on the wire vs bytes wasted by churn)");
    println!(
        "{:>10} {:>9} {:>14} {:>14} {:>14}",
        "outage (s)", "rounds", "total tx", "wire wasted", "wasted (all)"
    );
    let churn = churn_sweep();
    for p in &churn {
        println!(
            "{:>10} {:>6}/{} {:>14} {:>14} {:>14}",
            p.outage_secs,
            p.completed_rounds,
            p.rounds,
            p.total_tx_bytes,
            p.wire_wasted_bytes,
            p.wasted_bytes
        );
    }

    let overlay_sizes: Vec<usize> = std::env::var("BENCH_NETSIM_OVERLAY")
        .ok()
        .map(|v| v.split(',').filter_map(|s| s.trim().parse().ok()).collect())
        .unwrap_or_else(|| vec![1_000, 10_000, 100_000]);
    println!("\nAggregation overlay sweep (verifiable rounds, per-node work)");
    let overlay = overlay_sweep(&overlay_sizes);
    print_overlay(&overlay);

    println!("\nChunked-storage dedup (wire bytes, flat vs chunked)");
    let dedup = dedup_sweep();
    print_dedup(&dedup);

    let json = netsim_report_json(&profiles, &churn, &scale, &overlay, &dedup);
    std::fs::write("BENCH_netsim.json", &json).expect("write BENCH_netsim.json");
    println!("\nwrote BENCH_netsim.json");
}
