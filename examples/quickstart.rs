//! Quickstart: a complete decentralized federated-learning task in ~40
//! lines — 8 trainers, 2 partitions, verifiable aggregation, 3 rounds over
//! a simulated IPFS network.
//!
//! Run with: `cargo run --release --example quickstart`

use decentralized_fl::ml::{data, metrics, LogisticRegression, Model, SgdConfig};
use decentralized_fl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A federated task: 8 trainers, the model split into 2 partitions, one
    // aggregator per partition, gradients travelling over 4 storage nodes,
    // with Pedersen-commitment verification of every aggregation.
    let cfg = TaskConfig::builder()
        .trainers(8)
        .partitions(2)
        .aggregators_per_partition(1)
        .ipfs_nodes(4)
        .verifiable(true)
        .rounds(3)
        .seed(7)
        .build()?;

    // Synthetic two-class data, split IID across the trainers.
    let dataset = data::make_blobs(400, 4, 2, 0.5, 1);
    let clients = data::partition_iid(&dataset, cfg.trainers, 0);

    let model = LogisticRegression::new(4, 2);
    let initial = model.params();
    let sgd = SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    };

    let report = run_task(cfg.clone(), model.clone(), initial, clients, sgd, &[])?;

    println!(
        "Completed {} / {} rounds",
        report.completed_rounds, cfg.rounds
    );
    for round in &report.rounds {
        println!(
            "  round {}: upload {:.2}s, aggregation {:.2}s, round total {:.2}s",
            round.round, round.upload_delay_avg, round.aggregation_delay, round.round_duration
        );
    }

    // Every trainer ends the task with the identical global model.
    let final_params = report.consensus_params().expect("all trainers agree");
    let mut trained = model;
    trained.set_params(&final_params);
    let accuracy = metrics::accuracy(&trained.predict(&dataset.x), &dataset.y);
    println!("Final model accuracy: {:.1}%", accuracy * 100.0);
    println!("Verification failures: {}", report.verification_failures);
    Ok(())
}
