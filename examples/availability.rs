//! Availability under storage failure (§VI "Guarantee availability of
//! gradients in IPFS network"): a storage node silently loses every block
//! it stores. Without replication the round stalls; with replication the
//! retrieval layer fails over to the surviving copies and the task
//! completes with the exact same model.
//!
//! The second half sweeps scheduled storage churn (crash/recover cycles of
//! increasing outage length, `FaultPlan::churn`) and reports how many
//! rounds survive and how much the retry/failover machinery stretches
//! them.
//!
//! Run with: `cargo run --release --example availability`

use decentralized_fl::ml::{data, LogisticRegression, Model, SgdConfig};
use decentralized_fl::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = TaskConfig::builder()
        .trainers(8)
        .partitions(2)
        .aggregators_per_partition(1)
        .ipfs_nodes(4)
        .rounds(2)
        .seed(21)
        .t_train(SimDuration::from_secs(20))
        .t_sync(SimDuration::from_secs(40))
        .build()?;
    let dataset = data::make_blobs(320, 3, 2, 0.5, 8);
    let clients = data::partition_iid(&dataset, base.trainers, 3);
    let model = LogisticRegression::new(3, 2);
    let initial = model.params();
    let sgd = SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    };

    println!("Scenario: storage node 0 silently discards everything it is asked to store.\n");

    for (label, replication) in [
        ("replication = 1 (no replicas)", 1usize),
        ("replication = 2", 2),
    ] {
        let mut cfg = base.clone();
        cfg.lossy_ipfs_nodes = vec![0];
        cfg.replication = replication;
        let report = run_task(
            cfg.clone(),
            model.clone(),
            initial.clone(),
            clients.clone(),
            sgd,
            &[],
        )?;
        println!(
            "{label}: completed {}/{} rounds{}",
            report.completed_rounds,
            cfg.rounds,
            if report.succeeded(&cfg) {
                " — survived the data loss"
            } else {
                " — stalled"
            }
        );
    }

    // Replication only buys availability; the computed model is identical.
    let healthy = run_task(
        base.clone(),
        model.clone(),
        initial.clone(),
        clients.clone(),
        sgd,
        &[],
    )?;
    let mut replicated_cfg = base.clone();
    replicated_cfg.lossy_ipfs_nodes = vec![0];
    replicated_cfg.replication = 2;
    let replicated = run_task(replicated_cfg, model, initial, clients, sgd, &[])?;
    let same = healthy.consensus_params() == replicated.consensus_params();
    println!("\nModel under loss+replication identical to the healthy run: {same}");

    println!(
        "\nScenario: storage churn — every 10 s one storage node crashes for the given outage.\n"
    );
    println!(
        "{:>10}  {:>9}  {:>17}  {:>7}  {:>13}  {:>11}",
        "outage (s)", "rounds", "avg duration (s)", "quorum", "total tx (B)", "wasted (B)"
    );
    for p in dfl_bench::churn_sweep() {
        println!(
            "{:>10}  {:>6}/{}  {:>17.2}  {:>7}  {:>13}  {:>11}",
            p.outage_secs,
            p.completed_rounds,
            p.rounds,
            p.avg_round_duration,
            p.quorum_degradations,
            p.total_tx_bytes,
            p.wasted_bytes
        );
    }
    Ok(())
}
