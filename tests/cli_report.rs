//! End-to-end checks of the `dfl` binary's typed error handling: bad
//! input must produce a one-line `error:` diagnostic and a nonzero exit,
//! never a panic; good input must round-trip an exported trace.

use std::process::Command;

fn dfl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dfl"))
        .args(args)
        .output()
        .expect("spawn dfl")
}

#[test]
fn report_on_missing_file_fails_cleanly() {
    let out = dfl(&["report", "--from-jsonl", "/nonexistent/never/trace.jsonl"]);
    assert!(!out.status.success(), "missing file must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.starts_with("error: "), "stderr: {stderr}");
    assert!(
        stderr.contains("/nonexistent/never/trace.jsonl"),
        "stderr must name the path: {stderr}"
    );
    assert!(
        !stderr.contains("panicked"),
        "must not panic on missing input: {stderr}"
    );
}

#[test]
fn report_on_corrupt_file_names_the_line() {
    let dir = std::env::temp_dir().join(format!("dfl-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("corrupt.jsonl");
    std::fs::write(
        &path,
        "{\"type\":\"counter\",\"label\":\"ok\",\"value\":1}\nnot json\n",
    )
    .unwrap();

    let out = dfl(&["report", "--from-jsonl", path.to_str().unwrap()]);
    assert!(!out.status.success(), "corrupt file must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("line 2"),
        "stderr must name the corrupt line: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_round_trips_an_exported_trace() {
    let dir = std::env::temp_dir().join(format!("dfl-cli-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trace.jsonl");

    let export = dfl(&[
        "report",
        "--trainers",
        "4",
        "--partitions",
        "1",
        "--nodes",
        "2",
        "--rounds",
        "1",
        "--export-jsonl",
        path.to_str().unwrap(),
    ]);
    assert!(
        export.status.success(),
        "export run failed: {}",
        String::from_utf8_lossy(&export.stderr)
    );

    let reread = dfl(&["report", "--from-jsonl", path.to_str().unwrap()]);
    assert!(
        reread.status.success(),
        "re-read failed: {}",
        String::from_utf8_lossy(&reread.stderr)
    );
    let stdout = String::from_utf8_lossy(&reread.stdout);
    assert!(stdout.contains("byte accounting:"), "stdout: {stdout}");
    assert!(stdout.contains("total sent"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flag_value_is_a_usage_error() {
    let out = dfl(&["run", "--trainers", "many"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--trainers") && stderr.contains("many"),
        "stderr: {stderr}"
    );
}
