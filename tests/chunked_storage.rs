//! End-to-end chunked content-addressed storage
//! (`TaskConfig::chunked_storage`).
//!
//! Chunked mode restructures every storage blob into a manifest plus
//! fixed-size chunks, dedups unchanged chunks against the provider's
//! store, and stripes chunk downloads across the storage nodes. These
//! tests pin the three observable guarantees: the trained model is
//! bit-identical to plain storage, unchanged blobs stop costing wire
//! bytes after the first round, and verifiable aggregation still verifies
//! the *reassembled* blobs (commitments are over raw gradient bytes; only
//! the registered CID moved to the manifest).
//!
//! Node layout for the config below: node 0 = directory, nodes 1–4 =
//! storage, nodes 5–6 = aggregators (one per partition), nodes 7–12 =
//! trainers 0–5.

use decentralized_fl::ml::{data, LogisticRegression, Model, SgdConfig};
use decentralized_fl::prelude::*;
use decentralized_fl::protocol::TaskReport;

fn sgd(lr: f32) -> SgdConfig {
    SgdConfig {
        lr,
        batch_size: 16,
        epochs: 1,
        clip: None,
    }
}

fn cfg(chunked: bool) -> TaskConfig {
    TaskConfig::builder()
        .trainers(6)
        .partitions(2)
        .aggregators_per_partition(1)
        .ipfs_nodes(4)
        .comm(CommMode::Indirect)
        .rounds(2)
        .seed(77)
        .replication(2)
        .chunked_storage(chunked)
        .chunk_size(256)
        .t_train(SimDuration::from_secs(20))
        .t_sync(SimDuration::from_secs(40))
        .fetch_timeout(SimDuration::from_secs(2))
        .build()
        .unwrap()
}

fn run(cfg: TaskConfig, lr: f32) -> TaskReport {
    let dataset = data::make_blobs(120, 3, 2, 0.5, 4);
    let clients = data::partition_iid(&dataset, 6, 2);
    let model = LogisticRegression::new(3, 2);
    let params = model.params();
    run_task(cfg, model, params, clients, sgd(lr), &[]).expect("valid config")
}

#[test]
fn chunked_run_matches_plain_storage_bit_for_bit() {
    let plain = run(cfg(false), 0.3);
    let chunked = run(cfg(true), 0.3);
    assert!(plain.succeeded(&cfg(false)));
    assert!(chunked.succeeded(&cfg(true)));
    // Chunking is a storage-layer concern only: the trained model must be
    // byte-identical to the plain-storage run.
    assert_eq!(plain.final_params, chunked.final_params);
    assert!(plain.consensus_params().is_some());
    // The chunked run actually took the chunked path; the plain run never
    // touches it.
    assert!(chunked.chunks_sent > 0, "no chunks shipped");
    assert_eq!(plain.chunks_sent, 0);
    assert_eq!(plain.chunks_deduped, 0);
    assert!(plain.chunk_stripe.iter().all(|&n| n == 0));
    // Striped fetches hit more than one storage node.
    let providers_hit = chunked.chunk_stripe.iter().filter(|&&n| n > 0).count();
    assert!(
        providers_hit > 1,
        "chunk fetches all landed on one provider: {:?}",
        chunked.chunk_stripe
    );
}

#[test]
fn unchanged_gradients_dedup_across_rounds() {
    // lr = 0 freezes the model, so every round recomputes bit-identical
    // gradient blobs. Round 1's chunked uploads must then dedup fully
    // against round 0's still-pinned chunks (the deferred-unpin lifecycle
    // releases a round's blobs one round late for exactly this reason).
    let report = run(cfg(true), 0.0);
    assert!(report.succeeded(&cfg(true)));
    assert!(
        report.chunks_deduped > 0,
        "unchanged chunks were re-shipped: sent {} deduped {}",
        report.chunks_sent,
        report.chunks_deduped
    );
    assert!(report.dedup_bytes_saved > 0);
    // With two identical rounds, at most the first round's distinct
    // chunks ever cross the wire: dedup must cover at least as much as it
    // shipped.
    assert!(
        report.chunks_deduped >= report.chunks_sent / 2,
        "dedup ratio too low: sent {} deduped {}",
        report.chunks_sent,
        report.chunks_deduped
    );
}

#[test]
fn verifiable_chunked_round_verifies_reassembled_blobs() {
    // Verifiable mode commits to raw gradient bytes while chunked mode
    // registers manifest CIDs: the directory and aggregators must fetch
    // the manifest, reassemble, and verify the original bytes.
    let mut plain_cfg = cfg(false);
    plain_cfg.verifiable = true;
    plain_cfg.aggregators_per_partition = 2;
    let mut chunked_cfg = cfg(true);
    chunked_cfg.verifiable = true;
    chunked_cfg.aggregators_per_partition = 2;
    let plain = run(plain_cfg.clone(), 0.3);
    let chunked = run(chunked_cfg.clone(), 0.3);
    assert!(plain.succeeded(&plain_cfg));
    assert!(chunked.succeeded(&chunked_cfg));
    assert_eq!(plain.verification_failures, 0);
    assert_eq!(chunked.verification_failures, 0);
    assert_eq!(plain.final_params, chunked.final_params);
    assert!(chunked.chunks_sent > 0);
}

#[test]
fn chunked_storage_survives_a_storage_crash() {
    // A storage node crash mid-round must be masked by the per-chunk
    // retry/failover machinery exactly as plain Gets are.
    let mut c = cfg(true);
    c.fault_plan = FaultPlan::new()
        .crash_at(SimTime::from_micros(90_000), NodeId(1))
        .recover_at(SimTime::from_micros(4_000_000), NodeId(1));
    let report = run(c.clone(), 0.3);
    assert!(report.succeeded(&c), "chunk failover must mask the crash");
    assert!(report.chunks_sent > 0);
}
