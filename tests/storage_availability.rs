//! Integration tests for the §VI availability story: data loss at storage
//! nodes, replication as insurance, and provider failover during
//! retrieval.

use decentralized_fl::ml::{data, LogisticRegression, Model, SgdConfig};
use decentralized_fl::prelude::*;

fn sgd() -> SgdConfig {
    SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    }
}

fn cfg() -> TaskConfig {
    TaskConfig::builder()
        .trainers(6)
        .partitions(2)
        .aggregators_per_partition(1)
        .ipfs_nodes(4)
        .comm(CommMode::Indirect)
        .rounds(1)
        .seed(77)
        .t_train(SimDuration::from_secs(20))
        .t_sync(SimDuration::from_secs(40))
        .build()
        .unwrap()
}

fn clients() -> Vec<data::Dataset> {
    let dataset = data::make_blobs(120, 3, 2, 0.5, 4);
    data::partition_iid(&dataset, 6, 2)
}

fn run(cfg: TaskConfig) -> decentralized_fl::protocol::TaskReport {
    let model = LogisticRegression::new(3, 2);
    let params = model.params();
    run_task(cfg, model, params, clients(), sgd(), &[]).expect("valid config")
}

#[test]
fn baseline_without_loss_completes() {
    let c = cfg();
    let report = run(c.clone());
    assert!(report.succeeded(&c));
}

#[test]
fn data_loss_without_replication_stalls_the_round() {
    // One storage node silently loses everything; with replication = 1 any
    // gradient that landed there is unrecoverable and the round fails —
    // the motivation for the §VI availability mechanisms.
    let mut c = cfg();
    c.lossy_ipfs_nodes = vec![0];
    c.replication = 1;
    let report = run(c.clone());
    assert!(
        !report.succeeded(&c),
        "a lossy node without replicas must stall the round"
    );
}

#[test]
fn replication_survives_data_loss() {
    // Same loss, but every block is pushed to 2 replicas: provider
    // failover finds the surviving copy and the round completes.
    let mut c = cfg();
    c.lossy_ipfs_nodes = vec![0];
    c.replication = 2;
    let report = run(c.clone());
    assert!(report.succeeded(&c), "replication must mask the loss");
    assert!(report.consensus_params().is_some());
}

#[test]
fn replicated_run_matches_unreplicated_model() {
    // Replication changes availability, never the computed model.
    let plain = run(cfg());
    let mut c = cfg();
    c.replication = 3;
    let replicated = run(c);
    assert_eq!(
        plain.consensus_params().expect("consensus"),
        replicated.consensus_params().expect("consensus")
    );
}

#[test]
fn merge_mode_survives_loss_with_replication() {
    let mut c = cfg();
    c.comm = CommMode::MergeAndDownload;
    c.providers_per_aggregator = 2;
    c.lossy_ipfs_nodes = vec![1];
    c.replication = 2;
    let report = run(c.clone());
    assert!(
        report.succeeded(&c),
        "merge requests must fetch lost members from replicas"
    );
}

#[test]
fn lossy_index_validated() {
    let mut c = cfg();
    c.lossy_ipfs_nodes = vec![99];
    let model = LogisticRegression::new(3, 2);
    let params = model.params();
    let err = run_task(c, model, params, clients(), sgd(), &[]).unwrap_err();
    assert!(err.to_string().contains("lossy"));
}

#[test]
fn old_round_data_is_garbage_collected() {
    // §VI: gradients and updates are only needed for a short period. Each
    // participant unpins its previous round's blobs when a new round
    // starts, so storage occupancy stays bounded instead of growing
    // linearly with the number of rounds.
    let mut c = cfg();
    c.rounds = 4;
    let report = run(c.clone());
    assert!(report.succeeded(&c));

    // Peak occupancy per node across the run must stay near one round's
    // working set (gradients of 2 partitions × up to 2 resident rounds),
    // far below 4 rounds' worth.
    let per_round_blocks = 6 * 2 + 2; // 6 trainers × 2 partitions + 2 updates
    let peak = report
        .trace
        .find_all("store_blocks")
        .iter()
        .map(|e| e.value as usize)
        .max()
        .unwrap_or(0);
    assert!(peak > 0, "storage was used");
    assert!(
        peak <= 2 * per_round_blocks,
        "peak {peak} blocks on one node suggests old rounds are not collected"
    );

    // And occupancy must come back down after collection.
    let last = report
        .trace
        .find_all("store_blocks")
        .last()
        .map(|e| e.value as usize)
        .unwrap_or(usize::MAX);
    assert!(
        last <= per_round_blocks * 2,
        "final occupancy {last} too high"
    );
}
