//! Run-to-run determinism at swarm scale: the same configuration must
//! produce a bit-identical trace every time, under both allocators and —
//! because CI also runs this with `--features parallel` — with the
//! multi-threaded crypto kernels enabled. Any HashMap-iteration-order or
//! thread-scheduling leak into observable behaviour fails here.

use decentralized_fl::prelude::TaskConfig;
use dfl_bench::{fig2_config, overlay_config, run_network_experiment, trace_fingerprint};

#[test]
fn two_thousand_node_swarm_is_run_to_run_deterministic() {
    let first = dfl_bench::swarm_trace_hash(2_000, false);
    let second = dfl_bench::swarm_trace_hash(2_000, false);
    assert_eq!(
        first, second,
        "incremental allocator diverged across identical runs"
    );
}

#[test]
fn reference_allocator_is_deterministic_and_agrees() {
    // The reference global recompute is quadratic, so the run-twice check
    // uses a smaller swarm; incremental-vs-reference agreement at full
    // scale is asserted by the scale benchmark (`scale_point`).
    let incr = dfl_bench::swarm_trace_hash(300, false);
    let ref_first = dfl_bench::swarm_trace_hash(300, true);
    let ref_second = dfl_bench::swarm_trace_hash(300, true);
    assert_eq!(
        ref_first, ref_second,
        "reference allocator diverged across identical runs"
    );
    assert_eq!(
        incr, ref_first,
        "allocators diverged on the 300-trainer swarm"
    );
}

#[test]
fn verifiable_protocol_run_is_run_to_run_deterministic() {
    // Exercises the commitment pipeline: under `--features parallel` the
    // MSM kernels are multi-threaded, and their results must still be
    // bitwise-stable. A small parameter vector keeps the crypto cheap —
    // determinism does not depend on size.
    let cfg = TaskConfig {
        verifiable: true,
        ..fig2_config()
    };
    let params = 1_024;
    let first = run_network_experiment(cfg.clone(), params);
    let second = run_network_experiment(cfg, params);
    assert_eq!(
        first.trace.events().len(),
        second.trace.events().len(),
        "event counts diverged across identical verifiable runs"
    );
    assert_eq!(
        trace_fingerprint(&first.trace),
        trace_fingerprint(&second.trace),
        "verifiable run diverged across identical runs"
    );
}

#[test]
fn batched_verification_preserves_trace_fingerprint() {
    // Deferred batch verification changes only wall-clock cost: the event
    // stream, counter totals, and byte ledger of an honest run must be
    // bit-identical to per-blob mode — with `--features parallel`, across
    // thread counts too. `trainer_verifies` puts every deferred queue
    // (aggregator own-set, peer-partial drain, trainer downloads,
    // directory audit) in the loop.
    let per_blob = TaskConfig {
        verifiable: true,
        trainer_verifies: true,
        ..fig2_config()
    };
    let batched = TaskConfig {
        batch_verify: true,
        ..per_blob.clone()
    };
    let params = 1_024;
    let baseline = run_network_experiment(per_blob, params);
    let deferred = run_network_experiment(batched.clone(), params);
    let again = run_network_experiment(batched, params);
    assert_eq!(
        trace_fingerprint(&baseline.trace),
        trace_fingerprint(&deferred.trace),
        "batched verification changed the observable trace of an honest run"
    );
    assert_eq!(
        trace_fingerprint(&deferred.trace),
        trace_fingerprint(&again.trace),
        "batched verifiable run diverged across identical runs"
    );
}

#[test]
fn overlay_round_is_run_to_run_deterministic() {
    // A 3-level overlay (96 trainers at branching 8) with commitment
    // verification at every interior hop: the full trace — partial
    // forwarding order, deadline timers, dissemination — must be
    // bit-identical across runs, with `--features parallel` too.
    let cfg = overlay_config(96);
    let params = dfl_bench::overlay_param_count();
    let first = run_network_experiment(cfg.clone(), params);
    let second = run_network_experiment(cfg, params);
    assert_eq!(
        first.trace.events().len(),
        second.trace.events().len(),
        "event counts diverged across identical overlay runs"
    );
    assert_eq!(
        trace_fingerprint(&first.trace),
        trace_fingerprint(&second.trace),
        "overlay run diverged across identical runs"
    );
}

#[test]
fn depth_one_overlay_matches_flat_aggregation_bit_for_bit() {
    // The flat verifiable round is the overlay's oracle: a depth-1
    // overlay (branching ≥ trainers − 1, so the root is every other
    // trainer's parent) performs the same exact i128 gradient sum as the
    // flat aggregator and must converge every trainer to bit-identical
    // f32 parameters.
    let trainers = 16;
    let params = dfl_bench::overlay_param_count();
    let flat = TaskConfig {
        overlay_branching: None,
        ..overlay_config(trainers)
    };
    let depth_one = TaskConfig {
        overlay_branching: Some(trainers - 1),
        ..overlay_config(trainers)
    };
    let flat_report = run_network_experiment(flat.clone(), params);
    let overlay_report = run_network_experiment(depth_one.clone(), params);
    assert!(flat_report.succeeded(&flat), "flat round incomplete");
    assert!(
        overlay_report.succeeded(&depth_one),
        "depth-1 overlay round incomplete"
    );
    let flat_params = flat_report
        .consensus_params()
        .expect("flat trainers agree on the final model");
    let overlay_params = overlay_report
        .consensus_params()
        .expect("overlay trainers agree on the final model");
    assert_eq!(flat_params.len(), overlay_params.len());
    for (i, (a, b)) in flat_params.iter().zip(&overlay_params).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "parameter {i} diverged: flat {a} vs overlay {b}"
        );
    }
}
