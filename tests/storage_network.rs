//! Integration tests of the storage layer running over the network
//! simulator: transfer timing, cross-node retrieval, merge-and-download,
//! and pub/sub — the exact substrate behaviours the protocol's delays are
//! built from.

use bytes::Bytes;
use decentralized_fl::ipfs::{Cid, IpfsActor, IpfsNode, IpfsWire};
use decentralized_fl::netsim::{Actor, Context, LinkSpec, NodeId, SimDuration, Simulation};

/// A scripted storage client: performs a sequence of operations, records a
/// trace milestone when each completes.
struct Client {
    script: Vec<IpfsWire>,
    target: NodeId,
    cursor: usize,
    start_delay: SimDuration,
}

impl Client {
    fn new(target: NodeId, script: Vec<IpfsWire>) -> Client {
        Client {
            script,
            target,
            cursor: 0,
            start_delay: SimDuration::ZERO,
        }
    }

    fn delayed(target: NodeId, script: Vec<IpfsWire>, delay: SimDuration) -> Client {
        Client {
            script,
            target,
            cursor: 0,
            start_delay: delay,
        }
    }

    fn step(&mut self, ctx: &mut Context<'_, IpfsWire>) {
        if let Some(op) = self.script.get(self.cursor) {
            let op = op.clone();
            ctx.send(self.target, op.wire_bytes(), op);
        }
    }
}

impl Actor<IpfsWire> for Client {
    fn on_start(&mut self, ctx: &mut Context<'_, IpfsWire>) {
        if self.start_delay == SimDuration::ZERO {
            self.step(ctx);
        } else {
            ctx.set_timer(self.start_delay, 0);
        }
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, IpfsWire>, _token: u64) {
        self.step(ctx);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, IpfsWire>, _from: NodeId, msg: IpfsWire) {
        match msg {
            IpfsWire::PutAck { .. } => ctx.record("put_ack", ctx.now().as_secs_f64()),
            IpfsWire::GetOk { data, .. } => {
                ctx.record("get_ok", ctx.now().as_secs_f64());
                ctx.record("get_len", data.len() as f64);
            }
            IpfsWire::GetErr { .. } => ctx.record("get_err", ctx.now().as_secs_f64()),
            IpfsWire::MergeOk { .. } => ctx.record("merge_ok", ctx.now().as_secs_f64()),
            IpfsWire::Deliver { .. } => ctx.record("deliver", ctx.now().as_secs_f64()),
            _ => return,
        }
        self.cursor += 1;
        self.step(ctx);
    }
}

fn build(n_nodes: usize, mbps: u64) -> (Simulation<IpfsWire>, Vec<NodeId>) {
    let mut sim = Simulation::new();
    let link = LinkSpec::symmetric_mbps(mbps, SimDuration::from_millis(5));
    let ids: Vec<NodeId> = (0..n_nodes).map(NodeId).collect();
    let roster = IpfsNode::roster_for(&ids);
    for id in &ids {
        let added = sim.add_node(IpfsActor::new(IpfsNode::new(*id, roster.clone())), link);
        assert_eq!(added, *id);
    }
    (sim, ids)
}

#[test]
fn put_timing_matches_bandwidth() {
    // 1.25 MB to a node over 10 Mbps ≈ 1 s + latency.
    let (mut sim, _) = build(2, 10);
    let data = Bytes::from(vec![7u8; 1_250_000]);
    let link = LinkSpec::symmetric_mbps(10, SimDuration::from_millis(5));
    let client = sim.add_node(
        Client::new(
            NodeId(0),
            vec![IpfsWire::Put {
                data,
                req_id: 1,
                replicate: 1,
            }],
        ),
        link,
    );
    sim.run();
    let acks = sim.trace().find(client, "put_ack");
    assert_eq!(acks.len(), 1);
    let t = acks[0].value;
    assert!((1.0..1.2).contains(&t), "put ack at {t}s");
}

#[test]
fn cross_node_get_pays_two_transfers() {
    // Block stored on node 0; fetched via node 1 after the put settles:
    // node 1 must pull the block from node 0 and then serve it, so the
    // Get pays roughly two 0.5 s transfers.
    let (mut sim, _) = build(4, 10);
    let data = Bytes::from(vec![9u8; 625_000]); // 0.5 s per hop at 10 Mbps
    let cid = Cid::of(&data);
    let link = LinkSpec::symmetric_mbps(10, SimDuration::from_millis(5));
    let writer = sim.add_node(
        Client::new(
            NodeId(0),
            vec![IpfsWire::Put {
                data,
                req_id: 1,
                replicate: 1,
            }],
        ),
        link,
    );
    let reader = sim.add_node(
        Client::delayed(
            NodeId(1),
            vec![IpfsWire::Get { cid, req_id: 2 }],
            SimDuration::from_secs(2),
        ),
        link,
    );
    sim.run();
    assert_eq!(sim.trace().find(writer, "put_ack").len(), 1);
    let got = sim.trace().find(reader, "get_ok");
    assert_eq!(got.len(), 1, "cross-node get must succeed");
    assert_eq!(sim.trace().find(reader, "get_len")[0].value, 625_000.0);
    let elapsed = got[0].value - 2.0;
    assert!(
        (0.9..1.5).contains(&elapsed),
        "relay get should take ≈2 transfers, took {elapsed}s"
    );
}

#[test]
fn merge_returns_one_blob_for_many() {
    use decentralized_fl::crypto::quantize::{encode, quantize_vector};
    let (mut sim, _) = build(3, 10);
    let link = LinkSpec::symmetric_mbps(10, SimDuration::from_millis(5));
    let blobs: Vec<Bytes> = (0..4)
        .map(|i| Bytes::from(encode(&quantize_vector(&vec![i as f32; 50_000]))))
        .collect();
    let cids: Vec<Cid> = blobs.iter().map(|b| Cid::of(b)).collect();
    let mut script: Vec<IpfsWire> = blobs
        .into_iter()
        .enumerate()
        .map(|(i, data)| IpfsWire::Put {
            data,
            req_id: i as u64,
            replicate: 1,
        })
        .collect();
    script.push(IpfsWire::Merge { cids, req_id: 99 });
    let client = sim.add_node(Client::new(NodeId(0), script), link);
    sim.run();
    assert_eq!(sim.trace().find(client, "merge_ok").len(), 1);
    // The merged response is one blob (~400 KB), not four.
    let rx = sim.trace().bytes_received(client);
    assert!(
        rx < 450_000,
        "client received {rx} bytes; merge should return one blob"
    );
}

#[test]
fn pubsub_delivery_over_network() {
    struct Subscriber {
        gateway: NodeId,
    }
    impl Actor<IpfsWire> for Subscriber {
        fn on_start(&mut self, ctx: &mut Context<'_, IpfsWire>) {
            let sub = IpfsWire::Subscribe {
                topic: "updates".into(),
            };
            ctx.send(self.gateway, sub.wire_bytes(), sub);
        }
        fn on_message(&mut self, ctx: &mut Context<'_, IpfsWire>, _f: NodeId, msg: IpfsWire) {
            if let IpfsWire::Deliver { data, .. } = msg {
                ctx.record("delivered", data.len() as f64);
            }
        }
    }

    let (mut sim, _) = build(3, 10);
    let link = LinkSpec::symmetric_mbps(10, SimDuration::from_millis(5));
    // Subscribers on two different gateways.
    let sub_a = sim.add_node(Subscriber { gateway: NodeId(0) }, link);
    let sub_b = sim.add_node(Subscriber { gateway: NodeId(2) }, link);

    struct Publisher {
        gateway: NodeId,
    }
    impl Actor<IpfsWire> for Publisher {
        fn on_start(&mut self, ctx: &mut Context<'_, IpfsWire>) {
            // Give subscriptions a head start.
            ctx.set_timer(SimDuration::from_millis(200), 1);
        }
        fn on_message(&mut self, _c: &mut Context<'_, IpfsWire>, _f: NodeId, _m: IpfsWire) {}
        fn on_timer(&mut self, ctx: &mut Context<'_, IpfsWire>, _t: u64) {
            let publish = IpfsWire::Publish {
                topic: "updates".into(),
                data: Bytes::from_static(b"partial-update-hash"),
            };
            ctx.send(self.gateway, publish.wire_bytes(), publish);
        }
    }
    sim.add_node(Publisher { gateway: NodeId(1) }, link);
    sim.run();

    assert_eq!(
        sim.trace().find(sub_a, "delivered").len(),
        1,
        "flood reached gateway 0"
    );
    assert_eq!(
        sim.trace().find(sub_b, "delivered").len(),
        1,
        "flood reached gateway 2"
    );
}

#[test]
fn replicated_put_is_slower_but_bounded() {
    // Pushing replicas costs extra uplink on the storage node, not on the
    // client: the client's ack time should be identical, while total bytes
    // moved grow with the replication factor.
    let mut ack_times = Vec::new();
    let mut node_tx = Vec::new();
    for replicate in [1usize, 3] {
        let (mut sim, _) = build(4, 10);
        let link = LinkSpec::symmetric_mbps(10, SimDuration::from_millis(5));
        let data = Bytes::from(vec![3u8; 500_000]);
        let client = sim.add_node(
            Client::new(
                NodeId(0),
                vec![IpfsWire::Put {
                    data,
                    req_id: 1,
                    replicate,
                }],
            ),
            link,
        );
        sim.run();
        ack_times.push(sim.trace().find(client, "put_ack")[0].value);
        node_tx.push(sim.trace().bytes_sent(NodeId(0)));
    }
    assert!(
        (ack_times[0] - ack_times[1]).abs() < 0.2,
        "ack times {ack_times:?}"
    );
    assert!(
        node_tx[1] > node_tx[0] + 900_000,
        "replication must push ≈2 extra copies: {node_tx:?}"
    );
}
