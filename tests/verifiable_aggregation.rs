//! Integration tests for security against malicious aggregators (§IV):
//! dropped and altered updates are detected via Pedersen commitment
//! verification, honest redundancy recovers the round, and the same
//! attacks silently succeed when verifiability is off — which is exactly
//! why the paper adds it.

use decentralized_fl::ml::{
    data, metrics::param_distance, FedAvg, LogisticRegression, Model, SgdConfig,
};
use decentralized_fl::prelude::*;

fn sgd() -> SgdConfig {
    SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    }
}

fn cfg(verifiable: bool) -> TaskConfig {
    TaskConfig::builder()
        .trainers(6)
        .partitions(2)
        .aggregators_per_partition(1)
        .ipfs_nodes(4)
        .rounds(1)
        .verifiable(verifiable)
        .seed(5)
        // Short deadlines keep failed-round simulations quick.
        .t_train(SimDuration::from_secs(30))
        .t_sync(SimDuration::from_secs(60))
        .build()
        .unwrap()
}

fn clients() -> Vec<data::Dataset> {
    let dataset = data::make_blobs(180, 3, 2, 0.5, 2);
    data::partition_iid(&dataset, 6, 1)
}

fn run(cfg: TaskConfig, behaviors: &[(usize, Behavior)]) -> decentralized_fl::protocol::TaskReport {
    let model = LogisticRegression::new(3, 2);
    let params = model.params();
    run_task(cfg, model, params, clients(), sgd(), behaviors).expect("valid config")
}

#[test]
fn honest_run_has_no_failures() {
    let c = cfg(true);
    let report = run(c.clone(), &[]);
    assert!(report.succeeded(&c));
    assert_eq!(report.verification_failures, 0);
}

#[test]
fn dropping_aggregator_is_detected() {
    // Aggregator 0 silently drops two trainers' gradients (completeness
    // violation). With a single aggregator per partition the round cannot
    // complete — but the attack is *detected*, not silently absorbed.
    let c = cfg(true);
    let report = run(c.clone(), &[(0, Behavior::DropGradients { count: 2 })]);
    assert!(
        report.verification_failures > 0,
        "drop attack must be caught"
    );
    assert!(
        !report.succeeded(&c),
        "partition 0 has no honest aggregator"
    );
}

#[test]
fn altering_aggregator_is_detected() {
    // Correctness violation: the update is perturbed before upload.
    let c = cfg(true);
    let report = run(c.clone(), &[(1, Behavior::AlterUpdate)]);
    assert!(
        report.verification_failures > 0,
        "alter attack must be caught"
    );
    assert!(!report.succeeded(&c));
}

#[test]
fn without_verification_attacks_succeed_silently() {
    // The same alteration with verifiability off: the round "succeeds" and
    // trainers absorb a poisoned model — the §III-A motivation.
    let c = cfg(false);
    let report = run(c.clone(), &[(0, Behavior::AlterUpdate)]);
    assert!(report.succeeded(&c), "attack goes unnoticed");
    assert_eq!(report.verification_failures, 0);

    // And the resulting model deviates from the honest FedAvg reference.
    let reference = {
        let model = LogisticRegression::new(3, 2);
        let mut fed = FedAvg::new(model, clients(), sgd());
        fed.run(1, c.seed)
    };
    let poisoned = report
        .consensus_params()
        .expect("trainers agree on the poisoned model");
    let dist = param_distance(&poisoned, &reference);
    assert!(dist > 0.01, "poison should move the model, distance {dist}");
}

#[test]
fn honest_peer_aggregator_saves_the_round() {
    // |A_i| = 2 with one malicious member: peers verify partial updates
    // against accumulated commitments (§IV-B), ignore the malicious one,
    // recover its trainer set at the sync deadline, and complete the round
    // with the correct model.
    let mut c = cfg(true);
    c.aggregators_per_partition = 2;
    c.t_train = dfl_netsim::SimDuration::from_secs(15);
    c.t_sync = dfl_netsim::SimDuration::from_secs(20);
    // Aggregator slot (partition 0, j=0) is global index 0.
    let report = run(c.clone(), &[(0, Behavior::AlterUpdate)]);
    assert!(report.succeeded(&c), "honest peer must complete the round");

    // The final model equals the honest reference: the poison was excluded.
    let reference = {
        let model = LogisticRegression::new(3, 2);
        let mut fed = FedAvg::new(model, clients(), sgd());
        fed.run(1, c.seed)
    };
    let consensus = report.consensus_params().expect("consensus");
    let dist = param_distance(&consensus, &reference);
    assert!(
        dist < 1e-3,
        "model must match honest FedAvg, distance {dist}"
    );
}

#[test]
fn offline_aggregator_triggers_dropout_recovery() {
    // One of two aggregators of a partition crashes. At t_sync, the honest
    // peer downloads the dead peer's trainer gradients itself (§III-D) and
    // the round still completes with the exact honest model.
    let mut c = cfg(false);
    c.aggregators_per_partition = 2;
    c.t_train = dfl_netsim::SimDuration::from_secs(15);
    c.t_sync = dfl_netsim::SimDuration::from_secs(20);
    let report = run(c.clone(), &[(2, Behavior::Offline)]);
    assert!(report.succeeded(&c), "round must survive the dropout");
    assert!(report.dropout_recoveries > 0, "recovery path must have run");

    let reference = {
        let model = LogisticRegression::new(3, 2);
        let mut fed = FedAvg::new(model, clients(), sgd());
        fed.run(1, c.seed)
    };
    let consensus = report.consensus_params().expect("consensus");
    assert!(param_distance(&consensus, &reference) < 1e-3);
}

#[test]
fn all_aggregators_offline_fails_round() {
    // With every aggregator of partition 0 offline the round cannot finish;
    // t_sync bounds the stall (the paper's liveness argument for deadlines).
    let mut c = cfg(false);
    c.aggregators_per_partition = 1;
    let report = run(c.clone(), &[(0, Behavior::Offline)]);
    assert!(!report.succeeded(&c));
    assert_eq!(report.completed_rounds, 0);
}

#[test]
fn verifiable_multi_round_with_malicious_minority() {
    // Two rounds, |A_i| = 2, one altering aggregator: every round must
    // complete correctly despite repeated attacks.
    let mut c = cfg(true);
    c.aggregators_per_partition = 2;
    c.rounds = 2;
    c.t_train = dfl_netsim::SimDuration::from_secs(15);
    c.t_sync = dfl_netsim::SimDuration::from_secs(20);
    let report = run(c.clone(), &[(1, Behavior::AlterUpdate)]);
    assert!(
        report.succeeded(&c),
        "completed {}",
        report.completed_rounds
    );

    let reference = {
        let model = LogisticRegression::new(3, 2);
        let mut fed = FedAvg::new(model, clients(), sgd());
        fed.run(2, c.seed)
    };
    let consensus = report.consensus_params().expect("consensus");
    assert!(param_distance(&consensus, &reference) < 1e-3);
}

#[test]
fn forged_registration_defeats_unauthenticated_verification() {
    // THE attack authentication exists for: a malicious aggregator
    // re-registers its first trainer's gradient with a forged commitment
    // to a fabricated (zeroed) gradient and substitutes that gradient in
    // the aggregation. The poisoned update *opens the forged accumulated
    // commitment*, so unauthenticated verification accepts it.
    let mut c = cfg(true);
    c.authenticate = false;
    let report = run(c.clone(), &[(0, Behavior::ForgeRegistration)]);
    assert!(
        report.succeeded(&c),
        "the forgery slips through unauthenticated verification"
    );
    assert_eq!(
        report.verification_failures, 0,
        "verification was defeated, not triggered"
    );

    // And the accepted model is NOT the honest one.
    let reference = {
        let model = LogisticRegression::new(3, 2);
        let mut fed = FedAvg::new(model, clients(), sgd());
        fed.run(1, c.seed)
    };
    let poisoned = report.consensus_params().expect("consensus");
    assert!(
        param_distance(&poisoned, &reference) > 1e-3,
        "model was poisoned"
    );
}

#[test]
fn authentication_stops_registration_forgery() {
    // Same attack with Schnorr-signed registrations: the forgery carries
    // no valid signature, the directory discards it, the accumulated
    // commitment stays honest, and the poisoned update is rejected.
    let mut c = cfg(true);
    c.authenticate = true;
    let report = run(c.clone(), &[(0, Behavior::ForgeRegistration)]);
    assert!(
        report.trace.find_all("forged_registration").len() == 1,
        "the forgery must be flagged"
    );
    assert!(
        report.verification_failures > 0,
        "the poisoned update must be rejected"
    );
    assert!(
        !report.succeeded(&c),
        "no honest aggregator covers partition 0"
    );
}

#[test]
fn authenticated_honest_run_unaffected() {
    let mut c = cfg(true);
    c.authenticate = true;
    let report = run(c.clone(), &[]);
    assert!(report.succeeded(&c));
    assert_eq!(report.verification_failures, 0);
    assert!(report.trace.find_all("forged_registration").is_empty());

    let reference = {
        let model = LogisticRegression::new(3, 2);
        let mut fed = FedAvg::new(model, clients(), sgd());
        fed.run(1, c.seed)
    };
    let consensus = report.consensus_params().expect("consensus");
    assert!(param_distance(&consensus, &reference) < 1e-3);
}

#[test]
fn trainer_side_verification_accepts_honest_updates() {
    // §IV-B: "this can be performed by any participant (trainer or
    // bootstrapper)". Trainers independently verify downloads against the
    // total accumulated commitment.
    let mut c = cfg(true);
    c.trainer_verifies = true;
    let report = run(c.clone(), &[]);
    assert!(report.succeeded(&c));
    assert!(report.trace.find_all("trainer_rejected_update").is_empty());

    let reference = {
        let model = LogisticRegression::new(3, 2);
        let mut fed = FedAvg::new(model, clients(), sgd());
        fed.run(1, c.seed)
    };
    let consensus = report.consensus_params().expect("consensus");
    assert!(param_distance(&consensus, &reference) < 1e-3);
}

#[test]
fn trainer_verification_requires_verifiable_mode() {
    let mut c = cfg(false);
    c.trainer_verifies = true;
    let model = LogisticRegression::new(3, 2);
    let params = model.params();
    let err = run_task(c, model, params, clients(), sgd(), &[]).unwrap_err();
    assert!(err.to_string().contains("verifiable"));
}
