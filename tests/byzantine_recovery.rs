//! End-to-end Byzantine accountability tests: with `f < replicas` malicious
//! aggregators, every round must complete before its deadline, provable
//! misbehavior must get the offender evicted within one round of first
//! detection, and the final model must be **bit-identical** to the
//! all-honest run — recovery re-aggregates the original gradient blobs and
//! the i128 sum is order-independent, so honest and recovered rounds
//! produce the same bits.

use decentralized_fl::ml::{data, LogisticRegression, Model, SgdConfig};
use decentralized_fl::prelude::*;

fn sgd() -> SgdConfig {
    SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    }
}

/// 2 partitions × 2 aggregator slots = 4 aggregators, replication 2,
/// verifiable + authenticated + accountable, with an early watchdog so
/// recovery starts well before the t_sync deadline. `batch_verify` defers
/// commitment checks to round boundaries; every scenario runs both ways
/// and must reach identical verdicts.
fn cfg(comm: CommMode, batch_verify: bool) -> TaskConfig {
    TaskConfig::builder()
        .trainers(6)
        .partitions(2)
        .aggregators_per_partition(2)
        .ipfs_nodes(4)
        .comm(comm)
        .rounds(2)
        .replication(2)
        .verifiable(true)
        .batch_verify(batch_verify)
        .authenticate(true)
        .accountability(true)
        .seed(11)
        .t_train(SimDuration::from_secs(15))
        .t_sync(SimDuration::from_secs(20))
        .sync_watchdog(Some(SimDuration::from_secs(5)))
        .fetch_timeout(SimDuration::from_secs(2))
        .build()
        .unwrap()
}

fn clients() -> Vec<data::Dataset> {
    let dataset = data::make_blobs(180, 3, 2, 0.5, 9);
    data::partition_iid(&dataset, 6, 3)
}

fn run(cfg: TaskConfig, behaviors: &[(usize, Behavior)]) -> decentralized_fl::protocol::TaskReport {
    let model = LogisticRegression::new(3, 2);
    let params = model.params();
    run_task(cfg, model, params, clients(), sgd(), behaviors).expect("valid config")
}

/// The round a trace event falls in: how many rounds had completed when it
/// was recorded.
fn round_at(report: &decentralized_fl::protocol::TaskReport, time_secs: f64) -> usize {
    report
        .trace
        .find_all("round_complete")
        .iter()
        .filter(|e| e.time.as_secs_f64() < time_secs)
        .count()
}

/// Asserts the invariants every Byzantine run must uphold against its
/// honest twin, returning the report for behavior-specific checks.
fn assert_recovers(
    c: &TaskConfig,
    honest: &decentralized_fl::protocol::TaskReport,
    behaviors: &[(usize, Behavior)],
) -> decentralized_fl::protocol::TaskReport {
    let report = run(c.clone(), behaviors);
    assert!(
        report.succeeded(c),
        "{behaviors:?}: completed {} of {} rounds",
        report.completed_rounds,
        c.rounds
    );
    // Every round beat its deadline — recovery ran inside the round, the
    // round did not stall out to the simulation limit.
    let deadline = c.t_sync.as_secs_f64();
    for r in &report.rounds {
        assert!(
            r.round_duration < deadline,
            "{behaviors:?}: round {} took {:.2}s (deadline {deadline}s)",
            r.round,
            r.round_duration
        );
    }
    // Bit-for-bit identical final model: Vec<f32> equality, no tolerance.
    assert_eq!(
        report.consensus_params().expect("trainers agree"),
        honest.consensus_params().expect("honest consensus"),
        "{behaviors:?}: recovered model must match the honest run exactly"
    );
    report
}

/// Provable misbehavior additionally requires: detection, eviction within
/// one round of first detection, and the eviction pinned on the offender.
fn assert_evicted(report: &decentralized_fl::protocol::TaskReport, offender: usize, label: &str) {
    assert!(report.detections >= 1, "{label}: no detection");
    assert!(report.evictions >= 1, "{label}: no eviction");
    let detected = report.trace.find_all("misbehavior_detected");
    let evicted = report.trace.find_all("evicted");
    assert!(
        evicted.iter().any(|e| e.value == offender as f64),
        "{label}: eviction must name aggregator {offender}"
    );
    let first_detection = detected
        .iter()
        .map(|e| e.time.as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    let first_eviction = evicted
        .iter()
        .map(|e| e.time.as_secs_f64())
        .fold(f64::INFINITY, f64::min);
    assert!(
        round_at(report, first_eviction) <= round_at(report, first_detection) + 1,
        "{label}: eviction must land within one round of detection"
    );
}

fn comm_modes() -> [CommMode; 2] {
    [CommMode::Indirect, CommMode::MergeAndDownload]
}

/// Every scenario runs over the full matrix: both storage-backed comm
/// modes, with per-blob and with batched (deferred) verification.
fn modes() -> [(CommMode, bool); 4] {
    [
        (CommMode::Indirect, false),
        (CommMode::Indirect, true),
        (CommMode::MergeAndDownload, false),
        (CommMode::MergeAndDownload, true),
    ]
}

#[test]
fn honest_accountable_run_is_clean() {
    for (comm, batch) in modes() {
        let c = cfg(comm, batch);
        let report = run(c.clone(), &[]);
        assert!(report.succeeded(&c), "{comm:?}");
        assert_eq!(report.detections, 0, "{comm:?}");
        assert_eq!(report.evictions, 0, "{comm:?}");
        assert_eq!(report.recovered_rounds, 0, "{comm:?}");
        assert_eq!(report.wasted_bytes, 0, "{comm:?}");
        assert_eq!(report.verification_failures, 0, "{comm:?}");
    }
}

#[test]
fn dropping_aggregator_is_evicted_and_round_recovers() {
    // Aggregator 0 drops two of its trainers' gradients but *claims* the
    // full set in its signed announce (admitting the subset would be
    // self-incriminating). The partial provably fails the slot accumulator:
    // the peer packages evidence, the directory evicts, and the peer
    // re-aggregates the slot from the original gradient blobs.
    for (comm, batch) in modes() {
        let c = cfg(comm, batch);
        let honest = run(c.clone(), &[]);
        let behaviors = [(0, Behavior::DropGradients { count: 2 })];
        let report = assert_recovers(&c, &honest, &behaviors);
        assert_evicted(&report, 0, &format!("drop/{comm:?}/batch={batch}"));
        assert!(report.recovered_rounds >= 1, "{comm:?}: recovery must run");
        assert!(report.wasted_bytes > 0, "{comm:?}: bad partial was fetched");
    }
}

#[test]
fn altering_aggregator_is_evicted_and_round_recovers() {
    // Aggregator 0's partial is honest but its registered global update is
    // poisoned. The directory verifies the signed registration first-hand
    // (auditing it even if an honest update won the race), issues BadUpdate
    // evidence, and evicts.
    for (comm, batch) in modes() {
        let c = cfg(comm, batch);
        let honest = run(c.clone(), &[]);
        let behaviors = [(0, Behavior::AlterUpdate)];
        let report = assert_recovers(&c, &honest, &behaviors);
        assert_evicted(&report, 0, &format!("alter/{comm:?}/batch={batch}"));
        assert!(report.wasted_bytes > 0, "{comm:?}: rejected update counted");
    }
}

#[test]
fn offline_aggregator_round_recovers_without_eviction() {
    // Silence yields no transferable proof — an offline aggregator is
    // locally blacklisted (timeout suspicion) and its set recovered, but
    // never evicted: eviction is reserved for *provable* misbehavior.
    for (comm, batch) in modes() {
        let c = cfg(comm, batch);
        let honest = run(c.clone(), &[]);
        let behaviors = [(0, Behavior::Offline)];
        let report = assert_recovers(&c, &honest, &behaviors);
        assert_eq!(report.detections, 0, "{comm:?}: silence is not provable");
        assert_eq!(report.evictions, 0, "{comm:?}: no eviction without proof");
        assert!(report.dropout_recoveries > 0, "{comm:?}");
        assert!(report.recovered_rounds >= 1, "{comm:?}");
    }
}

#[test]
fn equivocating_aggregator_is_evicted_and_round_recovers() {
    // Aggregator 0 uploads two partial variants and sends its peer a
    // validly *signed* announcement of the poisoned one. The signature
    // binds the attacker to the bad blob — exactly the transferable
    // evidence the subsystem exists for.
    for (comm, batch) in modes() {
        let c = cfg(comm, batch);
        let honest = run(c.clone(), &[]);
        let behaviors = [(0, Behavior::Equivocate)];
        let report = assert_recovers(&c, &honest, &behaviors);
        assert_evicted(&report, 0, &format!("equivocate/{comm:?}/batch={batch}"));
        assert!(report.recovered_rounds >= 1, "{comm:?}: recovery must run");
        assert!(
            report.wasted_bytes > 0,
            "{comm:?}: poisoned partial counted"
        );
    }
}

#[test]
fn evicted_aggregator_registrations_are_rejected_next_round() {
    // Round 0 detects and evicts; in round 1 the attacker keeps playing
    // but the directory drops its registration outright.
    for (comm, batch) in modes() {
        let c = cfg(comm, batch);
        let report = run(c.clone(), &[(0, Behavior::Equivocate)]);
        assert!(report.succeeded(&c), "{comm:?}");
        let rejected = report.trace.find_all("evicted_rejected");
        assert!(
            !rejected.is_empty(),
            "{comm:?}: post-eviction registrations must be refused"
        );
        assert!(
            rejected.iter().all(|e| e.value == 0.0),
            "{comm:?}: only the evicted aggregator is refused"
        );
    }
}

#[test]
fn peers_blacklist_via_gossiped_evidence() {
    // The detector is aggregator 1 (slot 1 of partition 0); the directory
    // evicts on the report. Gossip lets *other* aggregators blacklist the
    // offender without re-detecting it themselves; blacklisting shows up
    // as proactive recovery in round 1 with no fresh detection.
    for (comm, batch) in modes() {
        let c = cfg(comm, batch);
        let report = run(c.clone(), &[(0, Behavior::Equivocate)]);
        assert!(report.succeeded(&c), "{comm:?}");
        let blacklisted = report.trace.find_all("peer_blacklisted");
        assert!(
            blacklisted.iter().any(|e| e.value == 0.0),
            "{comm:?}: the offender must be blacklisted by peers"
        );
        // One detection per round at most — round 1 runs on the blacklist,
        // not on re-detecting the same offender.
        assert!(
            report.detections <= c.rounds as usize,
            "{comm:?}: {} detections",
            report.detections
        );
    }
}

#[test]
fn batched_verification_names_identical_culprits() {
    // The batched path bisects a failing RLC check down to the exact
    // offending blobs, so detection, blacklisting, and eviction must pin
    // the same peers as arrival-time per-blob verification — evidence and
    // verdicts may not shift by a single index.
    let sorted_values = |report: &decentralized_fl::protocol::TaskReport, label: &str| {
        let mut v: Vec<f64> = report
            .trace
            .find_all(label)
            .iter()
            .map(|e| e.value)
            .collect();
        v.sort_by(f64::total_cmp);
        v
    };
    let scenarios: [&[(usize, Behavior)]; 3] = [
        &[(0, Behavior::DropGradients { count: 2 })],
        &[(0, Behavior::AlterUpdate)],
        &[(0, Behavior::Equivocate)],
    ];
    for comm in comm_modes() {
        for behaviors in scenarios {
            let per_blob = run(cfg(comm, false), behaviors);
            let batched = run(cfg(comm, true), behaviors);
            for label in ["misbehavior_detected", "evicted", "peer_blacklisted"] {
                assert_eq!(
                    sorted_values(&per_blob, label),
                    sorted_values(&batched, label),
                    "{comm:?}/{behaviors:?}: `{label}` culprits must be \
                     identical across verification modes"
                );
            }
        }
    }
}
