//! Integration tests for the paper's central correctness claim (§V):
//! partitioned, decentralized aggregation computes *the same model* as
//! traditional centralized FL, regardless of communication mode or the
//! number of aggregators per partition.

use decentralized_fl::ml::{
    data, metrics::param_distance, FedAvg, LogisticRegression, Mlp, Model, SgdConfig,
};
use decentralized_fl::prelude::*;

fn sgd() -> SgdConfig {
    SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    }
}

/// Runs FedAvg with the same seeds the protocol's trainers use.
fn fedavg_reference(
    model: LogisticRegression,
    clients: Vec<data::Dataset>,
    rounds: usize,
    seed: u64,
) -> Vec<f32> {
    let mut fed = FedAvg::new(model, clients, sgd());
    fed.run(rounds, seed)
}

fn base_cfg() -> TaskConfig {
    TaskConfig::builder()
        .trainers(6)
        .partitions(3)
        .aggregators_per_partition(1)
        .ipfs_nodes(4)
        .rounds(2)
        .seed(42)
        .build()
        .unwrap()
}

fn clients() -> Vec<data::Dataset> {
    let dataset = data::make_blobs(240, 4, 3, 0.5, 9);
    data::partition_iid(&dataset, 6, 3)
}

/// The protocol's final model must match FedAvg's up to quantization error
/// (24 fractional bits ⇒ per-round error ≪ 1e-4 per parameter).
fn assert_matches_fedavg(cfg: TaskConfig) {
    let model = LogisticRegression::new(4, 3);
    let params = model.params();
    let reference = fedavg_reference(model.clone(), clients(), cfg.rounds as usize, cfg.seed);
    let report =
        run_task(cfg.clone(), model, params, clients(), sgd(), &[]).expect("valid configuration");
    assert!(
        report.succeeded(&cfg),
        "only {} rounds completed",
        report.completed_rounds
    );
    let consensus = report
        .consensus_params()
        .expect("all trainers hold the same model");
    let dist = param_distance(&consensus, &reference);
    assert!(
        dist < 1e-3,
        "protocol model deviates from FedAvg by {dist} (mode {:?})",
        cfg.comm
    );
}

#[test]
fn indirect_mode_matches_fedavg() {
    assert_matches_fedavg(TaskConfig {
        comm: CommMode::Indirect,
        ..base_cfg()
    });
}

#[test]
fn direct_mode_matches_fedavg() {
    assert_matches_fedavg(TaskConfig {
        comm: CommMode::Direct,
        ..base_cfg()
    });
}

#[test]
fn merge_and_download_matches_fedavg() {
    assert_matches_fedavg(TaskConfig {
        comm: CommMode::MergeAndDownload,
        providers_per_aggregator: 2,
        ..base_cfg()
    });
}

#[test]
fn multi_aggregator_matches_fedavg() {
    assert_matches_fedavg(TaskConfig {
        aggregators_per_partition: 2,
        ..base_cfg()
    });
}

#[test]
fn verifiable_mode_matches_fedavg() {
    assert_matches_fedavg(TaskConfig {
        verifiable: true,
        rounds: 1,
        ..base_cfg()
    });
}

#[test]
fn all_modes_agree_bitwise() {
    // The three communication modes must produce the *identical* model:
    // they move the same quantized sums over different paths.
    let mut finals = Vec::new();
    for comm in [
        CommMode::Direct,
        CommMode::Indirect,
        CommMode::MergeAndDownload,
    ] {
        let cfg = TaskConfig {
            comm,
            providers_per_aggregator: 2,
            ..base_cfg()
        };
        let model = LogisticRegression::new(4, 3);
        let params = model.params();
        let report = run_task(cfg.clone(), model, params, clients(), sgd(), &[]).unwrap();
        assert!(report.succeeded(&cfg));
        finals.push(report.consensus_params().expect("consensus"));
    }
    assert_eq!(finals[0], finals[1], "direct vs indirect");
    assert_eq!(finals[1], finals[2], "indirect vs merge-and-download");
}

#[test]
fn multi_aggregator_count_does_not_change_result() {
    let mut finals = Vec::new();
    for app in [1usize, 2, 3] {
        let cfg = TaskConfig {
            aggregators_per_partition: app,
            ..base_cfg()
        };
        let model = LogisticRegression::new(4, 3);
        let params = model.params();
        let report = run_task(cfg.clone(), model, params, clients(), sgd(), &[]).unwrap();
        assert!(report.succeeded(&cfg), "|A_i|={app}");
        finals.push(report.consensus_params().expect("consensus"));
    }
    assert_eq!(finals[0], finals[1]);
    assert_eq!(finals[1], finals[2]);
}

#[test]
fn training_actually_learns_over_rounds() {
    let cfg = TaskConfig {
        rounds: 8,
        ..base_cfg()
    };
    let eval = data::make_blobs(240, 4, 3, 0.5, 9);
    let mut model = LogisticRegression::new(4, 3);
    let params = model.params();
    let report = run_task(
        cfg.clone(),
        model.clone(),
        params.clone(),
        clients(),
        sgd(),
        &[],
    )
    .unwrap();
    assert!(report.succeeded(&cfg));

    let initial_acc = {
        model.set_params(&params);
        decentralized_fl::ml::metrics::accuracy(&model.predict(&eval.x), &eval.y)
    };
    model.set_params(&report.consensus_params().unwrap());
    let final_acc = decentralized_fl::ml::metrics::accuracy(&model.predict(&eval.x), &eval.y);
    assert!(
        final_acc > initial_acc + 0.2 && final_acc > 0.8,
        "accuracy {initial_acc} -> {final_acc}"
    );
}

#[test]
fn deterministic_across_runs() {
    let cfg = base_cfg();
    let run = || {
        let model = LogisticRegression::new(4, 3);
        let params = model.params();
        run_task(cfg.clone(), model, params, clients(), sgd(), &[]).unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.consensus_params().unwrap(), b.consensus_params().unwrap());
    assert_eq!(a.rounds.len(), b.rounds.len());
    for (ra, rb) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(ra.round_duration, rb.round_duration, "round {}", ra.round);
        assert_eq!(ra.aggregation_delay, rb.aggregation_delay);
    }
}

#[test]
fn mlp_end_to_end() {
    // A non-trivial architecture through the full pipeline.
    let cfg = TaskConfig {
        trainers: 4,
        partitions: 4,
        rounds: 2,
        seed: 7,
        ..base_cfg()
    };
    let model = Mlp::new(4, 8, 3, 11);
    let params = model.params();
    let dataset = data::make_blobs(200, 4, 3, 0.5, 13);
    let parts = data::partition_iid(&dataset, 4, 1);
    let report = run_task(cfg.clone(), model, params, parts, sgd(), &[]).unwrap();
    assert!(report.succeeded(&cfg));
    assert!(report.consensus_params().is_some());
}

#[test]
fn non_iid_data_still_completes() {
    let cfg = base_cfg();
    let dataset = data::make_blobs(300, 4, 3, 0.5, 17);
    let skewed = data::partition_dirichlet(&dataset, 6, 0.2, 3);
    // Dirichlet split can produce empty shards; give those a minimum.
    let parts: Vec<_> = skewed
        .into_iter()
        .map(|p| {
            if p.is_empty() {
                dataset.subset(&[0])
            } else {
                p
            }
        })
        .collect();
    let model = LogisticRegression::new(4, 3);
    let params = model.params();
    let report = run_task(cfg.clone(), model, params, parts, sgd(), &[]).unwrap();
    assert!(report.succeeded(&cfg));
}

#[test]
fn compact_registration_matches_per_partition() {
    // §VI directory-load reduction: batched registration must not change
    // the computed model, and must reduce traffic into the directory.
    let per_partition = {
        let cfg = base_cfg();
        let model = LogisticRegression::new(4, 3);
        let params = model.params();
        run_task(cfg.clone(), model, params, clients(), sgd(), &[]).unwrap()
    };
    let compact = {
        let mut cfg = base_cfg();
        cfg.compact_registration = true;
        let model = LogisticRegression::new(4, 3);
        let params = model.params();
        let report = run_task(cfg.clone(), model, params, clients(), sgd(), &[]).unwrap();
        assert!(report.succeeded(&cfg));
        report
    };
    assert_eq!(
        per_partition.consensus_params().unwrap(),
        compact.consensus_params().unwrap(),
        "registration batching must be model-invisible"
    );
    // Directory receives fewer, larger messages: strictly less framing
    // overhead in total.
    let dir = decentralized_fl::netsim::NodeId(0);
    assert!(
        compact.trace.bytes_received(dir) < per_partition.trace.bytes_received(dir),
        "compact: {} vs per-partition: {}",
        compact.trace.bytes_received(dir),
        per_partition.trace.bytes_received(dir)
    );
}

#[test]
fn compact_registration_with_verification_and_auth() {
    let mut cfg = base_cfg();
    cfg.compact_registration = true;
    cfg.verifiable = true;
    cfg.authenticate = true;
    cfg.rounds = 1;
    let model = LogisticRegression::new(4, 3);
    let params = model.params();
    let report = run_task(cfg.clone(), model, params, clients(), sgd(), &[]).unwrap();
    assert!(report.succeeded(&cfg));
    assert_eq!(report.verification_failures, 0);
    assert!(report.trace.find_all("forged_registration").is_empty());
}
