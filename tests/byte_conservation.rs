//! Byte-conservation invariants of the network trace under fault
//! injection.
//!
//! Every byte the shaper moves is attributed exactly once: a flow that
//! completes and is delivered counts on both the sender's and receiver's
//! ledgers; a flow torn by a *sender* crash counts the transferred prefix
//! on both sides (`flow/torn_outbound`); a flow torn by a *receiver* crash
//! counts it on the sender only (`flow/torn_inbound` — the receiver never
//! took application delivery); a payload that finished transferring into a
//! node that crashed before the delivery event counts on both sides as
//! `flow/undelivered`. The invariant checked throughout:
//!
//! ```text
//! total_tx − total_rx == Σ flow/torn_inbound
//! ```
//!
//! Node layout for the config below: node 0 = directory, nodes 1–4 =
//! storage, nodes 5–6 = aggregators (one per partition), nodes 7–12 =
//! trainers 0–5.

use decentralized_fl::ml::{data, LogisticRegression, Model, SgdConfig};
use decentralized_fl::netsim::engine::{Actor, Context, LinkSpec, Simulation};
use decentralized_fl::netsim::fault::Fault;
use decentralized_fl::netsim::trace::net;
use decentralized_fl::prelude::*;
use decentralized_fl::protocol::TaskReport;

fn sgd() -> SgdConfig {
    SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    }
}

fn cfg() -> TaskConfig {
    TaskConfig::builder()
        .trainers(6)
        .partitions(2)
        .aggregators_per_partition(1)
        .ipfs_nodes(4)
        .comm(CommMode::Indirect)
        .rounds(1)
        .seed(77)
        .replication(2)
        .t_train(SimDuration::from_secs(20))
        .t_sync(SimDuration::from_secs(40))
        .fetch_timeout(SimDuration::from_secs(2))
        .build()
        .unwrap()
}

fn run(cfg: TaskConfig) -> TaskReport {
    let dataset = data::make_blobs(120, 3, 2, 0.5, 4);
    let clients = data::partition_iid(&dataset, 6, 2);
    let model = LogisticRegression::new(3, 2);
    let params = model.params();
    run_task(cfg, model, params, clients, sgd(), &[]).expect("valid config")
}

/// Checks the conservation invariant and that the report's wire-waste
/// field reconciles with the trace's torn/undelivered ledger.
fn assert_conserved(report: &TaskReport) {
    let trace = &report.trace;
    let tx = trace.total_bytes_sent();
    let rx = trace.total_bytes_received();
    let torn_inbound = trace.sum(net::FLOW_TORN_INBOUND) as u64;
    let torn_outbound = trace.sum(net::FLOW_TORN_OUTBOUND) as u64;
    let undelivered = trace.sum(net::FLOW_UNDELIVERED) as u64;
    assert_eq!(
        tx,
        rx + torn_inbound,
        "bytes leaked: tx {tx} vs rx {rx} + torn_inbound {torn_inbound}"
    );
    assert_eq!(
        report.wire_wasted_bytes,
        torn_inbound + torn_outbound + undelivered,
        "wire_wasted_bytes must equal the trace's torn + undelivered ledger"
    );
    assert!(
        report.wasted_bytes >= report.wire_wasted_bytes,
        "wasted_bytes includes wire waste"
    );
}

#[test]
fn healthy_run_conserves_bytes_with_no_waste() {
    let report = run(cfg());
    assert_conserved(&report);
    let trace = &report.trace;
    assert_eq!(trace.total_bytes_sent(), trace.total_bytes_received());
    assert_eq!(trace.count(net::FLOW_TORN_INBOUND), 0);
    assert_eq!(trace.count(net::FLOW_TORN_OUTBOUND), 0);
    assert_eq!(trace.count(net::FLOW_UNDELIVERED), 0);
    assert_eq!(report.wire_wasted_bytes, 0);
    assert_eq!(report.wasted_bytes, 0);
    assert!(report.total_tx_bytes > 0);
}

#[test]
fn chunked_mode_conserves_bytes_with_no_waste() {
    // Chunked storage replaces every Put/Get payload with PutChunked /
    // ChunkWant / ChunkFill / GetChunk frames; each of those must land in
    // the same tx/rx ledgers as the flat wires they replace.
    let mut c = cfg();
    c.rounds = 2;
    c.chunked_storage = true;
    c.chunk_size = 256;
    let report = run(c.clone());
    assert!(report.succeeded(&c));
    assert_conserved(&report);
    let trace = &report.trace;
    assert_eq!(trace.total_bytes_sent(), trace.total_bytes_received());
    assert_eq!(report.wire_wasted_bytes, 0);
    assert!(report.chunks_sent > 0, "chunked uploads must ship chunks");
    // Pin the healthy chunked run's total wire cost. The simulation is
    // deterministic, so any drift means the chunked wire protocol (or its
    // byte accounting) changed and the recorded artifacts must be
    // regenerated alongside this value.
    assert_eq!(
        report.total_tx_bytes, 128_300,
        "chunked-mode wire bytes drifted from the pinned value"
    );
}

#[test]
fn crash_and_recover_mid_round_conserves_bytes() {
    // Storage node 1 crashes at 90 ms — mid-fetch, with gradient transfers
    // in flight in both directions — and recovers at 4 s.
    let mut c = cfg();
    c.fault_plan = FaultPlan::new()
        .crash_at(SimTime::from_micros(90_000), NodeId(1))
        .recover_at(SimTime::from_micros(4_000_000), NodeId(1));
    let report = run(c.clone());
    assert!(report.succeeded(&c), "retry must mask the crash");
    assert_conserved(&report);
    // The crash window is chosen to tear at least one in-flight transfer,
    // so the waste accounting is actually exercised, not vacuous.
    assert!(
        report.wire_wasted_bytes > 0,
        "the 90 ms crash must tear in-flight fetches"
    );
}

#[test]
fn degraded_links_conserve_bytes_without_waste() {
    // Link degradation reshapes flows but never kills them: every byte
    // still arrives, so there is nothing to write off.
    let mut c = cfg();
    c.fault_plan = FaultPlan::new()
        .degrade_link_at(SimTime::from_micros(50_000), NodeId(1), 1e6, 1e6)
        .degrade_link_at(SimTime::from_micros(80_000), NodeId(2), 5e5, 5e5);
    let report = run(c.clone());
    assert!(report.succeeded(&c), "degradation must not stall the round");
    assert_conserved(&report);
    assert_eq!(report.wire_wasted_bytes, 0);
    assert_eq!(
        report.trace.total_bytes_sent(),
        report.trace.total_bytes_received()
    );
    assert!(report.trace.count(net::FAULT_DEGRADE_LINK) == 2);
}

#[test]
fn data_loss_with_replication_conserves_bytes() {
    // A storage node silently drops its blocks after the uploads land; the
    // failover refetches cost extra wire bytes but nothing is torn.
    let mut c = cfg();
    c.fault_plan = FaultPlan::new().data_loss_at(SimTime::from_micros(70_000), NodeId(1));
    let report = run(c.clone());
    assert!(report.succeeded(&c), "replication must mask the data loss");
    assert_conserved(&report);
    assert_eq!(report.wire_wasted_bytes, 0);
}

#[test]
fn churn_schedule_conserves_bytes() {
    // The bench harness's churn shape: every 10 s one storage node crashes
    // for 4 s, across a 3-round task.
    let mut c = cfg();
    c.rounds = 3;
    c.t_train = SimDuration::from_secs(60);
    c.t_sync = SimDuration::from_secs(120);
    let storage: Vec<NodeId> = (1..=4).map(NodeId).collect();
    c.fault_plan = FaultPlan::churn(
        &storage,
        SimTime::from_micros(2_000_000),
        SimTime::from_micros(c.t_sync.as_micros() * c.rounds),
        SimDuration::from_secs(10),
        SimDuration::from_secs(4),
        42,
    );
    let report = run(c);
    assert_conserved(&report);
}

#[test]
fn ten_thousand_concurrent_flows_conserve_bytes_exactly() {
    // 2 500 groups of four senders blasting one sink — 10 000 concurrent
    // shaped flows across 12 500 nodes, with a fifth of the sinks throttled
    // to an awkward 1 234 567 bps mid-transfer so rates fold through
    // non-round floating-point values. Accounting must stay *exact*: every
    // delivered flow contributes precisely its wire size to both ledgers,
    // with no epsilon slack anywhere.
    struct Blast {
        sink: decentralized_fl::netsim::engine::NodeId,
        bytes: u64,
    }
    impl Actor<()> for Blast {
        fn on_start(&mut self, ctx: &mut Context<'_, ()>) {
            ctx.send(self.sink, self.bytes, ());
        }
        fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
    }
    struct Sink;
    impl Actor<()> for Sink {
        fn on_message(&mut self, _ctx: &mut Context<'_, ()>, _f: NodeId, _m: ()) {}
    }

    const GROUPS: usize = 2_500;
    let mut sim: Simulation<()> = Simulation::new();
    let mut expected_total: u64 = 0;
    let mut group_bytes = vec![0u64; GROUPS];
    let mut payloads = Vec::new();
    for (g, group_total) in group_bytes.iter_mut().enumerate() {
        let link = LinkSpec::symmetric_mbps(1 + (g as u64 % 19), SimDuration::from_millis(5));
        let sink = sim.reserve_id(4);
        for k in 0..4 {
            let bytes = 10_000 + ((g * 4 + k) * 7_919 % 90_000) as u64;
            payloads.push(bytes);
            expected_total += bytes;
            *group_total += bytes;
            sim.add_node(Blast { sink, bytes }, link);
        }
        sim.add_node(Sink, link);
        if g % 5 == 0 {
            sim.schedule_fault(
                SimTime::from_micros(50_000),
                Fault::DegradeLink {
                    node: sink,
                    up_bps: 1_234_567.0,
                    down_bps: 1_234_567.0,
                },
            );
        }
    }
    sim.run();

    let trace = sim.trace();
    assert_eq!(trace.total_bytes_sent(), expected_total);
    assert_eq!(trace.total_bytes_received(), expected_total);
    assert_eq!(trace.count(net::FLOW_TORN_INBOUND), 0);
    assert_eq!(trace.count(net::FLOW_TORN_OUTBOUND), 0);
    assert_eq!(trace.count(net::FLOW_UNDELIVERED), 0);
    for g in 0..GROUPS {
        let sink = NodeId(g * 5 + 4);
        assert_eq!(
            trace.bytes_received(sink),
            group_bytes[g],
            "sink {g} ledger not exact"
        );
        for k in 0..4 {
            let sender = NodeId(g * 5 + k);
            assert_eq!(trace.bytes_sent(sender), payloads[g * 4 + k]);
        }
    }
}

#[test]
fn churn_wasted_bytes_regression() {
    // Pins the wasted-byte accounting for the standard churn point
    // (outage 4 s, period 10 s, churn seed 42 — the same point
    // `examples/availability.rs` and BENCH_netsim.json report). The
    // simulation is deterministic, so any change to this value means the
    // byte accounting (or the protocol's retry behavior) changed and the
    // recorded artifacts must be regenerated.
    let point = dfl_bench::churn_run(SimDuration::from_secs(4), SimDuration::from_secs(10), 42);
    assert_eq!(point.completed_rounds, point.rounds);
    assert_eq!(
        point.wire_wasted_bytes, 625_564,
        "churn wire waste drifted from the pinned artifact value"
    );
    assert_eq!(point.wasted_bytes, point.wire_wasted_bytes);
    assert!(point.total_tx_bytes > point.wire_wasted_bytes);
}
