//! Integration tests for storage-layer fault tolerance: scheduled crashes
//! ([`FaultPlan`]), client-side retry with alternate-provider failover, and
//! quorum-based deadline degradation.
//!
//! Node layout for the config below: node 0 = directory, nodes 1–4 =
//! storage, nodes 5–6 = aggregators (one per partition), nodes 7–12 =
//! trainers 0–5.

use decentralized_fl::ml::{data, LogisticRegression, Model, SgdConfig};
use decentralized_fl::prelude::*;

fn sgd() -> SgdConfig {
    SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    }
}

fn cfg() -> TaskConfig {
    TaskConfig::builder()
        .trainers(6)
        .partitions(2)
        .aggregators_per_partition(1)
        .ipfs_nodes(4)
        .comm(CommMode::Indirect)
        .rounds(1)
        .seed(77)
        .replication(2)
        .t_train(SimDuration::from_secs(20))
        .t_sync(SimDuration::from_secs(40))
        // Short enough that failover finishes well inside t_sync.
        .fetch_timeout(SimDuration::from_secs(2))
        .build()
        .unwrap()
}

fn clients() -> Vec<data::Dataset> {
    let dataset = data::make_blobs(120, 3, 2, 0.5, 4);
    data::partition_iid(&dataset, 6, 2)
}

fn run(cfg: TaskConfig) -> decentralized_fl::protocol::TaskReport {
    let model = LogisticRegression::new(3, 2);
    let params = model.params();
    run_task(cfg, model, params, clients(), sgd(), &[]).expect("valid config")
}

#[test]
fn storage_crash_mid_round_is_masked_by_retry_and_failover() {
    // Storage node 1 — aggregator 0's gateway AND the node holding
    // trainers 0/4's gradients — crashes at 90 ms: after every upload was
    // acknowledged (~63 ms) but before the aggregators fetch (~100 ms).
    // Aggregator 0's Gets are lost and must be re-issued to another
    // storage node after `fetch_timeout`; aggregator 1's gateway must
    // fail over to replicas for the blocks the dead node holds. The node
    // recovers before the (retry-delayed) trainer downloads begin.
    let baseline = run(cfg());

    let mut c = cfg();
    c.fault_plan = FaultPlan::new()
        .crash_at(SimTime::from_micros(90_000), NodeId(1))
        .recover_at(SimTime::from_micros(4_000_000), NodeId(1));
    let report = run(c.clone());

    assert!(report.succeeded(&c), "retry + failover must mask the crash");
    assert_eq!(
        report.quorum_degradations, 0,
        "no quorum configured, none used"
    );
    // The crash really was in the critical path: the round stalls on the
    // retry timers instead of finishing in the baseline's ~0.4 s…
    let faulted = report.rounds[0].round_duration;
    assert!(
        faulted > 1.0,
        "round took {faulted:.3}s — the crash window missed the fetch phase"
    );
    // …and fault tolerance changes availability, never the model.
    assert_eq!(
        report.consensus_params().expect("consensus"),
        baseline.consensus_params().expect("consensus")
    );
}

#[test]
fn crashed_trainer_stalls_the_round_without_a_quorum() {
    // Default semantics are unchanged: every trainer must report done.
    let mut c = cfg();
    c.t_train = SimDuration::from_secs(2);
    c.t_sync = SimDuration::from_secs(5);
    c.fault_plan = FaultPlan::new().crash_at(SimTime::from_micros(10_000), NodeId(12));
    let report = run(c.clone());
    assert!(
        !report.succeeded(&c),
        "a dead trainer must stall a full-participation round"
    );
}

#[test]
fn quorum_completes_the_round_despite_a_crashed_trainer() {
    // Same dead trainer, but min_quorum = 5: at the sync deadline the
    // aggregators continue with the five received gradients (the FedAvg
    // counter scales the denominator) and the directory closes the round
    // once five trainers report done.
    let mut c = cfg();
    c.t_train = SimDuration::from_secs(2);
    c.t_sync = SimDuration::from_secs(5);
    c.min_quorum = Some(5);
    c.fault_plan = FaultPlan::new().crash_at(SimTime::from_micros(10_000), NodeId(12));
    let report = run(c.clone());

    assert!(report.succeeded(&c), "quorum must complete the round");
    // Both partition aggregators degraded at the deadline.
    assert_eq!(report.quorum_degradations, 2);
    // The dead trainer never finished; the five survivors agree.
    assert_eq!(report.final_params.len(), 5);
    assert!(!report.final_params.contains_key(&5));
    let mut models = report.final_params.values();
    let first = models.next().expect("five survivors");
    assert!(
        models.all(|m| m == first),
        "survivors must agree on the model"
    );
}

#[test]
fn fault_injection_is_deterministic() {
    // Same seed + same plan → byte-identical reports (ISSUE acceptance:
    // churn experiments must be exactly replayable).
    let mk = || {
        let mut c = cfg();
        c.fault_plan = FaultPlan::new()
            .crash_at(SimTime::from_micros(90_000), NodeId(1))
            .recover_at(SimTime::from_micros(4_000_000), NodeId(1));
        run(c)
    };
    let a = mk();
    let b = mk();
    // `final_params` is a HashMap whose Debug order is not stable; compare
    // it sorted, and everything else (including the full trace) verbatim.
    assert_eq!(format!("{:?}", a.rounds), format!("{:?}", b.rounds));
    assert_eq!(a.completed_rounds, b.completed_rounds);
    assert_eq!(a.aggregator_rx_bytes, b.aggregator_rx_bytes);
    assert_eq!(a.quorum_degradations, b.quorum_degradations);
    assert_eq!(a.merge_fallbacks, b.merge_fallbacks);
    let sorted = |r: &decentralized_fl::protocol::TaskReport| {
        let mut v: Vec<_> = r
            .final_params
            .iter()
            .map(|(t, p)| (*t, p.clone()))
            .collect();
        v.sort_by_key(|(t, _)| *t);
        v
    };
    assert_eq!(sorted(&a), sorted(&b));
    // The event log (every fault, timer, and transfer completion, in
    // order) and all per-node byte counters must match exactly; the
    // Trace's own Debug is skipped only because its byte-count maps print
    // in hash order.
    assert_eq!(
        format!("{:?}", a.trace.events()),
        format!("{:?}", b.trace.events())
    );
    for node in 0..13u64 {
        let node = NodeId(node as usize);
        assert_eq!(a.trace.bytes_sent(node), b.trace.bytes_sent(node));
        assert_eq!(a.trace.bytes_received(node), b.trace.bytes_received(node));
    }
}

#[test]
fn fault_plan_node_ids_are_validated() {
    let mut c = cfg();
    c.fault_plan = FaultPlan::new().crash_at(SimTime::from_micros(1), NodeId(99));
    let model = LogisticRegression::new(3, 2);
    let params = model.params();
    let err = run_task(c, model, params, clients(), sgd(), &[]).unwrap_err();
    assert!(err.to_string().contains("fault plan"), "got: {err}");
}

#[test]
fn quorum_composes_with_verifiable_mode() {
    // A degraded round can no longer open the full accumulated commitment,
    // so the directory instead verifies the update against the product of
    // the *claimed contributors'* individual commitments. Same crashed
    // trainer as above, but with commitments on end to end.
    let mut c = cfg();
    c.t_train = SimDuration::from_secs(2);
    c.t_sync = SimDuration::from_secs(5);
    c.min_quorum = Some(5);
    c.verifiable = true;
    c.fault_plan = FaultPlan::new().crash_at(SimTime::from_micros(10_000), NodeId(12));
    let report = run(c.clone());

    assert!(
        report.succeeded(&c),
        "verifiable + quorum must complete the degraded round"
    );
    assert_eq!(report.quorum_degradations, 2);
    assert_eq!(
        report.verification_failures, 0,
        "the subset update must open the per-member commitment product"
    );
    // The five survivors agree on the model.
    assert_eq!(report.final_params.len(), 5);
    let mut models = report.final_params.values();
    let first = models.next().expect("five survivors");
    assert!(models.all(|m| m == first));
}
