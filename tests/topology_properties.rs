//! Property tests over the role/partition assignment logic ([`Topology`]):
//! the §II invariants must hold for every valid configuration, not just
//! the ones the examples use.

use decentralized_fl::prelude::*;
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_config() -> impl Strategy<Value = (TaskConfig, usize)> {
    (
        1usize..20,    // trainers
        1usize..6,     // partitions
        1usize..4,     // aggregators per partition
        1usize..8,     // ipfs nodes
        0u8..3,        // comm mode
        1usize..6,     // providers (clamped below)
        10usize..5000, // param count
    )
        .prop_map(|(t, p, a, n, comm, providers, params)| {
            let comm = match comm {
                0 => CommMode::Direct,
                1 => CommMode::Indirect,
                _ => CommMode::MergeAndDownload,
            };
            (
                TaskConfig::builder()
                    .trainers(t)
                    .partitions(p)
                    .aggregators_per_partition(a)
                    .ipfs_nodes(n)
                    .providers_per_aggregator(providers.min(n))
                    .comm(comm)
                    .build()
                    .expect("generated config is valid"),
                params.max(p),
            )
        })
}

proptest! {
    #[test]
    fn prop_partitions_tile_the_parameter_vector((cfg, params) in arb_config()) {
        let topo = Topology::new(cfg.clone(), params).expect("valid");
        let mut covered = 0usize;
        for i in 0..cfg.partitions {
            let (s, e) = topo.partition_range(i);
            prop_assert_eq!(s, covered, "partitions must be contiguous");
            prop_assert!(e > s, "partitions must be non-empty");
            covered = e;
        }
        prop_assert_eq!(covered, params);
        // Balanced: lengths differ by at most one.
        let lens: Vec<usize> = (0..cfg.partitions).map(|i| topo.partition_len(i)).collect();
        let min = *lens.iter().min().expect("non-empty");
        let max = *lens.iter().max().expect("non-empty");
        prop_assert!(max - min <= 1, "unbalanced partitions: {:?}", lens);
    }

    #[test]
    fn prop_trainer_sets_partition_t((cfg, params) in arb_config()) {
        // §II: for every partition, T = ∪_j T_ij and the T_ij are disjoint.
        let topo = Topology::new(cfg.clone(), params).expect("valid");
        for partition in 0..cfg.partitions {
            let mut seen = HashSet::new();
            for j in 0..cfg.aggregators_per_partition {
                for t in topo.trainer_set(partition, j) {
                    prop_assert!(seen.insert(t), "trainer {t} in two trainer sets");
                    prop_assert_eq!(topo.agg_for_trainer(partition, t), j);
                }
            }
            prop_assert_eq!(seen.len(), cfg.trainers);
        }
    }

    #[test]
    fn prop_node_ids_disjoint((cfg, params) in arb_config()) {
        let topo = Topology::new(cfg.clone(), params).expect("valid");
        let mut ids = HashSet::new();
        ids.insert(topo.directory());
        for k in 0..cfg.ipfs_nodes {
            prop_assert!(ids.insert(topo.ipfs_node(k)));
        }
        for g in 0..cfg.total_aggregators() {
            prop_assert!(ids.insert(topo.aggregator(g)));
        }
        for t in 0..cfg.trainers {
            prop_assert!(ids.insert(topo.trainer(t)));
        }
        prop_assert_eq!(ids.len(), topo.node_count());
    }

    #[test]
    fn prop_upload_targets_are_storage_nodes((cfg, params) in arb_config()) {
        let topo = Topology::new(cfg.clone(), params).expect("valid");
        if cfg.comm == CommMode::Direct {
            return Ok(()); // no storage uploads in direct mode
        }
        let storage: HashSet<_> = topo.ipfs_ids().into_iter().collect();
        for partition in 0..cfg.partitions {
            for t in 0..cfg.trainers {
                let target = topo.upload_target(partition, t).expect("storage-backed mode");
                prop_assert!(storage.contains(&target));
                // And in merge mode, the target is one of the responsible
                // aggregator's providers (so merges cover every gradient).
                if cfg.comm == CommMode::MergeAndDownload {
                    let j = topo.agg_for_trainer(partition, t);
                    let providers = topo.providers(topo.agg_index(partition, j));
                    prop_assert!(providers.contains(&target));
                }
            }
        }
    }

    #[test]
    fn prop_agg_roles_bijective((cfg, params) in arb_config()) {
        let topo = Topology::new(cfg.clone(), params).expect("valid");
        let mut seen = HashSet::new();
        for g in 0..cfg.total_aggregators() {
            let (partition, j) = topo.agg_role(g);
            prop_assert!(partition < cfg.partitions);
            prop_assert!(j < cfg.aggregators_per_partition);
            prop_assert!(seen.insert((partition, j)));
            prop_assert_eq!(topo.agg_index(partition, j), g);
        }
    }
}
