//! Property-based tests over random task configurations: any valid small
//! topology must complete, reach consensus, and compute exactly the
//! FedAvg average — the protocol's correctness must not depend on lucky
//! divisibility of trainers/partitions/aggregators.

use decentralized_fl::ml::{
    data, metrics::param_distance, FedAvg, LogisticRegression, Model, SgdConfig,
};
use decentralized_fl::prelude::*;
use proptest::prelude::*;

fn sgd() -> SgdConfig {
    SgdConfig {
        lr: 0.3,
        batch_size: 8,
        epochs: 1,
        clip: None,
    }
}

fn run_config(
    trainers: usize,
    partitions: usize,
    aggregators_per_partition: usize,
    ipfs_nodes: usize,
    comm: CommMode,
    verifiable: bool,
    seed: u64,
) -> (Vec<f32>, Vec<f32>) {
    let cfg = TaskConfig::builder()
        .trainers(trainers)
        .partitions(partitions)
        .aggregators_per_partition(aggregators_per_partition)
        .ipfs_nodes(ipfs_nodes)
        .comm(comm)
        .providers_per_aggregator(1 + (seed as usize % ipfs_nodes))
        .verifiable(verifiable)
        .authenticate(verifiable && seed.is_multiple_of(2))
        .rounds(1)
        .seed(seed)
        .build()
        .expect("generated config is valid");
    let dataset = data::make_blobs(20 * trainers, 3, 2, 0.5, seed);
    let clients = data::partition_iid(&dataset, trainers, seed);
    let model = LogisticRegression::new(3, 2);
    let params = model.params();

    let reference = FedAvg::new(model.clone(), clients.clone(), sgd()).run(1, cfg.seed);
    let report = run_task(cfg.clone(), model, params, clients, sgd(), &[])
        .expect("valid random configuration");
    assert!(
        report.succeeded(&cfg),
        "config must complete: {trainers}t/{partitions}p/{aggregators_per_partition}a/{ipfs_nodes}n {comm:?} v={verifiable}"
    );
    (report.consensus_params().expect("consensus"), reference)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    #[test]
    fn prop_random_topologies_match_fedavg(
        trainers in 2usize..7,
        partitions in 1usize..4,
        aggregators in 1usize..3,
        ipfs_nodes in 2usize..5,
        comm_pick in 0u8..3,
        seed in 0u64..1000,
    ) {
        let comm = match comm_pick {
            0 => CommMode::Direct,
            1 => CommMode::Indirect,
            _ => CommMode::MergeAndDownload,
        };
        // Verifiable on a fraction of cases (it is the slow path).
        let verifiable = seed % 5 == 0;
        let (consensus, reference) =
            run_config(trainers, partitions, aggregators, ipfs_nodes, comm, verifiable, seed);
        let dist = param_distance(&consensus, &reference);
        prop_assert!(dist < 1e-3, "distance {dist}");
    }
}

#[test]
fn stress_many_partitions_few_trainers() {
    // More partitions than trainers and more aggregators than storage
    // nodes: the awkward corner of the assignment logic.
    let (consensus, reference) = run_config(2, 3, 2, 2, CommMode::Indirect, true, 99);
    assert!(param_distance(&consensus, &reference) < 1e-3);
}

#[test]
fn stress_single_everything() {
    let (consensus, reference) = run_config(1, 1, 1, 1, CommMode::Indirect, true, 7);
    assert!(param_distance(&consensus, &reference) < 1e-3);
}

#[test]
fn stress_wide_fanout() {
    let (consensus, reference) = run_config(12, 2, 3, 6, CommMode::MergeAndDownload, false, 3);
    assert!(param_distance(&consensus, &reference) < 1e-3);
}

#[test]
fn regression_direct_multi_aggregator_verifiable() {
    // Found by the proptest above: in direct mode, aggregators still need
    // the directory poll loop for accumulated commitments (peer partial
    // verification), otherwise sync stalls forever.
    let (consensus, reference) = run_config(2, 1, 2, 2, CommMode::Direct, true, 955);
    assert!(param_distance(&consensus, &reference) < 1e-3);
}
