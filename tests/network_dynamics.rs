//! Analytic timing tests of the network simulator: scenarios with known
//! closed-form completion times under max–min fair sharing. These pin the
//! transport model that all protocol delay measurements rest on.

use decentralized_fl::netsim::{Actor, Context, LinkSpec, NodeId, SimDuration, Simulation};

/// Sends one message of `bytes` to `to` after `delay`.
struct Sender {
    to: NodeId,
    bytes: u64,
    delay: SimDuration,
}

impl Actor<u32> for Sender {
    fn on_start(&mut self, ctx: &mut Context<'_, u32>) {
        ctx.set_timer(self.delay, 0);
    }
    fn on_message(&mut self, _c: &mut Context<'_, u32>, _f: NodeId, _m: u32) {}
    fn on_timer(&mut self, ctx: &mut Context<'_, u32>, _t: u64) {
        ctx.send(self.to, self.bytes, 1);
    }
}

/// Records the arrival time of every message.
struct Sink;

impl Actor<u32> for Sink {
    fn on_message(&mut self, ctx: &mut Context<'_, u32>, from: NodeId, _m: u32) {
        ctx.record("arrival", ctx.now().as_secs_f64());
        ctx.record(&format!("from_{}", from.index()), ctx.now().as_secs_f64());
    }
}

fn mbps_link(mbps: u64) -> LinkSpec {
    LinkSpec::symmetric_mbps(mbps, SimDuration::ZERO)
}

#[test]
fn single_flow_exact_time() {
    // 10 Mbit over 10 Mbps = exactly 1 s (zero latency).
    let mut sim = Simulation::new();
    let sink = sim.reserve_id(1);
    sim.add_node(
        Sender {
            to: sink,
            bytes: 1_250_000,
            delay: SimDuration::ZERO,
        },
        mbps_link(10),
    );
    sim.add_node(Sink, mbps_link(10));
    sim.run();
    let t = sim.trace().find(sink, "arrival")[0].value;
    assert!((t - 1.0).abs() < 1e-3, "arrival at {t}");
}

#[test]
fn late_joiner_slows_first_flow() {
    // Flow A (2.5 MB) starts at t=0 into a 10 Mbps sink. Flow B (1.25 MB)
    // joins at t=1. From t=1 they share 5 Mbps each. A has 1.25 MB left at
    // t=1 → 2 s more shared... B finishes 1.25 MB at 5 Mbps in 2 s (t=3),
    // A also has 1.25 MB at t=1, so both finish at t=3.
    let mut sim = Simulation::new();
    let sink = sim.reserve_id(2);
    let a = sim.add_node(
        Sender {
            to: sink,
            bytes: 2_500_000,
            delay: SimDuration::ZERO,
        },
        mbps_link(100),
    );
    let b = sim.add_node(
        Sender {
            to: sink,
            bytes: 1_250_000,
            delay: SimDuration::from_secs(1),
        },
        mbps_link(100),
    );
    sim.add_node(Sink, mbps_link(10));
    sim.run();
    let ta = sim.trace().find(sink, &format!("from_{}", a.index()))[0].value;
    let tb = sim.trace().find(sink, &format!("from_{}", b.index()))[0].value;
    assert!((ta - 3.0).abs() < 1e-2, "flow A at {ta}");
    assert!((tb - 3.0).abs() < 1e-2, "flow B at {tb}");
}

#[test]
fn departure_releases_bandwidth() {
    // Two equal flows share a 10 Mbps sink: the small one (0.625 MB)
    // finishes at t=1 (5 Mbps each); the big one (1.875 MB) then gets the
    // full 10 Mbps for its remaining 1.25 MB → finishes at t=2.
    let mut sim = Simulation::new();
    let sink = sim.reserve_id(2);
    let small = sim.add_node(
        Sender {
            to: sink,
            bytes: 625_000,
            delay: SimDuration::ZERO,
        },
        mbps_link(100),
    );
    let big = sim.add_node(
        Sender {
            to: sink,
            bytes: 1_875_000,
            delay: SimDuration::ZERO,
        },
        mbps_link(100),
    );
    sim.add_node(Sink, mbps_link(10));
    sim.run();
    let ts = sim.trace().find(sink, &format!("from_{}", small.index()))[0].value;
    let tb = sim.trace().find(sink, &format!("from_{}", big.index()))[0].value;
    assert!((ts - 1.0).abs() < 1e-2, "small at {ts}");
    assert!((tb - 2.0).abs() < 1e-2, "big at {tb}");
}

#[test]
fn uplink_and_downlink_bottlenecks_compose() {
    // Sender uplink 4 Mbps, receiver downlink 10 Mbps shared with another
    // fast sender: fast sender gets 6, slow gets 4 (max–min).
    // Slow sends 1 MB → 2 s; fast sends 1.5 MB at 6 Mbps → 2 s.
    let mut sim = Simulation::new();
    let sink = sim.reserve_id(2);
    let slow = sim.add_node(
        Sender {
            to: sink,
            bytes: 1_000_000,
            delay: SimDuration::ZERO,
        },
        LinkSpec {
            up_bps: 4e6,
            down_bps: 4e6,
            latency: SimDuration::ZERO,
        },
    );
    let fast = sim.add_node(
        Sender {
            to: sink,
            bytes: 1_500_000,
            delay: SimDuration::ZERO,
        },
        mbps_link(100),
    );
    sim.add_node(Sink, mbps_link(10));
    sim.run();
    let t_slow = sim.trace().find(sink, &format!("from_{}", slow.index()))[0].value;
    let t_fast = sim.trace().find(sink, &format!("from_{}", fast.index()))[0].value;
    assert!((t_slow - 2.0).abs() < 1e-2, "slow at {t_slow}");
    assert!((t_fast - 2.0).abs() < 1e-2, "fast at {t_fast}");
}

#[test]
fn sixteen_uploads_into_one_node() {
    // The Fig. 1 |P| = 1 situation: 16 × 1.3 MB through one 10 Mbps
    // downlink ≈ 16.64 s for everyone (fair share, simultaneous finish).
    let mut sim = Simulation::new();
    let sink = sim.reserve_id(16);
    for _ in 0..16 {
        sim.add_node(
            Sender {
                to: sink,
                bytes: 1_300_000,
                delay: SimDuration::ZERO,
            },
            mbps_link(10),
        );
    }
    sim.add_node(Sink, mbps_link(10));
    sim.run();
    let arrivals = sim.trace().find(sink, "arrival");
    assert_eq!(arrivals.len(), 16);
    let expect = 16.0 * 1_300_000.0 * 8.0 / 10e6;
    for a in arrivals {
        assert!(
            (a.value - expect).abs() < 0.05,
            "arrival {} vs {expect}",
            a.value
        );
    }
}

#[test]
fn latency_adds_per_hop() {
    let mut sim = Simulation::new();
    let link = LinkSpec {
        up_bps: 1e9,
        down_bps: 1e9,
        latency: SimDuration::from_millis(25),
    };
    let sink = sim.reserve_id(1);
    sim.add_node(
        Sender {
            to: sink,
            bytes: 1_000,
            delay: SimDuration::ZERO,
        },
        link,
    );
    sim.add_node(Sink, link);
    sim.run();
    let t = sim.trace().find(sink, "arrival")[0].value;
    // Transfer is ~8 µs; latency is 25 ms out + 25 ms in.
    assert!((t - 0.05).abs() < 1e-3, "arrival {t}");
}
