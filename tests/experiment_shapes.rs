//! Regression tests pinning the *shapes* of the paper's figures — the
//! reproduction criteria from EXPERIMENTS.md. A change that breaks any of
//! these breaks the reproduction, even if all functional tests still pass.
//!
//! The topologies match the paper's; the partition size is scaled down 4×
//! so the suite stays fast (all delays scale linearly, shapes unchanged).

use decentralized_fl::prelude::*;
use dfl_bench::run_network_experiment;

/// ~325 KB partition (the paper's 1.3 MB scaled by 4).
const FIG1_PARAMS: usize = 1_300_000 / 8 / 4;
/// 4 partitions of ~275 KB (the paper's 1.1 MB scaled by 4).
const FIG2_PARAMS: usize = 4 * 1_100_000 / 8 / 4;

fn fig1_cfg(comm: CommMode, providers: usize) -> TaskConfig {
    TaskConfig::builder()
        .trainers(16)
        .partitions(1)
        .aggregators_per_partition(1)
        .ipfs_nodes(if comm == CommMode::Indirect {
            providers.max(1)
        } else {
            16
        })
        .comm(comm)
        .providers_per_aggregator(providers.max(1))
        .bandwidth_mbps(10)
        .rounds(1)
        .latency(SimDuration::from_millis(10))
        .seed(1)
        .build()
        .unwrap()
}

fn fig2_cfg(aggregators_per_partition: usize) -> TaskConfig {
    TaskConfig::builder()
        .trainers(16)
        .partitions(4)
        .aggregators_per_partition(aggregators_per_partition)
        .ipfs_nodes(8)
        .comm(CommMode::Indirect)
        .bandwidth_mbps(20)
        .ipfs_bandwidth_mbps(Some(200))
        .rounds(1)
        .latency(SimDuration::from_millis(10))
        .seed(2)
        .build()
        .unwrap()
}

#[test]
fn fig1_upload_delay_decreases_with_providers() {
    let mut last = f64::INFINITY;
    for providers in [1usize, 4, 16] {
        let report =
            run_network_experiment(fig1_cfg(CommMode::MergeAndDownload, providers), FIG1_PARAMS);
        let upload = report.rounds[0].upload_delay_avg;
        assert!(
            upload < last * 0.75,
            "upload delay must drop substantially with providers: {upload} !< {last}"
        );
        last = upload;
    }
}

#[test]
fn fig1_aggregation_delay_increases_with_providers() {
    let mut last = 0.0;
    for providers in [1usize, 4, 16] {
        let report =
            run_network_experiment(fig1_cfg(CommMode::MergeAndDownload, providers), FIG1_PARAMS);
        let agg = report.rounds[0].aggregation_delay;
        assert!(
            agg > last * 1.5,
            "aggregation delay must grow with providers: {agg} !> {last}"
        );
        last = agg;
    }
}

#[test]
fn fig1_trade_off_optimum_at_sqrt_trainers() {
    // τ = upload + aggregation is minimized at |P| = √16 = 4 (§III-E).
    let mut totals = Vec::new();
    for providers in [1usize, 2, 4, 8, 16] {
        let report =
            run_network_experiment(fig1_cfg(CommMode::MergeAndDownload, providers), FIG1_PARAMS);
        let r = &report.rounds[0];
        totals.push((providers, r.upload_delay_avg + r.aggregation_delay));
    }
    let best = totals
        .iter()
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("points");
    assert_eq!(best.0, 4, "optimum must sit at √16 = 4: {totals:?}");
}

#[test]
fn fig1_merge_beats_naive_indirect() {
    let merged = run_network_experiment(fig1_cfg(CommMode::MergeAndDownload, 8), FIG1_PARAMS);
    let naive = run_network_experiment(fig1_cfg(CommMode::Indirect, 8), FIG1_PARAMS);
    let m = merged.rounds[0].aggregation_delay;
    let n = naive.rounds[0].aggregation_delay;
    assert!(
        n > 1.5 * m,
        "naive indirect ({n}s) must be ≫ merge-and-download ({m}s): §V 'essential mechanism'"
    );
}

#[test]
fn fig2_aggregation_halves_and_total_decreases() {
    let mut points = Vec::new();
    for a in [1usize, 2, 4] {
        let report = run_network_experiment(fig2_cfg(a), FIG2_PARAMS);
        let r = &report.rounds[0];
        points.push((
            a,
            r.aggregation_delay,
            r.sync_delay,
            r.total_aggregation_delay,
        ));
    }
    // Aggregation ~halves per doubling.
    assert!(points[1].1 < points[0].1 * 0.65, "{points:?}");
    assert!(points[2].1 < points[1].1 * 0.65, "{points:?}");
    // Sync grows with |A_i|.
    assert!(points[1].2 > points[0].2, "{points:?}");
    assert!(points[2].2 > points[1].2, "{points:?}");
    // Total decreases, with diminishing returns.
    assert!(points[1].3 < points[0].3, "{points:?}");
    assert!(points[2].3 < points[1].3, "{points:?}");
    let gain1 = points[0].3 - points[1].3;
    let gain2 = points[1].3 - points[2].3;
    assert!(gain2 < gain1, "diminishing returns expected: {points:?}");
}

#[test]
fn fig2_bytes_match_analytic_formula() {
    // D = (|T_ij| + |A_i| − 1) · PartitionSize.
    let partition_bytes = (FIG2_PARAMS / 4 + 1) as f64 * 8.0;
    for a in [1usize, 2, 4] {
        let report = run_network_experiment(fig2_cfg(a), FIG2_PARAMS);
        let mean = report.aggregator_rx_bytes.iter().sum::<u64>() as f64
            / report.aggregator_rx_bytes.len() as f64;
        let expected = (16.0 / a as f64 + a as f64 - 1.0) * partition_bytes;
        let ratio = mean / expected;
        assert!(
            (0.97..1.1).contains(&ratio),
            "|A_i|={a}: measured {mean:.0} vs analytic {expected:.0} (ratio {ratio:.3})"
        );
    }
}
