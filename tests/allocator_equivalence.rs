//! End-to-end proof that the incremental component-scoped allocator is
//! bit-identical to the reference global water-filling on the paper's
//! example configurations: the *entire* protocol trace — every event
//! microsecond, every counter, every byte ledger entry — hashes to the
//! same value under both allocators.

use decentralized_fl::prelude::TaskConfig;
use decentralized_fl::protocol::TaskReport;
use dfl_bench::{
    fig1_config, fig1_param_count, fig2_config, fig2_param_count, run_network_experiment,
};

/// FNV-1a over the full observable run outcome.
fn trace_hash(report: &TaskReport) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    let trace = &report.trace;
    for e in trace.events() {
        eat(&e.time.as_micros().to_le_bytes());
        eat(&(e.node.0 as u64).to_le_bytes());
        eat(trace.label_name(e.label).as_bytes());
        eat(&e.value.to_bits().to_le_bytes());
    }
    eat(&trace.total_bytes_sent().to_le_bytes());
    eat(&trace.total_bytes_received().to_le_bytes());
    eat(&report.wire_wasted_bytes.to_le_bytes());
    h
}

fn run_both(mut cfg: TaskConfig, params: usize) -> (u64, usize, u64, usize) {
    cfg.reference_allocator = false;
    let fast = run_network_experiment(cfg.clone(), params);
    cfg.reference_allocator = true;
    let slow = run_network_experiment(cfg, params);
    (
        trace_hash(&fast),
        fast.trace.events().len(),
        trace_hash(&slow),
        slow.trace.events().len(),
    )
}

#[test]
fn fig1_trace_hash_identical_across_allocators() {
    let (fast, fast_n, slow, slow_n) = run_both(fig1_config(), fig1_param_count());
    assert_eq!(fast_n, slow_n, "event counts diverged on Fig. 1 config");
    assert_eq!(fast, slow, "trace hash diverged on Fig. 1 config");
}

#[test]
fn fig2_trace_hash_identical_across_allocators() {
    let (fast, fast_n, slow, slow_n) = run_both(fig2_config(), fig2_param_count());
    assert_eq!(fast_n, slow_n, "event counts diverged on Fig. 2 config");
    assert_eq!(fast, slow, "trace hash diverged on Fig. 2 config");
}
