//! `any::<T>()` and the [`Arbitrary`] trait (subset).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        let mut out = [0u8; N];
        for chunk in out.chunks_mut(8) {
            let bytes = rng.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        out
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`: uniform over its full value range.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
