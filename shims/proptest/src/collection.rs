//! Collection strategies (subset: `vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Admissible element counts for a collection strategy (half-open).
#[derive(Copy, Clone, Debug)]
pub struct SizeRange {
    start: usize,
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

/// Strategy producing `Vec`s whose elements come from an inner strategy.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (rng.next_u64() % span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec`: vectors of `element` with length in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
