//! The [`Strategy`] trait and primitive strategies (ranges, tuples, map).

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of random test inputs.
///
/// Unlike real proptest there is no value tree and no shrinking; a
/// strategy simply produces a value from the deterministic [`TestRng`].
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Values samplable from a half-open range (backing `low..high` strategies).
pub trait RangeValue: Copy + PartialOrd {
    fn sample(rng: &mut TestRng, start: Self, end: Self) -> Self;
}

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample(rng: &mut TestRng, start: Self, end: Self) -> Self {
                assert!(start < end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl RangeValue for f64 {
    fn sample(rng: &mut TestRng, start: Self, end: Self) -> Self {
        assert!(start < end, "empty range strategy");
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        start + frac * (end - start)
    }
}

impl RangeValue for f32 {
    fn sample(rng: &mut TestRng, start: Self, end: Self) -> Self {
        assert!(start < end, "empty range strategy");
        let frac = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        start + frac * (end - start)
    }
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::sample(rng, self.start, self.end)
    }
}

macro_rules! impl_range_inclusive_int {
    ($($t:ty),*) => {$(
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_range_inclusive_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
    (A, B, C, D, E, F, G, H, I)
    (A, B, C, D, E, F, G, H, I, J)
}
