//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the subset of the `proptest 1.x` API the workspace uses is
//! reimplemented here and wired in via `[patch.crates-io]`. Semantics are
//! simplified but honest:
//!
//! * strategies generate random values from a deterministic per-test RNG
//!   (seeded from the test name, so runs are reproducible);
//! * `prop_assert*` failures abort the test with the failing case index;
//! * there is **no shrinking** — the first failing input is reported as-is.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests.
///
/// Supports the common form used in this workspace: an optional
/// `#![proptest_config(..)]` inner attribute followed by `#[test] fn`
/// items whose arguments are `pattern in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (@body ($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                &strategy,
                |($($pat,)+)| -> $crate::test_runner::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
    )*};
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test, failing the case (not the
/// whole process) via an early `Err` return.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two expressions are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?} == {:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs == *rhs,
            "assertion failed: `{:?} == {:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// Asserts two expressions are not equal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?} != {:?}`",
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *lhs != *rhs,
            "assertion failed: `{:?} != {:?}`: {}",
            lhs,
            rhs,
            format!($($fmt)*)
        );
    }};
}

/// Rejects the current case (resampled, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
