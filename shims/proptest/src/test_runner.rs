//! Test execution: config, deterministic RNG, and the case loop.

use std::fmt;

/// Configuration for a `proptest!` block (subset: `cases`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
    /// Upper bound on resamples spent satisfying `prop_assume!` rejections,
    /// as a multiple of `cases`.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 1024,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case failed an assertion.
    Fail(String),
    /// The case was rejected by `prop_assume!` and should be resampled.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 stream used to generate test inputs.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// FNV-1a over the test name: a stable per-test seed so failures reproduce.
fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Runs `test` against `config.cases` generated inputs, panicking on the
/// first failure (no shrinking).
pub fn run_cases<S, F>(name: &str, config: &ProptestConfig, strategy: &S, mut test: F)
where
    S: crate::strategy::Strategy,
    F: FnMut(S::Value) -> TestCaseResult,
{
    let mut rng = TestRng::new(seed_from_name(name));
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let reject_budget = config.max_global_rejects.max(config.cases);
    while accepted < config.cases {
        let value = strategy.generate(&mut rng);
        match test(value) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                if rejected > reject_budget {
                    // Too constrained to keep sampling; treat what ran as
                    // the full run rather than spinning forever.
                    return;
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("proptest `{name}` failed at case {accepted}: {msg}");
            }
        }
    }
}
