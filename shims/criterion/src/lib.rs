//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the subset of the `criterion 0.5` API used by `crates/bench` is
//! reimplemented here and wired in via `[patch.crates-io]`. It is a plain
//! wall-clock harness: each benchmark is timed over an adaptively chosen
//! iteration count and the mean per-iteration time is printed. No
//! statistics, no HTML reports — enough to compare orders of magnitude and
//! to keep `cargo bench` runnable offline.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(200);

/// `cargo bench -- --test` smoke mode: run every benchmark exactly once to
/// prove it executes, skipping calibration and measurement (the real
/// criterion's test mode, which CI uses as a cheap "benches don't rot"
/// gate).
fn test_mode() -> bool {
    std::env::args().skip(1).any(|a| a == "--test")
}

/// Top-level harness handle.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), None, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the harness sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&format!("{}/{}", self.name, id), self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&format!("{}/{}", self.name, id.0), self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

/// Identifier for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Units the per-iteration time is normalized against.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, throughput: Option<Throughput>, mut f: F) {
    // Calibration pass: one iteration to estimate the cost.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    if test_mode() {
        println!("bench {label}: ok [test mode]");
        return;
    }
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 100_000) as u64;

    let mut bencher = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let per_iter = bencher.elapsed.as_secs_f64() / iters as f64;

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            format!(" ({:.1} MiB/s)", n as f64 / per_iter / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(n)) => format!(" ({:.0} elem/s)", n as f64 / per_iter),
        None => String::new(),
    };
    println!(
        "bench {label}: {}{rate} [{iters} iters]",
        format_time(per_iter)
    );
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Groups benchmark functions into one callable entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a set of benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(10).throughput(Throughput::Bytes(8));
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
    }
}
