//! Offline stand-in for the `bytes` crate.
//!
//! The workspace builds in hermetic environments, so the subset of the
//! `bytes 1.x` API actually used — a cheaply clonable, immutable, shared
//! byte buffer — is reimplemented here over `Arc<[u8]>` and wired in via
//! `[patch.crates-io]`.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Wraps a static byte slice (copied; cheapness is not load-bearing
    /// in the simulator).
    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl<const N: usize> From<&'static [u8; N]> for Bytes {
    fn from(v: &'static [u8; N]) -> Bytes {
        Bytes::from_static(v)
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<T: IntoIterator<Item = u8>>(iter: T) -> Bytes {
        Bytes::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter().take(32) {
            if b.is_ascii_graphic() || b == b' ' {
                write!(f, "{}", b as char)?;
            } else {
                write!(f, "\\x{b:02x}")?;
            }
        }
        if self.data.len() > 32 {
            write!(f, "..{} bytes", self.data.len())?;
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_equality() {
        let a = Bytes::from(vec![1u8, 2, 3]);
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.to_vec(), vec![1, 2, 3]);
        assert_eq!(&a[1..], &[2, 3][..]);
        let s = Bytes::from_static(b"hello");
        assert_eq!(*s, *b"hello");
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![9u8; 1024]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_ref().as_ptr(), b.as_ref().as_ptr()));
    }
}
