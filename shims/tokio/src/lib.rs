//! Offline stand-in for the `tokio` crate.
//!
//! The build has no network access, so (like every crate in `shims/`) this
//! reimplements the API subset the workspace uses on top of the standard
//! library. The futures returned here complete their work *inside the
//! first `poll`* — blocking on the underlying std call — so the
//! [`runtime::Runtime::block_on`] executor is a plain poll loop and
//! concurrency comes from [`task::spawn_blocking`] OS threads. That is a
//! faithful-enough execution model for `dfl-backend-tokio`, whose node
//! loops are blocking threads by design; swap in the real tokio and the
//! same code runs unchanged with a work-stealing reactor instead.

use std::future::Future;
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

fn noop_waker() -> Waker {
    const VTABLE: RawWakerVTable = RawWakerVTable::new(|_| RAW, |_| {}, |_| {}, |_| {});
    const RAW: RawWaker = RawWaker::new(std::ptr::null(), &VTABLE);
    // SAFETY: the vtable functions are all no-ops over a null pointer.
    unsafe { Waker::from_raw(RAW) }
}

/// Single-threaded executor driving ready-on-first-poll futures.
pub mod runtime {
    use super::*;

    /// The shim runtime. Holds no reactor: futures block internally.
    pub struct Runtime {}

    impl Runtime {
        /// Builds a runtime.
        pub fn new() -> std::io::Result<Runtime> {
            Ok(Runtime {})
        }

        /// Polls `fut` to completion on the calling thread.
        pub fn block_on<F: Future>(&self, fut: F) -> F::Output {
            let mut fut = Box::pin(fut);
            let waker = noop_waker();
            let mut cx = Context::from_waker(&waker);
            loop {
                match fut.as_mut().poll(&mut cx) {
                    Poll::Ready(out) => return out,
                    // Shim futures block inside poll, so Pending only
                    // appears if a user future yields voluntarily; spin
                    // with a short sleep rather than busy-wait.
                    Poll::Pending => std::thread::sleep(std::time::Duration::from_millis(1)),
                }
            }
        }
    }
}

/// TCP types with async signatures over blocking std sockets.
pub mod net {
    use std::io;
    use std::net::SocketAddr;

    /// Async-flavoured wrapper around [`std::net::TcpListener`].
    pub struct TcpListener {
        inner: std::net::TcpListener,
    }

    impl TcpListener {
        /// Binds to `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port).
        pub async fn bind(addr: &str) -> io::Result<TcpListener> {
            Ok(TcpListener {
                inner: std::net::TcpListener::bind(addr)?,
            })
        }

        /// The bound local address.
        pub fn local_addr(&self) -> io::Result<SocketAddr> {
            self.inner.local_addr()
        }

        /// Waits for one inbound connection.
        pub async fn accept(&self) -> io::Result<(TcpStream, SocketAddr)> {
            let (stream, peer) = self.inner.accept()?;
            Ok((TcpStream { inner: stream }, peer))
        }

        /// Unwraps into the blocking std listener (for use on a
        /// [`crate::task::spawn_blocking`] thread).
        pub fn into_std(self) -> io::Result<std::net::TcpListener> {
            Ok(self.inner)
        }
    }

    /// Async-flavoured wrapper around [`std::net::TcpStream`].
    pub struct TcpStream {
        inner: std::net::TcpStream,
    }

    impl TcpStream {
        /// Connects to `addr`.
        pub async fn connect(addr: SocketAddr) -> io::Result<TcpStream> {
            Ok(TcpStream {
                inner: std::net::TcpStream::connect(addr)?,
            })
        }

        /// Unwraps into the blocking std stream.
        pub fn into_std(self) -> io::Result<std::net::TcpStream> {
            Ok(self.inner)
        }
    }
}

/// Blocking-task offload.
pub mod task {
    use std::future::Future;
    use std::pin::Pin;
    use std::task::{Context, Poll};

    /// Error joining a spawned task (the closure panicked).
    #[derive(Debug)]
    pub struct JoinError;

    impl std::fmt::Display for JoinError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "spawned task panicked")
        }
    }

    impl std::error::Error for JoinError {}

    /// Handle to a spawned blocking task; awaiting it joins the thread.
    pub struct JoinHandle<T> {
        thread: Option<std::thread::JoinHandle<T>>,
    }

    impl<T> Future for JoinHandle<T> {
        type Output = Result<T, JoinError>;

        fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<Self::Output> {
            let handle = self
                .thread
                .take()
                .expect("JoinHandle polled after completion");
            Poll::Ready(handle.join().map_err(|_| JoinError))
        }
    }

    /// Runs `f` on a dedicated OS thread; the returned handle resolves to
    /// its result.
    pub fn spawn_blocking<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        JoinHandle {
            thread: Some(std::thread::spawn(f)),
        }
    }
}

/// Wall-clock timers.
pub mod time {
    /// Sleeps for `duration` (blocking inside the first poll).
    pub async fn sleep(duration: std::time::Duration) {
        std::thread::sleep(duration);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_on_runs_async_chains() {
        let rt = runtime::Runtime::new().unwrap();
        let out = rt.block_on(async {
            let handle = task::spawn_blocking(|| 21 * 2);
            handle.await.unwrap()
        });
        assert_eq!(out, 42);
    }

    #[test]
    fn listener_and_stream_round_trip() {
        use std::io::{Read, Write};
        let rt = runtime::Runtime::new().unwrap();
        rt.block_on(async {
            let listener = net::TcpListener::bind("127.0.0.1:0").await.unwrap();
            let addr = listener.local_addr().unwrap();
            let server = task::spawn_blocking(move || {
                let std_listener = listener.into_std().unwrap();
                let (mut conn, _) = std_listener.accept().unwrap();
                let mut buf = [0u8; 4];
                conn.read_exact(&mut buf).unwrap();
                buf
            });
            let stream = net::TcpStream::connect(addr).await.unwrap();
            let mut std_stream = stream.into_std().unwrap();
            std_stream.write_all(b"ping").unwrap();
            drop(std_stream);
            assert_eq!(&server.await.unwrap(), b"ping");
        });
    }

    #[test]
    fn sleep_elapses() {
        let rt = runtime::Runtime::new().unwrap();
        let start = std::time::Instant::now();
        rt.block_on(time::sleep(std::time::Duration::from_millis(10)));
        assert!(start.elapsed() >= std::time::Duration::from_millis(10));
    }
}
