//! Offline stand-in for the `rayon` crate.
//!
//! The workspace builds in hermetic environments with no registry access,
//! so the small fork/join subset of the `rayon 1.x` API that `dfl-crypto`
//! uses is reimplemented here over `std::thread::scope`. Unlike real rayon
//! there is no persistent work-stealing pool: every [`join`] spawns one OS
//! thread for its right-hand side. Thread spawn costs ~10 µs, which is
//! noise for the multi-millisecond MSM work this crate parallelizes, but
//! callers should not use it for micro-tasks.
//!
//! Determinism note: `join(a, b)` always returns `(a(), b())` — the values
//! are combined by the *caller* in a fixed order, so reductions written
//! over `join` are order-deterministic even though the two closures run
//! concurrently.

use std::num::NonZeroUsize;

/// Runs the two closures, potentially in parallel, and returns both
/// results as `(ra, rb)`.
///
/// The closure `b` runs on a freshly spawned scoped thread while `a` runs
/// on the calling thread, so borrowing from the caller's stack works
/// exactly as with rayon's `join`.
///
/// # Panics
///
/// Propagates a panic from either closure, like rayon does.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|scope| {
        let handle = scope.spawn(b);
        let ra = a();
        let rb = match handle.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Number of threads `join` trees should aim to keep busy: the machine's
/// available parallelism (rayon reports its pool size here; the shim has
/// no pool, so the hardware count is the honest equivalent).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results_in_order() {
        let data = [1u64, 2, 3, 4];
        let (left, right) = join(
            || data[..2].iter().sum::<u64>(),
            || data[2..].iter().sum::<u64>(),
        );
        assert_eq!((left, right), (3, 7));
    }

    #[test]
    fn join_nests() {
        fn sum(xs: &[u64]) -> u64 {
            if xs.len() <= 1 {
                return xs.iter().sum();
            }
            let mid = xs.len() / 2;
            let (a, b) = join(|| sum(&xs[..mid]), || sum(&xs[mid..]));
            a + b
        }
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(sum(&xs), 5050);
    }

    #[test]
    fn at_least_one_thread_reported() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn join_propagates_panic() {
        let result = std::panic::catch_unwind(|| {
            join(|| 1, || -> i32 { panic!("boom") });
        });
        assert!(result.is_err());
    }
}
