//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in hermetic environments with no registry access,
//! so the subset of the `rand 0.8` API the workspace actually uses is
//! reimplemented here and wired in via `[patch.crates-io]`. Everything is
//! deterministic: `StdRng` is a SplitMix64 stream seeded by
//! [`SeedableRng::seed_from_u64`], which is all the simulator needs (the
//! paper reproduction seeds every source of randomness explicitly).

use std::ops::Range;

pub mod rngs {
    pub use crate::StdRng;
}

pub mod seq;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "cannot sample from empty range");
                // Span fits in u128 for every primitive integer type.
                let span = (range.end as i128 - range.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        // 53 random mantissa bits -> uniform in [0, 1).
        let frac = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + frac * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_from<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "cannot sample from empty range");
        let frac = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + frac * (range.end - range.start)
    }
}

/// The subset of `rand::Rng` the workspace uses.
pub trait Rng {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Samples uniformly from the half-open range `low..high`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_from(self, range)
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Seedable RNG constructors (subset: the workspace only seeds from u64).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
///
/// Not the real StdRng algorithm (ChaCha12), but statistically fine for
/// simulation workloads and — crucially — stable across platforms and
/// builds, which the determinism tests rely on.
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        // Pre-mix so that small adjacent seeds produce unrelated streams.
        StdRng {
            state: state ^ 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(33..80);
            assert!((33..80).contains(&v));
            let f: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&f));
            let g: f64 = rng.gen_range(-4.0..4.0);
            assert!((-4.0..4.0).contains(&g));
            let n: i64 = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&n));
        }
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn shuffle_differs_by_seed() {
        let mut a: Vec<u32> = (0..50).collect();
        let mut b: Vec<u32> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(1));
        b.shuffle(&mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
        let mut a2: Vec<u32> = (0..50).collect();
        a2.shuffle(&mut StdRng::seed_from_u64(1));
        assert_eq!(a, a2);
    }
}
