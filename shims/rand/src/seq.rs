//! Sequence helpers (subset of `rand::seq`).

use crate::Rng;

/// Extension trait providing in-place shuffling (Fisher–Yates).
pub trait SliceRandom {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }
}
