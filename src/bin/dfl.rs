//! `dfl` — command-line driver for the decentralized FL system.
//!
//! ```text
//! dfl run    [--trainers N] [--partitions N] [--aggregators N] [--nodes N]
//!            [--rounds N] [--comm direct|indirect|merge] [--providers N]
//!            [--verifiable] [--authenticate] [--compact] [--replication N]
//!            [--bandwidth MBPS] [--seed S]
//! dfl report [same flags; --comm defaults to merge]
//!            [--export-jsonl PATH] [--export-csv PATH]
//!            # per-round latency breakdown, protocol counters,
//!            # verify-time histogram, and byte accounting
//! dfl report --from-jsonl PATH
//!            # re-print counters/histograms/bytes from an exported trace
//! dfl fig1 | fig2 | fig3      # regenerate a paper figure's series
//! ```
//!
//! Build and run with `cargo run --release --bin dfl -- run --trainers 8`.
//! Every failure path exits nonzero with a typed [`CliError`] on stderr.

use std::fmt;
use std::process::ExitCode;

use decentralized_fl::ml::{data, metrics, LogisticRegression, Model, SgdConfig};
use decentralized_fl::netsim::{Trace, TraceReadError};
use decentralized_fl::protocol::{run_task, CommMode, TaskConfig, TaskReport};

/// Everything that can go wrong in the CLI, by failure domain. Each
/// variant renders a one-line `error: ...` message and a nonzero exit.
#[derive(Debug)]
enum CliError {
    /// Bad command line (unknown flag value, non-numeric argument, ...).
    Usage(String),
    /// Flags parsed but describe an invalid task configuration.
    Config(String),
    /// The task ran but failed (protocol error, incomplete rounds, ...).
    Task(String),
    /// A file could not be read or written.
    Io {
        path: String,
        source: std::io::Error,
    },
    /// An exported trace file exists but does not parse.
    Trace {
        path: String,
        source: TraceReadError,
    },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "usage: {m}"),
            CliError::Config(m) => write!(f, "invalid configuration: {m}"),
            CliError::Task(m) => write!(f, "task failed: {m}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Trace { path, source } => write!(f, "{path}: {source}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            CliError::Trace { source, .. } => Some(source),
            _ => None,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("fig1") => {
            print_fig1();
            ExitCode::SUCCESS
        }
        Some("fig2") => {
            print_fig2();
            ExitCode::SUCCESS
        }
        Some("fig3") => {
            print_fig3();
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: dfl <run|report|fig1|fig2|fig3> [flags]  (see --help in source)");
            ExitCode::FAILURE
        }
    }
}

/// Tiny flag parser: `--name value` and boolean `--name`.
struct Flags<'a>(&'a [String]);

impl<'a> Flags<'a> {
    fn get(&self, name: &str) -> Option<&'a str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn num(&self, name: &str, default: u64) -> Result<u64, CliError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("{name} expects a number, got {v:?}"))),
        }
    }

    fn flag(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }
}

fn cmd_run(rest: &[String]) -> ExitCode {
    match try_run(rest) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Builds a [`TaskConfig`] from the shared `run`/`report` flag set.
fn parse_config(flags: &Flags<'_>, default_comm: &str) -> Result<TaskConfig, CliError> {
    let comm = match flags.get("--comm").unwrap_or(default_comm) {
        "direct" => CommMode::Direct,
        "indirect" => CommMode::Indirect,
        "merge" => CommMode::MergeAndDownload,
        other => {
            return Err(CliError::Usage(format!(
                "unknown --comm {other:?} (direct|indirect|merge)"
            )))
        }
    };
    let cfg = TaskConfig {
        trainers: flags.num("--trainers", 8)? as usize,
        partitions: flags.num("--partitions", 2)? as usize,
        aggregators_per_partition: flags.num("--aggregators", 1)? as usize,
        ipfs_nodes: flags.num("--nodes", 4)? as usize,
        providers_per_aggregator: flags.num("--providers", 2)? as usize,
        comm,
        verifiable: flags.flag("--verifiable"),
        authenticate: flags.flag("--authenticate"),
        compact_registration: flags.flag("--compact"),
        replication: flags.num("--replication", 1)? as usize,
        rounds: flags.num("--rounds", 3)?,
        bandwidth_mbps: flags.num("--bandwidth", 10)?,
        seed: flags.num("--seed", 0)?,
        ..TaskConfig::default()
    };
    cfg.validate()
        .map_err(|e| CliError::Config(e.to_string()))?;
    Ok(cfg)
}

/// Runs a task under `cfg` on the standard synthetic workload.
fn run_with_config(cfg: &TaskConfig) -> Result<TaskReport, CliError> {
    let dataset = data::make_blobs(50 * cfg.trainers, 4, 3, 0.5, cfg.seed);
    let clients = data::partition_iid(&dataset, cfg.trainers, cfg.seed);
    let model = LogisticRegression::new(4, 3);
    let initial = model.params();
    let sgd = SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    };
    run_task(cfg.clone(), model, initial, clients, sgd, &[])
        .map_err(|e| CliError::Task(e.to_string()))
}

fn try_run(rest: &[String]) -> Result<(), CliError> {
    let flags = Flags(rest);
    let cfg = parse_config(&flags, "indirect")?;

    let dataset = data::make_blobs(50 * cfg.trainers, 4, 3, 0.5, cfg.seed);
    let clients = data::partition_iid(&dataset, cfg.trainers, cfg.seed);
    let model = LogisticRegression::new(4, 3);
    let initial = model.params();
    let sgd = SgdConfig {
        lr: 0.3,
        batch_size: 16,
        epochs: 1,
        clip: None,
    };

    println!(
        "task: {} trainers, {} partitions × {} aggregators, {} storage nodes, {:?}, \
         verifiable={}, authenticated={}, {} round(s)",
        cfg.trainers,
        cfg.partitions,
        cfg.aggregators_per_partition,
        cfg.ipfs_nodes,
        cfg.comm,
        cfg.verifiable,
        cfg.authenticate,
        cfg.rounds
    );
    let report = run_task(cfg.clone(), model.clone(), initial, clients, sgd, &[])
        .map_err(|e| CliError::Task(e.to_string()))?;

    for round in &report.rounds {
        println!(
            "round {}: upload {:.2}s | aggregation {:.2}s | sync {:.2}s | total {:.2}s",
            round.round,
            round.upload_delay_avg,
            round.aggregation_delay,
            round.sync_delay,
            round.round_duration
        );
    }
    if !report.succeeded(&cfg) {
        return Err(CliError::Task(format!(
            "only {}/{} rounds completed (verification failures: {})",
            report.completed_rounds, cfg.rounds, report.verification_failures
        )));
    }
    let consensus = report
        .consensus_params()
        .ok_or_else(|| CliError::Task("trainers disagree on the final model".to_string()))?;
    let mut evaluate = model;
    evaluate.set_params(&consensus);
    let acc = metrics::accuracy(&evaluate.predict(&dataset.x), &dataset.y);
    println!("final training accuracy: {:.1}%", acc * 100.0);
    println!("verification failures: {}", report.verification_failures);
    Ok(())
}

fn cmd_report(rest: &[String]) -> ExitCode {
    match try_report(rest) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Re-prints the trace-derived report sections from a previously exported
/// JSONL trace (`--export-jsonl`), without re-running the simulation.
fn report_from_jsonl(path: &str) -> Result<(), CliError> {
    let file = std::fs::File::open(path).map_err(|source| CliError::Io {
        path: path.to_string(),
        source,
    })?;
    let trace =
        Trace::read_jsonl(std::io::BufReader::new(file)).map_err(|source| CliError::Trace {
            path: path.to_string(),
            source,
        })?;

    println!("trace: {path} ({} events)", trace.events().len());
    print_trace_summary(&trace);
    println!();
    println!("byte accounting:");
    println!(
        "  total sent                   {}",
        trace.total_bytes_sent()
    );
    println!(
        "  total received               {}",
        trace.total_bytes_received()
    );
    Ok(())
}

/// Counters and histograms — shared between live runs and `--from-jsonl`.
fn print_trace_summary(trace: &Trace) {
    let counters: Vec<(&str, u64)> = trace.counters().collect();
    if !counters.is_empty() {
        println!();
        println!("counters:");
        for (name, value) in counters {
            println!("  {name:<28} {value}");
        }
    }

    for (name, h) in trace.histograms() {
        println!();
        println!(
            "{name}: n={} mean={:.3} min={:.3} p50={:.3} p95={:.3} max={:.3}",
            h.count(),
            h.mean(),
            h.min(),
            h.quantile(0.5),
            h.quantile(0.95),
            h.max()
        );
    }
}

fn try_report(rest: &[String]) -> Result<(), CliError> {
    let flags = Flags(rest);
    if let Some(path) = flags.get("--from-jsonl") {
        return report_from_jsonl(path);
    }
    // `merge` by default: the breakdown is most informative when gradients
    // travel through storage (merge-and-download, §IV-B).
    let cfg = parse_config(&flags, "merge")?;
    let report = run_with_config(&cfg)?;

    println!(
        "run: {} trainers, {} partitions × {} aggregators, {} storage nodes, {:?}, \
         {}/{} round(s) completed",
        cfg.trainers,
        cfg.partitions,
        cfg.aggregators_per_partition,
        cfg.ipfs_nodes,
        cfg.comm,
        report.completed_rounds,
        cfg.rounds
    );

    println!();
    println!("per-round latency breakdown (seconds of simulated time):");
    println!(
        "{:>6} {:>10} {:>9} {:>13} {:>8} {:>10}",
        "round", "upload", "merge", "aggregation", "sync", "duration"
    );
    for r in &report.rounds {
        println!(
            "{:>6} {:>10.3} {:>9.3} {:>13.3} {:>8.3} {:>10.3}",
            r.round,
            r.upload_delay_avg,
            r.merge_delay,
            r.aggregation_delay,
            r.sync_delay,
            r.round_duration
        );
    }

    let trace = &report.trace;
    print_trace_summary(trace);

    println!();
    println!("byte accounting:");
    println!("  total sent                   {}", report.total_tx_bytes);
    println!(
        "  total received               {}",
        trace.total_bytes_received()
    );
    println!(
        "  wire wasted (churn)          {}",
        report.wire_wasted_bytes
    );
    println!("  wasted (all causes)          {}", report.wasted_bytes);
    let per_agg: Vec<String> = report
        .aggregator_rx_bytes
        .iter()
        .map(|b| b.to_string())
        .collect();
    println!("  rx per aggregator            [{}]", per_agg.join(", "));
    if report.chunks_sent > 0 || report.chunks_deduped > 0 {
        println!();
        println!("chunked storage:");
        println!("  chunks sent                  {}", report.chunks_sent);
        println!("  chunks deduped               {}", report.chunks_deduped);
        println!(
            "  dedup bytes saved            {}",
            report.dedup_bytes_saved
        );
        let stripe: Vec<String> = report.chunk_stripe.iter().map(|n| n.to_string()).collect();
        println!("  chunk fetches per provider   [{}]", stripe.join(", "));
    }

    if let Some(path) = flags.get("--export-jsonl") {
        let mut out = Vec::new();
        trace
            .write_jsonl(&mut out)
            .expect("writing to a Vec cannot fail");
        std::fs::write(path, out).map_err(|source| CliError::Io {
            path: path.to_string(),
            source,
        })?;
        println!("trace exported to {path} (jsonl)");
    }
    if let Some(path) = flags.get("--export-csv") {
        let mut out = Vec::new();
        trace
            .write_csv(&mut out)
            .expect("writing to a Vec cannot fail");
        std::fs::write(path, out).map_err(|source| CliError::Io {
            path: path.to_string(),
            source,
        })?;
        println!("trace exported to {path} (csv)");
    }
    Ok(())
}

#[cfg(feature = "figures")]
fn print_fig1() {
    println!("Figure 1 — delays vs providers");
    println!(
        "{:<12} {:>18} {:>14}",
        "providers", "aggregation (s)", "upload (s)"
    );
    for point in dfl_bench::fig1_providers() {
        println!(
            "{:<12} {:>18.2} {:>14.2}",
            point.label, point.aggregation_delay, point.upload_delay
        );
    }
}

#[cfg(feature = "figures")]
fn print_fig2() {
    println!("Figure 2 — effect of |A_i|");
    println!(
        "{:>6} {:>16} {:>10} {:>10} {:>16}",
        "|A_i|", "aggregation (s)", "sync (s)", "total (s)", "MB/aggregator"
    );
    for p in dfl_bench::fig2_aggregators() {
        println!(
            "{:>6} {:>16.2} {:>10.2} {:>10.2} {:>16.2}",
            p.aggregators_per_partition,
            p.aggregation_delay,
            p.sync_delay,
            p.total_delay,
            p.mb_per_aggregator
        );
    }
}

#[cfg(feature = "figures")]
fn print_fig3() {
    println!("Figure 3 — hashing vs commitment time");
    println!(
        "{:>10} {:>14} {:>18} {:>18}",
        "#params", "SHA-256 (ms)", "Pedersen k1 (ms)", "Pedersen r1 (ms)"
    );
    for p in dfl_bench::fig3_commitment(&dfl_bench::fig3_default_sizes()) {
        println!(
            "{:>10} {:>14.3} {:>18.1} {:>18.1}",
            p.elements, p.sha256_ms, p.pedersen_k1_ms, p.pedersen_r1_ms
        );
    }
}

#[cfg(not(feature = "figures"))]
fn print_fig1() {
    figures_hint()
}

#[cfg(not(feature = "figures"))]
fn print_fig2() {
    figures_hint()
}

#[cfg(not(feature = "figures"))]
fn print_fig3() {
    figures_hint()
}

#[cfg(not(feature = "figures"))]
fn figures_hint() {
    eprintln!("figure subcommands need the experiment harness; rebuild with:");
    eprintln!("    cargo run --release --features figures --bin dfl -- <fig1|fig2|fig3>");
}
