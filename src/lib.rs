//! # decentralized-fl
//!
//! A from-scratch Rust reproduction of *Towards Efficient Decentralized
//! Federated Learning* (Pappas et al., ICDCS 2022): the modified IPLS
//! protocol with indirect communication over a decentralized storage
//! network, merge-and-download pre-aggregation, and verifiable aggregation
//! via homomorphic Pedersen commitments.
//!
//! This crate is the umbrella: it re-exports the workspace's crates and
//! hosts the runnable examples (`examples/`) and cross-crate integration
//! tests (`tests/`).
//!
//! * [`crypto`] ([`dfl_crypto`]) — SHA-256, secp256k1/secp256r1, Pedersen
//!   vector commitments, multi-scalar multiplication, gradient quantization.
//! * [`netsim`] ([`dfl_netsim`]) — deterministic discrete-event network
//!   simulator with max–min fair bandwidth sharing (the mininet stand-in).
//! * [`ipfs`] ([`dfl_ipfs`]) — simulated content-addressed storage with
//!   provider routing, replication, pub/sub, and merge-and-download.
//! * [`ml`] ([`dfl_ml`]) — models, local SGD, federated datasets, FedAvg
//!   and gossip baselines.
//! * [`protocol`] ([`ipls`]) — the paper's protocol and its task runner.
//!
//! ## Quickstart
//!
//! ```
//! use decentralized_fl::ml::{data, LogisticRegression, Model, SgdConfig};
//! use decentralized_fl::protocol::{run_task, TaskConfig};
//!
//! let cfg = TaskConfig { trainers: 4, partitions: 2, rounds: 2, ..TaskConfig::default() };
//! let dataset = data::make_blobs(80, 2, 2, 0.5, 1);
//! let clients = data::partition_iid(&dataset, 4, 0);
//! let model = LogisticRegression::new(2, 2);
//! let params = model.params();
//! let report = run_task(cfg.clone(), model, params, clients, SgdConfig::default(), &[])?;
//! assert!(report.succeeded(&cfg));
//! println!("round 0 took {:.2}s", report.rounds[0].round_duration);
//! # Ok::<(), decentralized_fl::protocol::IplsError>(())
//! ```

pub use dfl_crypto as crypto;
pub use dfl_ipfs as ipfs;
pub use dfl_ml as ml;
pub use dfl_netsim as netsim;
pub use ipls as protocol;

/// The protocol crate's prelude, re-exported at the umbrella level so
/// examples can write `use decentralized_fl::prelude::*;`.
pub use ipls::prelude;
