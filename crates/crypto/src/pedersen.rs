//! Pedersen vector commitments with homomorphic addition (§IV-A of the
//! paper).
//!
//! A commitment to a vector `v` is `C = Π hᵢ^(vᵢ)` where `{hᵢ}` are public
//! generators with unknown discrete-log relations. Written additively:
//! `C = Σ vᵢ·Hᵢ`. The scheme is *vector binding* under the discrete-log
//! assumption and *additively homomorphic*: `C(v₁) + C(v₂) = C(v₁ + v₂)`,
//! which is exactly the property the directory service exploits to verify
//! aggregation (§IV-B).
//!
//! ```
//! use dfl_crypto::curve::Secp256k1;
//! use dfl_crypto::pedersen::CommitKey;
//! use dfl_crypto::curve::Scalar;
//!
//! let key = CommitKey::<Secp256k1>::setup(4, b"example");
//! let v1: Vec<_> = (1..=4u64).map(Scalar::<Secp256k1>::from_u64).collect();
//! let v2: Vec<_> = (5..=8u64).map(Scalar::<Secp256k1>::from_u64).collect();
//! let sum: Vec<_> = v1.iter().zip(&v2).map(|(a, b)| *a + *b).collect();
//!
//! let c1 = key.commit(&v1);
//! let c2 = key.commit(&v2);
//! assert_eq!(c1.combine(&c2), key.commit(&sum));
//! assert!(key.verify(&sum, &c1.combine(&c2)));
//! ```

use std::fmt;

use crate::bigint::U256;
use crate::curve::{Affine, Curve, Jacobian, Scalar};
use crate::field::Fp;
use crate::msm::{Msm, MsmTable, Strategy};
use crate::sha256::Sha256;

/// Public parameters: a vector of generators with no known discrete-log
/// relations, derived from a seed by hash-to-curve (try-and-increment), so
/// any party can recompute and audit them ("nothing up my sleeve").
///
/// A key may additionally carry a fixed-base precomputation table
/// ([`CommitKey::precompute`]) that every subsequent [`CommitKey::commit`]
/// and [`CommitKey::batch_verify`] uses transparently. The table caches
/// windowed shifts of the generators (derived data only), so two keys
/// compare equal iff their generators and seed match, table or not.
#[derive(Clone)]
pub struct CommitKey<C: Curve> {
    generators: Vec<Affine<C>>,
    seed: Vec<u8>,
    table: Option<MsmTable<C>>,
}

impl<C: Curve> PartialEq for CommitKey<C> {
    fn eq(&self, other: &Self) -> bool {
        self.generators == other.generators && self.seed == other.seed
    }
}

impl<C: Curve> Eq for CommitKey<C> {}

impl<C: Curve> CommitKey<C> {
    /// Derives `n` generators from `seed`.
    pub fn setup(n: usize, seed: &[u8]) -> CommitKey<C> {
        let generators = (0..n).map(|i| hash_to_curve::<C>(seed, i as u64)).collect();
        CommitKey {
            generators,
            seed: seed.to_vec(),
            table: None,
        }
    }

    /// [`CommitKey::setup`] followed by [`CommitKey::precompute`]: the
    /// one-call constructor for long-lived task keys.
    pub fn setup_precomputed(n: usize, seed: &[u8]) -> CommitKey<C> {
        let mut key = CommitKey::setup(n, seed);
        key.precompute();
        key
    }

    /// Builds (or rebuilds) the fixed-base precomputation table over the
    /// current generators. Costs about one naive scalar multiplication per
    /// generator, paid once; afterwards each commitment is a single
    /// batch-affine bucket pass with no doubling chain. Idempotent.
    pub fn precompute(&mut self) {
        self.table = Some(MsmTable::build(&self.generators));
    }

    /// Drops the precomputation table (frees its memory; commits fall back
    /// to the table-free batch-affine path).
    pub fn clear_precomputed(&mut self) {
        self.table = None;
    }

    /// `true` if a precomputation table is attached.
    pub fn is_precomputed(&self) -> bool {
        self.table.is_some()
    }

    /// Approximate heap footprint of the precomputation table in bytes
    /// (0 when none is attached).
    pub fn table_memory_bytes(&self) -> usize {
        self.table.as_ref().map_or(0, MsmTable::memory_bytes)
    }

    /// Number of generators (the maximum committable vector length).
    pub fn len(&self) -> usize {
        self.generators.len()
    }

    /// `true` if the key holds no generators.
    pub fn is_empty(&self) -> bool {
        self.generators.is_empty()
    }

    /// The generator points.
    pub fn generators(&self) -> &[Affine<C>] {
        &self.generators
    }

    /// The seed the generators were derived from.
    pub fn seed(&self) -> &[u8] {
        &self.seed
    }

    /// Extends the key in place so it covers vectors of length `n`
    /// (deterministic: the first generators never change). If a
    /// precomputation table is attached it is rebuilt over the extended
    /// generator set so it never goes stale.
    pub fn extend_to(&mut self, n: usize) {
        let before = self.generators.len();
        for i in self.generators.len()..n {
            self.generators
                .push(hash_to_curve::<C>(&self.seed, i as u64));
        }
        if self.generators.len() != before && self.table.is_some() {
            self.precompute();
        }
    }

    /// Commits to `values` (must not exceed the key length).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > self.len()`.
    pub fn commit(&self, values: &[Scalar<C>]) -> Commitment<C> {
        assert!(
            values.len() <= self.generators.len(),
            "vector length {} exceeds key length {}",
            values.len(),
            self.generators.len()
        );
        let mut msm = Msm::new(&self.generators[..values.len()]);
        if let Some(table) = &self.table {
            msm = msm.with_table(table);
        }
        Commitment {
            point: msm.eval(values),
        }
    }

    /// Commits using the naive MSM (models the paper's unoptimized
    /// implementation; used by the Fig. 3 benchmark).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > self.len()`.
    pub fn commit_naive(&self, values: &[Scalar<C>]) -> Commitment<C> {
        assert!(values.len() <= self.generators.len());
        Commitment {
            point: Msm::new(&self.generators[..values.len()])
                .with_strategy(Strategy::Naive)
                .eval(values),
        }
    }

    /// Verifies that `commitment` opens to `values` by recomputing.
    pub fn verify(&self, values: &[Scalar<C>], commitment: &Commitment<C>) -> bool {
        if values.len() > self.generators.len() {
            return false;
        }
        self.commit(values) == *commitment
    }

    /// Verifies many `(values, commitment)` pairs at once with a random
    /// linear combination: sample coefficients `rᵢ`, check that
    /// `commit(Σ rᵢ·vᵢ) = Σ rᵢ·Cᵢ`. One length-`n` MSM plus `k` short
    /// scalar multiplications replaces `k` full MSMs — the §VI
    /// "minimize the query load of the directory service" direction, since
    /// a directory can batch all partitions of a round into one check.
    ///
    /// Sound for adversarially chosen inputs: if any pair fails
    /// individually, the batched identity holds with probability ≤ 1/2¹²⁸
    /// over the coefficients, which are derived by hashing the full input
    /// (Fiat–Shamir style), so the prover cannot choose openings after
    /// seeing them.
    ///
    /// Returns `true` for an empty batch.
    pub fn batch_verify(&self, items: &[(&[Scalar<C>], &Commitment<C>)]) -> bool {
        if items.is_empty() {
            return true;
        }
        if items.iter().any(|(v, _)| v.len() > self.generators.len()) {
            return false;
        }
        // Derive the combination coefficients from a transcript of every
        // input so they are unpredictable to whoever produced the items.
        let mut transcript = Sha256::new();
        transcript.update(b"dfl-pedersen-batch");
        transcript.update(&self.seed);
        for (values, commitment) in items {
            transcript.update(&(values.len() as u64).to_be_bytes());
            for v in values.iter() {
                transcript.update(&v.to_be_bytes());
            }
            transcript.update(&commitment.to_bytes());
        }
        let root = transcript.finalize();
        let coeff = |i: usize| -> Scalar<C> {
            let mut h = Sha256::new();
            h.update(&root);
            h.update(&(i as u64).to_be_bytes());
            // A uniform 256-bit value reduced once; bias ≤ 2⁻¹²⁸ for the
            // secp group orders.
            Scalar::<C>::from_canonical(
                crate::bigint::U256::from_be_bytes(h.finalize())
                    .reduce_once(&<C::Scalar as crate::field::FieldParams>::MODULUS),
            )
        };

        let width = items.iter().map(|(v, _)| v.len()).max().unwrap_or(0);
        let mut combined_values = vec![Scalar::<C>::ZERO; width];
        let mut combined_commitment = Jacobian::<C>::identity();
        for (i, (values, commitment)) in items.iter().enumerate() {
            let r = coeff(i);
            for (acc, v) in combined_values.iter_mut().zip(values.iter()) {
                *acc += r * *v;
            }
            combined_commitment = combined_commitment.add(&commitment.point().to_affine().mul(&r));
        }
        self.commit(&combined_values)
            == Commitment {
                point: combined_commitment,
            }
    }
}

impl<C: Curve> fmt::Debug for CommitKey<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CommitKey<{}>(n={}{})",
            C::NAME,
            self.generators.len(),
            if self.table.is_some() {
                ", precomputed"
            } else {
                ""
            }
        )
    }
}

/// A Pedersen commitment: a single group element, constant size regardless
/// of the committed vector's length.
#[derive(Copy, Clone, PartialEq, Eq)]
pub struct Commitment<C: Curve> {
    point: Jacobian<C>,
}

impl<C: Curve> Commitment<C> {
    /// The commitment to the zero vector (the group identity).
    pub fn identity() -> Commitment<C> {
        Commitment {
            point: Jacobian::identity(),
        }
    }

    /// Homomorphic combination: `C(v₁) ⊕ C(v₂) = C(v₁ + v₂)`.
    pub fn combine(&self, rhs: &Commitment<C>) -> Commitment<C> {
        Commitment {
            point: self.point.add(&rhs.point),
        }
    }

    /// Combines (accumulates) many commitments; the "accumulated
    /// commitment" the directory service stores per partition (§IV-B).
    pub fn accumulate<'a, I: IntoIterator<Item = &'a Commitment<C>>>(iter: I) -> Commitment<C> {
        iter.into_iter()
            .fold(Commitment::identity(), |acc, c| acc.combine(c))
    }

    /// The underlying group element.
    pub fn point(&self) -> Jacobian<C> {
        self.point
    }

    /// Serializes as a 33-byte compressed point.
    pub fn to_bytes(&self) -> [u8; 33] {
        self.point.to_affine().to_compressed()
    }

    /// Deserializes from a 33-byte compressed point.
    pub fn from_bytes(bytes: &[u8; 33]) -> Option<Commitment<C>> {
        Affine::from_compressed(bytes).map(|p| Commitment {
            point: p.to_jacobian(),
        })
    }
}

impl<C: Curve> fmt::Debug for Commitment<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.to_bytes();
        write!(f, "Commitment<{}>(0x", C::NAME)?;
        for b in &bytes[..9] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

impl<C: Curve> Default for Commitment<C> {
    fn default() -> Self {
        Commitment::identity()
    }
}

/// Derives the `index`-th generator from `seed` by try-and-increment:
/// hash `(seed, index, counter)` to an x-coordinate candidate and take the
/// first that lies on the curve (even-y branch). Both curves have cofactor 1
/// so any curve point generates the full group.
fn hash_to_curve<C: Curve>(seed: &[u8], index: u64) -> Affine<C> {
    let mut counter: u64 = 0;
    loop {
        let mut h = Sha256::new();
        h.update(b"dfl-pedersen-generator");
        h.update(seed);
        h.update(&index.to_be_bytes());
        h.update(&counter.to_be_bytes());
        let digest = h.finalize();
        let candidate = U256::from_be_bytes(digest);
        // Rejection-sample x < p, then require x³ + ax + b to be a square.
        if candidate.const_cmp(&<C::Base as crate::field::FieldParams>::MODULUS) < 0 {
            let x = Fp::<C::Base>::from_canonical(candidate);
            let rhs = (x.square() + C::a()) * x + C::b();
            if let Some(y) = rhs.sqrt() {
                // Deterministic branch: take the even-y root.
                let y = if y.to_canonical().bit(0) { -y } else { y };
                return Affine::from_xy_unchecked(x, y);
            }
        }
        counter += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{Secp256k1, Secp256r1};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type K1 = Secp256k1;

    fn key(n: usize) -> CommitKey<K1> {
        CommitKey::setup(n, b"test-seed")
    }

    fn random_vector(n: usize, seed: u64) -> Vec<Scalar<K1>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Scalar::<K1>::random(&mut rng)).collect()
    }

    #[test]
    fn generators_on_curve_and_distinct() {
        let key = key(16);
        for g in key.generators() {
            assert!(g.is_on_curve());
            assert!(!g.is_identity());
        }
        for i in 0..16 {
            for j in (i + 1)..16 {
                assert_ne!(key.generators()[i], key.generators()[j]);
            }
        }
    }

    #[test]
    fn setup_is_deterministic() {
        let a = key(8);
        let b = key(8);
        assert_eq!(a.generators(), b.generators());
        let c = CommitKey::<K1>::setup(8, b"other-seed");
        assert_ne!(a.generators(), c.generators());
    }

    #[test]
    fn extend_preserves_prefix() {
        let mut small = key(4);
        let big = key(12);
        small.extend_to(12);
        assert_eq!(small.generators(), big.generators());
    }

    #[test]
    fn both_curves_work() {
        let k1 = CommitKey::<Secp256k1>::setup(4, b"s");
        let r1 = CommitKey::<Secp256r1>::setup(4, b"s");
        let v: Vec<_> = (1..=4u64).map(Scalar::<Secp256k1>::from_u64).collect();
        let w: Vec<_> = (1..=4u64).map(Scalar::<Secp256r1>::from_u64).collect();
        assert!(k1.verify(&v, &k1.commit(&v)));
        assert!(r1.verify(&w, &r1.commit(&w)));
    }

    #[test]
    fn commit_and_verify() {
        let key = key(32);
        let v = random_vector(32, 1);
        let c = key.commit(&v);
        assert!(key.verify(&v, &c));
        // Any single altered element breaks verification.
        let mut altered = v.clone();
        altered[17] += Scalar::<K1>::ONE;
        assert!(!key.verify(&altered, &c));
    }

    #[test]
    fn homomorphism() {
        let key = key(16);
        let v1 = random_vector(16, 2);
        let v2 = random_vector(16, 3);
        let sum: Vec<_> = v1.iter().zip(&v2).map(|(a, b)| *a + *b).collect();
        assert_eq!(key.commit(&v1).combine(&key.commit(&v2)), key.commit(&sum));
    }

    #[test]
    fn accumulate_many() {
        let key = key(8);
        let vectors: Vec<Vec<_>> = (0..5).map(|i| random_vector(8, 10 + i)).collect();
        let commits: Vec<_> = vectors.iter().map(|v| key.commit(v)).collect();
        let acc = Commitment::accumulate(&commits);
        let total: Vec<_> = (0..8)
            .map(|j| vectors.iter().map(|v| v[j]).sum::<Scalar<K1>>())
            .collect();
        assert_eq!(acc, key.commit(&total));
        assert!(key.verify(&total, &acc));
    }

    #[test]
    fn commit_naive_matches_fast() {
        let key = key(40);
        let v = random_vector(40, 4);
        assert_eq!(key.commit(&v), key.commit_naive(&v));
    }

    #[test]
    fn precomputed_commit_matches_plain() {
        let plain = key(48);
        let pre = CommitKey::<K1>::setup_precomputed(48, b"test-seed");
        assert!(pre.is_precomputed());
        assert!(pre.table_memory_bytes() > 0);
        for seed in 20..24 {
            let v = random_vector(48, seed);
            assert_eq!(plain.commit(&v), pre.commit(&v));
            assert!(pre.verify(&v, &plain.commit(&v)));
        }
        // Shorter-than-key vectors take the table prefix path.
        let short = random_vector(13, 70);
        assert_eq!(plain.commit(&short), pre.commit(&short));
    }

    #[test]
    fn precompute_is_idempotent_and_clearable() {
        let mut key = key(8);
        assert!(!key.is_precomputed());
        assert_eq!(key.table_memory_bytes(), 0);
        key.precompute();
        let v = random_vector(8, 71);
        let c = key.commit(&v);
        key.precompute();
        assert_eq!(key.commit(&v), c);
        key.clear_precomputed();
        assert!(!key.is_precomputed());
        assert_eq!(key.commit(&v), c);
    }

    #[test]
    fn extend_rebuilds_table() {
        let mut small = CommitKey::<K1>::setup_precomputed(4, b"test-seed");
        small.extend_to(12);
        assert!(small.is_precomputed());
        let v = random_vector(12, 72);
        assert_eq!(small.commit(&v), key(12).commit(&v));
    }

    #[test]
    fn equality_ignores_table() {
        let plain = key(6);
        let pre = CommitKey::<K1>::setup_precomputed(6, b"test-seed");
        assert_eq!(plain, pre);
        assert_ne!(plain, CommitKey::<K1>::setup(6, b"other-seed"));
    }

    #[test]
    fn batch_verify_uses_table_transparently() {
        let key = CommitKey::<K1>::setup_precomputed(8, b"test-seed");
        let vectors: Vec<Vec<_>> = (0..4).map(|i| random_vector(8, 80 + i)).collect();
        let commits: Vec<_> = vectors.iter().map(|v| key.commit(v)).collect();
        let items: Vec<(&[Scalar<K1>], &Commitment<K1>)> = vectors
            .iter()
            .map(Vec::as_slice)
            .zip(commits.iter())
            .collect();
        assert!(key.batch_verify(&items));
    }

    #[test]
    fn empty_and_zero_vectors() {
        let key = key(4);
        assert_eq!(key.commit(&[]), Commitment::identity());
        let zeros = vec![Scalar::<K1>::ZERO; 4];
        assert_eq!(key.commit(&zeros), Commitment::identity());
        assert!(key.verify(&zeros, &Commitment::identity()));
    }

    #[test]
    fn shorter_vector_allowed_longer_rejected() {
        let key = key(4);
        let v = random_vector(3, 5);
        assert!(key.verify(&v, &key.commit(&v)));
        let long = random_vector(5, 6);
        assert!(!key.verify(&long, &Commitment::identity()));
    }

    #[test]
    #[should_panic(expected = "exceeds key length")]
    fn commit_too_long_panics() {
        let key = key(2);
        key.commit(&random_vector(3, 7));
    }

    #[test]
    fn serialization_round_trip() {
        let key = key(8);
        let c = key.commit(&random_vector(8, 8));
        let decoded = Commitment::<K1>::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(decoded, c);
        let id = Commitment::<K1>::identity();
        assert_eq!(Commitment::<K1>::from_bytes(&id.to_bytes()).unwrap(), id);
    }

    #[test]
    fn batch_verify_accepts_valid_batches() {
        let key = key(8);
        let vectors: Vec<Vec<_>> = (0..5).map(|i| random_vector(8, 30 + i)).collect();
        let commits: Vec<_> = vectors.iter().map(|v| key.commit(v)).collect();
        let items: Vec<(&[Scalar<K1>], &Commitment<K1>)> = vectors
            .iter()
            .map(Vec::as_slice)
            .zip(commits.iter())
            .collect();
        assert!(key.batch_verify(&items));
        assert!(key.batch_verify(&[]), "empty batch is trivially valid");
    }

    #[test]
    fn batch_verify_rejects_one_bad_pair() {
        let key = key(8);
        let vectors: Vec<Vec<_>> = (0..5).map(|i| random_vector(8, 40 + i)).collect();
        let mut commits: Vec<_> = vectors.iter().map(|v| key.commit(v)).collect();
        // Corrupt exactly one commitment.
        commits[3] = commits[3].combine(&key.commit(&random_vector(8, 99)));
        let items: Vec<(&[Scalar<K1>], &Commitment<K1>)> = vectors
            .iter()
            .map(Vec::as_slice)
            .zip(commits.iter())
            .collect();
        assert!(!key.batch_verify(&items));
    }

    #[test]
    fn batch_verify_rejects_swapped_openings() {
        // Two valid pairs with their openings exchanged must fail even
        // though the multiset of commitments is unchanged.
        let key = key(4);
        let v1 = random_vector(4, 50);
        let v2 = random_vector(4, 51);
        let c1 = key.commit(&v1);
        let c2 = key.commit(&v2);
        assert!(key.batch_verify(&[(&v1, &c1), (&v2, &c2)]));
        assert!(!key.batch_verify(&[(&v1, &c2), (&v2, &c1)]));
    }

    #[test]
    fn batch_verify_mixed_lengths() {
        let key = key(8);
        let short = random_vector(3, 60);
        let long = random_vector(8, 61);
        let cs = key.commit(&short);
        let cl = key.commit(&long);
        assert!(key.batch_verify(&[(&short, &cs), (&long, &cl)]));
        // Over-long vector rejected outright.
        let too_long = random_vector(9, 62);
        assert!(!key.batch_verify(&[(&too_long, &cs)]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn prop_homomorphism_small_vectors(
            a in proptest::collection::vec(0u64..1_000_000, 6),
            b in proptest::collection::vec(0u64..1_000_000, 6),
        ) {
            let key = key(6);
            let va: Vec<_> = a.iter().map(|&x| Scalar::<K1>::from_u64(x)).collect();
            let vb: Vec<_> = b.iter().map(|&x| Scalar::<K1>::from_u64(x)).collect();
            let sum: Vec<_> = va.iter().zip(&vb).map(|(x, y)| *x + *y).collect();
            prop_assert_eq!(
                key.commit(&va).combine(&key.commit(&vb)),
                key.commit(&sum)
            );
        }

        #[test]
        fn prop_binding_on_distinct_vectors(
            a in proptest::collection::vec(0u64..1_000_000, 5),
            b in proptest::collection::vec(0u64..1_000_000, 5),
        ) {
            prop_assume!(a != b);
            let key = key(5);
            let va: Vec<_> = a.iter().map(|&x| Scalar::<K1>::from_u64(x)).collect();
            let vb: Vec<_> = b.iter().map(|&x| Scalar::<K1>::from_u64(x)).collect();
            prop_assert_ne!(key.commit(&va), key.commit(&vb));
        }
    }
}
