//! Pedersen vector commitments with homomorphic addition (§IV-A of the
//! paper).
//!
//! A commitment to a vector `v` is `C = Π hᵢ^(vᵢ)` where `{hᵢ}` are public
//! generators with unknown discrete-log relations. Written additively:
//! `C = Σ vᵢ·Hᵢ`. The scheme is *vector binding* under the discrete-log
//! assumption and *additively homomorphic*: `C(v₁) + C(v₂) = C(v₁ + v₂)`,
//! which is exactly the property the directory service exploits to verify
//! aggregation (§IV-B).
//!
//! ```
//! use dfl_crypto::curve::Secp256k1;
//! use dfl_crypto::pedersen::CommitKey;
//! use dfl_crypto::curve::Scalar;
//!
//! let key = CommitKey::<Secp256k1>::setup(4, b"example");
//! let v1: Vec<_> = (1..=4u64).map(Scalar::<Secp256k1>::from_u64).collect();
//! let v2: Vec<_> = (5..=8u64).map(Scalar::<Secp256k1>::from_u64).collect();
//! let sum: Vec<_> = v1.iter().zip(&v2).map(|(a, b)| *a + *b).collect();
//!
//! let c1 = key.commit(&v1);
//! let c2 = key.commit(&v2);
//! assert_eq!(c1.combine(&c2), key.commit(&sum));
//! assert!(key.verify(&sum, &c1.combine(&c2)));
//! ```

use std::fmt;

use crate::bigint::U256;
use crate::curve::{Affine, Curve, Jacobian, Scalar};
use crate::field::Fp;
use crate::msm::{Msm, MsmTable, Strategy};
use crate::sha256::Sha256;

/// Public parameters: a vector of generators with no known discrete-log
/// relations, derived from a seed by hash-to-curve (try-and-increment), so
/// any party can recompute and audit them ("nothing up my sleeve").
///
/// A key may additionally carry a fixed-base precomputation table
/// ([`CommitKey::precompute`]) that every subsequent [`CommitKey::commit`]
/// and [`CommitKey::batch_verify`] uses transparently. The table caches
/// windowed shifts of the generators (derived data only), so two keys
/// compare equal iff their generators and seed match, table or not.
#[derive(Clone)]
pub struct CommitKey<C: Curve> {
    generators: Vec<Affine<C>>,
    seed: Vec<u8>,
    table: Option<MsmTable<C>>,
}

impl<C: Curve> PartialEq for CommitKey<C> {
    fn eq(&self, other: &Self) -> bool {
        self.generators == other.generators && self.seed == other.seed
    }
}

impl<C: Curve> Eq for CommitKey<C> {}

impl<C: Curve> CommitKey<C> {
    /// Derives `n` generators from `seed`.
    pub fn setup(n: usize, seed: &[u8]) -> CommitKey<C> {
        let generators = (0..n).map(|i| hash_to_curve::<C>(seed, i as u64)).collect();
        CommitKey {
            generators,
            seed: seed.to_vec(),
            table: None,
        }
    }

    /// [`CommitKey::setup`] followed by [`CommitKey::precompute`]: the
    /// one-call constructor for long-lived task keys.
    pub fn setup_precomputed(n: usize, seed: &[u8]) -> CommitKey<C> {
        let mut key = CommitKey::setup(n, seed);
        key.precompute();
        key
    }

    /// Builds (or rebuilds) the fixed-base precomputation table over the
    /// current generators. Costs about one naive scalar multiplication per
    /// generator, paid once; afterwards each commitment is a single
    /// batch-affine bucket pass with no doubling chain. Idempotent.
    pub fn precompute(&mut self) {
        self.table = Some(MsmTable::build(&self.generators));
    }

    /// Drops the precomputation table (frees its memory; commits fall back
    /// to the table-free batch-affine path).
    pub fn clear_precomputed(&mut self) {
        self.table = None;
    }

    /// `true` if a precomputation table is attached.
    pub fn is_precomputed(&self) -> bool {
        self.table.is_some()
    }

    /// Approximate heap footprint of the precomputation table in bytes
    /// (0 when none is attached).
    pub fn table_memory_bytes(&self) -> usize {
        self.table.as_ref().map_or(0, MsmTable::memory_bytes)
    }

    /// Number of generators (the maximum committable vector length).
    pub fn len(&self) -> usize {
        self.generators.len()
    }

    /// `true` if the key holds no generators.
    pub fn is_empty(&self) -> bool {
        self.generators.is_empty()
    }

    /// The generator points.
    pub fn generators(&self) -> &[Affine<C>] {
        &self.generators
    }

    /// The seed the generators were derived from.
    pub fn seed(&self) -> &[u8] {
        &self.seed
    }

    /// Extends the key in place so it covers vectors of length `n`
    /// (deterministic: the first generators never change). If a
    /// precomputation table is attached it is rebuilt over the extended
    /// generator set so it never goes stale.
    pub fn extend_to(&mut self, n: usize) {
        let before = self.generators.len();
        for i in self.generators.len()..n {
            self.generators
                .push(hash_to_curve::<C>(&self.seed, i as u64));
        }
        if self.generators.len() != before && self.table.is_some() {
            self.precompute();
        }
    }

    /// Commits to `values` (must not exceed the key length).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > self.len()`.
    pub fn commit(&self, values: &[Scalar<C>]) -> Commitment<C> {
        assert!(
            values.len() <= self.generators.len(),
            "vector length {} exceeds key length {}",
            values.len(),
            self.generators.len()
        );
        let mut msm = Msm::new(&self.generators[..values.len()]);
        if let Some(table) = &self.table {
            msm = msm.with_table(table);
        }
        Commitment {
            point: msm.eval(values),
        }
    }

    /// Commits using the naive MSM (models the paper's unoptimized
    /// implementation; used by the Fig. 3 benchmark).
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > self.len()`.
    pub fn commit_naive(&self, values: &[Scalar<C>]) -> Commitment<C> {
        assert!(values.len() <= self.generators.len());
        Commitment {
            point: Msm::new(&self.generators[..values.len()])
                .with_strategy(Strategy::Naive)
                .eval(values),
        }
    }

    /// Verifies that `commitment` opens to `values` by recomputing.
    pub fn verify(&self, values: &[Scalar<C>], commitment: &Commitment<C>) -> bool {
        if values.len() > self.generators.len() {
            return false;
        }
        self.commit(values) == *commitment
    }

    /// Verifies many `(values, commitment)` pairs at once with a random
    /// linear combination. Convenience wrapper over [`CommitKey::batch_check`]
    /// for callers without binding bytes.
    ///
    /// Returns `true` for an empty batch.
    pub fn batch_verify(&self, items: &[(&[Scalar<C>], &Commitment<C>)]) -> bool {
        let entries: Vec<BatchEntry<'_, C>> = items
            .iter()
            .map(|(values, commitment)| BatchEntry::new(values, commitment))
            .collect();
        self.batch_check(&entries)
    }

    /// Verifies a whole batch of openings with one random linear
    /// combination: sample coefficients `rᵢ`, check that
    /// `commit(Σ rᵢ·vᵢ) = Σ rᵢ·Cᵢ`. One length-`width` MSM plus one
    /// `k`-point Pippenger MSM replaces `k` full MSMs — the §VI
    /// "minimize the query load of the directory service" direction, since
    /// a node can batch every opening of a round boundary into one check.
    ///
    /// Sound for adversarially chosen inputs: if any pair fails
    /// individually, the batched identity holds with probability ≤ 1/2¹²⁸
    /// over the coefficients, which are derived by hashing a transcript of
    /// the full input (Fiat–Shamir style), so the prover cannot choose
    /// openings after seeing them. Entries longer than the key can never
    /// verify and fail the batch outright.
    ///
    /// With the `rayon` feature the transcript hashing and the scalar
    /// accumulation shard across threads; field arithmetic is exact, so
    /// the result is bit-identical to the serial evaluation.
    ///
    /// Returns `true` for an empty batch.
    pub fn batch_check(&self, entries: &[BatchEntry<'_, C>]) -> bool {
        if entries.is_empty() {
            return true;
        }
        if entries
            .iter()
            .any(|e| e.values.len() > self.generators.len())
        {
            return false;
        }
        let coeffs = self.batch_coefficients(entries);
        let points = normalized_points(entries);
        let idxs: Vec<usize> = (0..entries.len()).collect();
        self.check_subset(entries, &coeffs, &points, &idxs)
    }

    /// Identifies exactly which entries of a failing batch do not open:
    /// returns the sorted indices whose `(values, commitment)` pair fails
    /// [`CommitKey::verify`], by bisecting the batch with the *same*
    /// Fiat–Shamir coefficients (derived once from the full transcript,
    /// reused per subrange so a cheating prover cannot adapt). Singleton
    /// ranges fall back to a direct [`CommitKey::verify`], so the culprit
    /// set matches sequential per-item verification exactly.
    ///
    /// Cost is one subrange check per bisection node on the path to each
    /// culprit: `O(b · log k)` extra MSMs for `b` culprits in a batch of
    /// `k`, and a single whole-batch check when everything is valid.
    pub fn batch_culprits(&self, entries: &[BatchEntry<'_, C>]) -> Vec<usize> {
        // Over-long vectors can never open; convict them directly and keep
        // the RLC domain to the checkable entries.
        let (overlong, in_range): (Vec<usize>, Vec<usize>) =
            (0..entries.len()).partition(|&i| entries[i].values.len() > self.generators.len());
        let mut culprits = overlong;
        if !in_range.is_empty() {
            let coeffs = self.batch_coefficients(entries);
            let points = normalized_points(entries);
            self.bisect(entries, &coeffs, &points, &in_range, &mut culprits);
        }
        culprits.sort_unstable();
        culprits
    }

    /// Fiat–Shamir coefficients for a batch: hash each entry to a leaf
    /// digest, chain the leaves (in index order) into a root, and derive
    /// `rᵢ = H(root ‖ i)` reduced into the scalar field. Leaves hash the
    /// binding bytes when present (cheaper than 32 B per scalar) and the
    /// scalar encodings otherwise; per-leaf hashing is independent, so it
    /// shards across threads while the root stays index-ordered and
    /// bit-identical.
    fn batch_coefficients(&self, entries: &[BatchEntry<'_, C>]) -> Vec<Scalar<C>> {
        let leaf = |e: &BatchEntry<'_, C>| -> [u8; 32] {
            let mut h = Sha256::new();
            h.update(&(e.values.len() as u64).to_be_bytes());
            match e.binding {
                // Domain-separate the two leaf encodings so a binding can
                // never collide with a scalar transcript.
                Some(bytes) => {
                    h.update(b"B");
                    h.update(&(bytes.len() as u64).to_be_bytes());
                    h.update(bytes);
                }
                None => {
                    h.update(b"S");
                    for v in e.values.iter() {
                        h.update(&v.to_be_bytes());
                    }
                }
            }
            h.update(&e.commitment.to_bytes());
            h.finalize()
        };
        let leaves = hash_leaves(entries, &leaf);

        let mut transcript = Sha256::new();
        transcript.update(b"dfl-pedersen-batch-v2");
        transcript.update(&self.seed);
        transcript.update(&(entries.len() as u64).to_be_bytes());
        for digest in &leaves {
            transcript.update(digest);
        }
        let root = transcript.finalize();

        (0..entries.len())
            .map(|i| {
                let mut h = Sha256::new();
                h.update(&root);
                h.update(&(i as u64).to_be_bytes());
                // A uniform 256-bit value reduced once; bias ≤ 2⁻¹²⁸ for
                // the secp group orders.
                Scalar::<C>::from_canonical(
                    crate::bigint::U256::from_be_bytes(h.finalize())
                        .reduce_once(&<C::Scalar as crate::field::FieldParams>::MODULUS),
                )
            })
            .collect()
    }

    /// One RLC check over the entries selected by `idxs`:
    /// `commit(Σ rᵢ·vᵢ) = Σ rᵢ·Cᵢ` with the precomputed coefficients.
    fn check_subset(
        &self,
        entries: &[BatchEntry<'_, C>],
        coeffs: &[Scalar<C>],
        points: &[Affine<C>],
        idxs: &[usize],
    ) -> bool {
        let width = idxs
            .iter()
            .map(|&i| entries[i].values.len())
            .max()
            .unwrap_or(0);
        let combined_values = accumulate_values(entries, coeffs, idxs, width);
        let sub_points: Vec<Affine<C>> = idxs.iter().map(|&i| points[i]).collect();
        let sub_coeffs: Vec<Scalar<C>> = idxs.iter().map(|&i| coeffs[i]).collect();
        let combined_commitment = Msm::new(&sub_points).eval(&sub_coeffs);
        self.commit(&combined_values)
            == Commitment {
                point: combined_commitment,
            }
    }

    /// Recursive culprit search: a passing subrange is vouched for by the
    /// RLC identity; a failing one splits in half. Coefficients are fixed
    /// up front, so subrange checks stay sound against adaptive provers.
    fn bisect(
        &self,
        entries: &[BatchEntry<'_, C>],
        coeffs: &[Scalar<C>],
        points: &[Affine<C>],
        idxs: &[usize],
        culprits: &mut Vec<usize>,
    ) {
        match idxs {
            [] => {}
            // Exact sequential semantics at the leaves: the verdict for a
            // single entry is a direct recommit-and-compare, never an RLC.
            &[i] => {
                let e = &entries[i];
                if !self.verify(e.values, e.commitment) {
                    culprits.push(i);
                }
            }
            _ => {
                if self.check_subset(entries, coeffs, points, idxs) {
                    return;
                }
                let mid = idxs.len() / 2;
                self.bisect(entries, coeffs, points, &idxs[..mid], culprits);
                self.bisect(entries, coeffs, points, &idxs[mid..], culprits);
            }
        }
    }
}

/// One opening queued for batched verification: a claimed value vector,
/// the commitment it should open, and optionally the canonical wire bytes
/// the values were decoded from.
///
/// When `binding` is set, the Fiat–Shamir transcript hashes those bytes
/// *instead of* the scalar encodings — for the protocol's 8-byte
/// fixed-point elements that is ~4× less hashing per element. Soundness
/// then requires the binding to *determine* the values: the caller must
/// derive `values` from `binding` by a fixed injective decoding (as
/// `decode_blob` does), never accept them separately.
#[derive(Copy, Clone, Debug)]
pub struct BatchEntry<'a, C: Curve> {
    values: &'a [Scalar<C>],
    commitment: &'a Commitment<C>,
    binding: Option<&'a [u8]>,
}

impl<'a, C: Curve> BatchEntry<'a, C> {
    /// An entry whose transcript leaf hashes the scalar encodings.
    pub fn new(values: &'a [Scalar<C>], commitment: &'a Commitment<C>) -> BatchEntry<'a, C> {
        BatchEntry {
            values,
            commitment,
            binding: None,
        }
    }

    /// An entry whose transcript leaf hashes `binding` in place of the
    /// scalars. `binding` must uniquely determine `values` (see the type
    /// docs); the commitment is always hashed alongside either way.
    pub fn with_binding(
        values: &'a [Scalar<C>],
        commitment: &'a Commitment<C>,
        binding: &'a [u8],
    ) -> BatchEntry<'a, C> {
        BatchEntry {
            values,
            commitment,
            binding: Some(binding),
        }
    }

    /// The claimed opening.
    pub fn values(&self) -> &'a [Scalar<C>] {
        self.values
    }

    /// The commitment the values should open.
    pub fn commitment(&self) -> &'a Commitment<C> {
        self.commitment
    }
}

/// Normalizes every entry's commitment to affine in one shared inversion,
/// so subrange checks can run a batch-affine Pippenger MSM over them.
fn normalized_points<C: Curve>(entries: &[BatchEntry<'_, C>]) -> Vec<Affine<C>> {
    let jacobians: Vec<Jacobian<C>> = entries.iter().map(|e| e.commitment.point()).collect();
    Jacobian::batch_normalize(&jacobians)
}

/// `Σ rᵢ·vᵢ` over the selected entries, as a `width`-element vector.
/// Sharded across threads under the `rayon` feature: field addition is
/// exact and associative, so any shard split merges to the same bits.
fn accumulate_values<C: Curve>(
    entries: &[BatchEntry<'_, C>],
    coeffs: &[Scalar<C>],
    idxs: &[usize],
    width: usize,
) -> Vec<Scalar<C>> {
    let serial = |idxs: &[usize]| -> Vec<Scalar<C>> {
        let mut acc = vec![Scalar::<C>::ZERO; width];
        for &i in idxs {
            let r = coeffs[i];
            for (slot, v) in acc.iter_mut().zip(entries[i].values.iter()) {
                *slot += r * *v;
            }
        }
        acc
    };
    #[cfg(feature = "rayon")]
    if idxs.len() >= 2 * crate::msm::MIN_PARALLEL_CHUNK {
        return join_merge(
            idxs,
            crate::msm::parallel_leaf_size(idxs.len()),
            &serial,
            &|mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
    }
    serial(idxs)
}

/// Hashes one transcript leaf per entry, in index order. Leaves are
/// independent, so under the `rayon` feature they shard across threads;
/// the output vector order (and thus the root) is identical either way.
fn hash_leaves<C: Curve>(
    entries: &[BatchEntry<'_, C>],
    leaf: &(dyn Fn(&BatchEntry<'_, C>) -> [u8; 32] + Sync),
) -> Vec<[u8; 32]> {
    let serial =
        |chunk: &[BatchEntry<'_, C>]| -> Vec<[u8; 32]> { chunk.iter().map(leaf).collect() };
    #[cfg(feature = "rayon")]
    if entries.len() >= 2 * crate::msm::MIN_PARALLEL_CHUNK {
        return join_merge(
            entries,
            crate::msm::parallel_leaf_size(entries.len()),
            &serial,
            &|mut a, b| {
                a.extend(b);
                a
            },
        );
    }
    serial(entries)
}

/// Recursive fork/join over a slice: leaves evaluate serially, parents
/// merge `(left, right)` in a fixed order — same shape as the MSM
/// reduction, generic over the accumulator type.
#[cfg(feature = "rayon")]
fn join_merge<T, R, E, M>(items: &[T], leaf: usize, eval: &E, merge: &M) -> R
where
    T: Sync,
    R: Send,
    E: Fn(&[T]) -> R + Sync,
    M: Fn(R, R) -> R + Sync,
{
    if items.len() <= leaf {
        return eval(items);
    }
    let mid = items.len() / 2;
    let (left, right) = rayon::join(
        || join_merge(&items[..mid], leaf, eval, merge),
        || join_merge(&items[mid..], leaf, eval, merge),
    );
    merge(left, right)
}

impl<C: Curve> fmt::Debug for CommitKey<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CommitKey<{}>(n={}{})",
            C::NAME,
            self.generators.len(),
            if self.table.is_some() {
                ", precomputed"
            } else {
                ""
            }
        )
    }
}

/// A Pedersen commitment: a single group element, constant size regardless
/// of the committed vector's length.
#[derive(Copy, Clone, PartialEq, Eq)]
pub struct Commitment<C: Curve> {
    point: Jacobian<C>,
}

impl<C: Curve> Commitment<C> {
    /// The commitment to the zero vector (the group identity).
    pub fn identity() -> Commitment<C> {
        Commitment {
            point: Jacobian::identity(),
        }
    }

    /// Homomorphic combination: `C(v₁) ⊕ C(v₂) = C(v₁ + v₂)`.
    pub fn combine(&self, rhs: &Commitment<C>) -> Commitment<C> {
        Commitment {
            point: self.point.add(&rhs.point),
        }
    }

    /// Combines (accumulates) many commitments; the "accumulated
    /// commitment" the directory service stores per partition (§IV-B).
    pub fn accumulate<'a, I: IntoIterator<Item = &'a Commitment<C>>>(iter: I) -> Commitment<C> {
        iter.into_iter()
            .fold(Commitment::identity(), |acc, c| acc.combine(c))
    }

    /// Wraps a raw group element as a commitment. Callers that already
    /// hold a point — e.g. a homomorphic single-generator bump
    /// `Δ·Hₖ` computed with [`crate::msm::Msm`] — can build the combined
    /// commitment without re-running a full commit.
    pub fn from_point(point: Jacobian<C>) -> Commitment<C> {
        Commitment { point }
    }

    /// The underlying group element.
    pub fn point(&self) -> Jacobian<C> {
        self.point
    }

    /// Serializes as a 33-byte compressed point.
    pub fn to_bytes(&self) -> [u8; 33] {
        self.point.to_affine().to_compressed()
    }

    /// Deserializes from a 33-byte compressed point.
    pub fn from_bytes(bytes: &[u8; 33]) -> Option<Commitment<C>> {
        Affine::from_compressed(bytes).map(|p| Commitment {
            point: p.to_jacobian(),
        })
    }
}

impl<C: Curve> fmt::Debug for Commitment<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bytes = self.to_bytes();
        write!(f, "Commitment<{}>(0x", C::NAME)?;
        for b in &bytes[..9] {
            write!(f, "{b:02x}")?;
        }
        write!(f, "…)")
    }
}

impl<C: Curve> Default for Commitment<C> {
    fn default() -> Self {
        Commitment::identity()
    }
}

/// Derives the `index`-th generator from `seed` by try-and-increment:
/// hash `(seed, index, counter)` to an x-coordinate candidate and take the
/// first that lies on the curve (even-y branch). Both curves have cofactor 1
/// so any curve point generates the full group.
fn hash_to_curve<C: Curve>(seed: &[u8], index: u64) -> Affine<C> {
    let mut counter: u64 = 0;
    loop {
        let mut h = Sha256::new();
        h.update(b"dfl-pedersen-generator");
        h.update(seed);
        h.update(&index.to_be_bytes());
        h.update(&counter.to_be_bytes());
        let digest = h.finalize();
        let candidate = U256::from_be_bytes(digest);
        // Rejection-sample x < p, then require x³ + ax + b to be a square.
        if candidate.const_cmp(&<C::Base as crate::field::FieldParams>::MODULUS) < 0 {
            let x = Fp::<C::Base>::from_canonical(candidate);
            let rhs = (x.square() + C::a()) * x + C::b();
            if let Some(y) = rhs.sqrt() {
                // Deterministic branch: take the even-y root.
                let y = if y.to_canonical().bit(0) { -y } else { y };
                return Affine::from_xy_unchecked(x, y);
            }
        }
        counter += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{Secp256k1, Secp256r1};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type K1 = Secp256k1;

    fn key(n: usize) -> CommitKey<K1> {
        CommitKey::setup(n, b"test-seed")
    }

    fn random_vector(n: usize, seed: u64) -> Vec<Scalar<K1>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| Scalar::<K1>::random(&mut rng)).collect()
    }

    #[test]
    fn generators_on_curve_and_distinct() {
        let key = key(16);
        for g in key.generators() {
            assert!(g.is_on_curve());
            assert!(!g.is_identity());
        }
        for i in 0..16 {
            for j in (i + 1)..16 {
                assert_ne!(key.generators()[i], key.generators()[j]);
            }
        }
    }

    #[test]
    fn setup_is_deterministic() {
        let a = key(8);
        let b = key(8);
        assert_eq!(a.generators(), b.generators());
        let c = CommitKey::<K1>::setup(8, b"other-seed");
        assert_ne!(a.generators(), c.generators());
    }

    #[test]
    fn extend_preserves_prefix() {
        let mut small = key(4);
        let big = key(12);
        small.extend_to(12);
        assert_eq!(small.generators(), big.generators());
    }

    #[test]
    fn both_curves_work() {
        let k1 = CommitKey::<Secp256k1>::setup(4, b"s");
        let r1 = CommitKey::<Secp256r1>::setup(4, b"s");
        let v: Vec<_> = (1..=4u64).map(Scalar::<Secp256k1>::from_u64).collect();
        let w: Vec<_> = (1..=4u64).map(Scalar::<Secp256r1>::from_u64).collect();
        assert!(k1.verify(&v, &k1.commit(&v)));
        assert!(r1.verify(&w, &r1.commit(&w)));
    }

    #[test]
    fn commit_and_verify() {
        let key = key(32);
        let v = random_vector(32, 1);
        let c = key.commit(&v);
        assert!(key.verify(&v, &c));
        // Any single altered element breaks verification.
        let mut altered = v.clone();
        altered[17] += Scalar::<K1>::ONE;
        assert!(!key.verify(&altered, &c));
    }

    #[test]
    fn homomorphism() {
        let key = key(16);
        let v1 = random_vector(16, 2);
        let v2 = random_vector(16, 3);
        let sum: Vec<_> = v1.iter().zip(&v2).map(|(a, b)| *a + *b).collect();
        assert_eq!(key.commit(&v1).combine(&key.commit(&v2)), key.commit(&sum));
    }

    #[test]
    fn accumulate_many() {
        let key = key(8);
        let vectors: Vec<Vec<_>> = (0..5).map(|i| random_vector(8, 10 + i)).collect();
        let commits: Vec<_> = vectors.iter().map(|v| key.commit(v)).collect();
        let acc = Commitment::accumulate(&commits);
        let total: Vec<_> = (0..8)
            .map(|j| vectors.iter().map(|v| v[j]).sum::<Scalar<K1>>())
            .collect();
        assert_eq!(acc, key.commit(&total));
        assert!(key.verify(&total, &acc));
    }

    #[test]
    fn commit_naive_matches_fast() {
        let key = key(40);
        let v = random_vector(40, 4);
        assert_eq!(key.commit(&v), key.commit_naive(&v));
    }

    #[test]
    fn precomputed_commit_matches_plain() {
        let plain = key(48);
        let pre = CommitKey::<K1>::setup_precomputed(48, b"test-seed");
        assert!(pre.is_precomputed());
        assert!(pre.table_memory_bytes() > 0);
        for seed in 20..24 {
            let v = random_vector(48, seed);
            assert_eq!(plain.commit(&v), pre.commit(&v));
            assert!(pre.verify(&v, &plain.commit(&v)));
        }
        // Shorter-than-key vectors take the table prefix path.
        let short = random_vector(13, 70);
        assert_eq!(plain.commit(&short), pre.commit(&short));
    }

    #[test]
    fn precompute_is_idempotent_and_clearable() {
        let mut key = key(8);
        assert!(!key.is_precomputed());
        assert_eq!(key.table_memory_bytes(), 0);
        key.precompute();
        let v = random_vector(8, 71);
        let c = key.commit(&v);
        key.precompute();
        assert_eq!(key.commit(&v), c);
        key.clear_precomputed();
        assert!(!key.is_precomputed());
        assert_eq!(key.commit(&v), c);
    }

    #[test]
    fn extend_rebuilds_table() {
        let mut small = CommitKey::<K1>::setup_precomputed(4, b"test-seed");
        small.extend_to(12);
        assert!(small.is_precomputed());
        let v = random_vector(12, 72);
        assert_eq!(small.commit(&v), key(12).commit(&v));
    }

    #[test]
    fn equality_ignores_table() {
        let plain = key(6);
        let pre = CommitKey::<K1>::setup_precomputed(6, b"test-seed");
        assert_eq!(plain, pre);
        assert_ne!(plain, CommitKey::<K1>::setup(6, b"other-seed"));
    }

    #[test]
    fn batch_verify_uses_table_transparently() {
        let key = CommitKey::<K1>::setup_precomputed(8, b"test-seed");
        let vectors: Vec<Vec<_>> = (0..4).map(|i| random_vector(8, 80 + i)).collect();
        let commits: Vec<_> = vectors.iter().map(|v| key.commit(v)).collect();
        let items: Vec<(&[Scalar<K1>], &Commitment<K1>)> = vectors
            .iter()
            .map(Vec::as_slice)
            .zip(commits.iter())
            .collect();
        assert!(key.batch_verify(&items));
    }

    #[test]
    fn empty_and_zero_vectors() {
        let key = key(4);
        assert_eq!(key.commit(&[]), Commitment::identity());
        let zeros = vec![Scalar::<K1>::ZERO; 4];
        assert_eq!(key.commit(&zeros), Commitment::identity());
        assert!(key.verify(&zeros, &Commitment::identity()));
    }

    #[test]
    fn shorter_vector_allowed_longer_rejected() {
        let key = key(4);
        let v = random_vector(3, 5);
        assert!(key.verify(&v, &key.commit(&v)));
        let long = random_vector(5, 6);
        assert!(!key.verify(&long, &Commitment::identity()));
    }

    #[test]
    #[should_panic(expected = "exceeds key length")]
    fn commit_too_long_panics() {
        let key = key(2);
        key.commit(&random_vector(3, 7));
    }

    #[test]
    fn serialization_round_trip() {
        let key = key(8);
        let c = key.commit(&random_vector(8, 8));
        let decoded = Commitment::<K1>::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(decoded, c);
        let id = Commitment::<K1>::identity();
        assert_eq!(Commitment::<K1>::from_bytes(&id.to_bytes()).unwrap(), id);
    }

    #[test]
    fn batch_verify_accepts_valid_batches() {
        let key = key(8);
        let vectors: Vec<Vec<_>> = (0..5).map(|i| random_vector(8, 30 + i)).collect();
        let commits: Vec<_> = vectors.iter().map(|v| key.commit(v)).collect();
        let items: Vec<(&[Scalar<K1>], &Commitment<K1>)> = vectors
            .iter()
            .map(Vec::as_slice)
            .zip(commits.iter())
            .collect();
        assert!(key.batch_verify(&items));
        assert!(key.batch_verify(&[]), "empty batch is trivially valid");
    }

    #[test]
    fn batch_verify_rejects_one_bad_pair() {
        let key = key(8);
        let vectors: Vec<Vec<_>> = (0..5).map(|i| random_vector(8, 40 + i)).collect();
        let mut commits: Vec<_> = vectors.iter().map(|v| key.commit(v)).collect();
        // Corrupt exactly one commitment.
        commits[3] = commits[3].combine(&key.commit(&random_vector(8, 99)));
        let items: Vec<(&[Scalar<K1>], &Commitment<K1>)> = vectors
            .iter()
            .map(Vec::as_slice)
            .zip(commits.iter())
            .collect();
        assert!(!key.batch_verify(&items));
    }

    #[test]
    fn batch_verify_rejects_swapped_openings() {
        // Two valid pairs with their openings exchanged must fail even
        // though the multiset of commitments is unchanged.
        let key = key(4);
        let v1 = random_vector(4, 50);
        let v2 = random_vector(4, 51);
        let c1 = key.commit(&v1);
        let c2 = key.commit(&v2);
        assert!(key.batch_verify(&[(&v1, &c1), (&v2, &c2)]));
        assert!(!key.batch_verify(&[(&v1, &c2), (&v2, &c1)]));
    }

    #[test]
    fn batch_verify_mixed_lengths() {
        let key = key(8);
        let short = random_vector(3, 60);
        let long = random_vector(8, 61);
        let cs = key.commit(&short);
        let cl = key.commit(&long);
        assert!(key.batch_verify(&[(&short, &cs), (&long, &cl)]));
        // Over-long vector rejected outright.
        let too_long = random_vector(9, 62);
        assert!(!key.batch_verify(&[(&too_long, &cs)]));
    }

    /// Builds a batch of `n` openings over `key`, then corrupts the
    /// commitments at `bad` (either by offsetting the commitment or by
    /// perturbing a value, alternating) so sequential verification fails
    /// at exactly those indices.
    fn corrupted_batch(
        key: &CommitKey<K1>,
        n: usize,
        bad: &[usize],
        seed: u64,
    ) -> (Vec<Vec<Scalar<K1>>>, Vec<Commitment<K1>>) {
        let vectors: Vec<Vec<_>> = (0..n)
            .map(|i| random_vector(key.len(), seed + i as u64))
            .collect();
        let mut commits: Vec<_> = vectors.iter().map(|v| key.commit(v)).collect();
        for (k, &i) in bad.iter().enumerate() {
            if k % 2 == 0 {
                commits[i] =
                    commits[i].combine(&key.commit(&random_vector(key.len(), 500 + k as u64)));
            } else {
                let mut altered = vectors[i].clone();
                altered[0] += Scalar::<K1>::ONE;
                commits[i] = key.commit(&altered);
            }
        }
        (vectors, commits)
    }

    fn entries<'a, C: crate::curve::Curve>(
        vectors: &'a [Vec<Scalar<C>>],
        commits: &'a [Commitment<C>],
    ) -> Vec<BatchEntry<'a, C>> {
        vectors
            .iter()
            .zip(commits)
            .map(|(v, c)| BatchEntry::new(v, c))
            .collect()
    }

    #[test]
    fn batch_check_matches_batch_verify_semantics() {
        let key = key(8);
        let (vectors, commits) = corrupted_batch(&key, 6, &[], 100);
        assert!(key.batch_check(&entries(&vectors, &commits)));
        let (vectors, commits) = corrupted_batch(&key, 6, &[2], 110);
        assert!(!key.batch_check(&entries(&vectors, &commits)));
        assert!(key.batch_check(&[]), "empty batch is trivially valid");
    }

    #[test]
    fn batch_culprits_empty_when_all_valid() {
        let key = key(8);
        let (vectors, commits) = corrupted_batch(&key, 7, &[], 120);
        assert!(key.batch_culprits(&entries(&vectors, &commits)).is_empty());
    }

    #[test]
    fn batch_culprits_names_exact_offenders() {
        let key = key(8);
        for bad in [
            vec![0],
            vec![4],
            vec![1, 5],
            vec![0, 3, 6],
            (0..7).collect(),
        ] {
            let (vectors, commits) = corrupted_batch(&key, 7, &bad, 130);
            let found = key.batch_culprits(&entries(&vectors, &commits));
            assert_eq!(found, bad, "culprit set must match the corrupted set");
        }
    }

    #[test]
    fn batch_culprits_flags_overlong_entries() {
        let key = key(4);
        let good = random_vector(4, 140);
        let cg = key.commit(&good);
        let long = random_vector(5, 141);
        let e = [BatchEntry::new(&good, &cg), BatchEntry::new(&long, &cg)];
        assert!(!key.batch_check(&e));
        assert_eq!(key.batch_culprits(&e), vec![1]);
    }

    #[test]
    fn binding_entries_accept_and_reject() {
        // Binding bytes replace the scalar transcript but the verdicts and
        // the culprit sets are unchanged.
        let key = key(6);
        let (vectors, mut commits) = corrupted_batch(&key, 5, &[], 150);
        let bindings: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 48]).collect();
        fn make<'a>(
            vectors: &'a [Vec<Scalar<K1>>],
            commits: &'a [Commitment<K1>],
            bindings: &'a [Vec<u8>],
        ) -> Vec<BatchEntry<'a, K1>> {
            vectors
                .iter()
                .zip(commits)
                .zip(bindings)
                .map(|((v, c), b)| BatchEntry::with_binding(v, c, b))
                .collect()
        }
        assert!(key.batch_check(&make(&vectors, &commits, &bindings)));
        commits[3] = commits[3].combine(&key.commit(&random_vector(6, 160)));
        assert!(!key.batch_check(&make(&vectors, &commits, &bindings)));
        assert_eq!(
            key.batch_culprits(&make(&vectors, &commits, &bindings)),
            vec![3]
        );
    }

    #[test]
    fn batch_culprits_both_curves() {
        let r1 = CommitKey::<Secp256r1>::setup(5, b"r1-batch");
        let mut rng = StdRng::seed_from_u64(170);
        let vectors: Vec<Vec<_>> = (0..4)
            .map(|_| {
                (0..5)
                    .map(|_| Scalar::<Secp256r1>::random(&mut rng))
                    .collect()
            })
            .collect();
        let mut commits: Vec<_> = vectors.iter().map(|v| r1.commit(v)).collect();
        commits[2] = commits[2].combine(&r1.commit(&vectors[0]));
        let e: Vec<BatchEntry<'_, Secp256r1>> = vectors
            .iter()
            .zip(&commits)
            .map(|(v, c)| BatchEntry::new(v, c))
            .collect();
        assert!(!r1.batch_check(&e));
        assert_eq!(r1.batch_culprits(&e), vec![2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The batched verdict and the bisected culprit set must match
        /// sequential per-item verification exactly, over randomized
        /// good/bad mixes. CI runs this under both the default and the
        /// `rayon` features, covering the serial and sharded paths.
        #[test]
        fn prop_batch_matches_sequential(
            len in 1usize..12,
            mask in 0u64..4096,
            seed in 0u64..1_000,
        ) {
            let key = key(6);
            let bad: Vec<usize> = (0..len).filter(|i| mask >> i & 1 == 1).collect();
            let (vectors, commits) = corrupted_batch(&key, len, &bad, 1_000 + seed);
            let sequential: Vec<usize> = vectors
                .iter()
                .zip(&commits)
                .enumerate()
                .filter(|(_, (v, c))| !key.verify(v, c))
                .map(|(i, _)| i)
                .collect();
            let e = entries(&vectors, &commits);
            prop_assert_eq!(key.batch_check(&e), sequential.is_empty());
            prop_assert_eq!(key.batch_culprits(&e), sequential);
        }

        #[test]
        fn prop_homomorphism_small_vectors(
            a in proptest::collection::vec(0u64..1_000_000, 6),
            b in proptest::collection::vec(0u64..1_000_000, 6),
        ) {
            let key = key(6);
            let va: Vec<_> = a.iter().map(|&x| Scalar::<K1>::from_u64(x)).collect();
            let vb: Vec<_> = b.iter().map(|&x| Scalar::<K1>::from_u64(x)).collect();
            let sum: Vec<_> = va.iter().zip(&vb).map(|(x, y)| *x + *y).collect();
            prop_assert_eq!(
                key.commit(&va).combine(&key.commit(&vb)),
                key.commit(&sum)
            );
        }

        #[test]
        fn prop_binding_on_distinct_vectors(
            a in proptest::collection::vec(0u64..1_000_000, 5),
            b in proptest::collection::vec(0u64..1_000_000, 5),
        ) {
            prop_assume!(a != b);
            let key = key(5);
            let va: Vec<_> = a.iter().map(|&x| Scalar::<K1>::from_u64(x)).collect();
            let vb: Vec<_> = b.iter().map(|&x| Scalar::<K1>::from_u64(x)).collect();
            prop_assert_ne!(key.commit(&va), key.commit(&vb));
        }
    }
}
