//! Schnorr signatures over the crate's curves.
//!
//! The paper's directory service accumulates each trainer's gradient
//! commitment and verifies aggregators' updates against the accumulation
//! (§IV-B). That defence assumes registrations really come from the
//! claimed trainer — otherwise a malicious aggregator could register a
//! forged commitment under a trainer's name and make its own doctored
//! update "verify". Directory registrations are therefore signed; this
//! module provides the signature scheme (classic Schnorr, the natural
//! companion to Pedersen commitments since both live in the same group).
//!
//! Signing: `R = k·G`, `e = H(R ‖ P ‖ m)`, `s = k + e·x`.
//! Verifying: `s·G == R + e·P`.

use rand::Rng;

use crate::bigint::U256;
use crate::curve::{Affine, Curve, Scalar};
use crate::field::FieldParams;
use crate::sha256::Sha256;

/// A signing key: a scalar `x` with public point `P = x·G`.
#[derive(Clone)]
pub struct SigningKey<C: Curve> {
    secret: Scalar<C>,
    public: Affine<C>,
}

/// A verification key (curve point).
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct VerifyingKey<C: Curve>(Affine<C>);

/// A Schnorr signature `(R, s)`, 97 bytes serialized.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Signature<C: Curve> {
    nonce_point: Affine<C>,
    s: Scalar<C>,
}

impl<C: Curve> SigningKey<C> {
    /// Generates a key from a random scalar.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> SigningKey<C> {
        loop {
            let secret = Scalar::<C>::random(rng);
            if !secret.is_zero() {
                return SigningKey::from_secret(secret);
            }
        }
    }

    /// Derives a key deterministically from a seed and an identity — how
    /// task participants get keys everyone can recompute the public half
    /// of (the bootstrapper distributes/validates them out of band).
    pub fn derive(seed: &[u8], identity: u64) -> SigningKey<C> {
        let mut counter = 0u64;
        loop {
            let mut h = Sha256::new();
            h.update(b"dfl-schnorr-key");
            h.update(seed);
            h.update(&identity.to_be_bytes());
            h.update(&counter.to_be_bytes());
            let candidate = U256::from_be_bytes(h.finalize());
            if candidate.const_cmp(&<C::Scalar as FieldParams>::MODULUS) < 0 && !candidate.is_zero()
            {
                return SigningKey::from_secret(Scalar::<C>::from_canonical(candidate));
            }
            counter += 1;
        }
    }

    /// Wraps an existing secret scalar.
    ///
    /// # Panics
    ///
    /// Panics on a zero secret.
    pub fn from_secret(secret: Scalar<C>) -> SigningKey<C> {
        assert!(!secret.is_zero(), "zero signing key");
        let public = C::generator().mul(&secret).to_affine();
        SigningKey { secret, public }
    }

    /// The matching verification key.
    pub fn verifying_key(&self) -> VerifyingKey<C> {
        VerifyingKey(self.public)
    }

    /// Signs a message (deterministic nonce, RFC-6979 style: the nonce is
    /// a hash of the secret and the message, so no RNG is needed and nonce
    /// reuse across distinct messages is impossible).
    pub fn sign(&self, message: &[u8]) -> Signature<C> {
        let mut counter = 0u64;
        let nonce = loop {
            let mut h = Sha256::new();
            h.update(b"dfl-schnorr-nonce");
            h.update(&self.secret.to_be_bytes());
            h.update(message);
            h.update(&counter.to_be_bytes());
            let candidate = U256::from_be_bytes(h.finalize());
            if candidate.const_cmp(&<C::Scalar as FieldParams>::MODULUS) < 0 && !candidate.is_zero()
            {
                break Scalar::<C>::from_canonical(candidate);
            }
            counter += 1;
        };
        let nonce_point = C::generator().mul(&nonce).to_affine();
        let e = challenge::<C>(&nonce_point, &self.public, message);
        let s = nonce + e * self.secret;
        Signature { nonce_point, s }
    }
}

impl<C: Curve> std::fmt::Debug for SigningKey<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print the secret.
        write!(f, "SigningKey<{}>(public: {:?})", C::NAME, self.public)
    }
}

impl<C: Curve> VerifyingKey<C> {
    /// The underlying point.
    pub fn point(&self) -> Affine<C> {
        self.0
    }

    /// Serializes as a 33-byte compressed point.
    pub fn to_bytes(&self) -> [u8; 33] {
        self.0.to_compressed()
    }

    /// Deserializes; `None` for malformed or off-curve input.
    pub fn from_bytes(bytes: &[u8; 33]) -> Option<VerifyingKey<C>> {
        let point = Affine::from_compressed(bytes)?;
        if point.is_identity() {
            return None;
        }
        Some(VerifyingKey(point))
    }

    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature<C>) -> bool {
        if signature.nonce_point.is_identity() {
            return false;
        }
        let e = challenge::<C>(&signature.nonce_point, &self.0, message);
        let lhs = C::generator().mul(&signature.s);
        let rhs = signature.nonce_point.to_jacobian().add(&self.0.mul(&e));
        lhs == rhs
    }
}

impl<C: Curve> Signature<C> {
    /// Serializes as `R (33 bytes compressed) ‖ s (32 bytes)`.
    pub fn to_bytes(&self) -> [u8; 65] {
        let mut out = [0u8; 65];
        out[..33].copy_from_slice(&self.nonce_point.to_compressed());
        out[33..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Deserializes; `None` for malformed input.
    pub fn from_bytes(bytes: &[u8; 65]) -> Option<Signature<C>> {
        let mut r = [0u8; 33];
        r.copy_from_slice(&bytes[..33]);
        let nonce_point = Affine::from_compressed(&r)?;
        let mut sb = [0u8; 32];
        sb.copy_from_slice(&bytes[33..]);
        let s = crate::field::Fp::from_be_bytes(sb)?;
        Some(Signature { nonce_point, s })
    }
}

/// Fiat–Shamir challenge `e = H(R ‖ P ‖ m)` reduced into the scalar field.
fn challenge<C: Curve>(nonce_point: &Affine<C>, public: &Affine<C>, message: &[u8]) -> Scalar<C> {
    let mut h = Sha256::new();
    h.update(b"dfl-schnorr-challenge");
    h.update(&nonce_point.to_compressed());
    h.update(&public.to_compressed());
    h.update(message);
    let digest = U256::from_be_bytes(h.finalize());
    Scalar::<C>::from_canonical(digest.reduce_once(&<C::Scalar as FieldParams>::MODULUS))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{Secp256k1, Secp256r1};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type K = SigningKey<Secp256k1>;

    #[test]
    fn sign_verify_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let key = K::generate(&mut rng);
        let sig = key.sign(b"register gradient p0 i3");
        assert!(key.verifying_key().verify(b"register gradient p0 i3", &sig));
    }

    #[test]
    fn wrong_message_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let key = K::generate(&mut rng);
        let sig = key.sign(b"message A");
        assert!(!key.verifying_key().verify(b"message B", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let key = K::generate(&mut rng);
        let other = K::generate(&mut rng);
        let sig = key.sign(b"msg");
        assert!(!other.verifying_key().verify(b"msg", &sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        let key = K::generate(&mut rng);
        let sig = key.sign(b"msg");
        let tampered = Signature {
            nonce_point: sig.nonce_point,
            s: sig.s + Scalar::<Secp256k1>::ONE,
        };
        assert!(!key.verifying_key().verify(b"msg", &tampered));
    }

    #[test]
    fn deterministic_signing() {
        let key = K::derive(b"task-seed", 7);
        assert_eq!(key.sign(b"m").to_bytes(), key.sign(b"m").to_bytes());
        assert_ne!(key.sign(b"m").to_bytes(), key.sign(b"n").to_bytes());
    }

    #[test]
    fn derive_is_deterministic_per_identity() {
        let a = K::derive(b"seed", 1);
        let b = K::derive(b"seed", 1);
        let c = K::derive(b"seed", 2);
        assert_eq!(a.verifying_key(), b.verifying_key());
        assert_ne!(a.verifying_key(), c.verifying_key());
    }

    #[test]
    fn serialization_round_trips() {
        let key = K::derive(b"s", 0);
        let sig = key.sign(b"payload");
        let sig2 = Signature::<Secp256k1>::from_bytes(&sig.to_bytes()).unwrap();
        assert_eq!(sig, sig2);
        let vk = key.verifying_key();
        let vk2 = VerifyingKey::<Secp256k1>::from_bytes(&vk.to_bytes()).unwrap();
        assert_eq!(vk, vk2);
        assert!(vk2.verify(b"payload", &sig2));
    }

    #[test]
    fn identity_public_key_rejected() {
        let id = Affine::<Secp256k1>::identity().to_compressed();
        assert!(VerifyingKey::<Secp256k1>::from_bytes(&id).is_none());
    }

    #[test]
    fn works_on_both_curves() {
        let k1 = SigningKey::<Secp256k1>::derive(b"x", 0);
        let r1 = SigningKey::<Secp256r1>::derive(b"x", 0);
        assert!(k1.verifying_key().verify(b"m", &k1.sign(b"m")));
        assert!(r1.verifying_key().verify(b"m", &r1.sign(b"m")));
    }

    #[test]
    fn signature_not_valid_for_other_identity_message() {
        // Binding to the public key: a signature by A does not verify
        // under B even for the same message and nonce point structure.
        let a = K::derive(b"task", 1);
        let b = K::derive(b"task", 2);
        let sig = a.sign(b"register");
        assert!(!b.verifying_key().verify(b"register", &sig));
    }
}
