//! Prime-field arithmetic in Montgomery form, generic over the modulus.
//!
//! Both secp256k1 and secp256r1 need a base field (coordinates) and a scalar
//! field (exponents); all four are instances of [`Fp`] with a different
//! [`FieldParams`] marker type. All Montgomery pre-computation (R, R², −p⁻¹
//! mod 2⁶⁴) is derived from the modulus at compile time, so defining a new
//! field is a three-line impl.

use std::fmt;
use std::hash::Hash;
use std::marker::PhantomData;
use std::ops::{Add, AddAssign, Mul, MulAssign, Neg, Sub, SubAssign};

use rand::Rng;

use crate::bigint::U256;

/// Compile-time parameters of a prime field.
///
/// Implementors only provide [`FieldParams::MODULUS`] (which must be an odd
/// prime with its top bit set, true for all secp256* primes and orders) and a
/// display name; the Montgomery constants are derived automatically.
pub trait FieldParams:
    'static + Copy + Clone + fmt::Debug + PartialEq + Eq + Hash + Send + Sync
{
    /// The field modulus `p` (odd prime, `p > 2^255`).
    const MODULUS: U256;
    /// Human-readable field name used in `Debug` output.
    const NAME: &'static str;

    /// `R = 2^256 mod p`. Derived; do not override.
    const R: U256 = mont_r(&Self::MODULUS);
    /// `R² = 2^512 mod p`. Derived; do not override.
    const R2: U256 = mont_r2(&Self::MODULUS);
    /// `-p⁻¹ mod 2^64`. Derived; do not override.
    const N0: u64 = mont_n0(&Self::MODULUS);
}

/// `2^256 mod p` for `p > 2^255`: exactly `2^256 - p`.
const fn mont_r(p: &U256) -> U256 {
    assert!(p.bit(255), "modulus must have the top bit set");
    U256::ZERO.wrapping_sub(p)
}

/// `2^512 mod p`, computed as R doubled 256 times modulo p.
const fn mont_r2(p: &U256) -> U256 {
    let mut r = mont_r(p);
    let mut i = 0;
    while i < 256 {
        let (sum, carry) = r.adc(&r);
        // sum (+2^256 if carry) is < 2p, so a single subtraction reduces it.
        r = if carry || sum.const_cmp(p) >= 0 {
            sum.wrapping_sub(p)
        } else {
            sum
        };
        i += 1;
    }
    r
}

/// `-p⁻¹ mod 2^64` via Newton iteration on the low limb (p must be odd).
const fn mont_n0(p: &U256) -> u64 {
    let p0 = p.limbs()[0];
    assert!(p0 & 1 == 1, "modulus must be odd");
    // Newton: inv_{k+1} = inv_k * (2 - p0 * inv_k); doubles correct bits.
    let mut inv: u64 = 1;
    let mut i = 0;
    while i < 6 {
        inv = inv.wrapping_mul(2u64.wrapping_sub(p0.wrapping_mul(inv)));
        i += 1;
    }
    inv.wrapping_neg()
}

/// Montgomery multiplication `a * b * R⁻¹ mod p` (CIOS, 4 limbs).
const fn mont_mul(a: &U256, b: &U256, p: &U256, n0: u64) -> U256 {
    let al = a.limbs();
    let bl = b.limbs();
    let pl = p.limbs();
    let mut t = [0u64; 6];
    let mut i = 0;
    while i < 4 {
        // t += a[i] * b
        let mut carry = 0u64;
        let mut j = 0;
        while j < 4 {
            let s = t[j] as u128 + al[i] as u128 * bl[j] as u128 + carry as u128;
            t[j] = s as u64;
            carry = (s >> 64) as u64;
            j += 1;
        }
        let s = t[4] as u128 + carry as u128;
        t[4] = s as u64;
        t[5] = (s >> 64) as u64;

        // Reduce: add m*p where m makes the low limb vanish, shift right 64.
        let m = t[0].wrapping_mul(n0);
        let s = t[0] as u128 + m as u128 * pl[0] as u128;
        let mut carry = (s >> 64) as u64;
        let mut j = 1;
        while j < 4 {
            let s = t[j] as u128 + m as u128 * pl[j] as u128 + carry as u128;
            t[j - 1] = s as u64;
            carry = (s >> 64) as u64;
            j += 1;
        }
        let s = t[4] as u128 + carry as u128;
        t[3] = s as u64;
        let carry = (s >> 64) as u64;
        t[4] = t[5] + carry;
        t[5] = 0;
        i += 1;
    }
    let r = U256::from_limbs([t[0], t[1], t[2], t[3]]);
    // Result < 2p: one conditional subtraction finishes the reduction.
    if t[4] != 0 || r.const_cmp(p) >= 0 {
        r.wrapping_sub(p)
    } else {
        r
    }
}

/// An element of the prime field defined by `P`, stored in Montgomery form.
///
/// `Fp` is `Copy` and implements the usual arithmetic operators. Construct
/// elements with [`Fp::from_u64`], [`Fp::from_canonical`], or
/// [`Fp::from_i64`] (which maps negatives to `p - |v|`).
///
/// ```
/// use dfl_crypto::curve::Secp256k1Base;
/// use dfl_crypto::field::Fp;
///
/// let a = Fp::<Secp256k1Base>::from_u64(3);
/// let b = Fp::<Secp256k1Base>::from_u64(4);
/// assert_eq!(a + b, Fp::from_u64(7));
/// assert_eq!(a * b.invert().unwrap() * b, a);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Fp<P: FieldParams> {
    /// Montgomery representation: `value * R mod p`.
    mont: U256,
    _marker: PhantomData<P>,
}

impl<P: FieldParams> Fp<P> {
    /// The additive identity.
    pub const ZERO: Fp<P> = Fp {
        mont: U256::ZERO,
        _marker: PhantomData,
    };
    /// The multiplicative identity.
    pub const ONE: Fp<P> = Fp {
        mont: P::R,
        _marker: PhantomData,
    };

    /// Builds an element from a canonical integer, reducing mod p.
    pub fn from_canonical(v: U256) -> Fp<P> {
        // v < 2^256 < 2p, so one conditional subtraction canonicalizes.
        let reduced = v.reduce_once(&P::MODULUS);
        Fp {
            mont: mont_mul(&reduced, &P::R2, &P::MODULUS, P::N0),
            _marker: PhantomData,
        }
    }

    /// Builds an element from a `u64`.
    pub fn from_u64(v: u64) -> Fp<P> {
        Fp::from_canonical(U256::from_u64(v))
    }

    /// Builds an element from an `i64`, mapping negative values to `p - |v|`.
    pub fn from_i64(v: i64) -> Fp<P> {
        if v >= 0 {
            Fp::from_u64(v as u64)
        } else {
            -Fp::from_u64(v.unsigned_abs())
        }
    }

    /// Builds an element from an `i128`, mapping negatives to `p - |v|`.
    pub fn from_i128(v: i128) -> Fp<P> {
        if v >= 0 {
            Fp::from_canonical(U256::from_u128(v as u128))
        } else {
            -Fp::from_canonical(U256::from_u128(v.unsigned_abs()))
        }
    }

    /// Returns the canonical (non-Montgomery) representative in `[0, p)`.
    pub fn to_canonical(&self) -> U256 {
        mont_mul(&self.mont, &U256::ONE, &P::MODULUS, P::N0)
    }

    /// Serializes the canonical value as 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        self.to_canonical().to_be_bytes()
    }

    /// Deserializes from 32 big-endian bytes; `None` if the value is ≥ p.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Option<Fp<P>> {
        let v = U256::from_be_bytes(bytes);
        if v.const_cmp(&P::MODULUS) >= 0 {
            None
        } else {
            Some(Fp::from_canonical(v))
        }
    }

    /// Returns `true` for the additive identity.
    pub fn is_zero(&self) -> bool {
        self.mont.is_zero()
    }

    /// Field addition (also available via the `+` operator).
    fn add_inner(&self, rhs: &Fp<P>) -> Fp<P> {
        let (sum, carry) = self.mont.adc(&rhs.mont);
        let reduced = if carry || sum.const_cmp(&P::MODULUS) >= 0 {
            sum.wrapping_sub(&P::MODULUS)
        } else {
            sum
        };
        Fp {
            mont: reduced,
            _marker: PhantomData,
        }
    }

    /// Field subtraction (also available via the `-` operator).
    fn sub_inner(&self, rhs: &Fp<P>) -> Fp<P> {
        let (diff, borrow) = self.mont.sbb(&rhs.mont);
        let reduced = if borrow {
            diff.wrapping_add(&P::MODULUS)
        } else {
            diff
        };
        Fp {
            mont: reduced,
            _marker: PhantomData,
        }
    }

    /// Additive inverse.
    pub fn negate(&self) -> Fp<P> {
        if self.is_zero() {
            *self
        } else {
            Fp {
                mont: P::MODULUS.wrapping_sub(&self.mont),
                _marker: PhantomData,
            }
        }
    }

    /// Field multiplication (also available via the `*` operator).
    fn mul_inner(&self, rhs: &Fp<P>) -> Fp<P> {
        Fp {
            mont: mont_mul(&self.mont, &rhs.mont, &P::MODULUS, P::N0),
            _marker: PhantomData,
        }
    }

    /// Squaring (currently delegates to `mul`).
    pub fn square(&self) -> Fp<P> {
        self.mul_inner(self)
    }

    /// Doubling.
    pub fn double(&self) -> Fp<P> {
        self.add_inner(self)
    }

    /// Exponentiation by a canonical 256-bit exponent (square-and-multiply).
    pub fn pow(&self, exp: &U256) -> Fp<P> {
        let mut acc = Fp::<P>::ONE;
        let bits = exp.bit_len();
        for i in (0..bits).rev() {
            acc = acc.square();
            if exp.bit(i) {
                acc = acc.mul_inner(self);
            }
        }
        acc
    }

    /// Multiplicative inverse via Fermat's little theorem (`x^(p-2)`).
    ///
    /// Returns `None` for zero.
    pub fn invert(&self) -> Option<Fp<P>> {
        if self.is_zero() {
            return None;
        }
        let exp = P::MODULUS.wrapping_sub(&U256::from_u64(2));
        Some(self.pow(&exp))
    }

    /// Square root for `p ≡ 3 (mod 4)` via `x^((p+1)/4)`.
    ///
    /// Returns `None` if `self` is not a quadratic residue.
    ///
    /// # Panics
    ///
    /// Panics if the field modulus is not ≡ 3 (mod 4); all four secp256*
    /// moduli used in this crate satisfy the condition.
    pub fn sqrt(&self) -> Option<Fp<P>> {
        assert!(
            P::MODULUS.limbs()[0] & 3 == 3,
            "sqrt requires p ≡ 3 (mod 4)"
        );
        let exp = P::MODULUS.wrapping_add(&U256::ONE).shr(2);
        let candidate = self.pow(&exp);
        if candidate.square() == *self {
            Some(candidate)
        } else {
            None
        }
    }

    /// Inverts every nonzero element of `elems` in place using Montgomery's
    /// simultaneous-inversion trick: one field inversion plus `3·(n−1)`
    /// multiplications for `n` nonzero entries, instead of `n` inversions.
    /// Zero entries are left as zero (they have no inverse), mirroring how
    /// [`Fp::invert`] reports them, and do not disturb their neighbours.
    ///
    /// This is the workhorse of the batch-affine MSM path: point additions
    /// in affine coordinates each need one division, and amortizing the
    /// inversion makes an affine add cheaper than a Jacobian one.
    pub fn batch_invert(elems: &mut [Fp<P>]) {
        // Prefix products over the nonzero entries.
        let mut prefix = Vec::with_capacity(elems.len());
        let mut acc = Fp::<P>::ONE;
        for e in elems.iter() {
            prefix.push(acc);
            if !e.is_zero() {
                acc = acc.mul_inner(e);
            }
        }
        // One inversion of the total product (a product of nonzero factors,
        // or ONE when every entry was zero — never zero itself)...
        let mut inv = acc.invert().expect("product of nonzero elements");
        // ...then unwind: inv holds the inverse of the product of all
        // nonzero entries up to (and including) position i.
        for (e, p) in elems.iter_mut().zip(prefix).rev() {
            if e.is_zero() {
                continue;
            }
            let e_inv = inv.mul_inner(&p);
            inv = inv.mul_inner(e);
            *e = e_inv;
        }
    }

    /// Samples a uniformly random element using rejection sampling.
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Fp<P> {
        loop {
            let mut bytes = [0u8; 32];
            rng.fill_bytes(&mut bytes);
            let v = U256::from_be_bytes(bytes);
            if v.const_cmp(&P::MODULUS) < 0 {
                return Fp::from_canonical(v);
            }
        }
    }

    /// Sums an iterator of elements.
    pub fn sum<I: IntoIterator<Item = Fp<P>>>(iter: I) -> Fp<P> {
        iter.into_iter().fold(Fp::ZERO, |acc, x| acc.add_inner(&x))
    }
}

impl<P: FieldParams> fmt::Debug for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", P::NAME, self.to_canonical())
    }
}

impl<P: FieldParams> fmt::Display for Fp<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_canonical())
    }
}

impl<P: FieldParams> Default for Fp<P> {
    fn default() -> Self {
        Fp::ZERO
    }
}

impl<P: FieldParams> Add for Fp<P> {
    type Output = Fp<P>;
    fn add(self, rhs: Fp<P>) -> Fp<P> {
        Fp::add_inner(&self, &rhs)
    }
}

impl<P: FieldParams> AddAssign for Fp<P> {
    fn add_assign(&mut self, rhs: Fp<P>) {
        *self = Fp::add_inner(self, &rhs);
    }
}

impl<P: FieldParams> Sub for Fp<P> {
    type Output = Fp<P>;
    fn sub(self, rhs: Fp<P>) -> Fp<P> {
        Fp::sub_inner(&self, &rhs)
    }
}

impl<P: FieldParams> SubAssign for Fp<P> {
    fn sub_assign(&mut self, rhs: Fp<P>) {
        *self = Fp::sub_inner(self, &rhs);
    }
}

impl<P: FieldParams> Mul for Fp<P> {
    type Output = Fp<P>;
    fn mul(self, rhs: Fp<P>) -> Fp<P> {
        Fp::mul_inner(&self, &rhs)
    }
}

impl<P: FieldParams> MulAssign for Fp<P> {
    fn mul_assign(&mut self, rhs: Fp<P>) {
        *self = Fp::mul_inner(self, &rhs);
    }
}

impl<P: FieldParams> Neg for Fp<P> {
    type Output = Fp<P>;
    fn neg(self) -> Fp<P> {
        self.negate()
    }
}

impl<P: FieldParams> std::iter::Sum for Fp<P> {
    fn sum<I: Iterator<Item = Fp<P>>>(iter: I) -> Fp<P> {
        Fp::sum(iter)
    }
}

impl<P: FieldParams> From<u64> for Fp<P> {
    fn from(v: u64) -> Fp<P> {
        Fp::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::{Secp256k1Base, Secp256k1Scalar, Secp256r1Base, Secp256r1Scalar};
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    type F = Fp<Secp256k1Base>;

    #[test]
    fn montgomery_constants_sane() {
        // R * R⁻¹ ≡ 1: ONE round-trips through canonical form.
        assert_eq!(F::ONE.to_canonical(), U256::ONE);
        assert_eq!(F::ZERO.to_canonical(), U256::ZERO);
        assert_eq!(F::from_u64(12345).to_canonical(), U256::from_u64(12345));
    }

    #[test]
    fn n0_is_inverse() {
        // p * (-N0) ≡ 1 mod 2^64 ⇔ p * N0 ≡ -1.
        let p0 = Secp256k1Base::MODULUS.limbs()[0];
        assert_eq!(p0.wrapping_mul(Secp256k1Base::N0), u64::MAX);
        let p0 = Secp256r1Base::MODULUS.limbs()[0];
        assert_eq!(p0.wrapping_mul(Secp256r1Base::N0), u64::MAX);
    }

    #[test]
    fn add_sub_round_trip() {
        let a = F::from_u64(u64::MAX);
        let b = F::from_u64(12345);
        assert_eq!((a + b) - b, a);
        assert_eq!(a - a, F::ZERO);
        assert_eq!(a + (-a), F::ZERO);
    }

    #[test]
    fn mul_matches_small_integers() {
        let a = F::from_u64(1 << 40);
        let b = F::from_u64(1 << 20);
        assert_eq!(a * b, F::from_canonical(U256::from_u64(1).shl(60)));
    }

    #[test]
    fn wraparound_addition() {
        // (p-1) + 2 = 1 mod p
        let p_minus_1 = F::from_canonical(Secp256k1Base::MODULUS.wrapping_sub(&U256::ONE));
        assert_eq!(p_minus_1 + F::from_u64(2), F::ONE);
    }

    #[test]
    fn from_i64_negative() {
        let a = F::from_i64(-5);
        assert_eq!(a + F::from_u64(5), F::ZERO);
        assert_eq!(F::from_i64(5), F::from_u64(5));
        assert_eq!(F::from_i128(-1), -F::ONE);
    }

    #[test]
    fn inversion() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let a = F::random(&mut rng);
            if a.is_zero() {
                continue;
            }
            assert_eq!(a * a.invert().unwrap(), F::ONE);
        }
        assert!(F::ZERO.invert().is_none());
    }

    #[test]
    fn batch_invert_matches_individual() {
        let mut rng = StdRng::seed_from_u64(23);
        let originals: Vec<F> = (0..17).map(|_| F::random(&mut rng)).collect();
        let mut batch = originals.clone();
        F::batch_invert(&mut batch);
        for (orig, inv) in originals.iter().zip(&batch) {
            assert_eq!(*inv, orig.invert().unwrap());
        }
    }

    #[test]
    fn batch_invert_skips_zeros() {
        let mut elems = vec![F::from_u64(2), F::ZERO, F::from_u64(3), F::ZERO];
        F::batch_invert(&mut elems);
        assert_eq!(elems[0], F::from_u64(2).invert().unwrap());
        assert!(elems[1].is_zero());
        assert_eq!(elems[2], F::from_u64(3).invert().unwrap());
        assert!(elems[3].is_zero());
        // Degenerate inputs: all zeros, empty.
        let mut zeros = vec![F::ZERO; 4];
        F::batch_invert(&mut zeros);
        assert!(zeros.iter().all(Fp::is_zero));
        F::batch_invert(&mut []);
    }

    #[test]
    fn sqrt_of_squares() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..10 {
            let a = F::random(&mut rng);
            let sq = a.square();
            let root = sq.sqrt().expect("square must have a root");
            assert!(root == a || root == -a);
        }
    }

    #[test]
    fn pow_small_exponents() {
        let a = F::from_u64(3);
        assert_eq!(a.pow(&U256::ZERO), F::ONE);
        assert_eq!(a.pow(&U256::ONE), a);
        assert_eq!(a.pow(&U256::from_u64(5)), F::from_u64(243));
    }

    #[test]
    fn fermat_little_theorem_all_fields() {
        // a^(p-1) = 1 for a ≠ 0, in all four fields.
        fn check<P: FieldParams>() {
            let a = Fp::<P>::from_u64(0xDEADBEEF);
            let exp = P::MODULUS.wrapping_sub(&U256::ONE);
            assert_eq!(a.pow(&exp), Fp::<P>::ONE, "field {}", P::NAME);
        }
        check::<Secp256k1Base>();
        check::<Secp256k1Scalar>();
        check::<Secp256r1Base>();
        check::<Secp256r1Scalar>();
    }

    #[test]
    fn byte_round_trip() {
        let a = F::from_u64(0xABCDEF);
        assert_eq!(F::from_be_bytes(a.to_be_bytes()).unwrap(), a);
        // Modulus itself is rejected.
        assert!(F::from_be_bytes(Secp256k1Base::MODULUS.to_be_bytes()).is_none());
    }

    fn arb_fp() -> impl Strategy<Value = F> {
        any::<[u8; 32]>().prop_map(|b| {
            // Clear the top byte so the value is always < p.
            let mut b = b;
            b[0] = 0;
            F::from_be_bytes(b).expect("top byte cleared means < p")
        })
    }

    proptest! {
        #[test]
        fn prop_add_commutative(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn prop_mul_commutative(a in arb_fp(), b in arb_fp()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn prop_add_associative(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn prop_mul_associative(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!((a * b) * c, a * (b * c));
        }

        #[test]
        fn prop_distributive(a in arb_fp(), b in arb_fp(), c in arb_fp()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn prop_inverse(a in arb_fp()) {
            if !a.is_zero() {
                prop_assert_eq!(a * a.invert().unwrap(), F::ONE);
            }
        }

        #[test]
        fn prop_canonical_round_trip(a in arb_fp()) {
            prop_assert_eq!(F::from_canonical(a.to_canonical()), a);
        }

        #[test]
        fn prop_neg_is_sub_from_zero(a in arb_fp()) {
            prop_assert_eq!(-a, F::ZERO - a);
        }
    }
}
