//! Multi-scalar multiplication (MSM): computing `Σ kᵢ·Pᵢ`.
//!
//! Pedersen vector commitments are exactly one MSM, so this is the hot path
//! the paper identifies as the verifiability bottleneck (§V, Fig. 3). The
//! crate exposes one entry point, [`Msm`], which selects among several
//! kernels:
//!
//! * [`Strategy::Naive`] — one plain double-and-add per term, summed. This
//!   models the paper's "rather straight-forward" Bouncy Castle
//!   implementation and is the baseline in the `ablate_msm` bench.
//! * [`Strategy::Wnaf`] — per-term width-5 wNAF ladder; a modest
//!   constant-factor improvement.
//! * [`Strategy::Pippenger`] — bucket method with an adaptive window and
//!   Jacobian bucket accumulation, the multi-exponentiation optimization
//!   the paper cites as future work ([Möller '01; Borges et al. '17]).
//! * [`Strategy::BatchAffine`] — Pippenger with the bucket contents summed
//!   in *affine* coordinates, batching the per-addition division across
//!   every bucket with Montgomery's simultaneous-inversion trick
//!   ([`Fp::batch_invert`]). An affine addition costs ~6 field
//!   multiplications amortized versus ~11 for a mixed Jacobian addition.
//! * [`MsmTable`] — fixed-base precomputation: windowed shift tables
//!   (`2^(w·c)·Pᵢ`) built once per point set collapse the entire MSM into a
//!   **single** batch-affine bucket pass with no doubling chain at all.
//!   This is the commitment fast path; [`crate::pedersen::CommitKey`]
//!   builds one per task.
//!
//! With the `rayon` feature enabled, the batch-affine and table kernels
//! chunk the scalar vector across threads and fold the per-chunk partial
//! sums in a fixed order. Elliptic-curve addition is exact (no rounding),
//! so the folded result is the same group element regardless of the split;
//! after affine normalization — which is canonical — parallel and serial
//! results are bit-identical, preserving simulator determinism.
//!
//! ```
//! use dfl_crypto::curve::{Affine, Curve, Scalar, Secp256k1};
//! use dfl_crypto::msm::{Msm, Strategy};
//!
//! let points = vec![Secp256k1::generator(); 4];
//! let scalars: Vec<_> = (1..=4u64).map(Scalar::<Secp256k1>::from_u64).collect();
//! let sum = Msm::new(&points).with_strategy(Strategy::Auto).eval(&scalars);
//! assert_eq!(sum, Secp256k1::generator().mul(&Scalar::<Secp256k1>::from_u64(10)));
//! ```

use crate::curve::{Affine, Curve, Jacobian, Scalar};
use crate::field::Fp;

/// `true` when the crate was built with the `rayon` feature, i.e. when
/// [`Msm::with_parallel`]`(true)` actually runs multi-threaded. Lets
/// benchmark harnesses label their numbers honestly.
pub const fn parallel_enabled() -> bool {
    cfg!(feature = "rayon")
}

/// MSM kernel selection for [`Msm`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum Strategy {
    /// Independent binary double-and-add per term (the paper's baseline).
    Naive,
    /// Per-term width-5 wNAF ladder.
    Wnaf,
    /// Bucket method with Jacobian bucket accumulation.
    Pippenger,
    /// Bucket method with batch-affine bucket accumulation.
    BatchAffine,
    /// Pick by input size: wNAF for small inputs (where bucket setup
    /// dominates), batch-affine Pippenger otherwise — or the precomputed
    /// table when one is attached via [`Msm::with_table`].
    #[default]
    Auto,
}

/// Builder-style MSM entry point: `Msm::new(points).eval(scalars)`.
#[derive(Copy, Clone, Debug)]
pub struct Msm<'a, C: Curve> {
    points: &'a [Affine<C>],
    strategy: Strategy,
    table: Option<&'a MsmTable<C>>,
    parallel: bool,
}

impl<'a, C: Curve> Msm<'a, C> {
    /// Starts an MSM over `points` with [`Strategy::Auto`]. Parallelism
    /// defaults to on when the crate's `rayon` feature is enabled.
    pub fn new(points: &'a [Affine<C>]) -> Msm<'a, C> {
        Msm {
            points,
            strategy: Strategy::Auto,
            table: None,
            parallel: cfg!(feature = "rayon"),
        }
    }

    /// Selects the kernel. [`Strategy::Auto`] (the default) picks by input
    /// size and prefers an attached table.
    pub fn with_strategy(mut self, strategy: Strategy) -> Msm<'a, C> {
        self.strategy = strategy;
        self
    }

    /// Attaches a fixed-base precomputation table. Used by
    /// [`Strategy::Auto`]; an explicit non-auto strategy still runs its own
    /// kernel, which lets benchmarks and tests compare paths on identical
    /// inputs.
    ///
    /// # Panics
    ///
    /// Panics if the table covers fewer base points than `points`, or was
    /// built over a different point set (checked cheaply by spot-comparing
    /// the first point).
    pub fn with_table(mut self, table: &'a MsmTable<C>) -> Msm<'a, C> {
        assert!(
            table.len() >= self.points.len(),
            "table covers {} points, MSM needs {}",
            table.len(),
            self.points.len()
        );
        if let (Some(first), Some(base)) = (self.points.first(), table.base_point(0)) {
            assert!(*first == base, "table was built over a different point set");
        }
        self.table = Some(table);
        self
    }

    /// Forces parallel chunking on or off. Without the `rayon` feature
    /// this is a no-op and every kernel runs serially.
    pub fn with_parallel(mut self, parallel: bool) -> Msm<'a, C> {
        self.parallel = parallel;
        self
    }

    /// Computes `Σ kᵢ·Pᵢ`.
    ///
    /// # Panics
    ///
    /// Panics if `scalars` and the point set have different lengths.
    pub fn eval(&self, scalars: &[Scalar<C>]) -> Jacobian<C> {
        assert_eq!(
            self.points.len(),
            scalars.len(),
            "points/scalars length mismatch"
        );
        match self.strategy {
            Strategy::Naive => naive(self.points, scalars),
            Strategy::Wnaf => wnaf(self.points, scalars),
            Strategy::Pippenger => pippenger_jacobian(self.points, scalars),
            Strategy::BatchAffine => self.run_batch_affine(scalars),
            Strategy::Auto => {
                if let Some(table) = self.table {
                    table.eval_parallel(scalars, self.parallel)
                } else if self.points.len() < 32 {
                    wnaf(self.points, scalars)
                } else {
                    self.run_batch_affine(scalars)
                }
            }
        }
    }

    fn run_batch_affine(&self, scalars: &[Scalar<C>]) -> Jacobian<C> {
        #[cfg(feature = "rayon")]
        if self.parallel && scalars.len() >= 2 * MIN_PARALLEL_CHUNK {
            let points = self.points;
            return join_reduce(0..scalars.len(), parallel_leaf_size(scalars.len()), &|r| {
                pippenger_batch_affine(&points[r.clone()], &scalars[r])
            });
        }
        pippenger_batch_affine(self.points, scalars)
    }
}

// ---------------------------------------------------------------------------
// Fixed-base precomputation tables
// ---------------------------------------------------------------------------

/// Fixed-base windowed precomputation for an MSM point set.
///
/// For each base point `Pᵢ` the table stores the shifted points
/// `2^(w·c)·Pᵢ` for every `c`-bit digit window `w` (`c` =
/// [`MsmTable::window`], chosen at build time to minimize the evaluation
/// cost for the set's size). Every 256-bit scalar then decomposes into
/// digits that each select *one* precomputed point, so evaluation is a
/// single bucket-accumulation pass over `n·⌈256/c⌉` points followed by one
/// running sum — no doubling chain. Bucket contents are summed in affine
/// coordinates with a shared batched inversion per round
/// ([`Fp::batch_invert`]).
///
/// Build cost is ~256 doublings per point (about one naive scalar
/// multiplication per point) plus one batch normalization, paid once per
/// task; memory is `⌈256/c⌉` affine points per base point.
#[derive(Clone, Debug)]
pub struct MsmTable<C: Curve> {
    window: usize,
    digits: usize,
    shifts: Vec<Affine<C>>,
}

impl<C: Curve> MsmTable<C> {
    /// Builds a table for `points` with a window chosen by
    /// [`MsmTable::suggested_window`].
    pub fn build(points: &[Affine<C>]) -> MsmTable<C> {
        MsmTable::with_window(points, MsmTable::<C>::suggested_window(points.len()))
    }

    /// Builds a table with an explicit `window` size in bits.
    ///
    /// # Panics
    ///
    /// Panics if `window` is outside `1..=16`.
    pub fn with_window(points: &[Affine<C>], window: usize) -> MsmTable<C> {
        assert!(
            (1..=16).contains(&window),
            "table window must be in 1..=16 bits"
        );
        let digits = 256usize.div_ceil(window);
        let mut jac = Vec::with_capacity(points.len() * digits);
        for p in points {
            let mut cur = p.to_jacobian();
            jac.push(cur);
            for _ in 1..digits {
                for _ in 0..window {
                    cur = cur.double();
                }
                jac.push(cur);
            }
        }
        MsmTable {
            window,
            digits,
            shifts: Jacobian::batch_normalize(&jac),
        }
    }

    /// The window size that minimizes the estimated evaluation cost for an
    /// MSM over `n` points: `n·⌈256/c⌉` batch-affine additions (~6 field
    /// muls each) plus a running sum over `2^c` buckets (~14 muls per
    /// Jacobian op).
    pub fn suggested_window(n: usize) -> usize {
        let n = n.max(1);
        (4..=16)
            .min_by_key(|&c| 6 * n * 256usize.div_ceil(c) + 14 * (1usize << (c + 1)))
            .expect("non-empty window range")
    }

    /// The digit window size in bits.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of base points the table covers.
    pub fn len(&self) -> usize {
        self.shifts.len() / self.digits
    }

    /// `true` if the table covers no points.
    pub fn is_empty(&self) -> bool {
        self.shifts.is_empty()
    }

    /// The `i`-th base point (the `w = 0` shift), if in range.
    pub fn base_point(&self, i: usize) -> Option<Affine<C>> {
        self.shifts.get(i * self.digits).copied()
    }

    /// Approximate heap footprint in bytes (for capacity planning).
    pub fn memory_bytes(&self) -> usize {
        self.shifts.len() * std::mem::size_of::<Affine<C>>()
    }

    /// Evaluates `Σ kᵢ·Pᵢ` over the first `scalars.len()` base points.
    ///
    /// # Panics
    ///
    /// Panics if `scalars` is longer than the table.
    pub fn eval(&self, scalars: &[Scalar<C>]) -> Jacobian<C> {
        self.eval_parallel(scalars, cfg!(feature = "rayon"))
    }

    /// [`MsmTable::eval`] with explicit parallelism control (no-op without
    /// the `rayon` feature).
    pub fn eval_parallel(&self, scalars: &[Scalar<C>], parallel: bool) -> Jacobian<C> {
        assert!(
            scalars.len() <= self.len(),
            "scalar vector length {} exceeds table length {}",
            scalars.len(),
            self.len()
        );
        let _ = parallel;
        #[cfg(feature = "rayon")]
        if parallel && scalars.len() >= 2 * MIN_PARALLEL_CHUNK {
            return join_reduce(0..scalars.len(), parallel_leaf_size(scalars.len()), &|r| {
                self.eval_chunk(scalars, r)
            });
        }
        self.eval_chunk(scalars, 0..scalars.len())
    }

    /// Serial kernel over the scalar index range `range`: one bucket pass
    /// over every (point, digit) pair, then a single running sum.
    fn eval_chunk(&self, scalars: &[Scalar<C>], range: std::ops::Range<usize>) -> Jacobian<C> {
        let mut buckets: Vec<Vec<Affine<C>>> = vec![Vec::new(); (1 << self.window) - 1];
        for i in range {
            let k = scalars[i].to_canonical();
            if k.is_zero() {
                continue;
            }
            let row = &self.shifts[i * self.digits..(i + 1) * self.digits];
            for (w, shift) in row.iter().enumerate() {
                let digit = k.bits(w * self.window, self.window) as usize;
                if digit != 0 && !shift.is_identity() {
                    buckets[digit - 1].push(*shift);
                }
            }
        }
        bucket_running_sum(&batch_affine_sum_buckets(buckets))
    }
}

// ---------------------------------------------------------------------------
// Kernels
// ---------------------------------------------------------------------------

/// Naive MSM: independent double-and-add per term, deliberately
/// unoptimized (models the paper's implementation).
fn naive<C: Curve>(points: &[Affine<C>], scalars: &[Scalar<C>]) -> Jacobian<C> {
    let mut acc = Jacobian::identity();
    for (p, k) in points.iter().zip(scalars) {
        let bits = k.to_canonical();
        let mut term = Jacobian::identity();
        for i in (0..bits.bit_len()).rev() {
            term = term.double();
            if bits.bit(i) {
                term = term.add_affine(p);
            }
        }
        acc = acc.add(&term);
    }
    acc
}

/// Per-term width-5 wNAF ladder, summed.
fn wnaf<C: Curve>(points: &[Affine<C>], scalars: &[Scalar<C>]) -> Jacobian<C> {
    let mut acc = Jacobian::identity();
    for (p, k) in points.iter().zip(scalars) {
        acc = acc.add(&p.mul(k));
    }
    acc
}

/// Pippenger bucket MSM with Jacobian bucket accumulation.
///
/// Splits each 256-bit scalar into windows of `c` bits, accumulates points
/// into per-window buckets, and combines buckets with the running-sum
/// trick. Cost is roughly `256/c · (2^c + n)` point additions, versus
/// `n · 256` for the naive method.
fn pippenger_jacobian<C: Curve>(points: &[Affine<C>], scalars: &[Scalar<C>]) -> Jacobian<C> {
    let n = points.len();
    if n == 0 {
        return Jacobian::identity();
    }
    let c = window_size(n);
    let windows = 256usize.div_ceil(c);
    let canonical: Vec<_> = scalars.iter().map(|s| s.to_canonical()).collect();

    let mut window_sums = Vec::with_capacity(windows);
    for w in 0..windows {
        // Buckets 1..2^c−1 (bucket 0 contributes nothing).
        let mut buckets = vec![Jacobian::<C>::identity(); (1 << c) - 1];
        for (k, p) in canonical.iter().zip(points) {
            let digit = k.bits(w * c, c) as usize;
            if digit != 0 {
                buckets[digit - 1] = buckets[digit - 1].add_affine(p);
            }
        }
        window_sums.push(bucket_running_sum_jacobian(&buckets));
    }

    // Combine: result = Σ_w (window_sum_w << (w·c)), highest window first.
    let mut acc = Jacobian::identity();
    for sum in window_sums.iter().rev() {
        for _ in 0..c {
            acc = acc.double();
        }
        acc = acc.add(sum);
    }
    acc
}

/// Pippenger with batch-affine bucket accumulation: per window, bucket
/// contents are kept as affine point lists and summed by rounds of paired
/// affine additions sharing one inversion ([`batch_affine_sum_buckets`]).
fn pippenger_batch_affine<C: Curve>(points: &[Affine<C>], scalars: &[Scalar<C>]) -> Jacobian<C> {
    let n = points.len();
    if n == 0 {
        return Jacobian::identity();
    }
    let c = window_size(n);
    let windows = 256usize.div_ceil(c);
    let canonical: Vec<_> = scalars.iter().map(|s| s.to_canonical()).collect();

    let mut window_sums = Vec::with_capacity(windows);
    for w in 0..windows {
        let mut buckets: Vec<Vec<Affine<C>>> = vec![Vec::new(); (1 << c) - 1];
        for (k, p) in canonical.iter().zip(points) {
            let digit = k.bits(w * c, c) as usize;
            if digit != 0 && !p.is_identity() {
                buckets[digit - 1].push(*p);
            }
        }
        window_sums.push(bucket_running_sum(&batch_affine_sum_buckets(buckets)));
    }

    let mut acc = Jacobian::identity();
    for sum in window_sums.iter().rev() {
        for _ in 0..c {
            acc = acc.double();
        }
        acc = acc.add(sum);
    }
    acc
}

/// Reduces each bucket's affine point list to a single point by repeated
/// rounds of pairwise affine additions, amortizing the per-addition field
/// division with one [`Fp::batch_invert`] per round across *all* buckets.
///
/// An affine addition `P + Q` needs `λ = (y_Q − y_P)/(x_Q − x_P)` (or
/// `λ = (3x² + a)/(2y)` when doubling); batching the denominators makes
/// each addition cost ~6 field multiplications amortized. Inverse pairs
/// (`x_P = x_Q`, `y_P = −y_Q`) sum to the identity and are dropped; the
/// curves have prime (odd) order, so no point has `y = 0` and the
/// doubling denominator is never zero.
fn batch_affine_sum_buckets<C: Curve>(mut buckets: Vec<Vec<Affine<C>>>) -> Vec<Affine<C>> {
    let mut nums: Vec<Fp<C::Base>> = Vec::new();
    let mut dens: Vec<Fp<C::Base>> = Vec::new();
    loop {
        // Phase 1: one numerator/denominator per addable pair, across all
        // buckets in index order. A zero denominator marks an inverse pair
        // (result = identity); batch_invert leaves zeros untouched, which
        // phase 2 uses to drop them.
        nums.clear();
        dens.clear();
        for bucket in &buckets {
            for pair in bucket.chunks_exact(2) {
                let (p, q) = (&pair[0], &pair[1]);
                if p.x() == q.x() {
                    if p.y() == q.y() {
                        let xx = p.x().square();
                        nums.push(xx.double() + xx + C::a());
                        dens.push(p.y().double());
                    } else {
                        nums.push(Fp::ZERO);
                        dens.push(Fp::ZERO);
                    }
                } else {
                    nums.push(q.y() - p.y());
                    dens.push(q.x() - p.x());
                }
            }
        }
        if nums.is_empty() {
            break;
        }
        Fp::batch_invert(&mut dens);

        // Phase 2: apply the additions, halving each bucket's list.
        let mut pair_idx = 0;
        for bucket in &mut buckets {
            let pairs = bucket.len() / 2;
            let mut out = 0;
            for i in 0..pairs {
                let (p, q) = (bucket[2 * i], bucket[2 * i + 1]);
                let den_inv = dens[pair_idx];
                let num = nums[pair_idx];
                pair_idx += 1;
                if den_inv.is_zero() {
                    continue; // inverse pair: contributes the identity
                }
                let lambda = num * den_inv;
                let x3 = lambda.square() - p.x() - q.x();
                let y3 = lambda * (p.x() - x3) - p.y();
                bucket[out] = Affine::from_xy_unchecked(x3, y3);
                out += 1;
            }
            if bucket.len() % 2 == 1 {
                bucket[out] = bucket[bucket.len() - 1];
                out += 1;
            }
            bucket.truncate(out);
        }
    }
    buckets
        .into_iter()
        .map(|b| b.first().copied().unwrap_or_else(Affine::identity))
        .collect()
}

/// Running-sum bucket combine over affine bucket sums:
/// `Σ (i+1)·Bᵢ` with `2·len` point additions.
fn bucket_running_sum<C: Curve>(sums: &[Affine<C>]) -> Jacobian<C> {
    let mut running = Jacobian::identity();
    let mut total = Jacobian::identity();
    for s in sums.iter().rev() {
        running = running.add_affine(s);
        total = total.add(&running);
    }
    total
}

/// Running-sum bucket combine over Jacobian buckets.
fn bucket_running_sum_jacobian<C: Curve>(buckets: &[Jacobian<C>]) -> Jacobian<C> {
    let mut running = Jacobian::identity();
    let mut total = Jacobian::identity();
    for bucket in buckets.iter().rev() {
        running = running.add(bucket);
        total = total.add(&running);
    }
    total
}

/// Chooses the Pippenger window size for `n` terms (≈ log₂ n − 2, clamped).
fn window_size(n: usize) -> usize {
    let log = usize::BITS as usize - n.leading_zeros() as usize; // ⌈log2⌉-ish
    log.saturating_sub(2).clamp(1, 16)
}

// ---------------------------------------------------------------------------
// Parallel reduction (rayon feature)
// ---------------------------------------------------------------------------

/// Below this many scalars per chunk, thread spawn overhead outweighs the
/// parallel win.
#[cfg(feature = "rayon")]
pub(crate) const MIN_PARALLEL_CHUNK: usize = 128;

/// Chunk size targeting one chunk per available thread.
#[cfg(feature = "rayon")]
pub(crate) fn parallel_leaf_size(n: usize) -> usize {
    n.div_ceil(rayon::current_num_threads().max(1))
        .max(MIN_PARALLEL_CHUNK)
}

/// Recursive fork/join reduction over an index range: leaves evaluate
/// serially, parents fold `left.add(&right)`. The fold order is fixed by
/// the recursion shape, and EC addition is exact, so the result is the
/// same group element as the serial evaluation (bit-identical once
/// affine-normalized).
#[cfg(feature = "rayon")]
fn join_reduce<C, F>(range: std::ops::Range<usize>, leaf: usize, eval: &F) -> Jacobian<C>
where
    C: Curve,
    F: Fn(std::ops::Range<usize>) -> Jacobian<C> + Sync,
{
    if range.len() <= leaf {
        return eval(range);
    }
    let mid = range.start + range.len() / 2;
    let (left, right) = rayon::join(
        || join_reduce(range.start..mid, leaf, eval),
        || join_reduce(mid..range.end, leaf, eval),
    );
    left.add(&right)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bigint::U256;
    use crate::curve::{Secp256k1, Secp256r1};
    use crate::field::FieldParams;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type C = Secp256k1;

    fn random_instance(n: usize, seed: u64) -> (Vec<Affine<C>>, Vec<Scalar<C>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<_> = (0..n).map(|_| Affine::<C>::random(&mut rng)).collect();
        let scalars: Vec<_> = (0..n).map(|_| Scalar::<C>::random(&mut rng)).collect();
        (points, scalars)
    }

    fn eval_with(points: &[Affine<C>], scalars: &[Scalar<C>], s: Strategy) -> Jacobian<C> {
        Msm::new(points).with_strategy(s).eval(scalars)
    }

    const ALL_STRATEGIES: [Strategy; 5] = [
        Strategy::Naive,
        Strategy::Wnaf,
        Strategy::Pippenger,
        Strategy::BatchAffine,
        Strategy::Auto,
    ];

    #[test]
    fn empty_input_is_identity() {
        for s in ALL_STRATEGIES {
            assert!(eval_with(&[], &[], s).is_identity(), "{s:?}");
        }
        let table = MsmTable::<C>::build(&[]);
        assert!(table.is_empty());
        assert!(table.eval(&[]).is_identity());
    }

    #[test]
    fn single_term_matches_scalar_mul() {
        let (points, scalars) = random_instance(1, 1);
        let expect = points[0].mul(&scalars[0]);
        for s in ALL_STRATEGIES {
            assert_eq!(eval_with(&points, &scalars, s), expect, "{s:?}");
        }
        assert_eq!(MsmTable::build(&points).eval(&scalars), expect);
    }

    #[test]
    fn all_strategies_agree_small() {
        for n in [2, 3, 7, 16] {
            let (points, scalars) = random_instance(n, n as u64);
            let reference = eval_with(&points, &scalars, Strategy::Naive);
            for s in ALL_STRATEGIES {
                assert_eq!(eval_with(&points, &scalars, s), reference, "{s:?} n={n}");
            }
            let table = MsmTable::build(&points);
            assert_eq!(table.eval(&scalars), reference, "table n={n}");
            assert_eq!(
                Msm::new(&points).with_table(&table).eval(&scalars),
                reference,
                "auto+table n={n}"
            );
        }
    }

    #[test]
    fn all_strategies_agree_medium() {
        let (points, scalars) = random_instance(100, 99);
        let reference = eval_with(&points, &scalars, Strategy::Naive);
        for s in ALL_STRATEGIES {
            assert_eq!(eval_with(&points, &scalars, s), reference, "{s:?}");
        }
        assert_eq!(MsmTable::build(&points).eval(&scalars), reference);
    }

    #[test]
    fn zero_scalars_yield_identity() {
        let (points, _) = random_instance(8, 42);
        let zeros = vec![Scalar::<C>::ZERO; 8];
        for s in ALL_STRATEGIES {
            assert!(eval_with(&points, &zeros, s).is_identity(), "{s:?}");
        }
        assert!(MsmTable::build(&points).eval(&zeros).is_identity());
    }

    #[test]
    fn order_minus_one_scalar() {
        // k = n − 1 ≡ −1: the largest canonical scalar, exercising the top
        // digit window of every decomposition.
        let (points, _) = random_instance(3, 5);
        let minus_one =
            Scalar::<C>::from_canonical(<C as Curve>::Scalar::MODULUS.wrapping_sub(&U256::ONE));
        let scalars = vec![minus_one; 3];
        let reference = eval_with(&points, &scalars, Strategy::Naive);
        for s in ALL_STRATEGIES {
            assert_eq!(eval_with(&points, &scalars, s), reference, "{s:?}");
        }
        assert_eq!(MsmTable::build(&points).eval(&scalars), reference);
    }

    #[test]
    fn sparse_scalars() {
        // Mostly zeros with a couple of small values — exercises empty buckets.
        let (points, _) = random_instance(50, 7);
        let mut scalars = vec![Scalar::<C>::ZERO; 50];
        scalars[3] = Scalar::<C>::from_u64(2);
        scalars[47] = Scalar::<C>::from_u64(1 << 30);
        let expect = points[3]
            .mul(&scalars[3])
            .add(&points[47].mul(&scalars[47]));
        for s in ALL_STRATEGIES {
            assert_eq!(eval_with(&points, &scalars, s), expect, "{s:?}");
        }
        assert_eq!(MsmTable::build(&points).eval(&scalars), expect);
    }

    #[test]
    fn repeated_points_accumulate() {
        // Same point many times with scalar 1 = n·P. Repeated equal points
        // in one bucket force the batch-affine doubling branch.
        let mut rng = StdRng::seed_from_u64(64);
        let p = Affine::<C>::random(&mut rng);
        let n = rng.gen_range(33..80); // large enough for the bucket paths
        let points = vec![p; n];
        let scalars = vec![Scalar::<C>::ONE; n];
        let expect = p.mul(&Scalar::<C>::from_u64(n as u64));
        for s in ALL_STRATEGIES {
            assert_eq!(eval_with(&points, &scalars, s), expect, "{s:?}");
        }
        assert_eq!(MsmTable::build(&points).eval(&scalars), expect);
    }

    #[test]
    fn inverse_pairs_cancel() {
        // P and −P with equal scalars: batch-affine must drop the inverse
        // pair instead of dividing by zero.
        let mut rng = StdRng::seed_from_u64(81);
        let p = Affine::<C>::random(&mut rng);
        let q = Affine::<C>::random(&mut rng);
        let points = vec![p, p.negate(), q, q, p, p.negate()];
        let k = Scalar::<C>::from_u64(9);
        let scalars = vec![k; 6];
        let expect = q.mul(&(k + k));
        assert_eq!(eval_with(&points, &scalars, Strategy::BatchAffine), expect);
        assert_eq!(MsmTable::build(&points).eval(&scalars), expect);
    }

    #[test]
    fn identity_points_are_ignored() {
        let (mut points, scalars) = random_instance(40, 11);
        points[7] = Affine::identity();
        points[23] = Affine::identity();
        let reference = eval_with(&points, &scalars, Strategy::Naive);
        for s in ALL_STRATEGIES {
            assert_eq!(eval_with(&points, &scalars, s), reference, "{s:?}");
        }
        assert_eq!(MsmTable::build(&points).eval(&scalars), reference);
    }

    #[test]
    fn table_prefix_evaluation() {
        // A table over n points evaluates shorter scalar vectors (the
        // commit-to-a-prefix case in Pedersen keys).
        let (points, scalars) = random_instance(20, 13);
        let table = MsmTable::build(&points);
        for m in [0, 1, 5, 20] {
            let reference = eval_with(&points[..m], &scalars[..m], Strategy::Naive);
            assert_eq!(table.eval(&scalars[..m]), reference, "prefix m={m}");
        }
    }

    #[test]
    fn table_windows_cover_all_sizes() {
        for n in [1, 32, 1 << 10, 1 << 14, 1 << 20] {
            let w = MsmTable::<C>::suggested_window(n);
            assert!((4..=16).contains(&w), "n={n} w={w}");
        }
        // Bigger inputs never get smaller windows.
        let mut last = 0;
        for n in [1, 100, 10_000, 1_000_000] {
            let w = MsmTable::<C>::suggested_window(n);
            assert!(w >= last);
            last = w;
        }
    }

    #[test]
    fn explicit_window_matches_default() {
        let (points, scalars) = random_instance(12, 19);
        let reference = eval_with(&points, &scalars, Strategy::Naive);
        for w in [1, 4, 8, 13, 16] {
            let table = MsmTable::with_window(&points, w);
            assert_eq!(table.window(), w);
            assert_eq!(table.eval(&scalars), reference, "window {w}");
        }
    }

    #[test]
    fn table_metadata() {
        let (points, _) = random_instance(6, 3);
        let table = MsmTable::with_window(&points, 8);
        assert_eq!(table.len(), 6);
        assert!(!table.is_empty());
        assert_eq!(table.base_point(0).unwrap(), points[0]);
        assert_eq!(table.base_point(5).unwrap(), points[5]);
        assert!(table.base_point(6).is_none());
        assert!(table.memory_bytes() > 0);
    }

    #[test]
    #[should_panic(expected = "different point set")]
    fn mismatched_table_rejected() {
        let (points_a, _) = random_instance(4, 1);
        let (points_b, scalars) = random_instance(4, 2);
        let table = MsmTable::build(&points_a);
        Msm::new(&points_b).with_table(&table).eval(&scalars);
    }

    #[test]
    fn both_curves_agree() {
        let mut rng = StdRng::seed_from_u64(55);
        let points: Vec<Affine<Secp256r1>> = (0..40).map(|_| Affine::random(&mut rng)).collect();
        let scalars: Vec<Scalar<Secp256r1>> = (0..40)
            .map(|_| Scalar::<Secp256r1>::random(&mut rng))
            .collect();
        let reference = Msm::new(&points)
            .with_strategy(Strategy::Naive)
            .eval(&scalars);
        for s in ALL_STRATEGIES {
            assert_eq!(
                Msm::new(&points).with_strategy(s).eval(&scalars),
                reference,
                "{s:?}"
            );
        }
        assert_eq!(MsmTable::build(&points).eval(&scalars), reference);
    }

    #[cfg(feature = "rayon")]
    #[test]
    fn parallel_is_bit_identical_to_serial() {
        // The acceptance property: with the rayon feature on, the parallel
        // reduction returns the same group element as the serial path, and
        // the canonical (affine / serialized) forms match byte for byte.
        let (points, scalars) = random_instance(700, 2024);
        let table = MsmTable::build(&points);
        let serial = table.eval_parallel(&scalars, false);
        let parallel = table.eval_parallel(&scalars, true);
        assert_eq!(serial, parallel);
        assert_eq!(
            serial.to_affine().to_compressed(),
            parallel.to_affine().to_compressed()
        );

        let serial = Msm::new(&points)
            .with_strategy(Strategy::BatchAffine)
            .with_parallel(false)
            .eval(&scalars);
        let parallel = Msm::new(&points)
            .with_strategy(Strategy::BatchAffine)
            .with_parallel(true)
            .eval(&scalars);
        assert_eq!(serial, parallel);
        assert_eq!(
            serial.to_affine().to_compressed(),
            parallel.to_affine().to_compressed()
        );
    }

    #[test]
    fn window_size_monotone() {
        let mut last = 0;
        for n in [1, 10, 100, 1_000, 10_000, 100_000] {
            let w = window_size(n);
            assert!(w >= last, "window size should not shrink with n");
            assert!((1..=16).contains(&w));
            last = w;
        }
    }
}
