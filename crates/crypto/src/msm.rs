//! Multi-scalar multiplication (MSM): computing `Σ kᵢ·Pᵢ`.
//!
//! Pedersen vector commitments are exactly one MSM, so this is the hot path
//! the paper identifies as the verifiability bottleneck (§V, Fig. 3). Three
//! strategies are provided:
//!
//! * [`msm_naive`] — one scalar multiplication per term, summed. This models
//!   the paper's "rather straight-forward" Bouncy Castle implementation and
//!   is the baseline in the `ablate_msm` bench.
//! * [`msm_wnaf`] — same structure but shares the wNAF ladder; a modest
//!   constant-factor improvement.
//! * [`msm_pippenger`] — bucket method with an adaptive window, the
//!   multi-exponentiation optimization the paper cites as future work
//!   ([Möller '01; Borges et al. '17]).
//!
//! [`msm_auto`] picks a strategy by input size and is what the commitment
//! code uses.

use crate::curve::{Affine, Curve, Jacobian, Scalar};

/// Naive MSM: independent double-and-add per term.
///
/// # Panics
///
/// Panics if `points` and `scalars` have different lengths.
pub fn msm_naive<C: Curve>(points: &[Affine<C>], scalars: &[Scalar<C>]) -> Jacobian<C> {
    assert_eq!(
        points.len(),
        scalars.len(),
        "points/scalars length mismatch"
    );
    let mut acc = Jacobian::identity();
    for (p, k) in points.iter().zip(scalars) {
        // Plain binary double-and-add, deliberately unoptimized.
        let bits = k.to_canonical();
        let mut term = Jacobian::identity();
        for i in (0..bits.bit_len()).rev() {
            term = term.double();
            if bits.bit(i) {
                term = term.add_affine(p);
            }
        }
        acc = acc.add(&term);
    }
    acc
}

/// MSM using a per-term width-5 wNAF ladder.
///
/// # Panics
///
/// Panics if `points` and `scalars` have different lengths.
pub fn msm_wnaf<C: Curve>(points: &[Affine<C>], scalars: &[Scalar<C>]) -> Jacobian<C> {
    assert_eq!(
        points.len(),
        scalars.len(),
        "points/scalars length mismatch"
    );
    let mut acc = Jacobian::identity();
    for (p, k) in points.iter().zip(scalars) {
        acc = acc.add(&p.mul(k));
    }
    acc
}

/// Pippenger bucket MSM.
///
/// Splits each 256-bit scalar into windows of `c` bits, accumulates points
/// into per-window buckets, and combines buckets with the running-sum trick.
/// Cost is roughly `256/c · (2^c + n)` point additions, versus `n · 256`
/// for the naive method.
///
/// # Panics
///
/// Panics if `points` and `scalars` have different lengths.
pub fn msm_pippenger<C: Curve>(points: &[Affine<C>], scalars: &[Scalar<C>]) -> Jacobian<C> {
    assert_eq!(
        points.len(),
        scalars.len(),
        "points/scalars length mismatch"
    );
    let n = points.len();
    if n == 0 {
        return Jacobian::identity();
    }
    let c = window_size(n);
    let windows = 256usize.div_ceil(c);
    let canonical: Vec<_> = scalars.iter().map(|s| s.to_canonical()).collect();

    let mut window_sums = Vec::with_capacity(windows);
    for w in 0..windows {
        // Buckets 1..2^c−1 (bucket 0 contributes nothing).
        let mut buckets = vec![Jacobian::<C>::identity(); (1 << c) - 1];
        for (k, p) in canonical.iter().zip(points) {
            let digit = window_digit(k, w, c);
            if digit != 0 {
                buckets[digit - 1] = buckets[digit - 1].add_affine(p);
            }
        }
        // Running-sum trick: Σ i·Bᵢ with 2·(2^c − 1) additions.
        let mut running = Jacobian::identity();
        let mut sum = Jacobian::identity();
        for bucket in buckets.iter().rev() {
            running = running.add(bucket);
            sum = sum.add(&running);
        }
        window_sums.push(sum);
    }

    // Combine: result = Σ_w (window_sum_w << (w·c)), highest window first.
    let mut acc = Jacobian::identity();
    for sum in window_sums.iter().rev() {
        for _ in 0..c {
            acc = acc.double();
        }
        acc = acc.add(sum);
    }
    acc
}

/// Extracts the `w`-th `c`-bit window of `k` as an unsigned digit.
fn window_digit(k: &crate::bigint::U256, w: usize, c: usize) -> usize {
    let start = w * c;
    let mut digit = 0usize;
    for bit in (start..(start + c).min(256)).rev() {
        digit = (digit << 1) | k.bit(bit) as usize;
    }
    digit
}

/// Chooses the Pippenger window size for `n` terms (≈ log₂ n − 2, clamped).
fn window_size(n: usize) -> usize {
    let log = usize::BITS as usize - n.leading_zeros() as usize; // ⌈log2⌉-ish
    log.saturating_sub(2).clamp(1, 16)
}

/// Picks an MSM strategy by input size: wNAF for small inputs (where
/// Pippenger's bucket setup dominates) and Pippenger otherwise.
pub fn msm_auto<C: Curve>(points: &[Affine<C>], scalars: &[Scalar<C>]) -> Jacobian<C> {
    if points.len() < 32 {
        msm_wnaf(points, scalars)
    } else {
        msm_pippenger(points, scalars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::Secp256k1;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    type C = Secp256k1;

    fn random_instance(n: usize, seed: u64) -> (Vec<Affine<C>>, Vec<Scalar<C>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let points: Vec<_> = (0..n).map(|_| Affine::<C>::random(&mut rng)).collect();
        let scalars: Vec<_> = (0..n).map(|_| Scalar::<C>::random(&mut rng)).collect();
        (points, scalars)
    }

    #[test]
    fn empty_input_is_identity() {
        assert!(msm_naive::<C>(&[], &[]).is_identity());
        assert!(msm_wnaf::<C>(&[], &[]).is_identity());
        assert!(msm_pippenger::<C>(&[], &[]).is_identity());
    }

    #[test]
    fn single_term_matches_scalar_mul() {
        let (points, scalars) = random_instance(1, 1);
        let expect = points[0].mul(&scalars[0]);
        assert_eq!(msm_naive(&points, &scalars), expect);
        assert_eq!(msm_pippenger(&points, &scalars), expect);
    }

    #[test]
    fn all_strategies_agree_small() {
        for n in [2, 3, 7, 16] {
            let (points, scalars) = random_instance(n, n as u64);
            let naive = msm_naive(&points, &scalars);
            assert_eq!(msm_wnaf(&points, &scalars), naive, "wnaf n={n}");
            assert_eq!(msm_pippenger(&points, &scalars), naive, "pippenger n={n}");
            assert_eq!(msm_auto(&points, &scalars), naive, "auto n={n}");
        }
    }

    #[test]
    fn all_strategies_agree_medium() {
        let (points, scalars) = random_instance(100, 99);
        let naive = msm_naive(&points, &scalars);
        assert_eq!(msm_wnaf(&points, &scalars), naive);
        assert_eq!(msm_pippenger(&points, &scalars), naive);
    }

    #[test]
    fn zero_scalars_yield_identity() {
        let (points, _) = random_instance(8, 42);
        let zeros = vec![Scalar::<C>::ZERO; 8];
        assert!(msm_pippenger(&points, &zeros).is_identity());
        assert!(msm_naive(&points, &zeros).is_identity());
    }

    #[test]
    fn sparse_scalars() {
        // Mostly zeros with a couple of small values — exercises empty buckets.
        let (points, _) = random_instance(50, 7);
        let mut scalars = vec![Scalar::<C>::ZERO; 50];
        scalars[3] = Scalar::<C>::from_u64(2);
        scalars[47] = Scalar::<C>::from_u64(1 << 30);
        let expect = points[3]
            .mul(&scalars[3])
            .add(&points[47].mul(&scalars[47]));
        assert_eq!(msm_pippenger(&points, &scalars), expect);
    }

    #[test]
    fn window_digit_extraction() {
        let k = crate::bigint::U256::from_u64(0b1011_0110);
        assert_eq!(window_digit(&k, 0, 4), 0b0110);
        assert_eq!(window_digit(&k, 1, 4), 0b1011);
        assert_eq!(window_digit(&k, 2, 4), 0);
    }

    #[test]
    fn window_size_monotone() {
        let mut last = 0;
        for n in [1, 10, 100, 1_000, 10_000, 100_000] {
            let w = window_size(n);
            assert!(w >= last, "window size should not shrink with n");
            assert!((1..=16).contains(&w));
            last = w;
        }
    }

    #[test]
    fn repeated_points_accumulate() {
        // Same point many times with scalar 1 = n·P.
        let mut rng = StdRng::seed_from_u64(64);
        let p = Affine::<C>::random(&mut rng);
        let n = rng.gen_range(33..80); // force the Pippenger path in msm_auto
        let points = vec![p; n];
        let scalars = vec![Scalar::<C>::ONE; n];
        let expect = p.mul(&Scalar::<C>::from_u64(n as u64));
        assert_eq!(msm_auto(&points, &scalars), expect);
    }
}
