//! Fixed-point quantization of gradient values into commitment scalars.
//!
//! Pedersen commitments operate over a prime field, while gradients are
//! floating-point vectors. To make commitment addition match gradient
//! addition, each `f32` is scaled by `2^FRACTIONAL_BITS`, rounded to an
//! integer, and embedded into the scalar field with negatives mapped to
//! `n - |v|`. Field addition then agrees with signed fixed-point addition as
//! long as accumulated magnitudes stay far below `n / 2` — trivially true
//! for any realistic number of trainers, since `n ≈ 2^256` and each term is
//! below `2^63`.
//!
//! Aggregators sum *quantized* values, the directory verifies commitments
//! over the same quantized domain, and trainers dequantize after download,
//! so the verifiable path and the numeric path can never diverge.

use crate::bigint::U256;
use crate::curve::{Curve, Scalar};
use crate::field::{FieldParams, Fp};

/// Number of fractional bits in the fixed-point representation.
///
/// 24 bits keeps quantization error below `6e-8` per element while leaving
/// ~38 bits of integer headroom inside an `i64` before field embedding.
pub const FRACTIONAL_BITS: u32 = 24;

/// Scale factor `2^FRACTIONAL_BITS`.
pub const SCALE: f64 = (1u64 << FRACTIONAL_BITS) as f64;

/// A quantized gradient value: a signed fixed-point integer.
///
/// Kept as an explicit newtype so protocol code can sum gradients cheaply in
/// the integer domain (what IPFS merge nodes do) and only embed into the
/// field when committing.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, Default, PartialOrd, Ord)]
pub struct Quantized(pub i64);

impl Quantized {
    /// Quantizes an `f32` (or any value convertible to `f64`).
    pub fn from_f64(v: f64) -> Quantized {
        Quantized((v * SCALE).round() as i64)
    }

    /// Recovers the real value.
    pub fn to_f64(self) -> f64 {
        self.0 as f64 / SCALE
    }

    /// Saturating addition (sums of honest gradients never saturate; the
    /// guard exists so adversarial inputs cannot cause UB-adjacent wrapping).
    pub fn saturating_add(self, rhs: Quantized) -> Quantized {
        Quantized(self.0.saturating_add(rhs.0))
    }

    /// Embeds the signed value into the scalar field of curve `C`.
    pub fn to_scalar<C: Curve>(self) -> Scalar<C> {
        Fp::from_i64(self.0)
    }

    /// Extracts a signed value back out of a field element, interpreting
    /// canonical values above `n/2` as negative. Returns `None` if the
    /// magnitude does not fit in an `i64` (which honest protocol data never
    /// produces).
    pub fn from_scalar<C: Curve>(s: &Scalar<C>) -> Option<Quantized> {
        let canonical = s.to_canonical();
        let half = <C::Scalar as FieldParams>::MODULUS.shr(1);
        if canonical.const_cmp(&half) <= 0 {
            let v = canonical.to_u128()?;
            i64::try_from(v).ok().map(Quantized)
        } else {
            let neg = <C::Scalar as FieldParams>::MODULUS.wrapping_sub(&canonical);
            let v = neg.to_u128()?;
            i64::try_from(v).ok().map(|x| Quantized(-x))
        }
    }
}

/// Quantizes a slice of `f32` gradient values.
pub fn quantize_vector(values: &[f32]) -> Vec<Quantized> {
    values
        .iter()
        .map(|&v| Quantized::from_f64(v as f64))
        .collect()
}

/// Dequantizes back to `f32`.
pub fn dequantize_vector(values: &[Quantized]) -> Vec<f32> {
    values.iter().map(|q| q.to_f64() as f32).collect()
}

/// Element-wise sum of quantized vectors (the aggregation operation).
///
/// # Panics
///
/// Panics if the vectors have different lengths.
pub fn sum_quantized(vectors: &[Vec<Quantized>]) -> Vec<Quantized> {
    let Some(first) = vectors.first() else {
        return Vec::new();
    };
    let mut acc = first.clone();
    for v in &vectors[1..] {
        assert_eq!(v.len(), acc.len(), "gradient length mismatch");
        for (a, b) in acc.iter_mut().zip(v) {
            *a = a.saturating_add(*b);
        }
    }
    acc
}

/// Converts a quantized vector into scalars for committing.
pub fn to_scalars<C: Curve>(values: &[Quantized]) -> Vec<Scalar<C>> {
    values.iter().map(|q| q.to_scalar::<C>()).collect()
}

/// Serializes a quantized vector to little-endian bytes (8 per element);
/// the wire format gradients travel in over the storage network.
pub fn encode(values: &[Quantized]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 8);
    for q in values {
        out.extend_from_slice(&q.0.to_le_bytes());
    }
    out
}

/// Deserializes a quantized vector; `None` if the length is not a multiple
/// of 8 bytes.
pub fn decode(bytes: &[u8]) -> Option<Vec<Quantized>> {
    if !bytes.len().is_multiple_of(8) {
        return None;
    }
    Some(
        bytes
            .chunks_exact(8)
            .map(|c| Quantized(i64::from_le_bytes(c.try_into().expect("chunk of 8"))))
            .collect(),
    )
}

/// The largest canonical scalar considered "positive" when decoding; kept
/// public so tests can probe the boundary.
pub fn positive_bound<C: Curve>() -> U256 {
    <C::Scalar as FieldParams>::MODULUS.shr(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curve::Secp256k1;
    use crate::pedersen::CommitKey;
    use proptest::prelude::*;

    type C = Secp256k1;

    #[test]
    fn round_trip_exact_values() {
        for v in [-1.0f64, 0.0, 1.0, 0.5, -0.25, 1234.0, -4096.5] {
            let q = Quantized::from_f64(v);
            assert_eq!(q.to_f64(), v, "value {v} should be exactly representable");
        }
    }

    #[test]
    fn quantization_error_bounded() {
        for v in [
            0.1f64,
            -0.3,
            std::f64::consts::PI,
            -std::f64::consts::E,
            1e-6,
        ] {
            let err = (Quantized::from_f64(v).to_f64() - v).abs();
            assert!(err <= 0.5 / SCALE, "error {err} too large for {v}");
        }
    }

    #[test]
    fn scalar_embedding_round_trip() {
        for raw in [0i64, 1, -1, 42, -42, i64::MAX / 2, i64::MIN / 2] {
            let q = Quantized(raw);
            let s = q.to_scalar::<C>();
            assert_eq!(Quantized::from_scalar::<C>(&s), Some(q), "raw={raw}");
        }
    }

    #[test]
    fn scalar_addition_matches_integer_addition() {
        let a = Quantized::from_f64(1.5);
        let b = Quantized::from_f64(-2.25);
        let s = a.to_scalar::<C>() + b.to_scalar::<C>();
        assert_eq!(Quantized::from_scalar::<C>(&s), Some(Quantized(a.0 + b.0)));
        assert_eq!(Quantized::from_scalar::<C>(&s).unwrap().to_f64(), -0.75);
    }

    #[test]
    fn huge_scalar_rejected() {
        // A scalar of magnitude ~2^200 does not fit in i64.
        let big = Scalar::<C>::from_canonical(U256::from_u64(1).shl(200));
        assert_eq!(Quantized::from_scalar::<C>(&big), None);
    }

    #[test]
    fn sum_quantized_matches_elementwise() {
        let vs = vec![
            quantize_vector(&[1.0, 2.0, 3.0]),
            quantize_vector(&[0.5, -1.0, 0.0]),
            quantize_vector(&[-0.25, 0.25, 1.0]),
        ];
        let sum = sum_quantized(&vs);
        let real = dequantize_vector(&sum);
        assert_eq!(real, vec![1.25, 1.25, 4.0]);
    }

    #[test]
    fn sum_of_empty_is_empty() {
        assert!(sum_quantized(&[]).is_empty());
    }

    #[test]
    fn encode_decode_round_trip() {
        let v = quantize_vector(&[0.0, 1.5, -3.25, 1e4]);
        assert_eq!(decode(&encode(&v)), Some(v));
        assert_eq!(decode(&[1, 2, 3]), None);
        assert_eq!(decode(&[]), Some(Vec::new()));
    }

    #[test]
    fn commitment_respects_quantized_sum() {
        // The end-to-end property the protocol relies on: committing to each
        // trainer's quantized gradient and combining equals committing to the
        // quantized sum.
        let key = CommitKey::<C>::setup(4, b"q");
        let g1 = quantize_vector(&[0.5, -1.0, 2.0, 0.0]);
        let g2 = quantize_vector(&[1.5, 1.0, -2.0, 3.0]);
        let c1 = key.commit(&to_scalars::<C>(&g1));
        let c2 = key.commit(&to_scalars::<C>(&g2));
        let sum = sum_quantized(&[g1, g2]);
        assert_eq!(c1.combine(&c2), key.commit(&to_scalars::<C>(&sum)));
    }

    proptest! {
        #[test]
        fn prop_embedding_round_trip(raw in any::<i64>()) {
            // saturating domain: avoid i64::MIN whose abs overflows
            prop_assume!(raw != i64::MIN);
            let q = Quantized(raw);
            prop_assert_eq!(Quantized::from_scalar::<C>(&q.to_scalar::<C>()), Some(q));
        }

        #[test]
        fn prop_field_add_matches_i128_add(a in -(1i64<<40)..(1i64<<40), b in -(1i64<<40)..(1i64<<40)) {
            let s = Quantized(a).to_scalar::<C>() + Quantized(b).to_scalar::<C>();
            prop_assert_eq!(Quantized::from_scalar::<C>(&s), Some(Quantized(a + b)));
        }

        #[test]
        fn prop_encode_decode(vals in proptest::collection::vec(any::<i64>(), 0..64)) {
            let v: Vec<Quantized> = vals.into_iter().map(Quantized).collect();
            prop_assert_eq!(decode(&encode(&v)), Some(v));
        }
    }
}
