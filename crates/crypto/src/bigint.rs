//! Fixed-width unsigned big integers used by the field and curve arithmetic.
//!
//! Only the operations required by the rest of the crate are implemented:
//! 256-bit values ([`U256`]) for field elements and scalars, and 512-bit
//! values ([`U512`]) as multiplication intermediates. All core operations are
//! `const fn` so curve constants can be parsed and pre-processed at compile
//! time.

use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer stored as four little-endian `u64` limbs.
///
/// `limbs[0]` is the least significant limb. The type is plain data: all
/// arithmetic is exposed through explicit methods (wrapping or
/// carry-reporting), never through operator overloads, so call sites always
/// state their overflow intent.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct U256 {
    limbs: [u64; 4],
}

/// A 512-bit unsigned integer; the result type of a full 256×256 multiply.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Default)]
pub struct U512 {
    limbs: [u64; 8],
}

impl U256 {
    /// The value 0.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// The value 1.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };
    /// The maximum representable value, `2^256 - 1`.
    pub const MAX: U256 = U256 {
        limbs: [u64::MAX; 4],
    };

    /// Creates a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> U256 {
        U256 { limbs }
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.limbs
    }

    /// Creates a value from a `u64`.
    pub const fn from_u64(v: u64) -> U256 {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Creates a value from a `u128`.
    pub const fn from_u128(v: u128) -> U256 {
        U256 {
            limbs: [v as u64, (v >> 64) as u64, 0, 0],
        }
    }

    /// Parses a big-endian hex string (exactly 64 hex digits, no prefix).
    ///
    /// # Panics
    ///
    /// Panics at compile time (or run time) if the string is not exactly 64
    /// valid hexadecimal characters.
    pub const fn from_be_hex(s: &str) -> U256 {
        let bytes = s.as_bytes();
        assert!(bytes.len() == 64, "expected exactly 64 hex digits");
        let mut limbs = [0u64; 4];
        let mut i = 0;
        while i < 64 {
            let c = bytes[i];
            let digit = match c {
                b'0'..=b'9' => c - b'0',
                b'a'..=b'f' => c - b'a' + 10,
                b'A'..=b'F' => c - b'A' + 10,
                _ => panic!("invalid hex digit"),
            } as u64;
            // Hex digit i contributes to bit position (63 - i) * 4.
            let bit = (63 - i) * 4;
            limbs[bit / 64] |= digit << (bit % 64);
            i += 1;
        }
        U256 { limbs }
    }

    /// Creates a value from 32 big-endian bytes.
    pub const fn from_be_bytes(bytes: [u8; 32]) -> U256 {
        let mut limbs = [0u64; 4];
        let mut i = 0;
        while i < 32 {
            let limb = 3 - i / 8;
            limbs[limb] = (limbs[limb] << 8) | bytes[i] as u64;
            i += 1;
        }
        U256 { limbs }
    }

    /// Serializes to 32 big-endian bytes.
    pub const fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        let mut i = 0;
        while i < 4 {
            let limb = self.limbs[3 - i];
            let mut j = 0;
            while j < 8 {
                out[i * 8 + j] = (limb >> (56 - 8 * j)) as u8;
                j += 1;
            }
            i += 1;
        }
        out
    }

    /// Returns `true` if the value is zero.
    pub const fn is_zero(&self) -> bool {
        self.limbs[0] == 0 && self.limbs[1] == 0 && self.limbs[2] == 0 && self.limbs[3] == 0
    }

    /// Returns bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub const fn bit(&self, i: usize) -> bool {
        assert!(i < 256);
        (self.limbs[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Extracts `width` bits starting at bit `start` (0 = least
    /// significant) as a `u64`, reading limb-at-a-time rather than
    /// bit-by-bit. Bits past position 255 read as zero, so windows may
    /// overhang the top. This is the digit-decomposition primitive of the
    /// windowed MSM paths, where it replaces a per-bit loop on the hot
    /// path.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or greater than 64, or if `start >= 256`.
    pub const fn bits(&self, start: usize, width: usize) -> u64 {
        assert!(width >= 1 && width <= 64, "width must be in 1..=64");
        assert!(start < 256, "start must be below 256");
        let limb = start / 64;
        let shift = start % 64;
        let mut v = self.limbs[limb] >> shift;
        // Bits spilling into the next limb (guard shift == 0: `<< 64` is UB).
        if shift != 0 && limb + 1 < 4 {
            v |= self.limbs[limb + 1] << (64 - shift);
        }
        if width == 64 {
            v
        } else {
            v & ((1u64 << width) - 1)
        }
    }

    /// Number of bits required to represent the value (0 for zero).
    pub const fn bit_len(&self) -> usize {
        let mut i = 3;
        loop {
            if self.limbs[i] != 0 {
                return i * 64 + (64 - self.limbs[i].leading_zeros() as usize);
            }
            if i == 0 {
                return 0;
            }
            i -= 1;
        }
    }

    /// `self + rhs`, returning the sum and the carry-out bit.
    pub const fn adc(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        let mut i = 0;
        while i < 4 {
            let sum = self.limbs[i] as u128 + rhs.limbs[i] as u128 + carry as u128;
            out[i] = sum as u64;
            carry = (sum >> 64) as u64;
            i += 1;
        }
        (U256 { limbs: out }, carry != 0)
    }

    /// `self - rhs`, returning the difference and the borrow-out bit.
    pub const fn sbb(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        let mut i = 0;
        while i < 4 {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
            i += 1;
        }
        (U256 { limbs: out }, borrow != 0)
    }

    /// Wrapping addition (mod 2^256).
    pub const fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.adc(rhs).0
    }

    /// Wrapping subtraction (mod 2^256).
    pub const fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.sbb(rhs).0
    }

    /// Full 256×256 → 512-bit multiplication.
    pub const fn widening_mul(&self, rhs: &U256) -> U512 {
        let mut out = [0u64; 8];
        let mut i = 0;
        while i < 4 {
            let mut carry = 0u64;
            let mut j = 0;
            while j < 4 {
                let prod = self.limbs[i] as u128 * rhs.limbs[j] as u128
                    + out[i + j] as u128
                    + carry as u128;
                out[i + j] = prod as u64;
                carry = (prod >> 64) as u64;
                j += 1;
            }
            out[i + 4] = carry;
            i += 1;
        }
        U512 { limbs: out }
    }

    /// Compares two values (const-friendly version of `Ord`).
    ///
    /// Returns -1, 0, or 1.
    pub const fn const_cmp(&self, rhs: &U256) -> i8 {
        let mut i = 3;
        loop {
            if self.limbs[i] < rhs.limbs[i] {
                return -1;
            }
            if self.limbs[i] > rhs.limbs[i] {
                return 1;
            }
            if i == 0 {
                return 0;
            }
            i -= 1;
        }
    }

    /// Shifts right by `n` bits (`n < 256`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 256`.
    pub const fn shr(&self, n: usize) -> U256 {
        assert!(n < 256);
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        let mut i = 0;
        while i + limb_shift < 4 {
            let mut v = self.limbs[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 4 {
                v |= self.limbs[i + limb_shift + 1] << (64 - bit_shift);
            }
            out[i] = v;
            i += 1;
        }
        U256 { limbs: out }
    }

    /// Shifts left by `n` bits (`n < 256`).
    ///
    /// # Panics
    ///
    /// Panics if `n >= 256`.
    pub const fn shl(&self, n: usize) -> U256 {
        assert!(n < 256);
        let limb_shift = n / 64;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        let mut i = 3;
        loop {
            if i >= limb_shift {
                let mut v = self.limbs[i - limb_shift] << bit_shift;
                if bit_shift > 0 && i - limb_shift >= 1 {
                    v |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
                }
                out[i] = v;
            }
            if i == 0 {
                break;
            }
            i -= 1;
        }
        U256 { limbs: out }
    }

    /// Bitwise XOR — the Kademlia distance metric used by the storage
    /// layer's provider routing.
    pub const fn xor(&self, rhs: &U256) -> U256 {
        U256 {
            limbs: [
                self.limbs[0] ^ rhs.limbs[0],
                self.limbs[1] ^ rhs.limbs[1],
                self.limbs[2] ^ rhs.limbs[2],
                self.limbs[3] ^ rhs.limbs[3],
            ],
        }
    }

    /// Number of leading zero bits (256 for zero).
    pub const fn leading_zeros(&self) -> u32 {
        let mut total = 0u32;
        let mut i = 3;
        loop {
            if self.limbs[i] != 0 {
                return total + self.limbs[i].leading_zeros();
            }
            total += 64;
            if i == 0 {
                return total;
            }
            i -= 1;
        }
    }

    /// Reduces `self` modulo `m`, assuming `m > 2^255` (so at most one
    /// subtraction is required). This covers both secp curve moduli and both
    /// group orders.
    ///
    /// # Panics
    ///
    /// Panics if `m` does not have its top bit set.
    pub const fn reduce_once(&self, m: &U256) -> U256 {
        assert!(m.bit(255), "reduce_once requires a modulus > 2^255");
        if self.const_cmp(m) >= 0 {
            self.wrapping_sub(m)
        } else {
            *self
        }
    }

    /// Interprets the low 64 bits as `u64` (discards upper bits).
    pub const fn low_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Returns `self` as `u128`, if it fits.
    pub fn to_u128(&self) -> Option<u128> {
        if self.limbs[2] != 0 || self.limbs[3] != 0 {
            None
        } else {
            Some(self.limbs[0] as u128 | (self.limbs[1] as u128) << 64)
        }
    }
}

impl U512 {
    /// The value 0.
    pub const ZERO: U512 = U512 { limbs: [0; 8] };

    /// Creates a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 8]) -> U512 {
        U512 { limbs }
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; 8] {
        self.limbs
    }

    /// Splits into (low 256 bits, high 256 bits).
    pub const fn split(&self) -> (U256, U256) {
        (
            U256 {
                limbs: [self.limbs[0], self.limbs[1], self.limbs[2], self.limbs[3]],
            },
            U256 {
                limbs: [self.limbs[4], self.limbs[5], self.limbs[6], self.limbs[7]],
            },
        )
    }

    /// Widens a `U256` into the low half of a `U512`.
    pub const fn from_u256(v: &U256) -> U512 {
        let l = v.limbs;
        U512 {
            limbs: [l[0], l[1], l[2], l[3], 0, 0, 0, 0],
        }
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.const_cmp(other) {
            -1 => Ordering::Less,
            0 => Ordering::Equal,
            _ => Ordering::Greater,
        }
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "U256(0x{:016x}{:016x}{:016x}{:016x})",
            self.limbs[3], self.limbs[2], self.limbs[1], self.limbs[0]
        )
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "0x{:016x}{:016x}{:016x}{:016x}",
            self.limbs[3], self.limbs[2], self.limbs[1], self.limbs[0]
        )
    }
}

impl fmt::Debug for U512 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (lo, hi) = self.split();
        write!(f, "U512(hi={hi:?}, lo={lo:?})")
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> U256 {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> U256 {
        U256::from_u128(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hex_round_trip() {
        let v =
            U256::from_be_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
        assert_eq!(v.limbs()[0], 0xfffffffefffffc2f);
        assert_eq!(v.limbs()[3], 0xffffffffffffffff);
        let bytes = v.to_be_bytes();
        assert_eq!(U256::from_be_bytes(bytes), v);
    }

    #[test]
    fn from_be_bytes_matches_hex() {
        let mut bytes = [0u8; 32];
        bytes[31] = 0x2a;
        assert_eq!(U256::from_be_bytes(bytes), U256::from_u64(42));
    }

    #[test]
    fn add_with_carry() {
        let (sum, carry) = U256::MAX.adc(&U256::ONE);
        assert!(carry);
        assert_eq!(sum, U256::ZERO);
        let (sum, carry) = U256::from_u64(1).adc(&U256::from_u64(2));
        assert!(!carry);
        assert_eq!(sum, U256::from_u64(3));
    }

    #[test]
    fn sub_with_borrow() {
        let (diff, borrow) = U256::ZERO.sbb(&U256::ONE);
        assert!(borrow);
        assert_eq!(diff, U256::MAX);
        let (diff, borrow) = U256::from_u64(5).sbb(&U256::from_u64(3));
        assert!(!borrow);
        assert_eq!(diff, U256::from_u64(2));
    }

    #[test]
    fn widening_mul_small() {
        let a = U256::from_u64(u64::MAX);
        let b = U256::from_u64(u64::MAX);
        let prod = a.widening_mul(&b);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        let expect = ((u64::MAX as u128) * (u64::MAX as u128)).to_be_bytes();
        let (lo, hi) = prod.split();
        assert_eq!(hi, U256::ZERO);
        assert_eq!(lo.to_u128().unwrap().to_be_bytes(), expect);
    }

    #[test]
    fn widening_mul_max() {
        // (2^256-1)^2 = 2^512 - 2^257 + 1
        let prod = U256::MAX.widening_mul(&U256::MAX);
        let (lo, hi) = prod.split();
        assert_eq!(lo, U256::ONE);
        // hi = 2^256 - 2 (all ones except lowest bit).
        let mut expect = U256::MAX;
        expect = expect.wrapping_sub(&U256::ONE);
        assert_eq!(hi, expect);
    }

    #[test]
    fn shifts() {
        let v = U256::from_u64(1).shl(200);
        assert!(v.bit(200));
        assert_eq!(v.shr(200), U256::ONE);
        assert_eq!(U256::from_u64(0b1010).shr(1), U256::from_u64(0b101));
        assert_eq!(U256::from_u64(1).shl(64).limbs()[1], 1);
    }

    #[test]
    fn bits_window_extraction() {
        let v =
            U256::from_be_hex("00000000000000000000000000000000deadbeefcafebabe0123456789abcdef");
        // Windows agree with the per-bit reference at every offset/width.
        for start in (0..256).step_by(7) {
            for width in [1usize, 4, 11, 13, 52, 64] {
                let mut expect = 0u64;
                let mut i = width;
                while i > 0 {
                    i -= 1;
                    if start + i < 256 {
                        expect = (expect << 1) | v.bit(start + i) as u64;
                    } else {
                        expect <<= 1;
                    }
                }
                assert_eq!(v.bits(start, width), expect, "start={start} width={width}");
            }
        }
        // Limb boundary spill and top-of-range overhang.
        assert_eq!(U256::MAX.bits(60, 8), 0xFF);
        assert_eq!(U256::MAX.bits(250, 10), 0x3F);
        assert_eq!(U256::ONE.bits(0, 64), 1);
    }

    #[test]
    fn bit_len() {
        assert_eq!(U256::ZERO.bit_len(), 0);
        assert_eq!(U256::ONE.bit_len(), 1);
        assert_eq!(U256::from_u64(255).bit_len(), 8);
        assert_eq!(U256::MAX.bit_len(), 256);
        assert_eq!(U256::ONE.shl(255).bit_len(), 256);
    }

    #[test]
    fn ordering() {
        let a = U256::from_u64(1).shl(192);
        let b = U256::from_u64(u64::MAX);
        assert!(a > b);
        assert!(b < a);
        assert_eq!(a.cmp(&a), Ordering::Equal);
    }

    #[test]
    fn reduce_once_mod_top_heavy() {
        let p =
            U256::from_be_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
        assert_eq!(p.reduce_once(&p), U256::ZERO);
        let below = p.wrapping_sub(&U256::ONE);
        assert_eq!(below.reduce_once(&p), below);
        let above = p.wrapping_add(&U256::from_u64(7));
        assert_eq!(above.reduce_once(&p), U256::from_u64(7));
    }

    #[test]
    fn u512_split_round_trip() {
        let a =
            U256::from_be_hex("00000000000000010000000000000002000000000000000300000000000000f4");
        let w = U512::from_u256(&a);
        let (lo, hi) = w.split();
        assert_eq!(lo, a);
        assert_eq!(hi, U256::ZERO);
    }

    #[test]
    fn const_evaluation_works() {
        // Ensure the const-fn paths actually evaluate at compile time.
        const P: U256 =
            U256::from_be_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
        const SUM: U256 = P.wrapping_add(&U256::ONE);
        assert!(SUM.const_cmp(&P) > 0);
    }
}
