//! # dfl-crypto
//!
//! Cryptographic substrate for the decentralized federated-learning system:
//! everything the paper's verifiable-aggregation layer (§IV) needs, built
//! from scratch.
//!
//! * [`sha256`] — FIPS 180-4 SHA-256 (IPFS content addressing + the Fig. 3
//!   hashing baseline).
//! * [`bigint`] — fixed-width 256/512-bit integers.
//! * [`field`] — Montgomery-form prime fields, generic over the modulus.
//! * [`curve`] — secp256k1 and secp256r1 with Jacobian arithmetic and wNAF
//!   scalar multiplication.
//! * [`msm`] — one [`msm::Msm`] entry point over naive, wNAF, Pippenger,
//!   and batch-affine kernels, plus fixed-base precomputation tables
//!   ([`msm::MsmTable`]) and opt-in parallelism (`rayon` feature; the
//!   paper's cited future-work optimization, implemented with ablations).
//! * [`pedersen`] — homomorphic Pedersen vector commitments (§IV-A) with
//!   single and batched verification.
//! * [`schnorr`] — Schnorr signatures authenticating directory
//!   registrations (without which forged registrations would defeat §IV).
//! * [`quantize`] — fixed-point embedding of gradients into scalars so that
//!   field addition matches gradient addition.
//!
//! ## Example: verifiable aggregation in miniature
//!
//! ```
//! use dfl_crypto::curve::Secp256k1;
//! use dfl_crypto::pedersen::{CommitKey, Commitment};
//! use dfl_crypto::quantize::{quantize_vector, sum_quantized, to_scalars};
//!
//! // Two trainers commit to their gradients.
//! let key = CommitKey::<Secp256k1>::setup(3, b"task-42");
//! let g1 = quantize_vector(&[0.5, -1.0, 2.0]);
//! let g2 = quantize_vector(&[1.0, 0.25, -0.5]);
//! let c1 = key.commit(&to_scalars::<Secp256k1>(&g1));
//! let c2 = key.commit(&to_scalars::<Secp256k1>(&g2));
//!
//! // The directory accumulates commitments; the aggregator sums gradients.
//! let accumulated = Commitment::accumulate([&c1, &c2]);
//! let aggregated = sum_quantized(&[g1, g2]);
//!
//! // Verification: the aggregate opens the accumulated commitment, so no
//! // gradient was dropped or altered.
//! assert!(key.verify(&to_scalars::<Secp256k1>(&aggregated), &accumulated));
//! ```

pub mod bigint;
pub mod curve;
pub mod field;
pub mod msm;
pub mod pedersen;
pub mod quantize;
pub mod schnorr;
pub mod sha256;

pub use curve::{Affine, Curve, Jacobian, Scalar, Secp256k1, Secp256r1};
pub use msm::{Msm, MsmTable, Strategy};
pub use pedersen::{CommitKey, Commitment};
pub use quantize::Quantized;
pub use schnorr::{Signature, SigningKey, VerifyingKey};
pub use sha256::Sha256;
