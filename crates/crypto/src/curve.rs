//! Short-Weierstrass elliptic curves secp256k1 and secp256r1.
//!
//! These are the two curves the paper evaluates Pedersen commitments on
//! (§V, Fig. 3). Points are represented in affine form ([`Affine`]) for
//! storage/serialization and Jacobian projective form ([`Jacobian`]) for
//! arithmetic. Scalar multiplication uses a width-5 wNAF ladder; the
//! multi-scalar optimizations live in [`crate::msm`].

use std::fmt;
use std::hash::Hash;

use rand::Rng;

use crate::bigint::U256;
use crate::field::{FieldParams, Fp};

// ---------------------------------------------------------------------------
// Field parameter definitions for both curves
// ---------------------------------------------------------------------------

/// Base field of secp256k1: `p = 2^256 - 2^32 - 977`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Secp256k1Base;

impl FieldParams for Secp256k1Base {
    const MODULUS: U256 =
        U256::from_be_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f");
    const NAME: &'static str = "Fp-k1";
}

/// Scalar field of secp256k1 (the group order `n`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Secp256k1Scalar;

impl FieldParams for Secp256k1Scalar {
    const MODULUS: U256 =
        U256::from_be_hex("fffffffffffffffffffffffffffffffebaaedce6af48a03bbfd25e8cd0364141");
    const NAME: &'static str = "Fr-k1";
}

/// Base field of secp256r1 (NIST P-256).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Secp256r1Base;

impl FieldParams for Secp256r1Base {
    const MODULUS: U256 =
        U256::from_be_hex("ffffffff00000001000000000000000000000000ffffffffffffffffffffffff");
    const NAME: &'static str = "Fp-r1";
}

/// Scalar field of secp256r1 (the group order `n`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Secp256r1Scalar;

impl FieldParams for Secp256r1Scalar {
    const MODULUS: U256 =
        U256::from_be_hex("ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");
    const NAME: &'static str = "Fr-r1";
}

// ---------------------------------------------------------------------------
// Curve trait and the two instances
// ---------------------------------------------------------------------------

/// A short-Weierstrass curve `y² = x³ + a·x + b` over a 256-bit prime field
/// with prime group order (cofactor 1, true for both secp256 curves).
pub trait Curve: 'static + Copy + Clone + fmt::Debug + PartialEq + Eq + Hash + Send + Sync {
    /// Base field the coordinates live in.
    type Base: FieldParams;
    /// Scalar field (integers modulo the group order).
    type Scalar: FieldParams;
    /// Human-readable curve name.
    const NAME: &'static str;

    /// Curve coefficient `a`.
    fn a() -> Fp<Self::Base>;
    /// Curve coefficient `b`.
    fn b() -> Fp<Self::Base>;
    /// The standard base point `G`.
    fn generator() -> Affine<Self>;
}

/// The secp256k1 curve (`a = 0`, `b = 7`), as used by Bitcoin.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Secp256k1;

impl Curve for Secp256k1 {
    type Base = Secp256k1Base;
    type Scalar = Secp256k1Scalar;
    const NAME: &'static str = "secp256k1";

    fn a() -> Fp<Secp256k1Base> {
        Fp::ZERO
    }

    fn b() -> Fp<Secp256k1Base> {
        Fp::from_u64(7)
    }

    fn generator() -> Affine<Secp256k1> {
        Affine::from_xy_unchecked(
            Fp::from_canonical(U256::from_be_hex(
                "79be667ef9dcbbac55a06295ce870b07029bfcdb2dce28d959f2815b16f81798",
            )),
            Fp::from_canonical(U256::from_be_hex(
                "483ada7726a3c4655da4fbfc0e1108a8fd17b448a68554199c47d08ffb10d4b8",
            )),
        )
    }
}

/// The secp256r1 / NIST P-256 curve (`a = p - 3`).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Secp256r1;

impl Curve for Secp256r1 {
    type Base = Secp256r1Base;
    type Scalar = Secp256r1Scalar;
    const NAME: &'static str = "secp256r1";

    fn a() -> Fp<Secp256r1Base> {
        // a = p - 3
        Fp::from_i64(-3)
    }

    fn b() -> Fp<Secp256r1Base> {
        Fp::from_canonical(U256::from_be_hex(
            "5ac635d8aa3a93e7b3ebbd55769886bc651d06b0cc53b0f63bce3c3e27d2604b",
        ))
    }

    fn generator() -> Affine<Secp256r1> {
        Affine::from_xy_unchecked(
            Fp::from_canonical(U256::from_be_hex(
                "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296",
            )),
            Fp::from_canonical(U256::from_be_hex(
                "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5",
            )),
        )
    }
}

/// Scalar type alias for a curve.
pub type Scalar<C> = Fp<<C as Curve>::Scalar>;
/// Base-field element type alias for a curve.
pub type BaseField<C> = Fp<<C as Curve>::Base>;

// ---------------------------------------------------------------------------
// Affine points
// ---------------------------------------------------------------------------

/// A point in affine coordinates, or the point at infinity.
#[derive(Copy, Clone, PartialEq, Eq, Hash)]
pub struct Affine<C: Curve> {
    x: BaseField<C>,
    y: BaseField<C>,
    infinity: bool,
}

impl<C: Curve> Affine<C> {
    /// The point at infinity (group identity).
    pub fn identity() -> Affine<C> {
        Affine {
            x: Fp::ZERO,
            y: Fp::ZERO,
            infinity: true,
        }
    }

    /// Builds a point from coordinates without checking the curve equation.
    ///
    /// Used for trusted constants; prefer [`Affine::from_xy`] elsewhere.
    pub fn from_xy_unchecked(x: BaseField<C>, y: BaseField<C>) -> Affine<C> {
        Affine {
            x,
            y,
            infinity: false,
        }
    }

    /// Builds a point from coordinates, returning `None` if `(x, y)` is not
    /// on the curve.
    pub fn from_xy(x: BaseField<C>, y: BaseField<C>) -> Option<Affine<C>> {
        let p = Affine::from_xy_unchecked(x, y);
        if p.is_on_curve() {
            Some(p)
        } else {
            None
        }
    }

    /// X coordinate.
    ///
    /// # Panics
    ///
    /// Panics if called on the point at infinity.
    pub fn x(&self) -> BaseField<C> {
        assert!(!self.infinity, "infinity has no affine coordinates");
        self.x
    }

    /// Y coordinate.
    ///
    /// # Panics
    ///
    /// Panics if called on the point at infinity.
    pub fn y(&self) -> BaseField<C> {
        assert!(!self.infinity, "infinity has no affine coordinates");
        self.y
    }

    /// Returns `true` for the point at infinity.
    pub fn is_identity(&self) -> bool {
        self.infinity
    }

    /// Checks the curve equation `y² = x³ + a·x + b`.
    pub fn is_on_curve(&self) -> bool {
        if self.infinity {
            return true;
        }
        let lhs = self.y.square();
        let rhs = (self.x.square() + C::a()) * self.x + C::b();
        lhs == rhs
    }

    /// Point negation (reflects over the x axis).
    pub fn negate(&self) -> Affine<C> {
        if self.infinity {
            *self
        } else {
            Affine {
                x: self.x,
                y: -self.y,
                infinity: false,
            }
        }
    }

    /// Converts to Jacobian coordinates.
    pub fn to_jacobian(&self) -> Jacobian<C> {
        if self.infinity {
            Jacobian::identity()
        } else {
            Jacobian {
                x: self.x,
                y: self.y,
                z: Fp::ONE,
            }
        }
    }

    /// Scalar multiplication `k · self` using a wNAF ladder.
    pub fn mul(&self, k: &Scalar<C>) -> Jacobian<C> {
        self.to_jacobian().mul(k)
    }

    /// SEC1 compressed encoding: `02/03 || x` (33 bytes), or `[0x00; 33]`
    /// for the identity (a non-standard but unambiguous sentinel).
    pub fn to_compressed(&self) -> [u8; 33] {
        let mut out = [0u8; 33];
        if self.infinity {
            return out;
        }
        out[0] = if self.y.to_canonical().bit(0) {
            0x03
        } else {
            0x02
        };
        out[1..].copy_from_slice(&self.x.to_be_bytes());
        out
    }

    /// Decodes a SEC1 compressed encoding produced by
    /// [`Affine::to_compressed`]. Returns `None` for malformed or
    /// off-curve input.
    pub fn from_compressed(bytes: &[u8; 33]) -> Option<Affine<C>> {
        if bytes.iter().all(|&b| b == 0) {
            return Some(Affine::identity());
        }
        let sign = match bytes[0] {
            0x02 => false,
            0x03 => true,
            _ => return None,
        };
        let mut xb = [0u8; 32];
        xb.copy_from_slice(&bytes[1..]);
        let x = Fp::from_be_bytes(xb)?;
        let rhs = (x.square() + C::a()) * x + C::b();
        let mut y = rhs.sqrt()?;
        if y.to_canonical().bit(0) != sign {
            y = -y;
        }
        Some(Affine {
            x,
            y,
            infinity: false,
        })
    }

    /// Samples a random point by multiplying the generator by a random
    /// scalar (uniform over the group since the order is prime).
    pub fn random<R: Rng + ?Sized>(rng: &mut R) -> Affine<C> {
        let k = Scalar::<C>::random(rng);
        C::generator().mul(&k).to_affine()
    }
}

impl<C: Curve> fmt::Debug for Affine<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.infinity {
            write!(f, "{}::Infinity", C::NAME)
        } else {
            write!(
                f,
                "{}({}, {})",
                C::NAME,
                self.x.to_canonical(),
                self.y.to_canonical()
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Jacobian points
// ---------------------------------------------------------------------------

/// A point in Jacobian projective coordinates `(X, Y, Z)` representing the
/// affine point `(X/Z², Y/Z³)`; `Z = 0` encodes the identity.
#[derive(Copy, Clone)]
pub struct Jacobian<C: Curve> {
    x: BaseField<C>,
    y: BaseField<C>,
    z: BaseField<C>,
}

impl<C: Curve> Jacobian<C> {
    /// The group identity.
    pub fn identity() -> Jacobian<C> {
        Jacobian {
            x: Fp::ONE,
            y: Fp::ONE,
            z: Fp::ZERO,
        }
    }

    /// Returns `true` for the identity.
    pub fn is_identity(&self) -> bool {
        self.z.is_zero()
    }

    /// Point doubling (general-`a` Jacobian formulas).
    pub fn double(&self) -> Jacobian<C> {
        if self.is_identity() || self.y.is_zero() {
            return Jacobian::identity();
        }
        let xx = self.x.square();
        let yy = self.y.square();
        let yyyy = yy.square();
        let zz = self.z.square();
        // d = 2·((x + yy)² − xx − yyyy) = 4·x·yy
        let d = ((self.x + yy).square() - xx - yyyy).double();
        let e = xx.double() + xx + C::a() * zz.square();
        let x3 = e.square() - d.double();
        let eight_yyyy = yyyy.double().double().double();
        let y3 = e * (d - x3) - eight_yyyy;
        let z3 = (self.y * self.z).double();
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// General point addition.
    pub fn add(&self, rhs: &Jacobian<C>) -> Jacobian<C> {
        if self.is_identity() {
            return *rhs;
        }
        if rhs.is_identity() {
            return *self;
        }
        let z1z1 = self.z.square();
        let z2z2 = rhs.z.square();
        let u1 = self.x * z2z2;
        let u2 = rhs.x * z1z1;
        let s1 = self.y * rhs.z * z2z2;
        let s2 = rhs.y * self.z * z1z1;
        if u1 == u2 {
            return if s1 == s2 {
                self.double()
            } else {
                Jacobian::identity()
            };
        }
        let h = u2 - u1;
        let i = h.double().square();
        let j = h * i;
        let r = (s2 - s1).double();
        let v = u1 * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (s1 * j).double();
        let z3 = ((self.z + rhs.z).square() - z1z1 - z2z2) * h;
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Mixed addition with an affine point (saves field operations when one
    /// operand has `Z = 1`, the common case in MSM buckets).
    pub fn add_affine(&self, rhs: &Affine<C>) -> Jacobian<C> {
        if rhs.is_identity() {
            return *self;
        }
        if self.is_identity() {
            return rhs.to_jacobian();
        }
        let z1z1 = self.z.square();
        let u2 = rhs.x * z1z1;
        let s2 = rhs.y * self.z * z1z1;
        if self.x == u2 {
            return if self.y == s2 {
                self.double()
            } else {
                Jacobian::identity()
            };
        }
        let h = u2 - self.x;
        let hh = h.square();
        let i = hh.double().double();
        let j = h * i;
        let r = (s2 - self.y).double();
        let v = self.x * i;
        let x3 = r.square() - j - v.double();
        let y3 = r * (v - x3) - (self.y * j).double();
        let z3 = (self.z + h).square() - z1z1 - hh;
        Jacobian {
            x: x3,
            y: y3,
            z: z3,
        }
    }

    /// Point negation.
    pub fn negate(&self) -> Jacobian<C> {
        Jacobian {
            x: self.x,
            y: -self.y,
            z: self.z,
        }
    }

    /// Scalar multiplication via width-5 wNAF.
    pub fn mul(&self, k: &Scalar<C>) -> Jacobian<C> {
        const W: u32 = 5;
        let naf = wnaf_digits(&k.to_canonical(), W);
        // Precompute odd multiples 1P, 3P, ... (2^(w-1) − 1)P.
        let table_len = 1usize << (W - 1);
        let mut table = Vec::with_capacity(table_len);
        table.push(*self);
        let twice = self.double();
        for i in 1..table_len {
            table.push(table[i - 1].add(&twice));
        }
        let mut acc = Jacobian::identity();
        for &digit in naf.iter().rev() {
            acc = acc.double();
            if digit > 0 {
                acc = acc.add(&table[(digit as usize - 1) / 2]);
            } else if digit < 0 {
                acc = acc.add(&table[((-digit) as usize - 1) / 2].negate());
            }
        }
        acc
    }

    /// Converts back to affine coordinates (one field inversion).
    pub fn to_affine(&self) -> Affine<C> {
        if self.is_identity() {
            return Affine::identity();
        }
        let zinv = self.z.invert().expect("nonzero z");
        let zinv2 = zinv.square();
        Affine {
            x: self.x * zinv2,
            y: self.y * zinv2 * zinv,
            infinity: false,
        }
    }

    /// Sums an iterator of points.
    pub fn sum<I: IntoIterator<Item = Jacobian<C>>>(iter: I) -> Jacobian<C> {
        iter.into_iter()
            .fold(Jacobian::identity(), |acc, p| acc.add(&p))
    }

    /// Converts a slice of points to affine form with a *single* field
    /// inversion via [`Fp::batch_invert`], instead of one inversion per
    /// point as repeated [`Jacobian::to_affine`] calls would cost.
    /// Identity points map to the affine identity.
    ///
    /// Affine coordinates are canonical, so the output is bit-identical to
    /// normalizing each point individually — this is what makes results of
    /// differently-parenthesized (e.g. parallel) MSM reductions comparable
    /// byte-for-byte.
    pub fn batch_normalize(points: &[Jacobian<C>]) -> Vec<Affine<C>> {
        let mut zs: Vec<BaseField<C>> = points.iter().map(|p| p.z).collect();
        Fp::batch_invert(&mut zs);
        points
            .iter()
            .zip(&zs)
            .map(|(p, zinv)| {
                if p.is_identity() {
                    Affine::identity()
                } else {
                    let zinv2 = zinv.square();
                    Affine {
                        x: p.x * zinv2,
                        y: p.y * zinv2 * *zinv,
                        infinity: false,
                    }
                }
            })
            .collect()
    }
}

impl<C: Curve> PartialEq for Jacobian<C> {
    fn eq(&self, other: &Self) -> bool {
        // Compare in the projective equivalence class: X1·Z2² == X2·Z1², etc.
        match (self.is_identity(), other.is_identity()) {
            (true, true) => true,
            (true, false) | (false, true) => false,
            (false, false) => {
                let z1z1 = self.z.square();
                let z2z2 = other.z.square();
                self.x * z2z2 == other.x * z1z1
                    && self.y * z2z2 * other.z == other.y * z1z1 * self.z
            }
        }
    }
}

impl<C: Curve> Eq for Jacobian<C> {}

impl<C: Curve> fmt::Debug for Jacobian<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Jacobian({:?})", self.to_affine())
    }
}

/// Computes the width-`w` non-adjacent form of `k` (least-significant digit
/// first). Digits are odd and in `(-2^(w-1), 2^(w-1))`; at most one of any
/// `w` consecutive digits is nonzero.
pub(crate) fn wnaf_digits(k: &U256, w: u32) -> Vec<i8> {
    assert!((2..=8).contains(&w), "wNAF width must be in 2..=8");
    let mut k = *k;
    let mut digits = Vec::with_capacity(257);
    let window = 1u64 << w;
    let half = 1u64 << (w - 1);
    while !k.is_zero() {
        if k.bit(0) {
            let low = k.low_u64() & (window - 1);
            let digit: i64 = if low >= half {
                low as i64 - window as i64
            } else {
                low as i64
            };
            digits.push(digit as i8);
            if digit > 0 {
                k = k.wrapping_sub(&U256::from_u64(digit as u64));
            } else {
                k = k.wrapping_add(&U256::from_u64((-digit) as u64));
            }
        } else {
            digits.push(0);
        }
        k = k.shr(1);
    }
    digits
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn g_k1() -> Affine<Secp256k1> {
        Secp256k1::generator()
    }

    fn g_r1() -> Affine<Secp256r1> {
        Secp256r1::generator()
    }

    #[test]
    fn generators_on_curve() {
        assert!(g_k1().is_on_curve());
        assert!(g_r1().is_on_curve());
    }

    #[test]
    fn known_vector_2g_secp256k1() {
        let two_g = g_k1().to_jacobian().double().to_affine();
        assert_eq!(
            two_g.x().to_canonical(),
            U256::from_be_hex("c6047f9441ed7d6d3045406e95c07cd85c778e4b8cef3ca7abac09b95c709ee5")
        );
        assert_eq!(
            two_g.y().to_canonical(),
            U256::from_be_hex("1ae168fea63dc339a3c58419466ceaeef7f632653266d0e1236431a950cfe52a")
        );
    }

    #[test]
    fn known_vector_2g_secp256r1() {
        let two_g = g_r1().to_jacobian().double().to_affine();
        assert_eq!(
            two_g.x().to_canonical(),
            U256::from_be_hex("7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978")
        );
        assert_eq!(
            two_g.y().to_canonical(),
            U256::from_be_hex("07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1")
        );
    }

    #[test]
    fn order_times_generator_is_identity() {
        // n·G = O on both curves: multiply by n−1 and add G.
        fn check<C: Curve>() {
            let n_minus_1 =
                Scalar::<C>::from_canonical(C::Scalar::MODULUS.wrapping_sub(&U256::ONE));
            let p = C::generator().mul(&n_minus_1);
            let sum = p.add_affine(&C::generator());
            assert!(sum.is_identity(), "curve {}", C::NAME);
            // (n−1)·G = −G as well.
            assert_eq!(p.to_affine(), C::generator().negate());
        }
        check::<Secp256k1>();
        check::<Secp256r1>();
    }

    #[test]
    fn double_and_add_agree() {
        // 5G computed two ways.
        let g = g_k1().to_jacobian();
        let four_g = g.double().double();
        let five_g_a = four_g.add(&g);
        let five_g_b = g_k1().mul(&Scalar::<Secp256k1>::from_u64(5));
        assert_eq!(five_g_a, five_g_b);
        assert!(five_g_a.to_affine().is_on_curve());
    }

    #[test]
    fn mixed_addition_agrees_with_full() {
        let g = g_k1();
        let p = g.mul(&Scalar::<Secp256k1>::from_u64(11));
        let full = p.add(&g.to_jacobian());
        let mixed = p.add_affine(&g);
        assert_eq!(full, mixed);
    }

    #[test]
    fn add_inverse_gives_identity() {
        let p = g_k1().mul(&Scalar::<Secp256k1>::from_u64(42));
        let sum = p.add(&p.negate());
        assert!(sum.is_identity());
        // Mixed addition of an affine inverse too.
        let pa = p.to_affine();
        assert!(p.add_affine(&pa.negate()).is_identity());
    }

    #[test]
    fn mul_by_zero_and_one() {
        let g = g_k1();
        assert!(g.mul(&Scalar::<Secp256k1>::ZERO).is_identity());
        assert_eq!(g.mul(&Scalar::<Secp256k1>::ONE).to_affine(), g);
    }

    #[test]
    fn identity_is_additive_identity() {
        let id = Jacobian::<Secp256k1>::identity();
        let p = g_k1().to_jacobian();
        assert_eq!(id.add(&p), p);
        assert_eq!(p.add(&id), p);
        assert!(id.double().is_identity());
        assert_eq!(id.to_affine(), Affine::identity());
    }

    #[test]
    fn scalar_mul_distributes_over_scalar_add() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..5 {
            let a = Scalar::<Secp256k1>::random(&mut rng);
            let b = Scalar::<Secp256k1>::random(&mut rng);
            let lhs = g_k1().mul(&(a + b));
            let rhs = g_k1().mul(&a).add(&g_k1().mul(&b));
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn batch_normalize_matches_individual() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut points: Vec<Jacobian<Secp256k1>> = (0..9)
            .map(|_| {
                let k = Scalar::<Secp256k1>::random(&mut rng);
                g_k1().mul(&k)
            })
            .collect();
        points.insert(3, Jacobian::identity());
        points.push(Jacobian::identity());
        let normalized = Jacobian::batch_normalize(&points);
        assert_eq!(normalized.len(), points.len());
        for (j, a) in points.iter().zip(&normalized) {
            assert_eq!(j.to_affine(), *a);
        }
        assert!(normalized[3].is_identity());
        assert!(Jacobian::<Secp256k1>::batch_normalize(&[]).is_empty());
    }

    #[test]
    fn compressed_round_trip() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            let p = Affine::<Secp256k1>::random(&mut rng);
            let decoded = Affine::from_compressed(&p.to_compressed()).unwrap();
            assert_eq!(decoded, p);
        }
        // Identity round-trips through the sentinel encoding.
        let id = Affine::<Secp256r1>::identity();
        assert_eq!(Affine::from_compressed(&id.to_compressed()).unwrap(), id);
        // Garbage prefix rejected.
        let mut bad = g_k1().to_compressed();
        bad[0] = 0x05;
        assert!(Affine::<Secp256k1>::from_compressed(&bad).is_none());
    }

    #[test]
    fn from_xy_rejects_off_curve() {
        let x = Fp::<Secp256k1Base>::from_u64(1);
        let y = Fp::<Secp256k1Base>::from_u64(1);
        assert!(Affine::<Secp256k1>::from_xy(x, y).is_none());
    }

    #[test]
    fn wnaf_reconstructs_scalar() {
        for w in 2..=8 {
            for val in [0u64, 1, 2, 3, 31, 32, 255, 0xDEADBEEF] {
                let digits = wnaf_digits(&U256::from_u64(val), w);
                let mut acc: i128 = 0;
                for &d in digits.iter().rev() {
                    acc = acc * 2 + d as i128;
                }
                assert_eq!(acc, val as i128, "w={w} val={val}");
            }
        }
    }

    #[test]
    fn wnaf_digit_constraints() {
        let digits = wnaf_digits(
            &U256::from_be_hex("00000000000000000000000000000000deadbeefcafebabe0123456789abcdef"),
            5,
        );
        for &d in &digits {
            if d != 0 {
                assert!(d % 2 != 0, "wNAF digits must be odd");
                assert!((d as i32).abs() < 16);
            }
        }
        // Non-adjacency within a window.
        for window in digits.windows(5) {
            let nonzero = window.iter().filter(|&&d| d != 0).count();
            assert!(nonzero <= 1, "at most one nonzero digit per width-5 window");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn prop_scalar_mul_matches_double_and_add(k in 1u64..2000) {
            // Reference: repeated addition.
            let g = g_k1().to_jacobian();
            let mut reference = Jacobian::<Secp256k1>::identity();
            for _ in 0..k {
                reference = reference.add(&g);
            }
            let fast = g_k1().mul(&Scalar::<Secp256k1>::from_u64(k));
            prop_assert_eq!(fast, reference);
        }

        #[test]
        fn prop_addition_commutative(a in 1u64..10_000, b in 1u64..10_000) {
            let pa = g_k1().mul(&Scalar::<Secp256k1>::from_u64(a));
            let pb = g_k1().mul(&Scalar::<Secp256k1>::from_u64(b));
            prop_assert_eq!(pa.add(&pb), pb.add(&pa));
        }
    }
}
