//! Property tests: every MSM kernel — wNAF, Jacobian Pippenger,
//! batch-affine Pippenger, the precomputed table, and (with the `rayon`
//! feature) the parallel reductions — must be *bit-identical* to the naive
//! double-and-add reference, on both protocol curves.
//!
//! Equality is checked on the canonical compressed encoding, not just the
//! projective equivalence class, because commitments travel as serialized
//! bytes: two peers on different code paths must produce the same wire
//! bytes, or verification breaks between them.
//!
//! Scalars mix random field elements with the adversarial edge values
//! (zero and `group order − 1`); vector shapes cover empty, length 1, and
//! bucket-sized inputs.

use dfl_crypto::bigint::U256;
use dfl_crypto::curve::{Affine, Curve, Jacobian, Scalar, Secp256k1, Secp256r1};
use dfl_crypto::field::FieldParams;
use dfl_crypto::msm::{Msm, MsmTable, Strategy};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Decodes one `(point_seed, scalar_code)` pair into an MSM term.
/// `scalar_code % 8`: 0 → zero, 1 → group order − 1 (the largest
/// canonical scalar, exercising every top digit window), else random.
fn term<C: Curve>(point_seed: u64, scalar_code: u64) -> (Affine<C>, Scalar<C>) {
    let point = Affine::<C>::random(&mut StdRng::seed_from_u64(point_seed));
    let scalar = match scalar_code % 8 {
        0 => Scalar::<C>::ZERO,
        1 => Scalar::<C>::from_canonical(<C as Curve>::Scalar::MODULUS.wrapping_sub(&U256::ONE)),
        _ => Scalar::<C>::random(&mut StdRng::seed_from_u64(scalar_code)),
    };
    (point, scalar)
}

/// Canonical wire form of an MSM result.
fn encode<C: Curve>(p: Jacobian<C>) -> [u8; 33] {
    p.to_affine().to_compressed()
}

/// Asserts every kernel matches naive on this instance, byte for byte.
fn assert_all_paths_agree<C: Curve>(pairs: &[(u64, u64)]) -> Result<(), TestCaseError> {
    let (points, scalars): (Vec<Affine<C>>, Vec<Scalar<C>>) =
        pairs.iter().map(|&(p, s)| term::<C>(p, s)).unzip();
    let reference = encode(
        Msm::new(&points)
            .with_strategy(Strategy::Naive)
            .eval(&scalars),
    );
    for strategy in [
        Strategy::Wnaf,
        Strategy::Pippenger,
        Strategy::BatchAffine,
        Strategy::Auto,
    ] {
        prop_assert_eq!(
            encode(Msm::new(&points).with_strategy(strategy).eval(&scalars)),
            reference,
            "{:?} diverges from naive on {} ({} terms)",
            strategy,
            C::NAME,
            points.len()
        );
    }

    let table = MsmTable::build(&points);
    prop_assert_eq!(
        encode(table.eval_parallel(&scalars, false)),
        reference,
        "table path diverges from naive on {}",
        C::NAME
    );
    prop_assert_eq!(
        encode(Msm::new(&points).with_table(&table).eval(&scalars)),
        reference,
        "auto-with-table path diverges from naive on {}",
        C::NAME
    );

    #[cfg(feature = "rayon")]
    {
        prop_assert_eq!(
            encode(table.eval_parallel(&scalars, true)),
            reference,
            "parallel table path not bit-identical on {}",
            C::NAME
        );
        prop_assert_eq!(
            encode(
                Msm::new(&points)
                    .with_strategy(Strategy::BatchAffine)
                    .with_parallel(true)
                    .eval(&scalars)
            ),
            reference,
            "parallel batch-affine path not bit-identical on {}",
            C::NAME
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn prop_all_kernels_match_naive(
        pairs in proptest::collection::vec((1u64..u64::MAX, 0u64..u64::MAX), 0..48),
    ) {
        assert_all_paths_agree::<Secp256k1>(&pairs)?;
        assert_all_paths_agree::<Secp256r1>(&pairs)?;
    }

    #[test]
    fn prop_single_term_matches_naive(seed in 1u64..u64::MAX, code in 0u64..u64::MAX) {
        assert_all_paths_agree::<Secp256k1>(&[(seed, code)])?;
        assert_all_paths_agree::<Secp256r1>(&[(seed, code)])?;
    }

    #[test]
    fn prop_all_zero_scalars_give_identity(
        seeds in proptest::collection::vec(1u64..u64::MAX, 1..20),
    ) {
        // scalar_code 0 → Scalar::ZERO for every term.
        let pairs: Vec<(u64, u64)> = seeds.iter().map(|&s| (s, 0u64)).collect();
        assert_all_paths_agree::<Secp256k1>(&pairs)?;
        assert_all_paths_agree::<Secp256r1>(&pairs)?;
        let (points, scalars): (Vec<Affine<Secp256k1>>, Vec<Scalar<Secp256k1>>) =
            pairs.iter().map(|&(p, s)| term::<Secp256k1>(p, s)).unzip();
        prop_assert!(Msm::new(&points).eval(&scalars).is_identity());
    }

    #[test]
    fn prop_order_minus_one_scalars(
        seeds in proptest::collection::vec(1u64..u64::MAX, 1..20),
    ) {
        // scalar_code 1 → n − 1 ≡ −1 for every term: the result must be
        // the negated point sum, and every kernel must agree on it.
        let pairs: Vec<(u64, u64)> = seeds.iter().map(|&s| (s, 1u64)).collect();
        assert_all_paths_agree::<Secp256k1>(&pairs)?;
        assert_all_paths_agree::<Secp256r1>(&pairs)?;
        let (points, scalars): (Vec<Affine<Secp256r1>>, Vec<Scalar<Secp256r1>>) =
            pairs.iter().map(|&(p, s)| term::<Secp256r1>(p, s)).unzip();
        let mut negated_sum = Jacobian::<Secp256r1>::identity();
        for p in &points {
            negated_sum = negated_sum.add_affine(&p.negate());
        }
        prop_assert_eq!(
            encode(Msm::new(&points).eval(&scalars)),
            encode(negated_sum)
        );
    }
}

#[test]
fn empty_input_all_paths() {
    let points: Vec<Affine<Secp256k1>> = Vec::new();
    let scalars: Vec<Scalar<Secp256k1>> = Vec::new();
    for strategy in [
        Strategy::Naive,
        Strategy::Wnaf,
        Strategy::Pippenger,
        Strategy::BatchAffine,
        Strategy::Auto,
    ] {
        assert!(
            Msm::new(&points)
                .with_strategy(strategy)
                .eval(&scalars)
                .is_identity(),
            "{strategy:?}"
        );
    }
    assert!(MsmTable::build(&points).eval(&scalars).is_identity());
}
