//! Kademlia-style XOR-metric routing for provider records.
//!
//! IPFS locates content through a Kademlia DHT: provider records for a CID
//! are stored on the nodes whose keys are XOR-closest to the CID, and
//! lookups walk greedily toward the target through k-bucket routing tables.
//! This module implements the metric, the routing table, and an iterative
//! lookup over a set of simulated tables; the networked storage layer
//! ([`crate::node`]) uses [`closest_nodes`] for provider placement and
//! record retrieval.

use std::collections::{HashMap, HashSet};

use dfl_crypto::bigint::U256;
use dfl_crypto::sha256::Sha256;
use dfl_netsim::NodeId;

/// A 256-bit DHT key (node identity or content coordinate).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Key(U256);

impl Key {
    /// Derives a node's key from its simulation id (hash of the id, so keys
    /// spread uniformly regardless of how ids were assigned).
    pub fn for_node(id: NodeId) -> Key {
        let mut h = Sha256::new();
        h.update(b"dfl-ipfs-node-key");
        h.update(&(id.index() as u64).to_be_bytes());
        Key(U256::from_be_bytes(h.finalize()))
    }

    /// Wraps a raw 256-bit value (e.g. a CID digest).
    pub const fn from_u256(v: U256) -> Key {
        Key(v)
    }

    /// XOR distance to another key.
    pub fn distance(&self, other: &Key) -> U256 {
        self.0.xor(&other.0)
    }

    /// The k-bucket index for a peer at this distance from us:
    /// `255 - leading_zeros(distance)`, or `None` for ourselves.
    pub fn bucket_index(&self, other: &Key) -> Option<usize> {
        let d = self.distance(other);
        if d.is_zero() {
            None
        } else {
            Some(255 - d.leading_zeros() as usize)
        }
    }
}

/// A Kademlia routing table: 256 k-buckets of peers keyed by XOR distance.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    own: Key,
    k: usize,
    buckets: Vec<Vec<(NodeId, Key)>>,
}

impl RoutingTable {
    /// Creates a table for a node with key `own` and bucket capacity `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(own: Key, k: usize) -> RoutingTable {
        assert!(k > 0, "bucket capacity must be positive");
        RoutingTable {
            own,
            k,
            buckets: vec![Vec::new(); 256],
        }
    }

    /// This node's key.
    pub fn own_key(&self) -> Key {
        self.own
    }

    /// Observes a peer: inserts it into its bucket if there is room (or it
    /// is already present). Returns `true` if the peer is tracked afterwards.
    pub fn observe(&mut self, id: NodeId, key: Key) -> bool {
        let Some(idx) = self.own.bucket_index(&key) else {
            return false; // never track ourselves
        };
        let bucket = &mut self.buckets[idx];
        if bucket.iter().any(|(existing, _)| *existing == id) {
            return true;
        }
        if bucket.len() < self.k {
            bucket.push((id, key));
            return true;
        }
        false
    }

    /// All known peers.
    pub fn peers(&self) -> impl Iterator<Item = (NodeId, Key)> + '_ {
        self.buckets.iter().flatten().copied()
    }

    /// Number of tracked peers.
    pub fn len(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// `true` when no peers are tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `n` known peers closest to `target`, nearest first.
    pub fn closest(&self, target: &Key, n: usize) -> Vec<(NodeId, Key)> {
        let mut peers: Vec<(NodeId, Key)> = self.peers().collect();
        peers.sort_by_key(|(_, k)| k.distance(target));
        peers.truncate(n);
        peers
    }
}

/// Selects the `n` nodes from `nodes` whose keys are closest to `target` —
/// the provider-record placement rule (and the §VI "uniform allocation of
/// gradients to nodes based on the hash" suggestion).
pub fn closest_nodes(nodes: &[(NodeId, Key)], target: &Key, n: usize) -> Vec<NodeId> {
    let mut sorted: Vec<(NodeId, Key)> = nodes.to_vec();
    sorted.sort_by_key(|(_, k)| k.distance(target));
    sorted.into_iter().take(n).map(|(id, _)| id).collect()
}

/// Result of a simulated iterative lookup.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LookupResult {
    /// The node that ended up closest to the target.
    pub nearest: NodeId,
    /// Nodes contacted, in contact order (excluding the start node).
    pub path: Vec<NodeId>,
}

/// Runs an iterative FIND_NODE from `start` toward `target` over a set of
/// routing tables, greedily hopping to the closest known peer each step.
/// Models lookup hop counts in a converged Kademlia network.
///
/// # Panics
///
/// Panics if `start` has no routing table.
pub fn iterative_lookup(
    tables: &HashMap<NodeId, RoutingTable>,
    start: NodeId,
    target: &Key,
) -> LookupResult {
    let mut current = start;
    let mut visited: HashSet<NodeId> = HashSet::new();
    visited.insert(start);
    let mut path = Vec::new();

    loop {
        let table = tables.get(&current).expect("node has a routing table");
        let mut best: Option<(NodeId, U256)> = None;
        for (peer, key) in table.closest(target, 8) {
            if visited.contains(&peer) {
                continue;
            }
            let d = key.distance(target);
            if best.as_ref().is_none_or(|(_, bd)| d < *bd) {
                best = Some((peer, d));
            }
        }
        let current_dist = table.own_key().distance(target);
        match best {
            Some((peer, d)) if d < current_dist => {
                visited.insert(peer);
                path.push(peer);
                current = peer;
            }
            _ => {
                return LookupResult {
                    nearest: current,
                    path,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn keys(n: usize) -> Vec<(NodeId, Key)> {
        (0..n)
            .map(|i| (NodeId(i), Key::for_node(NodeId(i))))
            .collect()
    }

    #[test]
    fn distance_metric_axioms() {
        let a = Key::for_node(NodeId(1));
        let b = Key::for_node(NodeId(2));
        let c = Key::for_node(NodeId(3));
        assert!(a.distance(&a).is_zero());
        assert_eq!(a.distance(&b), b.distance(&a));
        // XOR triangle equality: d(a,c) = d(a,b) XOR d(b,c).
        assert_eq!(a.distance(&c), a.distance(&b).xor(&b.distance(&c)));
    }

    #[test]
    fn node_keys_are_distinct_and_spread() {
        let ks = keys(64);
        let unique: HashSet<_> = ks.iter().map(|(_, k)| *k).collect();
        assert_eq!(unique.len(), 64);
    }

    #[test]
    fn bucket_index_matches_distance_magnitude() {
        let own = Key::for_node(NodeId(0));
        assert_eq!(own.bucket_index(&own), None);
        let other = Key::for_node(NodeId(1));
        let idx = own.bucket_index(&other).unwrap();
        let d = own.distance(&other);
        assert_eq!(idx, 255 - d.leading_zeros() as usize);
    }

    #[test]
    fn routing_table_capacity() {
        let own = Key::for_node(NodeId(0));
        let mut table = RoutingTable::new(own, 2);
        let mut accepted = 0;
        for (id, key) in keys(100).into_iter().skip(1) {
            if table.observe(id, key) {
                accepted += 1;
            }
        }
        assert_eq!(table.len(), accepted);
        // Every bucket holds at most k peers.
        for (id, key) in table.peers() {
            let idx = own.bucket_index(&key).unwrap();
            let in_bucket = table
                .peers()
                .filter(|(_, k)| own.bucket_index(k) == Some(idx))
                .count();
            assert!(in_bucket <= 2, "bucket {idx} overfull (peer {id})");
        }
        // Re-observing a tracked peer succeeds without growing.
        let before = table.len();
        let (id, key) = table.peers().next().unwrap();
        assert!(table.observe(id, key));
        assert_eq!(table.len(), before);
    }

    #[test]
    fn observe_self_rejected() {
        let own = Key::for_node(NodeId(5));
        let mut table = RoutingTable::new(own, 4);
        assert!(!table.observe(NodeId(5), own));
        assert!(table.is_empty());
    }

    #[test]
    fn closest_nodes_sorted_by_distance() {
        let nodes = keys(16);
        let target = Key::from_u256(dfl_crypto::bigint::U256::from_u64(0xABCD));
        let picked = closest_nodes(&nodes, &target, 4);
        assert_eq!(picked.len(), 4);
        // Verify they really are the 4 closest.
        let mut all: Vec<_> = nodes
            .iter()
            .map(|(id, k)| (k.distance(&target), *id))
            .collect();
        all.sort();
        let expect: Vec<NodeId> = all.into_iter().take(4).map(|(_, id)| id).collect();
        assert_eq!(picked, expect);
    }

    #[test]
    fn full_tables_lookup_one_hop() {
        // With complete routing tables the greedy lookup lands on the
        // globally closest node in ≤ 1 hop from anywhere.
        let nodes = keys(16);
        let mut tables = HashMap::new();
        for (id, key) in &nodes {
            let mut t = RoutingTable::new(*key, 16);
            for (oid, okey) in &nodes {
                t.observe(*oid, *okey);
            }
            tables.insert(*id, t);
        }
        let target = Key::from_u256(dfl_crypto::bigint::U256::from_u64(42));
        let global_best = closest_nodes(&nodes, &target, 1)[0];
        for (start, _) in &nodes {
            let result = iterative_lookup(&tables, *start, &target);
            assert_eq!(result.nearest, global_best);
            assert!(result.path.len() <= 1, "path {:?}", result.path);
        }
    }

    #[test]
    fn sparse_tables_lookup_logarithmic() {
        // k=3 buckets in a 64-node network: lookups still converge to the
        // best reachable node in a handful of hops.
        let nodes = keys(64);
        let mut tables = HashMap::new();
        for (id, key) in &nodes {
            let mut t = RoutingTable::new(*key, 3);
            for (oid, okey) in &nodes {
                t.observe(*oid, *okey);
            }
            tables.insert(*id, t);
        }
        let target = Key::for_node(NodeId(1000));
        let result = iterative_lookup(&tables, NodeId(0), &target);
        assert!(result.path.len() <= 10, "took {} hops", result.path.len());
        // The endpoint must be a local optimum: no peer it knows is closer.
        let end_table = &tables[&result.nearest];
        let end_dist = end_table.own_key().distance(&target);
        for (_, key) in end_table.peers() {
            assert!(key.distance(&target) >= end_dist || result.path.contains(&result.nearest));
        }
    }

    proptest! {
        #[test]
        fn prop_closest_nodes_deterministic_and_bounded(
            n in 1usize..32,
            take in 1usize..8,
            seed in any::<u64>(),
        ) {
            let nodes = keys(n);
            let target = Key::from_u256(dfl_crypto::bigint::U256::from_u64(seed));
            let a = closest_nodes(&nodes, &target, take);
            let b = closest_nodes(&nodes, &target, take);
            prop_assert_eq!(&a, &b);
            prop_assert_eq!(a.len(), take.min(n));
        }
    }
}
