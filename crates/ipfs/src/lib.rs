//! # dfl-ipfs
//!
//! A simulated decentralized storage network standing in for IPFS — the
//! indirect-communication substrate the modified IPLS protocol runs on
//! (§III of the paper).
//!
//! The protocol only relies on a small slice of IPFS, and this crate builds
//! exactly that slice, from scratch, over the [`dfl_netsim`] simulator:
//!
//! * [`cid`] / [`block`] — SHA-256 content addressing, integrity-checked
//!   blocks, a pinning block store.
//! * [`chunker`] — deterministic fixed-size chunk DAGs: a manifest block
//!   naming ordered child CIDs, verified out-of-order reassembly, and the
//!   content-addressing basis for cross-round upload dedup.
//! * [`kademlia`] — XOR-metric keys, k-bucket routing tables, iterative
//!   lookups; used for provider-record placement and uniform replica
//!   allocation.
//! * [`node`] — the networked storage node: put/get with cross-node
//!   resolution, replication, flood pub/sub, and the paper's
//!   **merge-and-download** pre-aggregation RPC (§III-E).
//! * [`merge`] — the pre-aggregation computation itself, shared between
//!   storage nodes and tests.
//!
//! Every retrieved block is re-hashed against its CID: the storage network
//! is assumed available but never trusted for correctness (§III-A).

pub mod block;
pub mod chunker;
pub mod cid;
pub mod kademlia;
pub mod merge;
pub mod node;

pub use block::{Block, BlockStore};
pub use chunker::{ChunkError, Manifest, Reassembly};
pub use cid::Cid;
pub use kademlia::Key;
pub use node::{
    IpfsActor, IpfsNode, IpfsWire, Outgoing, RetryPolicy, Topic, WireEmbed, CONTROL_BYTES,
};
