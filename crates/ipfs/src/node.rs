//! The networked storage node: put/get by CID, provider routing,
//! replication, flood pub/sub, and the merge-and-download RPC.
//!
//! [`IpfsNode`] is a pure state machine: [`IpfsNode::handle`] consumes one
//! wire message and returns the messages to send in response, so it can be
//! unit-tested without a simulator and embedded into any
//! [`dfl_netsim::Actor`] message type via the [`WireEmbed`] trait and the
//! ready-made [`IpfsActor`] wrapper.
//!
//! Protocol participants talk to an assigned node (their *gateway*):
//!
//! * **Put** — the gateway stores the block, announces a provider record on
//!   the XOR-closest nodes, optionally pushes replicas (uniformly allocated
//!   by CID, the §VI availability suggestion), and acks with the CID.
//! * **Get** — served locally when possible; otherwise the gateway resolves
//!   a provider through the record holders, fetches the block node-to-node,
//!   caches it, and responds. Retrieved bytes are always re-hashed: the
//!   storage network is trusted for availability, never for correctness.
//! * **Merge** — the §III-E pre-aggregation: sum a set of stored gradient
//!   blobs and return one blob.
//! * **Subscribe/Publish** — flood pub/sub used by aggregators to exchange
//!   partial-update hashes during synchronization (§IV-B).

use std::collections::{HashMap, HashSet};

use bytes::Bytes;

use dfl_netsim::{Actor, Context, Fault, NodeId, SimDuration};

use crate::block::{Block, BlockStore};
use crate::chunker::{self, Manifest};
use crate::cid::Cid;
use crate::kademlia::{closest_nodes, Key};
use crate::merge::merge_blobs;

/// Fixed per-message framing overhead charged on the simulated wire.
pub const CONTROL_BYTES: u64 = 100;

/// Bytes a CID occupies on the wire (SHA-256 digest).
pub const CID_BYTES: u64 = 32;

/// Bytes a node id occupies on the wire.
pub const NODE_ID_BYTES: u64 = 8;

/// Number of nodes that hold the provider record for each CID.
pub const RECORD_REPLICAS: usize = 2;

/// Client-side retry/failover policy for node-to-node requests
/// (provider-record lookups and block fetches).
///
/// A request leg that receives no reply within its timeout is retried
/// against the same peer with the timeout doubled; after
/// [`RetryPolicy::attempts_per_peer`] attempts the peer is declared dead,
/// its provider record is retracted (so records self-heal), and the
/// request fails over to the next untried peer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Timeout of the first attempt of each request leg. Must comfortably
    /// exceed the worst-case transfer time of a block under contention —
    /// a premature timeout wastes bandwidth on duplicate fetches.
    pub base_timeout: SimDuration,
    /// Attempts per peer (including the first) before failing over.
    pub attempts_per_peer: u32,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            base_timeout: SimDuration::from_secs(30),
            attempts_per_peer: 2,
        }
    }
}

/// A pub/sub topic name.
pub type Topic = String;

/// Wire messages of the storage layer.
#[derive(Clone, Debug)]
pub enum IpfsWire {
    // -- client → node ----------------------------------------------------
    /// Store `data`; push `replicate` total copies (1 = local only).
    Put {
        data: Bytes,
        req_id: u64,
        replicate: usize,
    },
    /// Retrieve the block with this CID.
    Get { cid: Cid, req_id: u64 },
    /// Merge-and-download: return the element-wise sum of these gradient
    /// blobs (§III-E).
    Merge { cids: Vec<Cid>, req_id: u64 },
    /// Release the sender's pin on a block (and its replicas); unpinned
    /// blocks are garbage-collected. Ephemeral FL data — gradients and
    /// updates — is only needed for one round (§VI).
    Unpin {
        /// Block to unpin.
        cid: Cid,
        /// The replication factor it was stored with, so replica pins are
        /// released too.
        replicate: usize,
    },
    /// Subscribe the sender to a topic.
    Subscribe { topic: Topic },
    /// Publish to a topic (flooded to all nodes' subscribers).
    Publish { topic: Topic, data: Bytes },
    /// Store a chunked blob: `manifest` encodes the chunk DAG (ordered
    /// child CIDs, see [`crate::chunker::Manifest`]). The node answers
    /// with [`IpfsWire::ChunkWant`] naming the chunks it does not already
    /// hold — chunks unchanged since a previous round dedup to zero wire
    /// bytes.
    PutChunked {
        manifest: Bytes,
        req_id: u64,
        replicate: usize,
    },
    /// The chunk bytes a [`IpfsWire::ChunkWant`] asked for.
    ChunkFill { chunks: Vec<Bytes>, req_id: u64 },
    /// Retrieve one chunk of a chunk DAG. Resolved, retried, and failed
    /// over exactly like [`IpfsWire::Get`]; answered with
    /// [`IpfsWire::GetOk`]/[`IpfsWire::GetErr`].
    GetChunk { cid: Cid, req_id: u64 },

    // -- node → client -----------------------------------------------------
    /// Put acknowledged; the data's CID.
    PutAck { cid: Cid, req_id: u64 },
    /// Get succeeded.
    GetOk { cid: Cid, data: Bytes, req_id: u64 },
    /// Get failed (no provider reachable).
    GetErr { cid: Cid, req_id: u64 },
    /// Merge succeeded.
    MergeOk { data: Bytes, req_id: u64 },
    /// Merge failed.
    MergeErr { reason: String, req_id: u64 },
    /// A published message on a subscribed topic.
    Deliver {
        topic: Topic,
        data: Bytes,
        publisher: NodeId,
    },
    /// Chunked-put negotiation reply: the chunks of the manifest the
    /// provider is missing (manifest order). Everything absent from this
    /// list was deduped against the provider's store.
    ChunkWant { cids: Vec<Cid>, req_id: u64 },
    /// Chunked put failed: the manifest was malformed, or the fill left
    /// chunks missing. The client's retransmission machinery re-negotiates
    /// from the manifest.
    PutChunkedErr { reason: String, req_id: u64 },

    // -- node ↔ node -------------------------------------------------------
    /// Ask a record holder who provides `cid`.
    FindProviders { cid: Cid, req_id: u64 },
    /// Provider-record response.
    Providers {
        cid: Cid,
        providers: Vec<NodeId>,
        req_id: u64,
    },
    /// Register `provider` as holding `cid` (sent to record holders).
    Announce { cid: Cid, provider: NodeId },
    /// Fetch a block node-to-node.
    FetchBlock { cid: Cid, req_id: u64 },
    /// Fetch response with data.
    FetchOk { cid: Cid, data: Bytes, req_id: u64 },
    /// Fetch failed (block not held).
    FetchErr { cid: Cid, req_id: u64 },
    /// Push a replica of a block.
    Replicate { data: Bytes },
    /// Remove `provider` from the record for `cid` (block was dropped).
    Retract { cid: Cid, provider: NodeId },
    /// Release a replica pin.
    UnpinReplica { cid: Cid },
    /// Flooded publish.
    PubGossip {
        topic: Topic,
        data: Bytes,
        publisher: NodeId,
    },
}

impl IpfsWire {
    /// Bytes this message occupies on the simulated wire: the fixed
    /// [`CONTROL_BYTES`] framing plus every variable-length field — block
    /// payloads, CIDs ([`CID_BYTES`] each), node ids ([`NODE_ID_BYTES`]
    /// each), topic strings, and error reasons. Control traffic generated
    /// by the retry/failover machinery (`FindProviders`, `FetchErr`,
    /// `Retract`) is charged the same way as the happy path, so failure
    /// handling shows up honestly in the byte accounting.
    pub fn wire_bytes(&self) -> u64 {
        let payload = match self {
            // Data-bearing messages.
            IpfsWire::Put { data, .. } | IpfsWire::Replicate { data } => data.len() as u64,
            IpfsWire::GetOk { data, .. } | IpfsWire::FetchOk { data, .. } => {
                CID_BYTES + data.len() as u64
            }
            IpfsWire::MergeOk { data, .. } => data.len() as u64,
            IpfsWire::PutChunked { manifest, .. } => manifest.len() as u64,
            // Only the chunks the provider actually asked for ride the
            // wire — this is where cross-round dedup saves bytes.
            IpfsWire::ChunkFill { chunks, .. } => {
                chunks.iter().map(|c| c.len() as u64).sum::<u64>()
            }
            // Pub/sub carries a topic, a payload, and (when flooded or
            // delivered) the publisher's id.
            IpfsWire::Subscribe { topic } => topic.len() as u64,
            IpfsWire::Publish { topic, data } => (topic.len() + data.len()) as u64,
            IpfsWire::Deliver { topic, data, .. } | IpfsWire::PubGossip { topic, data, .. } => {
                (topic.len() + data.len()) as u64 + NODE_ID_BYTES
            }
            // CID-list messages.
            IpfsWire::Merge { cids, .. } | IpfsWire::ChunkWant { cids, .. } => {
                CID_BYTES * cids.len() as u64
            }
            IpfsWire::Providers { providers, .. } => {
                CID_BYTES + NODE_ID_BYTES * providers.len() as u64
            }
            // Single-CID control messages (requests, acks, errors).
            IpfsWire::Get { .. }
            | IpfsWire::GetErr { .. }
            | IpfsWire::PutAck { .. }
            | IpfsWire::FindProviders { .. }
            | IpfsWire::FetchBlock { .. }
            | IpfsWire::FetchErr { .. }
            | IpfsWire::Unpin { .. }
            | IpfsWire::UnpinReplica { .. }
            | IpfsWire::GetChunk { .. } => CID_BYTES,
            // CID + provider id.
            IpfsWire::Announce { .. } | IpfsWire::Retract { .. } => CID_BYTES + NODE_ID_BYTES,
            IpfsWire::MergeErr { reason, .. } | IpfsWire::PutChunkedErr { reason, .. } => {
                reason.len() as u64
            }
        };
        payload + CONTROL_BYTES
    }
}

/// Embedding of [`IpfsWire`] into a larger application message type, so the
/// same node logic runs inside any simulation message enum.
pub trait WireEmbed: Sized {
    /// Wraps a storage message.
    fn embed(wire: IpfsWire) -> Self;
    /// Unwraps, or returns the original message when it is not a storage
    /// message.
    fn extract(self) -> Result<IpfsWire, Self>;
}

impl WireEmbed for IpfsWire {
    fn embed(wire: IpfsWire) -> Self {
        wire
    }
    fn extract(self) -> Result<IpfsWire, Self> {
        Ok(self)
    }
}

/// An outgoing message produced by [`IpfsNode::handle`].
#[derive(Clone, Debug)]
pub struct Outgoing {
    /// Destination node.
    pub to: NodeId,
    /// The message.
    pub wire: IpfsWire,
}

/// In-flight retrieval triggered by a client `Get` or `Merge`.
#[derive(Debug)]
enum Pending {
    Get {
        client: NodeId,
        client_req: u64,
        cid: Cid,
    },
    MergeFetch {
        merge_id: u64,
        cid: Cid,
    },
}

/// Which reply an in-flight retrieval is currently waiting for.
#[derive(Debug)]
enum Leg {
    /// Waiting for a `Providers` reply; the queue holds untried record
    /// holders to fail over to.
    Resolve { holders: Vec<NodeId> },
    /// Waiting for a `FetchOk`; the queue holds untried providers.
    Fetch { queue: Vec<NodeId> },
}

/// Timeout/retry/failover state of one in-flight retrieval.
#[derive(Debug)]
struct FetchAttempt {
    cid: Cid,
    /// The peer currently being waited on.
    peer: NodeId,
    /// Retries already spent on `peer` (0 = first attempt).
    attempt: u32,
    /// Token of the currently armed timeout; earlier tokens are stale.
    timer: u64,
    leg: Leg,
}

/// A chunked upload whose negotiation is waiting for its `ChunkFill`.
#[derive(Debug)]
struct ChunkedPut {
    /// The decoded manifest (validated on arrival).
    manifest: Manifest,
    /// The raw manifest bytes, stored as the manifest block on completion.
    manifest_bytes: Bytes,
    replicate: usize,
    /// Chunk CIDs the fill still has to supply.
    missing: HashSet<Cid>,
    /// Verified chunks received so far.
    received: Vec<Block>,
}

/// An in-progress merge waiting for missing blocks.
#[derive(Debug)]
struct PendingMerge {
    client: NodeId,
    client_req: u64,
    cids: Vec<Cid>,
    missing: HashSet<Cid>,
    /// Blocks fetched for this merge, buffered here so the merge works
    /// even on a node whose store is failing (lossy).
    fetched: HashMap<Cid, Bytes>,
    failed: bool,
}

/// State of one storage node.
pub struct IpfsNode {
    id: NodeId,
    /// All storage nodes in the network (including self), with DHT keys.
    roster: Vec<(NodeId, Key)>,
    store: BlockStore,
    /// Provider records this node holds (as a record holder for the CID).
    records: HashMap<Cid, Vec<NodeId>>,
    /// Local subscriptions: topic → participant node ids.
    subs: HashMap<Topic, HashSet<NodeId>>,
    pending: HashMap<u64, Pending>,
    /// Retry/failover state per in-flight retrieval.
    fetches: HashMap<u64, FetchAttempt>,
    merges: HashMap<u64, PendingMerge>,
    /// Chunked-put negotiations keyed by `(client, client req)` — request
    /// ids are per-client counters, so the pair is what identifies a
    /// negotiation.
    pending_chunked: HashMap<(NodeId, u64), ChunkedPut>,
    next_req: u64,
    policy: RetryPolicy,
    /// Timeouts requested but not yet armed; the hosting actor drains
    /// these with [`IpfsNode::take_timer_requests`] and arms real timers.
    timer_requests: Vec<(u64, SimDuration)>,
    /// Armed timeout token → the retrieval it guards.
    timer_owner: HashMap<u64, u64>,
    next_timer: u64,
    /// Test hook: a lossy node discards stored data (models storage loss).
    lossy: bool,
    /// Counter bumps not yet drained into a trace (see [`stats`]). The
    /// hosting actor drains with [`IpfsNode::take_stats`] after every
    /// `handle`/`on_timeout`.
    stat_pending: Vec<(&'static str, u64)>,
}

/// Trace counter labels bumped by [`IpfsNode`] and drained into the shared
/// [`Trace`](dfl_netsim::Trace) by [`IpfsActor`] (`Trace::counter(label)`
/// reads them back after a run).
pub mod stats {
    /// Provider-record lookups started for a block not held locally.
    pub const PROVIDER_LOOKUPS: &str = "ipfs/provider_lookups";
    /// `Get` requests served straight from the local block store.
    pub const CACHE_HITS: &str = "ipfs/cache_hits";
    /// `Get` requests that required remote retrieval.
    pub const CACHE_MISSES: &str = "ipfs/cache_misses";
    /// `Merge` RPCs received.
    pub const MERGE_RPCS: &str = "ipfs/merge_rpcs";
    /// Blocks a merge had to retrieve from other providers.
    pub const MERGE_REMOTE_FETCHES: &str = "ipfs/merge_remote_fetches";
    /// Same-peer retransmissions after a timeout (backoff retries).
    pub const RETRIES: &str = "ipfs/retries";
    /// Failovers to the next provider / record holder.
    pub const FAILOVERS: &str = "ipfs/failovers";
    /// Provider records withdrawn after a peer failed to serve a block.
    pub const RETRACTIONS: &str = "ipfs/retractions";
    /// Retrievals that exhausted every candidate and failed.
    pub const FETCH_FAILURES: &str = "ipfs/fetch_failures";
    /// Chunked puts (`PutChunked` manifests) received.
    pub const CHUNK_PUTS: &str = "ipfs/chunk_puts";
    /// Chunks a chunked-put negotiation skipped because the provider
    /// already held them (cross-round dedup hits).
    pub const CHUNKS_DEDUPED: &str = "ipfs/chunks_deduped";
    /// Wire bytes those deduped chunks did not re-ship.
    pub const DEDUP_BYTES_SAVED: &str = "ipfs/dedup_bytes_saved";
    /// Chunks stored from `ChunkFill` payloads.
    pub const CHUNKS_STORED: &str = "ipfs/chunks_stored";
    /// `GetChunk` requests received (striped chunk downloads).
    pub const CHUNK_REQUESTS: &str = "ipfs/chunk_requests";
    /// `PutChunked` manifests that failed structural validation — remote
    /// input, booked and answered with `PutChunkedErr`.
    pub const MALFORMED_MANIFESTS: &str = "ipfs/malformed_manifests";
    /// `ChunkFill` chunks that hashed to no wanted CID (corrupt,
    /// duplicated, or unsolicited) and were dropped.
    pub const CHUNK_REJECTS: &str = "ipfs/chunk_rejects";
    /// `ChunkFill`s with no matching negotiation (crash-cleared,
    /// duplicated, or misrouted) — booked and dropped.
    pub const STRAY_CHUNK_FILLS: &str = "ipfs/stray_chunk_fills";
    /// Replies naming a request this node is not running (forged or
    /// stale `Providers`) — booked and dropped.
    pub const STALE_REPLIES: &str = "ipfs/stale_replies";
    /// Messages a storage node has no handler for (client-facing
    /// responses misrouted to a node) — booked and dropped.
    pub const UNEXPECTED_MESSAGES: &str = "ipfs/unexpected_messages";
}

impl IpfsNode {
    /// Creates a node with the given id and full network roster.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not present in `roster`.
    pub fn new(id: NodeId, roster: Vec<(NodeId, Key)>) -> IpfsNode {
        assert!(
            roster.iter().any(|(n, _)| *n == id),
            "node must appear in roster"
        );
        IpfsNode {
            id,
            roster,
            store: BlockStore::new(),
            records: HashMap::new(),
            subs: HashMap::new(),
            pending: HashMap::new(),
            fetches: HashMap::new(),
            merges: HashMap::new(),
            pending_chunked: HashMap::new(),
            next_req: 0,
            policy: RetryPolicy::default(),
            timer_requests: Vec::new(),
            timer_owner: HashMap::new(),
            next_timer: 0,
            lossy: false,
            stat_pending: Vec::new(),
        }
    }

    /// Builds the roster for a set of node ids (keys derived from ids).
    pub fn roster_for(ids: &[NodeId]) -> Vec<(NodeId, Key)> {
        ids.iter().map(|&id| (id, Key::for_node(id))).collect()
    }

    /// Makes the node discard all stored data (availability-failure hook).
    pub fn set_lossy(&mut self, lossy: bool) {
        self.lossy = lossy;
    }

    /// Overrides the retry/failover policy (defaults to
    /// [`RetryPolicy::default`]).
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        assert!(
            policy.attempts_per_peer > 0,
            "at least one attempt per peer"
        );
        assert!(
            policy.base_timeout > SimDuration::ZERO,
            "timeout must be positive"
        );
        self.policy = policy;
    }

    /// Drains the timeouts this node wants armed, as `(token, delay)`
    /// pairs. The hosting actor must arm a timer per entry and route its
    /// expiry back into [`IpfsNode::on_timeout`]. Called by [`IpfsActor`]
    /// after every `handle`/`on_timeout`.
    pub fn take_timer_requests(&mut self) -> Vec<(u64, SimDuration)> {
        std::mem::take(&mut self.timer_requests)
    }

    fn bump(&mut self, label: &'static str) {
        self.stat_pending.push((label, 1));
    }

    fn bump_by(&mut self, label: &'static str, delta: u64) {
        if delta > 0 {
            self.stat_pending.push((label, delta));
        }
    }

    /// Drains the counter bumps accumulated since the last drain, as
    /// `(label, delta)` pairs (labels from [`stats`]). The hosting actor
    /// adds them to the run's trace counters.
    pub fn take_stats(&mut self) -> Vec<(&'static str, u64)> {
        std::mem::take(&mut self.stat_pending)
    }

    /// Drops all volatile request state — in-flight retrievals, merges, and
    /// timeout bookkeeping — as a crash would. Stored blocks, provider
    /// records, and subscriptions survive (they model durable state).
    pub fn drop_volatile_state(&mut self) {
        self.pending.clear();
        self.fetches.clear();
        self.merges.clear();
        self.pending_chunked.clear();
        self.timer_requests.clear();
        self.timer_owner.clear();
    }

    /// Silently discards every stored block (durable data loss). Provider
    /// records survive, so peers discover the loss only when a fetch fails
    /// — at which point retraction self-heals the records.
    pub fn drop_stored_data(&mut self) {
        self.store = BlockStore::new();
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Read access to the local block store.
    pub fn store(&self) -> &BlockStore {
        &self.store
    }

    fn fresh_req(&mut self) -> u64 {
        self.next_req += 1;
        self.next_req
    }

    /// The `n` record holders for `cid` (XOR-closest roster nodes).
    fn record_holders(&self, cid: &Cid, n: usize) -> Vec<NodeId> {
        closest_nodes(&self.roster, &Key::from_u256(cid.as_key()), n)
    }

    /// Handles one incoming message, returning the messages to send.
    pub fn handle(&mut self, from: NodeId, wire: IpfsWire) -> Vec<Outgoing> {
        match wire {
            IpfsWire::Put {
                data,
                req_id,
                replicate,
            } => self.on_put(from, data, req_id, replicate),
            IpfsWire::PutChunked {
                manifest,
                req_id,
                replicate,
            } => self.on_put_chunked(from, manifest, req_id, replicate),
            IpfsWire::ChunkFill { chunks, req_id } => self.on_chunk_fill(from, chunks, req_id),
            IpfsWire::GetChunk { cid, req_id } => {
                self.bump(stats::CHUNK_REQUESTS);
                self.on_get(from, cid, req_id)
            }
            IpfsWire::Unpin { cid, replicate } => self.on_unpin(cid, replicate),
            IpfsWire::UnpinReplica { cid } => {
                self.store.unpin(&cid);
                self.gc_and_retract(cid)
            }
            IpfsWire::Retract { cid, provider } => {
                if let Some(entry) = self.records.get_mut(&cid) {
                    entry.retain(|p| *p != provider);
                    if entry.is_empty() {
                        self.records.remove(&cid);
                    }
                }
                Vec::new()
            }
            IpfsWire::Get { cid, req_id } => self.on_get(from, cid, req_id),
            IpfsWire::Merge { cids, req_id } => self.on_merge(from, cids, req_id),
            IpfsWire::Subscribe { topic } => {
                self.subs.entry(topic).or_default().insert(from);
                Vec::new()
            }
            IpfsWire::Publish { topic, data } => self.on_publish(from, topic, data),
            IpfsWire::FindProviders { cid, req_id } => {
                let providers = self.records.get(&cid).cloned().unwrap_or_default();
                vec![Outgoing {
                    to: from,
                    wire: IpfsWire::Providers {
                        cid,
                        providers,
                        req_id,
                    },
                }]
            }
            IpfsWire::Providers {
                cid,
                providers,
                req_id,
            } => self.on_providers(cid, providers, req_id),
            IpfsWire::Announce { cid, provider } => {
                let entry = self.records.entry(cid).or_default();
                if !entry.contains(&provider) {
                    entry.push(provider);
                }
                Vec::new()
            }
            IpfsWire::FetchBlock { cid, req_id } => match self.store.get(&cid) {
                Some(block) => vec![Outgoing {
                    to: from,
                    wire: IpfsWire::FetchOk {
                        cid,
                        data: block.data().clone(),
                        req_id,
                    },
                }],
                None => vec![Outgoing {
                    to: from,
                    wire: IpfsWire::FetchErr { cid, req_id },
                }],
            },
            IpfsWire::FetchOk { cid, data, req_id } => self.on_fetch_ok(from, cid, data, req_id),
            IpfsWire::FetchErr { cid, req_id } => self.on_fetch_err(from, cid, req_id),
            IpfsWire::Replicate { data } => {
                if !self.lossy {
                    let block = Block::new(data);
                    let cid = self.store.put(block);
                    self.store.pin(cid);
                    // Record ourselves locally when we are a record holder,
                    // and announce to the others, so retrieval can fail over.
                    if self
                        .record_holders(&cid, RECORD_REPLICAS)
                        .contains(&self.id)
                    {
                        let entry = self.records.entry(cid).or_default();
                        if !entry.contains(&self.id) {
                            entry.push(self.id);
                        }
                    }
                    return self.announce(cid);
                }
                Vec::new()
            }
            IpfsWire::PubGossip {
                topic,
                data,
                publisher,
            } => self.deliveries(&topic, &data, publisher),
            // Client-facing responses are never addressed to a node by the
            // protocol, but a misrouted or duplicated frame from a real
            // backend can deliver one here. Book and drop it — the old
            // debug_assert handed remote peers a kill switch in debug
            // builds.
            _ => {
                self.bump(stats::UNEXPECTED_MESSAGES);
                Vec::new()
            }
        }
    }

    fn announce(&self, cid: Cid) -> Vec<Outgoing> {
        let mut out = Vec::new();
        for holder in self.record_holders(&cid, RECORD_REPLICAS) {
            if holder == self.id {
                // Handled inline below by the caller storing its own record.
                continue;
            }
            out.push(Outgoing {
                to: holder,
                wire: IpfsWire::Announce {
                    cid,
                    provider: self.id,
                },
            });
        }
        out
    }

    /// Releases the local pin, forwards the release to the replica set
    /// (the same deterministic closest-to-CID nodes `Put` used), collects
    /// garbage, and retracts stale provider records.
    fn on_unpin(&mut self, cid: Cid, replicate: usize) -> Vec<Outgoing> {
        // If the block is a chunk manifest, release its children too —
        // once per manifest reference, mirroring the per-reference pins a
        // chunked put took, so chunks shared with a newer manifest stay
        // pinned.
        let children: Vec<Cid> = self
            .store
            .get(&cid)
            .map(|b| b.data().clone())
            .filter(|d| chunker::is_manifest(d))
            .and_then(|d| Manifest::decode(&d).ok())
            .map(|m| m.chunks().iter().map(|&(c, _)| c).collect())
            .unwrap_or_default();
        self.store.unpin(&cid);
        for child in &children {
            self.store.unpin(child);
        }
        let mut out = Vec::new();
        if replicate > 1 {
            let mut released = HashSet::new();
            for target_cid in std::iter::once(cid).chain(children.iter().copied()) {
                if !released.insert(target_cid) {
                    continue;
                }
                let targets: Vec<NodeId> = closest_nodes(
                    &self.roster,
                    &Key::from_u256(target_cid.as_key()),
                    self.roster.len(),
                )
                .into_iter()
                .filter(|n| *n != self.id)
                .take(replicate - 1)
                .collect();
                for target in targets {
                    out.push(Outgoing {
                        to: target,
                        wire: IpfsWire::UnpinReplica { cid: target_cid },
                    });
                }
            }
        }
        out.extend(self.gc_and_retract(cid));
        let mut retracted = HashSet::new();
        retracted.insert(cid);
        for child in children {
            if retracted.insert(child) {
                out.extend(self.gc_and_retract(child));
            }
        }
        out
    }

    /// Garbage-collects, and if `cid` is gone afterwards, withdraws this
    /// node's provider record for it.
    fn gc_and_retract(&mut self, cid: Cid) -> Vec<Outgoing> {
        self.store.gc();
        if self.store.contains(&cid) {
            return Vec::new();
        }
        if let Some(entry) = self.records.get_mut(&cid) {
            entry.retain(|p| *p != self.id);
            if entry.is_empty() {
                self.records.remove(&cid);
            }
        }
        let mut out = Vec::new();
        for holder in self.record_holders(&cid, RECORD_REPLICAS) {
            if holder != self.id {
                out.push(Outgoing {
                    to: holder,
                    wire: IpfsWire::Retract {
                        cid,
                        provider: self.id,
                    },
                });
            }
        }
        out
    }

    fn on_put(
        &mut self,
        from: NodeId,
        data: Bytes,
        req_id: u64,
        replicate: usize,
    ) -> Vec<Outgoing> {
        let block = Block::new(data.clone());
        let cid = block.cid();
        let mut out = Vec::new();
        if !self.lossy {
            self.store.put(block);
            self.store.pin(cid);
        }
        // Record self as provider locally if we are a record holder.
        let holders = self.record_holders(&cid, RECORD_REPLICAS);
        if holders.contains(&self.id) {
            let entry = self.records.entry(cid).or_default();
            if !entry.contains(&self.id) {
                entry.push(self.id);
            }
        }
        out.extend(self.announce(cid));
        // Push replicas to the nodes XOR-closest to the CID (uniform
        // allocation, excluding self).
        if replicate > 1 {
            let targets: Vec<NodeId> = closest_nodes(
                &self.roster,
                &Key::from_u256(cid.as_key()),
                self.roster.len(),
            )
            .into_iter()
            .filter(|n| *n != self.id)
            .take(replicate - 1)
            .collect();
            for target in targets {
                out.push(Outgoing {
                    to: target,
                    wire: IpfsWire::Replicate { data: data.clone() },
                });
            }
        }
        out.push(Outgoing {
            to: from,
            wire: IpfsWire::PutAck { cid, req_id },
        });
        out
    }

    /// First leg of a chunked upload: the client ships only the manifest,
    /// and the node answers with the subset of chunk CIDs it does not
    /// already hold. Chunks that survived from a previous round dedup to
    /// zero wire bytes.
    fn on_put_chunked(
        &mut self,
        from: NodeId,
        manifest_bytes: Bytes,
        req_id: u64,
        replicate: usize,
    ) -> Vec<Outgoing> {
        self.bump(stats::CHUNK_PUTS);
        let manifest = match Manifest::decode(&manifest_bytes) {
            Ok(m) => m,
            Err(e) => {
                // Remotely-supplied bytes: book the malformed manifest and
                // bounce a typed error instead of trusting the frame.
                self.bump(stats::MALFORMED_MANIFESTS);
                return vec![Outgoing {
                    to: from,
                    wire: IpfsWire::PutChunkedErr {
                        reason: e.to_string(),
                        req_id,
                    },
                }];
            }
        };
        let mut missing = Vec::new();
        let mut seen = HashSet::new();
        let mut deduped = 0u64;
        let mut saved = 0u64;
        for &(cid, len) in manifest.chunks() {
            if self.store.contains(&cid) {
                deduped += 1;
                saved += u64::from(len);
            } else if seen.insert(cid) {
                // Deterministic want-list: manifest order, distinct CIDs.
                missing.push(cid);
            }
        }
        self.bump_by(stats::CHUNKS_DEDUPED, deduped);
        self.bump_by(stats::DEDUP_BYTES_SAVED, saved);
        let job = ChunkedPut {
            manifest,
            manifest_bytes,
            replicate,
            missing: missing.iter().copied().collect(),
            received: Vec::new(),
        };
        if job.missing.is_empty() {
            return self.finish_chunked_put(from, job, req_id);
        }
        // A re-sent PutChunked re-negotiates from scratch; newest wins.
        self.pending_chunked.insert((from, req_id), job);
        vec![Outgoing {
            to: from,
            wire: IpfsWire::ChunkWant {
                cids: missing,
                req_id,
            },
        }]
    }

    /// Second leg: the client delivers the wanted chunk payloads. Each is
    /// re-hashed — a corrupt chunk names no wanted CID and is rejected
    /// without trusting the sender.
    fn on_chunk_fill(&mut self, from: NodeId, chunks: Vec<Bytes>, req_id: u64) -> Vec<Outgoing> {
        let Some(mut job) = self.pending_chunked.remove(&(from, req_id)) else {
            // Duplicate or misrouted fill for a negotiation we no longer
            // track; book it rather than panicking on remote input.
            self.bump(stats::STRAY_CHUNK_FILLS);
            return Vec::new();
        };
        let mut rejected = 0u64;
        for data in chunks {
            let block = Block::new(data);
            if job.missing.remove(&block.cid()) {
                job.received.push(block);
            } else {
                rejected += 1;
            }
        }
        self.bump_by(stats::CHUNK_REJECTS, rejected);
        if !job.missing.is_empty() {
            return vec![Outgoing {
                to: from,
                wire: IpfsWire::PutChunkedErr {
                    reason: format!("{} chunks missing after fill", job.missing.len()),
                    req_id,
                },
            }];
        }
        self.finish_chunked_put(from, job, req_id)
    }

    /// Stores the received chunks plus the manifest block, pins each chunk
    /// once per manifest reference (so a chunk shared with a still-pinned
    /// older manifest survives that manifest's unpin), announces provider
    /// records, pushes replicas, and acks with the manifest CID.
    fn finish_chunked_put(&mut self, from: NodeId, job: ChunkedPut, req_id: u64) -> Vec<Outgoing> {
        let manifest_block = Block::new(job.manifest_bytes.clone());
        let manifest_cid = manifest_block.cid();
        self.bump_by(stats::CHUNKS_STORED, job.received.len() as u64);
        if !self.lossy {
            for block in &job.received {
                self.store.put(block.clone());
            }
            self.store.put(manifest_block);
            self.store.pin(manifest_cid);
            for &(cid, _) in job.manifest.chunks() {
                self.store.pin(cid);
            }
        }
        let mut out = Vec::new();
        let mut announced = HashSet::new();
        let all =
            std::iter::once(manifest_cid).chain(job.manifest.chunks().iter().map(|&(cid, _)| cid));
        for cid in all {
            if !announced.insert(cid) {
                continue;
            }
            let holders = self.record_holders(&cid, RECORD_REPLICAS);
            if holders.contains(&self.id) {
                let entry = self.records.entry(cid).or_default();
                if !entry.contains(&self.id) {
                    entry.push(self.id);
                }
            }
            out.extend(self.announce(cid));
            if job.replicate > 1 {
                if let Some(data) = self.store.get(&cid).map(|b| b.data().clone()) {
                    let targets: Vec<NodeId> = closest_nodes(
                        &self.roster,
                        &Key::from_u256(cid.as_key()),
                        self.roster.len(),
                    )
                    .into_iter()
                    .filter(|n| *n != self.id)
                    .take(job.replicate - 1)
                    .collect();
                    for target in targets {
                        out.push(Outgoing {
                            to: target,
                            wire: IpfsWire::Replicate { data: data.clone() },
                        });
                    }
                }
            }
        }
        out.push(Outgoing {
            to: from,
            wire: IpfsWire::PutAck {
                cid: manifest_cid,
                req_id,
            },
        });
        out
    }

    fn on_get(&mut self, from: NodeId, cid: Cid, req_id: u64) -> Vec<Outgoing> {
        if let Some(data) = self.store.get(&cid).map(|b| b.data().clone()) {
            self.bump(stats::CACHE_HITS);
            return vec![Outgoing {
                to: from,
                wire: IpfsWire::GetOk { cid, data, req_id },
            }];
        }
        self.bump(stats::CACHE_MISSES);
        let internal = self.fresh_req();
        self.pending.insert(
            internal,
            Pending::Get {
                client: from,
                client_req: req_id,
                cid,
            },
        );
        self.resolve(cid, internal)
    }

    /// Starts resolution of a missing block: consult the provider record
    /// (locally if we hold a usable one, otherwise ask another record
    /// holder — our own record may be partial, e.g. listing only
    /// ourselves when we lost the data but a replica exists elsewhere).
    fn resolve(&mut self, cid: Cid, internal: u64) -> Vec<Outgoing> {
        self.bump(stats::PROVIDER_LOOKUPS);
        let local: Vec<NodeId> = self
            .records
            .get(&cid)
            .map(|providers| {
                providers
                    .iter()
                    .copied()
                    .filter(|p| *p != self.id)
                    .collect()
            })
            .unwrap_or_default();
        if !local.is_empty() {
            return self.begin_fetch(cid, internal, local);
        }
        let mut holders: Vec<NodeId> = self
            .record_holders(&cid, RECORD_REPLICAS)
            .into_iter()
            .filter(|h| *h != self.id)
            .collect();
        if holders.is_empty() {
            // We are the only record holder and have no usable record.
            return self.fail(cid, internal);
        }
        let first = holders.remove(0);
        self.fetches.insert(
            internal,
            FetchAttempt {
                cid,
                peer: first,
                attempt: 0,
                timer: 0,
                leg: Leg::Resolve { holders },
            },
        );
        self.arm_timeout(internal);
        vec![Outgoing {
            to: first,
            wire: IpfsWire::FindProviders {
                cid,
                req_id: internal,
            },
        }]
    }

    /// Arms the timeout guarding request `internal`'s current attempt,
    /// with exponential backoff across retries of the same peer. A stale
    /// id (request already resolved) arms nothing.
    fn arm_timeout(&mut self, internal: u64) {
        let Some(state) = self.fetches.get_mut(&internal) else {
            return;
        };
        self.next_timer += 1;
        state.timer = self.next_timer;
        let backoff = self.policy.base_timeout.as_micros() << state.attempt.min(16);
        self.timer_owner.insert(self.next_timer, internal);
        self.timer_requests
            .push((self.next_timer, SimDuration::from_micros(backoff)));
    }

    /// Starts fetching `cid` from the first of `providers`, keeping the
    /// rest as failover candidates.
    fn begin_fetch(&mut self, cid: Cid, internal: u64, providers: Vec<NodeId>) -> Vec<Outgoing> {
        let mut queue: Vec<NodeId> = providers.into_iter().filter(|p| *p != self.id).collect();
        if queue.is_empty() {
            return self.fail(cid, internal);
        }
        let first = queue.remove(0);
        self.fetches.insert(
            internal,
            FetchAttempt {
                cid,
                peer: first,
                attempt: 0,
                timer: 0,
                leg: Leg::Fetch { queue },
            },
        );
        self.arm_timeout(internal);
        vec![Outgoing {
            to: first,
            wire: IpfsWire::FetchBlock {
                cid,
                req_id: internal,
            },
        }]
    }

    fn on_providers(&mut self, cid: Cid, providers: Vec<NodeId>, req_id: u64) -> Vec<Outgoing> {
        let candidates: Vec<NodeId> = providers.into_iter().filter(|p| *p != self.id).collect();
        if let Some(state) = self.fetches.remove(&req_id) {
            self.timer_owner.remove(&state.timer);
            if candidates.is_empty() {
                // This holder answered but knows no provider; another
                // holder's record may be more complete.
                if let Leg::Resolve { mut holders } = state.leg {
                    if !holders.is_empty() {
                        self.bump(stats::FAILOVERS);
                        let next = holders.remove(0);
                        self.fetches.insert(
                            req_id,
                            FetchAttempt {
                                cid,
                                peer: next,
                                attempt: 0,
                                timer: 0,
                                leg: Leg::Resolve { holders },
                            },
                        );
                        self.arm_timeout(req_id);
                        return vec![Outgoing {
                            to: next,
                            wire: IpfsWire::FindProviders { cid, req_id },
                        }];
                    }
                }
                return self.fail(cid, req_id);
            }
        } else if !self.pending.contains_key(&req_id) {
            // No fetch state and no pending request: a stale or forged
            // `Providers` reply. Book it instead of spinning up a fetch
            // for (or failing) a request this node never issued.
            self.bump(stats::STALE_REPLIES);
            return Vec::new();
        } else if candidates.is_empty() {
            return self.fail(cid, req_id);
        }
        self.begin_fetch(cid, req_id, candidates)
    }

    fn on_fetch_ok(&mut self, from: NodeId, cid: Cid, data: Bytes, req_id: u64) -> Vec<Outgoing> {
        // Verify content against the CID — never trust retrieved bytes.
        let Some(block) = Block::verified(cid, data) else {
            return self.on_fetch_err(from, cid, req_id);
        };
        if let Some(state) = self.fetches.remove(&req_id) {
            self.timer_owner.remove(&state.timer);
        }
        if !self.lossy {
            self.store.put(block.clone());
        }
        match self.pending.remove(&req_id) {
            Some(Pending::Get {
                client,
                client_req,
                cid,
            }) => vec![Outgoing {
                to: client,
                wire: IpfsWire::GetOk {
                    cid,
                    data: block.data().clone(),
                    req_id: client_req,
                },
            }],
            Some(Pending::MergeFetch { merge_id, cid }) => {
                if let Some(merge) = self.merges.get_mut(&merge_id) {
                    merge.missing.remove(&cid);
                    merge.fetched.insert(cid, block.data().clone());
                }
                self.try_finish_merge(merge_id)
            }
            None => Vec::new(),
        }
    }

    fn on_fetch_err(&mut self, from: NodeId, cid: Cid, req_id: u64) -> Vec<Outgoing> {
        // The peer is reachable but does not hold the block: withdraw its
        // provider record so later retrievals skip it, then fail over (a
        // replica may still hold the block even when the announced origin
        // lost it).
        let mut out = self.retract_provider(cid, from);
        match self.fetches.get(&req_id) {
            Some(state) if state.peer == from => {
                self.timer_owner.remove(&state.timer);
                out.extend(self.advance_fetch(req_id));
            }
            // A stale reply from a peer we already failed over from: the
            // retraction above is all there is to do.
            _ => {}
        }
        out
    }

    /// Moves an in-flight retrieval to its next untried peer, or fails the
    /// request when none remain.
    fn advance_fetch(&mut self, internal: u64) -> Vec<Outgoing> {
        let Some(state) = self.fetches.get_mut(&internal) else {
            return Vec::new();
        };
        let cid = state.cid;
        match &mut state.leg {
            Leg::Fetch { queue } if !queue.is_empty() => {
                let next = queue.remove(0);
                state.peer = next;
                state.attempt = 0;
                self.bump(stats::FAILOVERS);
                self.arm_timeout(internal);
                vec![Outgoing {
                    to: next,
                    wire: IpfsWire::FetchBlock {
                        cid,
                        req_id: internal,
                    },
                }]
            }
            Leg::Resolve { holders } if !holders.is_empty() => {
                let next = holders.remove(0);
                state.peer = next;
                state.attempt = 0;
                self.bump(stats::FAILOVERS);
                self.arm_timeout(internal);
                vec![Outgoing {
                    to: next,
                    wire: IpfsWire::FindProviders {
                        cid,
                        req_id: internal,
                    },
                }]
            }
            _ => self.fail(cid, internal),
        }
    }

    /// Withdraws `provider` from the record for `cid`: locally when this
    /// node is a record holder, and by `Retract` on the other holders.
    /// This is how records self-heal after a provider dies or loses data.
    fn retract_provider(&mut self, cid: Cid, provider: NodeId) -> Vec<Outgoing> {
        self.bump(stats::RETRACTIONS);
        if let Some(entry) = self.records.get_mut(&cid) {
            entry.retain(|p| *p != provider);
            if entry.is_empty() {
                self.records.remove(&cid);
            }
        }
        // The provider itself is included: if it is a record holder that
        // merely lost the data (not crashed), its own record heals too.
        self.record_holders(&cid, RECORD_REPLICAS)
            .into_iter()
            .filter(|h| *h != self.id)
            .map(|h| Outgoing {
                to: h,
                wire: IpfsWire::Retract { cid, provider },
            })
            .collect()
    }

    /// Handles the expiry of a timeout previously requested via
    /// [`IpfsNode::take_timer_requests`]. Retries the current peer with
    /// backoff, then declares it dead: retracts it (fetch leg) and fails
    /// over to the next candidate.
    pub fn on_timeout(&mut self, token: u64) -> Vec<Outgoing> {
        let Some(internal) = self.timer_owner.remove(&token) else {
            return Vec::new(); // stale: the request already progressed
        };
        let Some(state) = self.fetches.get_mut(&internal) else {
            return Vec::new();
        };
        if state.timer != token {
            return Vec::new();
        }
        if state.attempt + 1 < self.policy.attempts_per_peer {
            state.attempt += 1;
            let (cid, peer) = (state.cid, state.peer);
            let wire = match state.leg {
                Leg::Resolve { .. } => IpfsWire::FindProviders {
                    cid,
                    req_id: internal,
                },
                Leg::Fetch { .. } => IpfsWire::FetchBlock {
                    cid,
                    req_id: internal,
                },
            };
            self.bump(stats::RETRIES);
            self.arm_timeout(internal);
            return vec![Outgoing { to: peer, wire }];
        }
        // Peer exhausted its attempts: treat it as dead. A dead provider
        // is retracted so the record heals; a dead record holder is simply
        // skipped (it holds no provider entry to withdraw).
        let (cid, peer) = (state.cid, state.peer);
        let mut out = match state.leg {
            Leg::Fetch { .. } => self.retract_provider(cid, peer),
            Leg::Resolve { .. } => Vec::new(),
        };
        out.extend(self.advance_fetch(internal));
        out
    }

    fn fail(&mut self, cid: Cid, internal: u64) -> Vec<Outgoing> {
        let _ = cid;
        if let Some(state) = self.fetches.remove(&internal) {
            self.timer_owner.remove(&state.timer);
        }
        match self.pending.remove(&internal) {
            Some(Pending::Get {
                client,
                client_req,
                cid,
            }) => {
                self.bump(stats::FETCH_FAILURES);
                vec![Outgoing {
                    to: client,
                    wire: IpfsWire::GetErr {
                        cid,
                        req_id: client_req,
                    },
                }]
            }
            Some(Pending::MergeFetch { merge_id, cid }) => {
                self.bump(stats::FETCH_FAILURES);
                if let Some(merge) = self.merges.get_mut(&merge_id) {
                    merge.failed = true;
                    merge.missing.remove(&cid);
                }
                self.try_finish_merge(merge_id)
            }
            // A forged or long-delayed reply can carry a request id this
            // node never issued (or already settled); booking it here is
            // the whole response — the old debug_assert let remote bytes
            // abort debug builds.
            None => {
                self.bump(stats::STALE_REPLIES);
                Vec::new()
            }
        }
    }

    fn on_merge(&mut self, from: NodeId, cids: Vec<Cid>, req_id: u64) -> Vec<Outgoing> {
        self.bump(stats::MERGE_RPCS);
        let merge_id = self.fresh_req();
        let missing: HashSet<Cid> = cids
            .iter()
            .filter(|c| !self.store.contains(c))
            .copied()
            .collect();
        self.bump_by(stats::MERGE_REMOTE_FETCHES, missing.len() as u64);
        self.merges.insert(
            merge_id,
            PendingMerge {
                client: from,
                client_req: req_id,
                cids,
                missing: missing.clone(),
                fetched: HashMap::new(),
                failed: false,
            },
        );
        let mut out = Vec::new();
        let mut to_fetch: Vec<Cid> = missing.into_iter().collect();
        to_fetch.sort_unstable(); // deterministic fetch order
        for cid in to_fetch {
            let internal = self.fresh_req();
            self.pending
                .insert(internal, Pending::MergeFetch { merge_id, cid });
            out.extend(self.resolve(cid, internal));
        }
        out.extend(self.try_finish_merge(merge_id));
        out
    }

    fn try_finish_merge(&mut self, merge_id: u64) -> Vec<Outgoing> {
        let done = match self.merges.get(&merge_id) {
            Some(m) => m.missing.is_empty(),
            None => return Vec::new(),
        };
        if !done {
            return Vec::new();
        }
        let Some(merge) = self.merges.remove(&merge_id) else {
            return Vec::new();
        };
        if merge.failed {
            return vec![Outgoing {
                to: merge.client,
                wire: IpfsWire::MergeErr {
                    reason: "some blocks unavailable".to_string(),
                    req_id: merge.client_req,
                },
            }];
        }
        // A block fetched earlier can vanish before assembly (a data-loss
        // fault between fetch and finish) — fail the merge, don't panic.
        let mut blobs: Vec<Bytes> = Vec::with_capacity(merge.cids.len());
        for c in &merge.cids {
            match self
                .store
                .get(c)
                .map(|b| b.data().clone())
                .or_else(|| merge.fetched.get(c).cloned())
            {
                Some(blob) => blobs.push(blob),
                None => {
                    return vec![Outgoing {
                        to: merge.client,
                        wire: IpfsWire::MergeErr {
                            reason: format!("block {c:?} lost before merge"),
                            req_id: merge.client_req,
                        },
                    }];
                }
            }
        }
        match merge_blobs(&blobs) {
            Ok(data) => vec![Outgoing {
                to: merge.client,
                wire: IpfsWire::MergeOk {
                    data: Bytes::from(data),
                    req_id: merge.client_req,
                },
            }],
            Err(e) => vec![Outgoing {
                to: merge.client,
                wire: IpfsWire::MergeErr {
                    reason: e.to_string(),
                    req_id: merge.client_req,
                },
            }],
        }
    }

    fn on_publish(&mut self, from: NodeId, topic: Topic, data: Bytes) -> Vec<Outgoing> {
        let mut out = self.deliveries(&topic, &data, from);
        // Flood to every other storage node for their local subscribers.
        for (peer, _) in self.roster.clone() {
            if peer != self.id {
                out.push(Outgoing {
                    to: peer,
                    wire: IpfsWire::PubGossip {
                        topic: topic.clone(),
                        data: data.clone(),
                        publisher: from,
                    },
                });
            }
        }
        out
    }

    fn deliveries(&self, topic: &str, data: &Bytes, publisher: NodeId) -> Vec<Outgoing> {
        let Some(subscribers) = self.subs.get(topic) else {
            return Vec::new();
        };
        let mut subs: Vec<NodeId> = subscribers.iter().copied().collect();
        subs.sort_unstable_by_key(|n| n.index()); // determinism
        subs.into_iter()
            .filter(|s| *s != publisher)
            .map(|s| Outgoing {
                to: s,
                wire: IpfsWire::Deliver {
                    topic: topic.to_string(),
                    data: data.clone(),
                    publisher,
                },
            })
            .collect()
    }
}

impl std::fmt::Debug for IpfsNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "IpfsNode(id={}, blocks={}, records={}, pending={})",
            self.id,
            self.store.len(),
            self.records.len(),
            self.pending.len()
        )
    }
}

/// Ready-made simulation actor wrapping an [`IpfsNode`], usable with any
/// message type that embeds [`IpfsWire`].
pub struct IpfsActor {
    node: IpfsNode,
    last_reported_blocks: usize,
}

impl IpfsActor {
    /// Wraps a node.
    pub fn new(node: IpfsNode) -> IpfsActor {
        IpfsActor {
            node,
            last_reported_blocks: 0,
        }
    }

    /// The wrapped node.
    pub fn node(&self) -> &IpfsNode {
        &self.node
    }

    /// Mutable access (e.g. for fault injection before a run).
    pub fn node_mut(&mut self) -> &mut IpfsNode {
        &mut self.node
    }

    /// Ships produced messages, arms requested timeouts, and traces store
    /// occupancy changes so experiments can observe the ephemeral-data
    /// lifecycle (§VI).
    fn flush<M: WireEmbed>(&mut self, ctx: &mut Context<'_, M>, outgoing: Vec<Outgoing>) {
        for Outgoing { to, wire } in outgoing {
            let bytes = wire.wire_bytes();
            ctx.send(to, bytes, M::embed(wire));
        }
        for (token, delay) in self.node.take_timer_requests() {
            ctx.set_timer(delay, token);
        }
        for (label, delta) in self.node.take_stats() {
            ctx.incr(label, delta);
        }
        let blocks = self.node.store().len();
        if blocks != self.last_reported_blocks {
            self.last_reported_blocks = blocks;
            ctx.record("store_blocks", blocks as f64);
        }
    }
}

impl<M: WireEmbed> Actor<M> for IpfsActor {
    fn on_message(&mut self, ctx: &mut Context<'_, M>, from: NodeId, msg: M) {
        let wire = match msg.extract() {
            Ok(wire) => wire,
            Err(_) => return, // not a storage message; ignore
        };
        let out = self.node.handle(from, wire);
        self.flush(ctx, out);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, M>, token: u64) {
        let out = self.node.on_timeout(token);
        self.flush(ctx, out);
    }

    fn on_fault(&mut self, ctx: &mut Context<'_, M>, fault: Fault) {
        match fault {
            // A crash loses volatile state (request tables, armed timers);
            // stored blocks are durable and survive the outage.
            Fault::Crash(_) => self.node.drop_volatile_state(),
            Fault::DataLoss(_) => {
                self.node.drop_stored_data();
                self.last_reported_blocks = 0;
                ctx.record("store_blocks", 0.0);
            }
            // Recovery, link shaping, partitions and frame chaos are
            // transport-level: the storage state machine is unaffected.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn network(n: usize) -> Vec<IpfsNode> {
        let ids: Vec<NodeId> = (0..n).map(NodeId).collect();
        let roster = IpfsNode::roster_for(&ids);
        ids.iter()
            .map(|&id| IpfsNode::new(id, roster.clone()))
            .collect()
    }

    /// Routes messages among nodes until quiescent; returns messages that
    /// were addressed to non-node ids (i.e. clients).
    fn pump(nodes: &mut [IpfsNode], mut queue: Vec<(NodeId, Outgoing)>) -> Vec<(NodeId, IpfsWire)> {
        let mut to_clients = Vec::new();
        while let Some((from, out)) = queue.pop() {
            let idx = out.to.index();
            if idx < nodes.len() {
                let produced = nodes[idx].handle(from, out.wire);
                let self_id = nodes[idx].id();
                queue.extend(produced.into_iter().map(|o| (self_id, o)));
            } else {
                to_clients.push((out.to, out.wire));
            }
        }
        to_clients
    }

    const CLIENT: NodeId = NodeId(100);

    /// Drains a node's stat deltas, summed per label.
    fn drained_stats(node: &mut IpfsNode) -> HashMap<&'static str, u64> {
        let mut sums: HashMap<&'static str, u64> = HashMap::new();
        for (label, delta) in node.take_stats() {
            *sums.entry(label).or_default() += delta;
        }
        sums
    }

    #[test]
    fn put_then_local_get() {
        let mut nodes = network(4);
        let data = Bytes::from_static(b"gradient-partition");
        let out = nodes[0].handle(
            CLIENT,
            IpfsWire::Put {
                data: data.clone(),
                req_id: 1,
                replicate: 1,
            },
        );
        let replies = pump(
            &mut nodes,
            out.into_iter().map(|o| (NodeId(0), o)).collect(),
        );
        let cid = match &replies[..] {
            [(to, IpfsWire::PutAck { cid, req_id: 1 })] if *to == CLIENT => *cid,
            other => panic!("unexpected replies {other:?}"),
        };
        assert_eq!(cid, Cid::of(&data));

        let out = nodes[0].handle(CLIENT, IpfsWire::Get { cid, req_id: 2 });
        let replies = pump(
            &mut nodes,
            out.into_iter().map(|o| (NodeId(0), o)).collect(),
        );
        match &replies[..] {
            [(
                _,
                IpfsWire::GetOk {
                    data: got,
                    req_id: 2,
                    ..
                },
            )] => assert_eq!(*got, data),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn get_resolves_across_nodes() {
        let mut nodes = network(6);
        let data = Bytes::from_static(b"remote-block");
        // Put at node 0.
        let out = nodes[0].handle(
            CLIENT,
            IpfsWire::Put {
                data: data.clone(),
                req_id: 1,
                replicate: 1,
            },
        );
        pump(
            &mut nodes,
            out.into_iter().map(|o| (NodeId(0), o)).collect(),
        );
        let cid = Cid::of(&data);
        // Get from node 3, which does not hold the block.
        assert!(!nodes[3].store().contains(&cid));
        let out = nodes[3].handle(CLIENT, IpfsWire::Get { cid, req_id: 9 });
        let replies = pump(
            &mut nodes,
            out.into_iter().map(|o| (NodeId(3), o)).collect(),
        );
        match &replies[..] {
            [(
                _,
                IpfsWire::GetOk {
                    data: got,
                    req_id: 9,
                    ..
                },
            )] => assert_eq!(*got, data),
            other => panic!("unexpected {other:?}"),
        }
        // And the gateway cached it.
        assert!(nodes[3].store().contains(&cid));
    }

    #[test]
    fn get_unknown_cid_errors() {
        let mut nodes = network(4);
        let cid = Cid::of(b"never-stored");
        let out = nodes[1].handle(CLIENT, IpfsWire::Get { cid, req_id: 5 });
        let replies = pump(
            &mut nodes,
            out.into_iter().map(|o| (NodeId(1), o)).collect(),
        );
        match &replies[..] {
            [(_, IpfsWire::GetErr { req_id: 5, .. })] => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn replication_survives_origin_loss() {
        let mut nodes = network(5);
        let data = Bytes::from_static(b"replicated-block");
        let out = nodes[0].handle(
            CLIENT,
            IpfsWire::Put {
                data: data.clone(),
                req_id: 1,
                replicate: 3,
            },
        );
        pump(
            &mut nodes,
            out.into_iter().map(|o| (NodeId(0), o)).collect(),
        );
        let cid = Cid::of(&data);
        let holders = (0..5).filter(|&i| nodes[i].store().contains(&cid)).count();
        assert_eq!(holders, 3, "3 total replicas");
    }

    #[test]
    fn merge_local_blobs() {
        use dfl_crypto::quantize::{encode, quantize_vector};
        let mut nodes = network(3);
        let b1 = Bytes::from(encode(&quantize_vector(&[1.0, 2.0])));
        let b2 = Bytes::from(encode(&quantize_vector(&[0.5, 0.5])));
        let out1 = nodes[0].handle(
            CLIENT,
            IpfsWire::Put {
                data: b1.clone(),
                req_id: 1,
                replicate: 1,
            },
        );
        pump(
            &mut nodes,
            out1.into_iter().map(|o| (NodeId(0), o)).collect(),
        );
        let out2 = nodes[0].handle(
            CLIENT,
            IpfsWire::Put {
                data: b2.clone(),
                req_id: 2,
                replicate: 1,
            },
        );
        pump(
            &mut nodes,
            out2.into_iter().map(|o| (NodeId(0), o)).collect(),
        );

        let out = nodes[0].handle(
            CLIENT,
            IpfsWire::Merge {
                cids: vec![Cid::of(&b1), Cid::of(&b2)],
                req_id: 3,
            },
        );
        let replies = pump(
            &mut nodes,
            out.into_iter().map(|o| (NodeId(0), o)).collect(),
        );
        match &replies[..] {
            [(_, IpfsWire::MergeOk { data, req_id: 3 })] => {
                let expect = crate::merge::merge_blobs(&[b1.as_ref(), b2.as_ref()]).unwrap();
                assert_eq!(data.as_ref(), &expect[..]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn merge_fetches_missing_blocks() {
        use dfl_crypto::quantize::{encode, quantize_vector};
        let mut nodes = network(5);
        let b1 = Bytes::from(encode(&quantize_vector(&[1.0])));
        let b2 = Bytes::from(encode(&quantize_vector(&[2.0])));
        // Store on different nodes.
        let o = nodes[1].handle(
            CLIENT,
            IpfsWire::Put {
                data: b1.clone(),
                req_id: 1,
                replicate: 1,
            },
        );
        pump(&mut nodes, o.into_iter().map(|o| (NodeId(1), o)).collect());
        let o = nodes[2].handle(
            CLIENT,
            IpfsWire::Put {
                data: b2.clone(),
                req_id: 2,
                replicate: 1,
            },
        );
        pump(&mut nodes, o.into_iter().map(|o| (NodeId(2), o)).collect());
        // Merge at node 0, which holds neither block.
        let o = nodes[0].handle(
            CLIENT,
            IpfsWire::Merge {
                cids: vec![Cid::of(&b1), Cid::of(&b2)],
                req_id: 3,
            },
        );
        let replies = pump(&mut nodes, o.into_iter().map(|o| (NodeId(0), o)).collect());
        match &replies[..] {
            [(_, IpfsWire::MergeOk { data, req_id: 3 })] => {
                let expect = crate::merge::merge_blobs(&[b1.as_ref(), b2.as_ref()]).unwrap();
                assert_eq!(data.as_ref(), &expect[..]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn merge_with_unavailable_block_errors() {
        let mut nodes = network(3);
        let o = nodes[0].handle(
            CLIENT,
            IpfsWire::Merge {
                cids: vec![Cid::of(b"ghost")],
                req_id: 4,
            },
        );
        let replies = pump(&mut nodes, o.into_iter().map(|o| (NodeId(0), o)).collect());
        match &replies[..] {
            [(_, IpfsWire::MergeErr { req_id: 4, .. })] => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn pubsub_floods_to_remote_subscribers() {
        let mut nodes = network(3);
        let alice = NodeId(200);
        let bob = NodeId(201);
        // Alice subscribes at node 0, Bob at node 2.
        nodes[0].handle(
            alice,
            IpfsWire::Subscribe {
                topic: "sync".into(),
            },
        );
        nodes[2].handle(
            bob,
            IpfsWire::Subscribe {
                topic: "sync".into(),
            },
        );
        // Bob publishes via node 2.
        let o = nodes[2].handle(
            bob,
            IpfsWire::Publish {
                topic: "sync".into(),
                data: Bytes::from_static(b"hash"),
            },
        );
        let replies = pump(&mut nodes, o.into_iter().map(|o| (NodeId(2), o)).collect());
        // Alice gets one delivery; Bob (the publisher) does not.
        let delivered: Vec<_> = replies
            .iter()
            .filter(|(to, w)| matches!(w, IpfsWire::Deliver { .. }) && *to == alice)
            .collect();
        assert_eq!(delivered.len(), 1);
        assert!(!replies
            .iter()
            .any(|(to, w)| *to == bob && matches!(w, IpfsWire::Deliver { .. })));
    }

    #[test]
    fn gossip_reaches_every_remote_subscriber_exactly_once() {
        // The evidence-gossip pattern of the accountability layer: one
        // detector publishes a misbehavior record; every subscriber on
        // every *other* gateway must receive exactly one Deliver carrying
        // the true publisher id (peers filter their own detections by it),
        // and the publisher must not hear its own record back.
        let mut nodes = network(4);
        let peers: Vec<NodeId> = (300..304).map(NodeId).collect();
        for (i, &peer) in peers.iter().enumerate() {
            nodes[i].handle(
                peer,
                IpfsWire::Subscribe {
                    topic: "ipls/evidence".into(),
                },
            );
        }
        let detector = peers[1];
        let o = nodes[1].handle(
            detector,
            IpfsWire::Publish {
                topic: "ipls/evidence".into(),
                data: Bytes::from_static(b"misbehavior-record"),
            },
        );
        let replies = pump(&mut nodes, o.into_iter().map(|o| (NodeId(1), o)).collect());
        for &peer in &peers {
            let got: Vec<_> = replies
                .iter()
                .filter(|(to, w)| {
                    *to == peer
                        && matches!(
                            w,
                            IpfsWire::Deliver { topic, publisher, .. }
                                if topic == "ipls/evidence" && *publisher == detector
                        )
                })
                .collect();
            let want = usize::from(peer != detector);
            assert_eq!(got.len(), want, "peer {peer:?} deliveries");
        }
    }

    #[test]
    fn lossy_node_loses_data() {
        let mut nodes = network(3);
        nodes[0].set_lossy(true);
        let data = Bytes::from_static(b"doomed");
        let o = nodes[0].handle(
            CLIENT,
            IpfsWire::Put {
                data: data.clone(),
                req_id: 1,
                replicate: 1,
            },
        );
        let replies = pump(&mut nodes, o.into_iter().map(|o| (NodeId(0), o)).collect());
        // Ack still arrives (the loss is silent), but the data is gone.
        assert!(matches!(replies[..], [(_, IpfsWire::PutAck { .. })]));
        assert!(!nodes[0].store().contains(&Cid::of(&data)));
    }

    #[test]
    fn fetch_verifies_content() {
        // A node receiving a FetchOk whose bytes don't match the CID must
        // not serve them.
        let mut node = network(1).pop().unwrap();
        let cid = Cid::of(b"real-content");
        let internal = 1u64;
        let forger = NodeId(50);
        node.pending.insert(
            internal,
            Pending::Get {
                client: CLIENT,
                client_req: 7,
                cid,
            },
        );
        node.fetches.insert(
            internal,
            FetchAttempt {
                cid,
                peer: forger,
                attempt: 0,
                timer: 0,
                leg: Leg::Fetch { queue: vec![] },
            },
        );
        let out = node.handle(
            forger,
            IpfsWire::FetchOk {
                cid,
                data: Bytes::from_static(b"forged!!"),
                req_id: internal,
            },
        );
        match &out[..] {
            [Outgoing {
                to,
                wire: IpfsWire::GetErr { req_id: 7, .. },
            }] => {
                assert_eq!(*to, CLIENT);
            }
            other => panic!("forged content must yield GetErr, got {other:?}"),
        }
    }

    /// Pins the wire cost of every message variant, so a change to the byte
    /// accounting (which feeds every traffic figure) is always deliberate.
    #[test]
    fn wire_bytes_accounting() {
        let cid = Cid::of(b"x");
        let data = Bytes::from(vec![0u8; 1000]);
        let peer = NodeId(3);
        let cases: Vec<(IpfsWire, u64)> = vec![
            (
                IpfsWire::Put {
                    data: data.clone(),
                    req_id: 0,
                    replicate: 1,
                },
                1000,
            ),
            (IpfsWire::Get { cid, req_id: 0 }, 32),
            (
                IpfsWire::Merge {
                    cids: vec![Cid::of(b"a"), Cid::of(b"b")],
                    req_id: 0,
                },
                64,
            ),
            (IpfsWire::Unpin { cid, replicate: 2 }, 32),
            (
                IpfsWire::Subscribe {
                    topic: "sync".into(),
                },
                4,
            ),
            (
                IpfsWire::Publish {
                    topic: "sync".into(),
                    data: data.clone(),
                },
                4 + 1000,
            ),
            (IpfsWire::PutAck { cid, req_id: 0 }, 32),
            (
                IpfsWire::GetOk {
                    cid,
                    data: data.clone(),
                    req_id: 0,
                },
                32 + 1000,
            ),
            (IpfsWire::GetErr { cid, req_id: 0 }, 32),
            (
                IpfsWire::MergeOk {
                    data: data.clone(),
                    req_id: 0,
                },
                1000,
            ),
            (
                IpfsWire::MergeErr {
                    reason: "missing".into(),
                    req_id: 0,
                },
                7,
            ),
            (
                IpfsWire::Deliver {
                    topic: "sync".into(),
                    data: data.clone(),
                    publisher: peer,
                },
                4 + 1000 + 8,
            ),
            (IpfsWire::FindProviders { cid, req_id: 0 }, 32),
            (
                IpfsWire::Providers {
                    cid,
                    providers: vec![peer, NodeId(4)],
                    req_id: 0,
                },
                32 + 16,
            ),
            (
                IpfsWire::Announce {
                    cid,
                    provider: peer,
                },
                32 + 8,
            ),
            (IpfsWire::FetchBlock { cid, req_id: 0 }, 32),
            (
                IpfsWire::FetchOk {
                    cid,
                    data: data.clone(),
                    req_id: 0,
                },
                32 + 1000,
            ),
            (IpfsWire::FetchErr { cid, req_id: 0 }, 32),
            (IpfsWire::Replicate { data: data.clone() }, 1000),
            (
                IpfsWire::Retract {
                    cid,
                    provider: peer,
                },
                32 + 8,
            ),
            (IpfsWire::UnpinReplica { cid }, 32),
            (
                IpfsWire::PubGossip {
                    topic: "sync".into(),
                    data,
                    publisher: peer,
                },
                4 + 1000 + 8,
            ),
            (
                IpfsWire::PutChunked {
                    manifest: Bytes::from(vec![7u8; 56]),
                    req_id: 0,
                    replicate: 2,
                },
                56,
            ),
            (
                IpfsWire::ChunkWant {
                    cids: vec![Cid::of(b"a"), Cid::of(b"b"), Cid::of(b"c")],
                    req_id: 0,
                },
                96,
            ),
            (
                IpfsWire::ChunkFill {
                    chunks: vec![Bytes::from(vec![1u8; 300]), Bytes::from(vec![2u8; 50])],
                    req_id: 0,
                },
                350,
            ),
            (IpfsWire::GetChunk { cid, req_id: 0 }, 32),
            (
                IpfsWire::PutChunkedErr {
                    reason: "bad magic".into(),
                    req_id: 0,
                },
                9,
            ),
        ];
        for (wire, payload) in cases {
            assert_eq!(
                wire.wire_bytes(),
                payload + CONTROL_BYTES,
                "variant {wire:?}"
            );
        }
    }

    /// Drives `nodes`, delivering messages *and* expiring armed timeouts in
    /// arrival order, while `down` nodes drop everything sent to them.
    /// Returns the messages addressed to clients.
    fn pump_with_timers(
        nodes: &mut [IpfsNode],
        mut queue: Vec<(NodeId, Outgoing)>,
        down: &[NodeId],
    ) -> Vec<(NodeId, IpfsWire)> {
        let mut to_clients = Vec::new();
        let mut armed: Vec<(usize, u64)> = Vec::new();
        for _ in 0..10_000 {
            // Deliver what we can; messages to down nodes vanish.
            while let Some((from, out)) = queue.pop() {
                let idx = out.to.index();
                if down.contains(&out.to) {
                    continue;
                }
                if idx < nodes.len() {
                    let produced = nodes[idx].handle(from, out.wire);
                    let self_id = nodes[idx].id();
                    queue.extend(produced.into_iter().map(|o| (self_id, o)));
                } else {
                    to_clients.push((out.to, out.wire));
                }
            }
            for (idx, node) in nodes.iter_mut().enumerate() {
                armed.extend(
                    node.take_timer_requests()
                        .into_iter()
                        .map(|(t, _)| (idx, t)),
                );
            }
            // Quiescent: expire the oldest armed timeout, if any.
            if armed.is_empty() {
                return to_clients;
            }
            let (idx, token) = armed.remove(0);
            let produced = nodes[idx].on_timeout(token);
            let self_id = nodes[idx].id();
            queue.extend(produced.into_iter().map(|o| (self_id, o)));
        }
        panic!("pump_with_timers did not quiesce");
    }

    #[test]
    fn timeout_retries_then_fails_over_and_retracts() {
        // Construct the worst case directly: the provider listed FIRST in
        // every record (node 0) is dead, and a live replica (node 3) is
        // listed second. The retrieval must time out on node 0, retry it,
        // give up, retract it from the records, and succeed via node 3.
        let mut nodes = network(4);
        let data = Bytes::from_static(b"resilient");
        let cid = Cid::of(&data);
        for idx in [0usize, 3] {
            let stored = nodes[idx].store.put(Block::new(data.clone()));
            nodes[idx].store.pin(stored);
        }
        let rec_holders = nodes[0].record_holders(&cid, RECORD_REPLICAS);
        for holder in &rec_holders {
            nodes[holder.index()]
                .records
                .insert(cid, vec![NodeId(0), NodeId(3)]);
        }

        let down = [NodeId(0)];
        let asker = (1..nodes.len())
            .map(NodeId)
            .find(|n| *n != NodeId(3))
            .unwrap();
        let o = nodes[asker.index()].handle(CLIENT, IpfsWire::Get { cid, req_id: 2 });
        let replies = pump_with_timers(
            &mut nodes,
            o.into_iter().map(|o| (asker, o)).collect(),
            &down,
        );
        match &replies[..] {
            [(to, IpfsWire::GetOk { cid: got, .. })] => {
                assert_eq!(*to, CLIENT);
                assert_eq!(*got, cid);
            }
            other => panic!("expected failover GetOk, got {other:?}"),
        }

        // The dead provider was retracted: surviving records no longer list
        // node 0 (the replica stays listed), so the next retrieval goes
        // straight to the replica.
        for node in nodes.iter().filter(|n| !down.contains(&n.id())) {
            if let Some(entry) = node.records.get(&cid) {
                assert!(
                    !entry.contains(&NodeId(0)),
                    "node {} still lists the dead provider",
                    node.id()
                );
                assert!(
                    entry.contains(&NodeId(3)),
                    "replica vanished from {}",
                    node.id()
                );
            }
        }
    }

    #[test]
    fn resolve_fails_over_to_next_record_holder() {
        // The first record holder for the CID is down; resolution must ask
        // the next holder instead of giving up.
        let mut nodes = network(5);
        let data = Bytes::from_static(b"holder-failover");
        let cid = Cid::of(&data);
        let o = nodes[0].handle(
            CLIENT,
            IpfsWire::Put {
                data,
                req_id: 1,
                replicate: 2,
            },
        );
        pump(&mut nodes, o.into_iter().map(|o| (NodeId(0), o)).collect());

        let holders = nodes[0].record_holders(&cid, RECORD_REPLICAS);
        assert!(holders.len() >= 2, "need at least two record holders");
        // Ask from a node that is neither a record holder nor a block holder,
        // with the primary record holder down (unless that would also kill
        // the block's only copies — then just verify the happy path).
        let storers: Vec<NodeId> = nodes
            .iter()
            .filter(|n| n.store().contains(&cid))
            .map(|n| n.id())
            .collect();
        let asker = (0..nodes.len())
            .map(NodeId)
            .find(|n| !holders.contains(n) && !storers.contains(n))
            .expect("a neutral asker");
        let down: Vec<NodeId> = holders
            .iter()
            .copied()
            .filter(|h| !storers.contains(h))
            .take(1)
            .collect();
        let o = nodes[asker.index()].handle(CLIENT, IpfsWire::Get { cid, req_id: 9 });
        let replies = pump_with_timers(
            &mut nodes,
            o.into_iter().map(|o| (asker, o)).collect(),
            &down,
        );
        match &replies[..] {
            [(to, IpfsWire::GetOk { cid: got, .. })] => {
                assert_eq!(*to, CLIENT);
                assert_eq!(*got, cid);
            }
            other => panic!("expected GetOk via surviving record holder, got {other:?}"),
        }
    }

    #[test]
    fn fetch_err_heals_provider_records() {
        // A provider that lost its data (stays responsive, answers FetchErr)
        // is withdrawn from the provider records everywhere.
        let mut nodes = network(4);
        let data = Bytes::from_static(b"self-heal");
        let cid = Cid::of(&data);
        let o = nodes[0].handle(
            CLIENT,
            IpfsWire::Put {
                data,
                req_id: 1,
                replicate: 2,
            },
        );
        pump(&mut nodes, o.into_iter().map(|o| (NodeId(0), o)).collect());

        // Node 0 silently loses its durable state.
        nodes[0].drop_stored_data();

        let asker = NodeId(3);
        let o = nodes[asker.index()].handle(CLIENT, IpfsWire::Get { cid, req_id: 2 });
        let replies =
            pump_with_timers(&mut nodes, o.into_iter().map(|o| (asker, o)).collect(), &[]);
        match &replies[..] {
            [(_, IpfsWire::GetOk { cid: got, .. })] => assert_eq!(*got, cid),
            other => panic!("expected GetOk from replica, got {other:?}"),
        }
        // Every surviving record has dropped the data-less provider.
        for node in nodes.iter() {
            if let Some(entry) = node.records.get(&cid) {
                assert!(
                    !entry.contains(&NodeId(0)),
                    "node {} still lists the provider that lost the data",
                    node.id()
                );
            }
        }
    }

    #[test]
    fn crash_drops_volatile_but_not_stored_state() {
        let mut nodes = network(3);
        let data = Bytes::from_static(b"durable");
        let cid = Cid::of(&data);
        let o = nodes[0].handle(
            CLIENT,
            IpfsWire::Put {
                data,
                req_id: 1,
                replicate: 1,
            },
        );
        pump(&mut nodes, o.into_iter().map(|o| (NodeId(0), o)).collect());

        // Arm an in-flight retrieval, then crash.
        let o = nodes[1].handle(
            CLIENT,
            IpfsWire::Get {
                cid: Cid::of(b"missing"),
                req_id: 5,
            },
        );
        assert!(!o.is_empty());
        nodes[0].drop_volatile_state();
        nodes[1].drop_volatile_state();
        assert!(nodes[1].take_timer_requests().is_empty());
        // Stored blocks survive a crash; only request state is gone.
        assert!(nodes[0].store().contains(&cid));
        assert!(nodes[1].fetches.is_empty() && nodes[1].pending.is_empty());
    }

    /// Drives a full chunked upload (PutChunked → ChunkWant → ChunkFill →
    /// PutAck) of `data` at `node`, returning the manifest CID.
    fn chunked_put(
        nodes: &mut [IpfsNode],
        node: usize,
        data: &[u8],
        chunk_size: usize,
        req_id: u64,
    ) -> Cid {
        let (manifest, blocks) = crate::chunker::split(data, chunk_size);
        let manifest_bytes = manifest.encode();
        let out = nodes[node].handle(
            CLIENT,
            IpfsWire::PutChunked {
                manifest: manifest_bytes.clone(),
                req_id,
                replicate: 1,
            },
        );
        let self_id = nodes[node].id();
        let mut replies = pump(nodes, out.into_iter().map(|o| (self_id, o)).collect());
        if let Some((_, IpfsWire::ChunkWant { cids, req_id: r })) = replies.first() {
            assert_eq!(*r, req_id);
            let by_cid: HashMap<Cid, Bytes> =
                blocks.iter().map(|b| (b.cid(), b.data().clone())).collect();
            let chunks: Vec<Bytes> = cids.iter().map(|c| by_cid[c].clone()).collect();
            let out = nodes[node].handle(CLIENT, IpfsWire::ChunkFill { chunks, req_id });
            replies = pump(nodes, out.into_iter().map(|o| (self_id, o)).collect());
        }
        match &replies[..] {
            [(to, IpfsWire::PutAck { cid, req_id: r })] if *to == CLIENT && *r == req_id => *cid,
            other => panic!("unexpected replies {other:?}"),
        }
    }

    #[test]
    fn chunked_put_stores_manifest_and_chunks_and_serves_gets() {
        let mut nodes = network(4);
        let data: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        let manifest_cid = chunked_put(&mut nodes, 0, &data, 100, 1);
        let (manifest, blocks) = crate::chunker::split(&data, 100);
        assert_eq!(manifest_cid, Cid::of(&manifest.encode()));
        assert!(nodes[0].store().contains(&manifest_cid));
        for block in &blocks {
            assert!(nodes[0].store().contains(&block.cid()));
        }
        // The manifest is retrievable via Get and each chunk via GetChunk.
        let out = nodes[0].handle(
            CLIENT,
            IpfsWire::Get {
                cid: manifest_cid,
                req_id: 2,
            },
        );
        let replies = pump(
            &mut nodes,
            out.into_iter().map(|o| (NodeId(0), o)).collect(),
        );
        match &replies[..] {
            [(_, IpfsWire::GetOk { data: got, .. })] => assert_eq!(*got, manifest.encode()),
            other => panic!("unexpected {other:?}"),
        }
        let out = nodes[0].handle(
            CLIENT,
            IpfsWire::GetChunk {
                cid: blocks[1].cid(),
                req_id: 3,
            },
        );
        let replies = pump(
            &mut nodes,
            out.into_iter().map(|o| (NodeId(0), o)).collect(),
        );
        match &replies[..] {
            [(_, IpfsWire::GetOk { data: got, .. })] => assert_eq!(got, blocks[1].data()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn second_chunked_put_dedups_unchanged_chunks() {
        let mut nodes = network(4);
        let data: Vec<u8> = vec![9u8; 400];
        chunked_put(&mut nodes, 0, &data, 100, 1);
        // Re-upload the identical blob: the node already holds every chunk,
        // so the want-list is empty and the put completes manifest-only.
        let (manifest, _) = crate::chunker::split(&data, 100);
        let out = nodes[0].handle(
            CLIENT,
            IpfsWire::PutChunked {
                manifest: manifest.encode(),
                req_id: 2,
                replicate: 1,
            },
        );
        let replies = pump(
            &mut nodes,
            out.into_iter().map(|o| (NodeId(0), o)).collect(),
        );
        assert!(
            matches!(&replies[..], [(_, IpfsWire::PutAck { req_id: 2, .. })]),
            "expected immediate ack, got {replies:?}"
        );
        let stats = drained_stats(&mut nodes[0]);
        // Every chunk of the second upload already sits in the store.
        assert_eq!(stats[stats::CHUNKS_DEDUPED], 4);
        assert_eq!(stats[stats::DEDUP_BYTES_SAVED], 400);
    }

    #[test]
    fn malformed_manifest_is_rejected_with_typed_error() {
        let mut nodes = network(3);
        let out = nodes[0].handle(
            CLIENT,
            IpfsWire::PutChunked {
                manifest: Bytes::from_static(b"not a manifest"),
                req_id: 7,
                replicate: 1,
            },
        );
        match &out[..] {
            [Outgoing {
                to,
                wire: IpfsWire::PutChunkedErr { req_id: 7, .. },
            }] => assert_eq!(*to, CLIENT),
            other => panic!("unexpected {other:?}"),
        }
        let stats = drained_stats(&mut nodes[0]);
        assert_eq!(stats[stats::MALFORMED_MANIFESTS], 1);
    }

    #[test]
    fn corrupt_chunk_fill_is_rejected_not_stored() {
        let mut nodes = network(3);
        let data = vec![5u8; 200];
        let (manifest, _) = crate::chunker::split(&data, 100);
        let out = nodes[0].handle(
            CLIENT,
            IpfsWire::PutChunked {
                manifest: manifest.encode(),
                req_id: 1,
                replicate: 1,
            },
        );
        assert!(matches!(
            &out[..],
            [Outgoing {
                wire: IpfsWire::ChunkWant { .. },
                ..
            }]
        ));
        // Send garbage instead of the wanted chunk: it hashes to a CID the
        // node never asked for, so the fill leaves the want-list non-empty.
        let out = nodes[0].handle(
            CLIENT,
            IpfsWire::ChunkFill {
                chunks: vec![Bytes::from_static(b"corrupted payload")],
                req_id: 1,
            },
        );
        match &out[..] {
            [Outgoing {
                wire: IpfsWire::PutChunkedErr { req_id: 1, .. },
                ..
            }] => {}
            other => panic!("unexpected {other:?}"),
        }
        let stats = drained_stats(&mut nodes[0]);
        assert_eq!(stats[stats::CHUNK_REJECTS], 1);
        assert!(!nodes[0].store().contains(&Cid::of(b"corrupted payload")));
    }

    #[test]
    fn stray_chunk_fill_is_booked_not_fatal() {
        let mut nodes = network(3);
        let out = nodes[0].handle(
            CLIENT,
            IpfsWire::ChunkFill {
                chunks: vec![Bytes::from_static(b"nobody asked")],
                req_id: 99,
            },
        );
        assert!(out.is_empty());
        let stats = drained_stats(&mut nodes[0]);
        assert_eq!(stats[stats::STRAY_CHUNK_FILLS], 1);
    }

    #[test]
    fn unpinning_a_manifest_releases_its_chunks() {
        let mut nodes = network(4);
        let round1: Vec<u8> = (0..300u32).map(|i| (i % 251) as u8).collect();
        let cid1 = chunked_put(&mut nodes, 0, &round1, 100, 1);
        // Round 2 shares the first two chunks with round 1 and changes the
        // last one. Upload FIRST, then unpin the old manifest — the shared
        // chunks' per-reference pins must keep them alive.
        let mut round2 = round1.clone();
        round2[250] ^= 0xff;
        let cid2 = chunked_put(&mut nodes, 0, &round2, 100, 2);
        let o = nodes[0].handle(
            CLIENT,
            IpfsWire::Unpin {
                cid: cid1,
                replicate: 1,
            },
        );
        pump(&mut nodes, o.into_iter().map(|o| (NodeId(0), o)).collect());
        let (m1, b1) = crate::chunker::split(&round1, 100);
        let (_, b2) = crate::chunker::split(&round2, 100);
        assert_eq!(Cid::of(&m1.encode()), cid1);
        assert!(!nodes[0].store().contains(&cid1), "old manifest collected");
        assert!(
            !nodes[0].store().contains(&b1[2].cid()),
            "chunk unique to round 1 collected"
        );
        for block in &b2 {
            assert!(
                nodes[0].store().contains(&block.cid()),
                "round-2 chunk survived the round-1 unpin"
            );
        }
        assert!(nodes[0].store().contains(&cid2));
    }

    #[test]
    fn stale_providers_reply_is_booked_not_fatal() {
        let mut nodes = network(3);
        // Unknown req_id with empty providers used to debug-panic in
        // `fail`; with providers it used to start a phantom fetch.
        let o = nodes[0].handle(
            NodeId(1),
            IpfsWire::Providers {
                cid: Cid::of(b"x"),
                providers: Vec::new(),
                req_id: 424242,
            },
        );
        assert!(o.is_empty());
        let o = nodes[0].handle(
            NodeId(1),
            IpfsWire::Providers {
                cid: Cid::of(b"x"),
                providers: vec![NodeId(2)],
                req_id: 424243,
            },
        );
        assert!(o.is_empty());
        let stats = drained_stats(&mut nodes[0]);
        assert_eq!(stats[stats::STALE_REPLIES], 2);
        assert!(nodes[0].fetches.is_empty());
    }

    #[test]
    fn client_facing_frames_at_a_node_are_booked_not_fatal() {
        let mut nodes = network(3);
        let o = nodes[0].handle(
            NodeId(1),
            IpfsWire::GetOk {
                cid: Cid::of(b"x"),
                data: Bytes::from_static(b"payload"),
                req_id: 5,
            },
        );
        assert!(o.is_empty());
        let stats = drained_stats(&mut nodes[0]);
        assert_eq!(stats[stats::UNEXPECTED_MESSAGES], 1);
    }
}
