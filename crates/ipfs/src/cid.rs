//! Content identifiers.
//!
//! As in IPFS, data is addressed by the SHA-256 hash of its bytes
//! (`Cid = Hash(data)`, §III-C of the paper). A party that knows a CID can
//! verify any retrieved bytes against it; a party that does not know the CID
//! cannot locate the data — which is why the protocol needs a directory
//! service mapping addressing metadata to CIDs.

use std::fmt;

use dfl_crypto::sha256::Sha256;

/// A content identifier: the SHA-256 digest of the addressed bytes.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cid([u8; 32]);

impl Cid {
    /// Computes the CID of `data`.
    pub fn of(data: &[u8]) -> Cid {
        Cid(Sha256::digest(data))
    }

    /// Wraps a raw digest (e.g. received over the wire).
    pub const fn from_bytes(bytes: [u8; 32]) -> Cid {
        Cid(bytes)
    }

    /// The raw digest bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Verifies that `data` hashes to this CID.
    pub fn verifies(&self, data: &[u8]) -> bool {
        Cid::of(data) == *self
    }

    /// The digest interpreted as a 256-bit big-endian integer — the
    /// coordinate used for XOR-metric routing.
    pub fn as_key(&self) -> dfl_crypto::bigint::U256 {
        dfl_crypto::bigint::U256::from_be_bytes(self.0)
    }

    /// Short human-readable prefix (first 8 hex chars).
    pub fn short(&self) -> String {
        self.0[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl fmt::Debug for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cid({}…)", self.short())
    }
}

impl fmt::Display for Cid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for b in &self.0 {
            write!(f, "{b:02x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cid_is_content_hash() {
        let cid = Cid::of(b"hello world");
        assert!(cid.verifies(b"hello world"));
        assert!(!cid.verifies(b"hello worlD"));
    }

    #[test]
    fn equal_content_equal_cid() {
        assert_eq!(Cid::of(b"x"), Cid::of(b"x"));
        assert_ne!(Cid::of(b"x"), Cid::of(b"y"));
    }

    #[test]
    fn round_trip_bytes() {
        let cid = Cid::of(b"data");
        assert_eq!(Cid::from_bytes(*cid.as_bytes()), cid);
    }

    #[test]
    fn display_is_full_hex() {
        let s = Cid::of(b"abc").to_string();
        assert_eq!(s.len(), 64);
        assert!(s.starts_with(&Cid::of(b"abc").short()));
        // SHA-256 of "abc" is a known vector.
        assert!(s.starts_with("ba7816bf"));
    }
}
