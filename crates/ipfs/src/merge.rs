//! Storage-side gradient pre-aggregation — the *merge-and-download*
//! primitive (§III-E of the paper).
//!
//! Instead of downloading every gradient partition stored on a node, an
//! aggregator sends the node a set of CIDs and asks for their element-wise
//! sum. The node decodes each blob as a fixed-point gradient vector (the
//! wire format from [`dfl_crypto::quantize`]), sums, and returns one blob —
//! cutting the aggregator's download volume from `|T|` partitions to
//! `|P|` pre-merged ones.

use dfl_crypto::quantize::{decode, encode, sum_quantized, Quantized};

/// Why a merge request could not be served.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MergeError {
    /// No CIDs were supplied.
    Empty,
    /// A blob was not a valid encoded gradient vector.
    MalformedBlob { index: usize },
    /// Two blobs had different vector lengths.
    LengthMismatch {
        expected: usize,
        found: usize,
        index: usize,
    },
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Empty => write!(f, "merge request contained no blobs"),
            MergeError::MalformedBlob { index } => {
                write!(f, "blob {index} is not a valid encoded gradient vector")
            }
            MergeError::LengthMismatch {
                expected,
                found,
                index,
            } => write!(f, "blob {index} has {found} elements, expected {expected}"),
        }
    }
}

impl std::error::Error for MergeError {}

/// Sums a set of encoded gradient blobs into one encoded blob.
///
/// # Errors
///
/// Returns an error if the input is empty, any blob fails to decode, or the
/// vectors disagree in length.
pub fn merge_blobs<B: AsRef<[u8]>>(blobs: &[B]) -> Result<Vec<u8>, MergeError> {
    if blobs.is_empty() {
        return Err(MergeError::Empty);
    }
    let mut vectors: Vec<Vec<Quantized>> = Vec::with_capacity(blobs.len());
    let mut expected_len = None;
    for (index, blob) in blobs.iter().enumerate() {
        let v = decode(blob.as_ref()).ok_or(MergeError::MalformedBlob { index })?;
        match expected_len {
            None => expected_len = Some(v.len()),
            Some(expected) if expected != v.len() => {
                return Err(MergeError::LengthMismatch {
                    expected,
                    found: v.len(),
                    index,
                });
            }
            _ => {}
        }
        vectors.push(v);
    }
    Ok(encode(&sum_quantized(&vectors)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfl_crypto::quantize::{dequantize_vector, quantize_vector};
    use proptest::prelude::*;

    fn blob(values: &[f32]) -> Vec<u8> {
        encode(&quantize_vector(values))
    }

    #[test]
    fn merge_two_blobs() {
        let merged = merge_blobs(&[blob(&[1.0, 2.0]), blob(&[0.5, -1.0])]).unwrap();
        let out = dequantize_vector(&decode(&merged).unwrap());
        assert_eq!(out, vec![1.5, 1.0]);
    }

    #[test]
    fn merge_single_blob_is_identity() {
        let b = blob(&[3.25, -0.5, 0.0]);
        assert_eq!(merge_blobs(std::slice::from_ref(&b)).unwrap(), b);
    }

    #[test]
    fn merge_equals_sequential_sums() {
        // merge(a, b, c) == merge(merge(a, b), c): associativity lets
        // aggregators combine pre-merged partials safely.
        let a = blob(&[1.0, 2.0, 3.0]);
        let b = blob(&[-0.5, 0.25, 1.0]);
        let c = blob(&[10.0, -2.0, 0.125]);
        let all = merge_blobs(&[a.clone(), b.clone(), c.clone()]).unwrap();
        let ab = merge_blobs(&[a, b]).unwrap();
        let ab_c = merge_blobs(&[ab, c]).unwrap();
        assert_eq!(all, ab_c);
    }

    #[test]
    fn errors() {
        assert_eq!(merge_blobs::<Vec<u8>>(&[]), Err(MergeError::Empty));
        assert_eq!(
            merge_blobs(&[vec![1u8, 2, 3]]),
            Err(MergeError::MalformedBlob { index: 0 })
        );
        assert_eq!(
            merge_blobs(&[blob(&[1.0, 2.0]), blob(&[1.0])]),
            Err(MergeError::LengthMismatch {
                expected: 2,
                found: 1,
                index: 1
            })
        );
    }

    proptest! {
        #[test]
        fn prop_merge_commutative(
            a in proptest::collection::vec(-100.0f32..100.0, 8),
            b in proptest::collection::vec(-100.0f32..100.0, 8),
        ) {
            let x = merge_blobs(&[blob(&a), blob(&b)]).unwrap();
            let y = merge_blobs(&[blob(&b), blob(&a)]).unwrap();
            prop_assert_eq!(x, y);
        }

        #[test]
        fn prop_merge_matches_float_sum(
            vs in proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, 4), 1..6),
        ) {
            let blobs: Vec<Vec<u8>> = vs.iter().map(|v| blob(v)).collect();
            let merged = dequantize_vector(&decode(&merge_blobs(&blobs).unwrap()).unwrap());
            for j in 0..4 {
                let expect: f32 = vs.iter().map(|v| v[j]).sum();
                prop_assert!((merged[j] - expect).abs() < 1e-3);
            }
        }
    }
}
