//! Content-addressed chunk DAGs: deterministic fixed-size chunking of
//! partition blobs plus the manifest block that names the chunks.
//!
//! A blob is split into fixed-size chunks (the last one may be shorter),
//! each addressed by its SHA-256 [`Cid`]. The manifest lists the child
//! CIDs **in order** together with each chunk's length, so a provider can
//! compute which chunks it already holds — and how many wire bytes the
//! upload saves — from the manifest alone, before a single chunk byte is
//! shipped. Chunk boundaries depend only on the blob bytes and the chunk
//! size, so an unchanged blob prefix yields the same chunk CIDs round
//! after round: those chunks dedup to zero wire bytes at the provider.
//!
//! The manifest is itself an ordinary block (stored, replicated, and
//! fetched by its own CID); its encoding is versioned by a magic prefix
//! and validated structurally on decode — manifests arrive from the
//! network and are never trusted.

use bytes::Bytes;

use crate::block::Block;
use crate::cid::Cid;

/// Version magic prefixing every encoded manifest.
pub const MANIFEST_MAGIC: [u8; 8] = *b"DFLCHNK1";

/// Smallest chunk size the config validator accepts. Tiny chunks are
/// legal for the chunker itself (tests use them) but make no sense on the
/// wire: each chunk costs a manifest entry and a request round-trip.
pub const MIN_CHUNK_SIZE: usize = 64;

/// Default chunk size when [`chunked storage`](crate::chunker) is enabled.
pub const DEFAULT_CHUNK_SIZE: usize = 64 * 1024;

/// Why an encoded manifest (or a chunk fill) could not be accepted.
/// Manifests and chunks are remote input; every malformation is a typed
/// error, never a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChunkError {
    /// The manifest does not start with [`MANIFEST_MAGIC`].
    BadMagic,
    /// The manifest is shorter than its declared entry count requires.
    Truncated { needed: usize, got: usize },
    /// The manifest has bytes beyond the last declared entry.
    TrailingBytes { extra: usize },
    /// The declared total length disagrees with the sum of chunk lengths.
    LengthMismatch { declared: u64, summed: u64 },
    /// A supplied chunk does not hash to the CID the manifest declares.
    ChunkCidMismatch { index: usize },
    /// A supplied chunk's length disagrees with the manifest entry.
    ChunkLenMismatch {
        index: usize,
        expected: u32,
        got: usize,
    },
    /// A chunk index outside the manifest's entry list.
    UnknownChunk { index: usize },
    /// Reassembly was finished with chunks still missing.
    Incomplete { missing: usize },
}

impl std::fmt::Display for ChunkError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChunkError::BadMagic => write!(f, "manifest does not start with the chunk magic"),
            ChunkError::Truncated { needed, got } => {
                write!(f, "manifest truncated: needed {needed} bytes, got {got}")
            }
            ChunkError::TrailingBytes { extra } => {
                write!(f, "manifest has {extra} trailing bytes")
            }
            ChunkError::LengthMismatch { declared, summed } => write!(
                f,
                "manifest declares {declared} total bytes but its chunks sum to {summed}"
            ),
            ChunkError::ChunkCidMismatch { index } => {
                write!(f, "chunk {index} does not hash to its declared CID")
            }
            ChunkError::ChunkLenMismatch {
                index,
                expected,
                got,
            } => write!(
                f,
                "chunk {index} is {got} bytes, manifest declares {expected}"
            ),
            ChunkError::UnknownChunk { index } => {
                write!(f, "chunk index {index} is outside the manifest")
            }
            ChunkError::Incomplete { missing } => {
                write!(f, "reassembly incomplete: {missing} chunks missing")
            }
        }
    }
}

impl std::error::Error for ChunkError {}

/// The manifest block of a chunk DAG: the blob's total length plus the
/// ordered `(cid, len)` list of its chunks.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    total_len: u64,
    chunks: Vec<(Cid, u32)>,
}

/// Encoded size of one manifest entry: a 32-byte CID plus a u32 length.
const ENTRY_BYTES: usize = 36;
/// Encoded size of the manifest header: magic, total length, entry count.
const HEADER_BYTES: usize = 8 + 8 + 4;

impl Manifest {
    /// Total length of the reassembled blob.
    pub fn total_len(&self) -> u64 {
        self.total_len
    }

    /// The ordered `(cid, len)` chunk entries.
    pub fn chunks(&self) -> &[(Cid, u32)] {
        &self.chunks
    }

    /// Serializes the manifest (magic | total_len | count | entries).
    pub fn encode(&self) -> Bytes {
        let mut out = Vec::with_capacity(HEADER_BYTES + self.chunks.len() * ENTRY_BYTES);
        out.extend_from_slice(&MANIFEST_MAGIC);
        out.extend_from_slice(&self.total_len.to_le_bytes());
        out.extend_from_slice(&(self.chunks.len() as u32).to_le_bytes());
        for (cid, len) in &self.chunks {
            out.extend_from_slice(cid.as_bytes());
            out.extend_from_slice(&len.to_le_bytes());
        }
        Bytes::from(out)
    }

    /// Parses and structurally validates an encoded manifest.
    ///
    /// # Errors
    ///
    /// Any malformation of the (remote, untrusted) bytes: wrong magic,
    /// truncation, trailing garbage, or a total length that disagrees
    /// with the chunk lengths.
    pub fn decode(data: &[u8]) -> Result<Manifest, ChunkError> {
        if data.len() < HEADER_BYTES || data[..8] != MANIFEST_MAGIC {
            if data.len() >= 8 && data[..8] == MANIFEST_MAGIC {
                return Err(ChunkError::Truncated {
                    needed: HEADER_BYTES,
                    got: data.len(),
                });
            }
            return Err(ChunkError::BadMagic);
        }
        let total_len = u64::from_le_bytes(data[8..16].try_into().expect("fixed slice"));
        let count = u32::from_le_bytes(data[16..20].try_into().expect("fixed slice")) as usize;
        let needed = HEADER_BYTES + count * ENTRY_BYTES;
        if data.len() < needed {
            return Err(ChunkError::Truncated {
                needed,
                got: data.len(),
            });
        }
        if data.len() > needed {
            return Err(ChunkError::TrailingBytes {
                extra: data.len() - needed,
            });
        }
        let mut chunks = Vec::with_capacity(count);
        let mut summed = 0u64;
        for i in 0..count {
            let at = HEADER_BYTES + i * ENTRY_BYTES;
            let cid = Cid::from_bytes(data[at..at + 32].try_into().expect("fixed slice"));
            let len = u32::from_le_bytes(data[at + 32..at + 36].try_into().expect("fixed slice"));
            summed = summed.saturating_add(len as u64);
            chunks.push((cid, len));
        }
        if summed != total_len {
            return Err(ChunkError::LengthMismatch {
                declared: total_len,
                summed,
            });
        }
        Ok(Manifest { total_len, chunks })
    }
}

/// Whether `data` looks like an encoded manifest (magic prefix check).
pub fn is_manifest(data: &[u8]) -> bool {
    data.len() >= 8 && data[..8] == MANIFEST_MAGIC
}

/// Splits `data` into fixed-size chunks and the manifest naming them.
///
/// Boundaries are a pure function of `(data, chunk_size)`: chunk `i`
/// covers `data[i*chunk_size ..]` up to `chunk_size` bytes. An empty blob
/// produces an empty manifest and no chunks.
pub fn split(data: &[u8], chunk_size: usize) -> (Manifest, Vec<Block>) {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let mut chunks = Vec::with_capacity(data.len().div_ceil(chunk_size));
    let mut blocks = Vec::with_capacity(chunks.capacity());
    for piece in data.chunks(chunk_size) {
        let block = Block::new(Bytes::copy_from_slice(piece));
        chunks.push((block.cid(), piece.len() as u32));
        blocks.push(block);
    }
    (
        Manifest {
            total_len: data.len() as u64,
            chunks,
        },
        blocks,
    )
}

/// Reassembles a blob from chunks arriving in any order, verifying each
/// against the manifest before accepting it.
#[derive(Clone, Debug)]
pub struct Reassembly {
    manifest: Manifest,
    slots: Vec<Option<Bytes>>,
    missing: usize,
}

impl Reassembly {
    /// Starts a reassembly for `manifest`.
    pub fn new(manifest: Manifest) -> Reassembly {
        let n = manifest.chunks().len();
        Reassembly {
            manifest,
            slots: vec![None; n],
            missing: n,
        }
    }

    /// The manifest being reassembled.
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Number of chunks still missing.
    pub fn missing(&self) -> usize {
        self.missing
    }

    /// `true` once every chunk has been filled.
    pub fn is_complete(&self) -> bool {
        self.missing == 0
    }

    /// Accepts chunk `index` after verifying its length and CID against
    /// the manifest. Duplicate fills of an already-verified slot are
    /// ignored (retransmissions can double-deliver).
    ///
    /// # Errors
    ///
    /// The index is out of range, or the bytes disagree with the
    /// manifest entry (length or CID).
    pub fn fill(&mut self, index: usize, data: Bytes) -> Result<(), ChunkError> {
        let Some(&(cid, len)) = self.manifest.chunks.get(index) else {
            return Err(ChunkError::UnknownChunk { index });
        };
        if self.slots[index].is_some() {
            return Ok(());
        }
        if data.len() != len as usize {
            return Err(ChunkError::ChunkLenMismatch {
                index,
                expected: len,
                got: data.len(),
            });
        }
        if !cid.verifies(&data) {
            return Err(ChunkError::ChunkCidMismatch { index });
        }
        self.slots[index] = Some(data);
        self.missing -= 1;
        Ok(())
    }

    /// Concatenates the verified chunks back into the original blob.
    ///
    /// # Errors
    ///
    /// [`ChunkError::Incomplete`] when chunks are still missing.
    pub fn assemble(self) -> Result<Vec<u8>, ChunkError> {
        if self.missing > 0 {
            return Err(ChunkError::Incomplete {
                missing: self.missing,
            });
        }
        let mut out = Vec::with_capacity(self.manifest.total_len as usize);
        for slot in self.slots {
            out.extend_from_slice(&slot.expect("no slot missing after the completeness check"));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn round_trip(data: &[u8], chunk_size: usize) -> Vec<u8> {
        let (manifest, blocks) = split(data, chunk_size);
        let decoded = Manifest::decode(&manifest.encode()).unwrap();
        assert_eq!(decoded, manifest);
        let mut asm = Reassembly::new(decoded);
        // Fill in reverse order: arrival order must not matter.
        for (i, b) in blocks.iter().enumerate().rev() {
            asm.fill(i, b.data().clone()).unwrap();
        }
        asm.assemble().unwrap()
    }

    #[test]
    fn split_and_reassemble_small() {
        let data = b"hello chunked world".to_vec();
        assert_eq!(round_trip(&data, 4), data);
        assert_eq!(round_trip(&data, 1), data);
        assert_eq!(round_trip(&data, 1024), data);
    }

    #[test]
    fn empty_blob_has_no_chunks() {
        let (manifest, blocks) = split(&[], 64);
        assert!(blocks.is_empty());
        assert_eq!(manifest.total_len(), 0);
        assert_eq!(manifest.chunks().len(), 0);
        let decoded = Manifest::decode(&manifest.encode()).unwrap();
        assert_eq!(
            Reassembly::new(decoded).assemble().unwrap(),
            Vec::<u8>::new()
        );
    }

    #[test]
    fn last_chunk_is_the_remainder() {
        let data = vec![7u8; 100];
        let (manifest, blocks) = split(&data, 32);
        assert_eq!(blocks.len(), 4);
        let lens: Vec<u32> = manifest.chunks().iter().map(|&(_, l)| l).collect();
        assert_eq!(lens, vec![32, 32, 32, 4]);
    }

    #[test]
    fn unchanged_prefix_has_identical_cids_across_rounds() {
        // Round r and round r+1 blobs share a 96-byte prefix; with a
        // 32-byte chunk size the first three chunk CIDs must match, so
        // only the changed tail re-ships.
        let mut round_a = vec![1u8; 128];
        let mut round_b = round_a.clone();
        round_b[100] = 2;
        round_a[127] = 3;
        let (ma, _) = split(&round_a, 32);
        let (mb, _) = split(&round_b, 32);
        assert_eq!(ma.chunks()[..3], mb.chunks()[..3]);
        assert_ne!(ma.chunks()[3], mb.chunks()[3]);
    }

    #[test]
    fn decode_rejects_malformed_manifests() {
        assert_eq!(
            Manifest::decode(b"not a manifest at all"),
            Err(ChunkError::BadMagic)
        );
        assert_eq!(Manifest::decode(&[]), Err(ChunkError::BadMagic));
        assert_eq!(
            Manifest::decode(&MANIFEST_MAGIC[..7]),
            Err(ChunkError::BadMagic)
        );
        assert_eq!(
            Manifest::decode(&MANIFEST_MAGIC),
            Err(ChunkError::Truncated { needed: 20, got: 8 })
        );

        let (manifest, _) = split(&[9u8; 100], 32);
        let good = manifest.encode();
        // Truncated entry list.
        assert!(matches!(
            Manifest::decode(&good[..good.len() - 1]),
            Err(ChunkError::Truncated { .. })
        ));
        // Trailing garbage.
        let mut long = good.to_vec();
        long.push(0);
        assert_eq!(
            Manifest::decode(&long),
            Err(ChunkError::TrailingBytes { extra: 1 })
        );
        // Total length lies about the chunk sum.
        let mut lying = good.to_vec();
        lying[8..16].copy_from_slice(&999u64.to_le_bytes());
        assert_eq!(
            Manifest::decode(&lying),
            Err(ChunkError::LengthMismatch {
                declared: 999,
                summed: 100
            })
        );
    }

    #[test]
    fn fill_verifies_length_and_cid() {
        let data = vec![5u8; 70];
        let (manifest, blocks) = split(&data, 32);
        let mut asm = Reassembly::new(manifest);
        assert_eq!(
            asm.fill(0, Bytes::from_static(b"short")),
            Err(ChunkError::ChunkLenMismatch {
                index: 0,
                expected: 32,
                got: 5
            })
        );
        assert_eq!(
            asm.fill(0, Bytes::from(vec![6u8; 32])),
            Err(ChunkError::ChunkCidMismatch { index: 0 })
        );
        assert_eq!(
            asm.fill(9, blocks[0].data().clone()),
            Err(ChunkError::UnknownChunk { index: 9 })
        );
        // A duplicate fill of a verified slot is a no-op, not an error.
        asm.fill(0, blocks[0].data().clone()).unwrap();
        asm.fill(0, blocks[0].data().clone()).unwrap();
        assert_eq!(asm.missing(), 2);
        assert!(matches!(
            asm.clone().assemble(),
            Err(ChunkError::Incomplete { missing: 2 })
        ));
    }

    proptest! {
        /// Split/reassemble is byte-identical for arbitrary blob sizes,
        /// including empty and sub-chunk blobs.
        #[test]
        fn prop_round_trip(
            data in proptest::collection::vec(any::<u8>(), 0..600),
            chunk_size in 1usize..128,
        ) {
            prop_assert_eq!(round_trip(&data, chunk_size), data);
        }

        /// Chunk boundaries are deterministic: two runs over the same
        /// bytes produce the identical manifest (and so identical CIDs).
        #[test]
        fn prop_deterministic_boundaries(
            data in proptest::collection::vec(any::<u8>(), 0..600),
            chunk_size in 1usize..128,
        ) {
            let (a, _) = split(&data, chunk_size);
            let (b, _) = split(&data, chunk_size);
            prop_assert_eq!(a.encode(), b.encode());
            for (cid, _) in a.chunks() {
                // Every boundary starts at a multiple of chunk_size.
                prop_assert!(a.chunks().iter().filter(|(c, _)| c == cid).count() >= 1);
            }
        }

        /// An unchanged prefix yields identical chunk CIDs across rounds:
        /// only chunks past the first changed byte differ.
        #[test]
        fn prop_prefix_stability(
            data in proptest::collection::vec(any::<u8>(), 1..600),
            chunk_size in 1usize..128,
            flip in 0usize..600,
        ) {
            let flip = flip % data.len();
            let mut next = data.clone();
            next[flip] ^= 0xFF;
            let (a, _) = split(&data, chunk_size);
            let (b, _) = split(&next, chunk_size);
            let changed = flip / chunk_size;
            prop_assert_eq!(&a.chunks()[..changed], &b.chunks()[..changed]);
            prop_assert_ne!(a.chunks()[changed].0, b.chunks()[changed].0);
        }
    }
}
