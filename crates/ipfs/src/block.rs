//! Content-addressed blocks and the per-node block store.

use std::collections::HashMap;

use bytes::Bytes;

use crate::cid::Cid;

/// An immutable content-addressed block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    cid: Cid,
    data: Bytes,
}

impl Block {
    /// Creates a block, computing its CID from the data.
    pub fn new(data: Bytes) -> Block {
        Block {
            cid: Cid::of(&data),
            data,
        }
    }

    /// Reassembles a block received over the wire, verifying integrity.
    ///
    /// Returns `None` when the bytes do not hash to `cid` — the "we do not
    /// assume correctness of retrieved data" check from §III-A.
    pub fn verified(cid: Cid, data: Bytes) -> Option<Block> {
        if cid.verifies(&data) {
            Some(Block { cid, data })
        } else {
            None
        }
    }

    /// The block's CID.
    pub fn cid(&self) -> Cid {
        self.cid
    }

    /// The block's bytes.
    pub fn data(&self) -> &Bytes {
        &self.data
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for a zero-length block.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// A node-local store of blocks with pinning and size accounting.
#[derive(Default, Debug)]
pub struct BlockStore {
    blocks: HashMap<Cid, Block>,
    pins: HashMap<Cid, usize>,
    total_bytes: usize,
}

impl BlockStore {
    /// Creates an empty store.
    pub fn new() -> BlockStore {
        BlockStore::default()
    }

    /// Inserts a block; returns its CID. Idempotent.
    pub fn put(&mut self, block: Block) -> Cid {
        let cid = block.cid();
        if self.blocks.insert(cid, block.clone()).is_none() {
            self.total_bytes += block.len();
        }
        cid
    }

    /// Looks up a block by CID.
    pub fn get(&self, cid: &Cid) -> Option<&Block> {
        self.blocks.get(cid)
    }

    /// `true` if the store holds `cid`.
    pub fn contains(&self, cid: &Cid) -> bool {
        self.blocks.contains_key(cid)
    }

    /// Pins a block so garbage collection never removes it.
    pub fn pin(&mut self, cid: Cid) {
        *self.pins.entry(cid).or_default() += 1;
    }

    /// Removes one pin; the block becomes collectable when pins reach zero.
    pub fn unpin(&mut self, cid: &Cid) {
        if let Some(count) = self.pins.get_mut(cid) {
            *count -= 1;
            if *count == 0 {
                self.pins.remove(cid);
            }
        }
    }

    /// Drops all unpinned blocks; returns the number of bytes freed.
    pub fn gc(&mut self) -> usize {
        let before = self.total_bytes;
        let pinned: Vec<Cid> = self.pins.keys().copied().collect();
        let keep: std::collections::HashSet<Cid> = pinned.into_iter().collect();
        self.blocks.retain(|cid, _| keep.contains(cid));
        self.total_bytes = self.blocks.values().map(Block::len).sum();
        before - self.total_bytes
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` when no blocks are stored.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Total stored bytes.
    pub fn total_bytes(&self) -> usize {
        self.total_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(data: &[u8]) -> Block {
        Block::new(Bytes::copy_from_slice(data))
    }

    #[test]
    fn block_integrity() {
        let b = block(b"payload");
        assert!(b.cid().verifies(b.data()));
        assert!(Block::verified(b.cid(), b.data().clone()).is_some());
        assert!(Block::verified(b.cid(), Bytes::from_static(b"tampered")).is_none());
    }

    #[test]
    fn put_get_contains() {
        let mut store = BlockStore::new();
        let b = block(b"one");
        let cid = store.put(b.clone());
        assert!(store.contains(&cid));
        assert_eq!(store.get(&cid), Some(&b));
        assert!(!store.contains(&Cid::of(b"other")));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn put_is_idempotent() {
        let mut store = BlockStore::new();
        store.put(block(b"dup"));
        store.put(block(b"dup"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.total_bytes(), 3);
    }

    #[test]
    fn gc_respects_pins() {
        let mut store = BlockStore::new();
        let keep = store.put(block(b"keep-me"));
        store.put(block(b"drop-me"));
        store.pin(keep);
        let freed = store.gc();
        assert_eq!(freed, 7);
        assert!(store.contains(&keep));
        assert_eq!(store.len(), 1);
        // Unpin then gc drops the rest.
        store.unpin(&keep);
        store.gc();
        assert!(store.is_empty());
    }

    #[test]
    fn double_pin_requires_double_unpin() {
        let mut store = BlockStore::new();
        let cid = store.put(block(b"x"));
        store.pin(cid);
        store.pin(cid);
        store.unpin(&cid);
        store.gc();
        assert!(store.contains(&cid), "still pinned once");
        store.unpin(&cid);
        store.gc();
        assert!(!store.contains(&cid));
    }
}
