//! # dfl-bench
//!
//! The experiment harness that regenerates every figure of the paper's
//! evaluation (§V). Each `figN_*` function reproduces one figure's setup
//! and returns the measured series; the `examples/figN_*` binaries print
//! them and the Criterion benches in `benches/` wrap the underlying
//! operations for statistically robust timing.
//!
//! | Paper figure | Function | Setup |
//! |---|---|---|
//! | Fig. 1 (agg + upload delay vs providers) | [`fig1_providers`] | 16 trainers, 1.3 MB partition, 1 aggregator, 10 Mbps |
//! | Fig. 2 (delay split + bytes vs \|A_i\|)  | [`fig2_aggregators`] | 16 trainers, 8 nodes, 4×1.1 MB partitions, 20 Mbps |
//! | Fig. 3 (hash vs commitment time)         | [`fig3_commitment`] | SHA-256 + Pedersen (k1/r1) vs #parameters |

use std::time::Instant;

use dfl_crypto::curve::{Curve, Scalar, Secp256k1, Secp256r1};
use dfl_crypto::msm::{self, Msm, MsmTable, Strategy};
use dfl_crypto::pedersen::{BatchEntry, CommitKey, Commitment};
use dfl_crypto::sha256::Sha256;
use dfl_ml::{Dataset, Matrix, Model, SgdConfig, SyntheticModel};
use dfl_netsim::{FaultPlan, NodeId, SimDuration, SimTime, Trace};
use ipls::overlay::OverlayTree;
use ipls::{labels, run_task, CommMode, TaskConfig, TaskReport};

/// Bytes per encoded parameter on the wire (fixed-point i64).
pub const BYTES_PER_ELEMENT: usize = 8;

/// Runs one network experiment round with a synthetic model of
/// `param_count` parameters and returns the report.
///
/// # Panics
///
/// Panics if the configuration is invalid.
pub fn run_network_experiment(cfg: TaskConfig, param_count: usize) -> TaskReport {
    let model = SyntheticModel::new(param_count, cfg.seed);
    let params = dfl_ml::Model::params(&model);
    // Delay experiments do not train on real data; a single dummy example
    // keeps the local-update plumbing exercised.
    let datasets: Vec<Dataset> = (0..cfg.trainers)
        .map(|_| Dataset {
            x: Matrix::zeros(1, 1),
            y: vec![0.0],
        })
        .collect();
    let sgd = SgdConfig {
        lr: 0.01,
        batch_size: 1,
        epochs: 1,
        clip: None,
    };
    run_task(cfg, model, params, datasets, sgd, &[]).expect("valid experiment config")
}

// ---------------------------------------------------------------------------
// Figure 1
// ---------------------------------------------------------------------------

/// One series point of Fig. 1.
#[derive(Clone, Debug)]
pub struct Fig1Point {
    /// Series label as in the paper ("4", "8 (naive)", "8 (direct)").
    pub label: String,
    /// Providers per aggregator (the x axis).
    pub providers: usize,
    /// Aggregation delay in seconds: first gradient hash in the directory
    /// → all gradients aggregated (Fig. 1 top).
    pub aggregation_delay: f64,
    /// Mean trainer upload delay in seconds: upload start → last store
    /// acknowledgment (Fig. 1 bottom; 0 for the direct series, which has
    /// no store acknowledgment).
    pub upload_delay: f64,
}

/// Fig. 1 base setup: 16 trainers, one 1.3 MB partition, one aggregator,
/// every link 10 Mbps.
pub fn fig1_config() -> TaskConfig {
    TaskConfig {
        trainers: 16,
        partitions: 1,
        aggregators_per_partition: 1,
        ipfs_nodes: 16,
        bandwidth_mbps: 10,
        rounds: 1,
        latency: SimDuration::from_millis(10),
        poll_interval: SimDuration::from_millis(100),
        t_train: SimDuration::from_secs(600),
        t_sync: SimDuration::from_secs(1200),
        seed: 1,
        ..TaskConfig::default()
    }
}

/// Parameter count giving the paper's 1.3 MB partition.
pub fn fig1_param_count() -> usize {
    1_300_000 / BYTES_PER_ELEMENT
}

/// Runs one Fig. 1 point.
pub fn fig1_run(comm: CommMode, providers: usize) -> Fig1Point {
    let mut cfg = fig1_config();
    cfg.comm = comm;
    cfg.providers_per_aggregator = providers.max(1);
    if comm == CommMode::Indirect {
        // The "naive" series stores gradients on `providers` gateways.
        cfg.ipfs_nodes = providers.max(1);
    }
    let report = run_network_experiment(cfg, fig1_param_count());
    let round = report.rounds.first().expect("round completed");
    Fig1Point {
        label: match comm {
            CommMode::Direct => format!("{providers} (direct)"),
            CommMode::Indirect => format!("{providers} (naive)"),
            CommMode::MergeAndDownload => providers.to_string(),
        },
        providers,
        aggregation_delay: round.aggregation_delay,
        upload_delay: round.upload_delay_avg,
    }
}

/// The full Fig. 1 sweep: merge-and-download with 1–16 providers, plus the
/// naive-indirect and direct baselines at 8 providers.
pub fn fig1_providers() -> Vec<Fig1Point> {
    let mut points: Vec<Fig1Point> = [1usize, 2, 4, 8, 16]
        .iter()
        .map(|&p| fig1_run(CommMode::MergeAndDownload, p))
        .collect();
    points.push(fig1_run(CommMode::Indirect, 8));
    points.push(fig1_run(CommMode::Direct, 8));
    points
}

// ---------------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------------

/// One series point of Fig. 2.
#[derive(Clone, Debug)]
pub struct Fig2Point {
    /// Aggregators per partition `|A_i|`.
    pub aggregators_per_partition: usize,
    /// Gradient-aggregation delay (seconds).
    pub aggregation_delay: f64,
    /// Synchronization delay (seconds).
    pub sync_delay: f64,
    /// Total aggregation delay (Fig. 2 top).
    pub total_delay: f64,
    /// Mean megabytes received per aggregator in the round (Fig. 2 bottom).
    pub mb_per_aggregator: f64,
    /// The analytic expectation `(|T_ij| + |A_i| − 1) · PartitionSize`.
    pub expected_mb: f64,
}

/// Fig. 2 base setup: 16 trainers, 8 storage nodes, 4 partitions of 1.1 MB,
/// 20 Mbps, naive indirect communication (the paper isolates |A_i| without
/// merge-and-download).
pub fn fig2_config() -> TaskConfig {
    TaskConfig {
        trainers: 16,
        partitions: 4,
        aggregators_per_partition: 1,
        ipfs_nodes: 8,
        comm: CommMode::Indirect,
        bandwidth_mbps: 20,
        // The paper shapes participant links to 20 Mbps; storage nodes run
        // on unshaped mininet infrastructure links (see EXPERIMENTS.md).
        ipfs_bandwidth_mbps: Some(200),
        rounds: 1,
        latency: SimDuration::from_millis(10),
        poll_interval: SimDuration::from_millis(100),
        seed: 2,
        ..TaskConfig::default()
    }
}

/// Parameter count giving four 1.1 MB partitions.
pub fn fig2_param_count() -> usize {
    4 * 1_100_000 / BYTES_PER_ELEMENT
}

/// Runs one Fig. 2 point.
pub fn fig2_run(aggregators_per_partition: usize) -> Fig2Point {
    let mut cfg = fig2_config();
    cfg.aggregators_per_partition = aggregators_per_partition;
    let report = run_network_experiment(cfg.clone(), fig2_param_count());
    let round = report.rounds.first().expect("round completed");
    let mean_bytes = report.aggregator_rx_bytes.iter().sum::<u64>() as f64
        / report.aggregator_rx_bytes.len() as f64;
    let partition_mb = 1.1;
    let t_ij = cfg.trainers as f64 / aggregators_per_partition as f64;
    Fig2Point {
        aggregators_per_partition,
        aggregation_delay: round.aggregation_delay,
        sync_delay: round.sync_delay,
        total_delay: round.total_aggregation_delay,
        mb_per_aggregator: mean_bytes / 1e6,
        expected_mb: (t_ij + aggregators_per_partition as f64 - 1.0) * partition_mb,
    }
}

/// The full Fig. 2 sweep over `|A_i| ∈ {1, 2, 4}`.
pub fn fig2_aggregators() -> Vec<Fig2Point> {
    [1usize, 2, 4].iter().map(|&a| fig2_run(a)).collect()
}

// ---------------------------------------------------------------------------
// Figure 3
// ---------------------------------------------------------------------------

/// One series point of Fig. 3 (real wall-clock measurements).
#[derive(Clone, Debug)]
pub struct Fig3Point {
    /// Number of model parameters.
    pub elements: usize,
    /// SHA-256 time over the serialized parameters (ms).
    pub sha256_ms: f64,
    /// Pedersen commitment, naive MSM, secp256k1 (ms) — the paper's
    /// "straightforward" implementation.
    pub pedersen_k1_ms: f64,
    /// Pedersen commitment, naive MSM, secp256r1 (ms).
    pub pedersen_r1_ms: f64,
    /// Pedersen commitment with Pippenger MSM on secp256k1 (ms) — the
    /// paper's cited future-work optimization, as an ablation.
    pub pippenger_k1_ms: f64,
    /// Pedersen commitment through the precomputed-table fast path,
    /// secp256k1 (ms).
    pub fast_k1_ms: f64,
    /// Pedersen commitment through the precomputed-table fast path,
    /// secp256r1 (ms).
    pub fast_r1_ms: f64,
}

fn time_ms(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64() * 1e3
}

fn deterministic_scalars<C: Curve>(n: usize) -> Vec<Scalar<C>> {
    // Realistic quantized-gradient scalars: alternating signs, so half the
    // canonical exponents are ≈256-bit (negatives map to n − |v|) exactly
    // as in the protocol.
    (0..n)
        .map(|i| {
            let magnitude = 0x9E37u64.wrapping_mul(i as u64 + 1) & 0xFF_FFFF;
            if i % 2 == 0 {
                Scalar::<C>::from_u64(magnitude)
            } else {
                Scalar::<C>::from_i64(-(magnitude as i64))
            }
        })
        .collect()
}

/// Measures one Fig. 3 point for a model of `elements` parameters, reusing
/// pre-built commitment keys (generator derivation is setup, not the
/// per-round cost the paper measures).
///
/// # Panics
///
/// Panics if either key has fewer than `elements` generators.
pub fn fig3_run(
    elements: usize,
    key_k1: &CommitKey<Secp256k1>,
    key_r1: &CommitKey<Secp256r1>,
) -> Fig3Point {
    assert!(
        key_k1.len() >= elements && key_r1.len() >= elements,
        "keys too short"
    );
    let bytes = vec![0xA5u8; elements * BYTES_PER_ELEMENT];
    let sha256_ms = time_ms(|| {
        std::hint::black_box(Sha256::digest(&bytes));
    });

    let scalars_k1 = deterministic_scalars::<Secp256k1>(elements);
    let scalars_r1 = deterministic_scalars::<Secp256r1>(elements);

    let pedersen_k1_ms = time_ms(|| {
        std::hint::black_box(key_k1.commit_naive(&scalars_k1));
    });
    let pedersen_r1_ms = time_ms(|| {
        std::hint::black_box(key_r1.commit_naive(&scalars_r1));
    });
    let pippenger_k1_ms = time_ms(|| {
        std::hint::black_box(
            Msm::new(&key_k1.generators()[..elements])
                .with_strategy(Strategy::Pippenger)
                .eval(&scalars_k1),
        );
    });
    // The redesigned pipeline: `commit` routes through the precomputed
    // table when the key carries one (see `fig3_commitment`), and through
    // batch-affine Pippenger otherwise.
    let fast_k1_ms = time_ms(|| {
        std::hint::black_box(key_k1.commit(&scalars_k1));
    });
    let fast_r1_ms = time_ms(|| {
        std::hint::black_box(key_r1.commit(&scalars_r1));
    });

    Fig3Point {
        elements,
        sha256_ms,
        pedersen_k1_ms,
        pedersen_r1_ms,
        pippenger_k1_ms,
        fast_k1_ms,
        fast_r1_ms,
    }
}

/// The Fig. 3 sweep over the given parameter counts.
///
/// The paper sweeps up to ~25 M parameters (minutes per point on Bouncy
/// Castle); pass smaller sizes for a quick run — the series is linear in
/// the parameter count, which is the property the figure demonstrates.
pub fn fig3_commitment(sizes: &[usize]) -> Vec<Fig3Point> {
    let max = sizes.iter().copied().max().unwrap_or(0);
    let key_k1 = CommitKey::<Secp256k1>::setup_precomputed(max, b"fig3");
    let key_r1 = CommitKey::<Secp256r1>::setup_precomputed(max, b"fig3");
    sizes
        .iter()
        .map(|&n| fig3_run(n, &key_k1, &key_r1))
        .collect()
}

/// Default Fig. 3 sizes (kept laptop-friendly; see EXPERIMENTS.md).
pub fn fig3_default_sizes() -> Vec<usize> {
    vec![1 << 10, 1 << 12, 1 << 14, 1 << 16]
}

// ---------------------------------------------------------------------------
// Commitment-pipeline before/after report (BENCH_crypto.json)
// ---------------------------------------------------------------------------

/// Before/after timings of every MSM kernel and of the end-to-end Pedersen
/// commit on one curve, at a fixed vector length. Produced by
/// [`crypto_report`], serialized by [`crypto_report_json`].
#[derive(Clone, Debug)]
pub struct MsmProfile {
    /// Curve name (`secp256k1` / `secp256r1`).
    pub curve: &'static str,
    /// MSM length (number of generators = model-partition parameters).
    pub elements: usize,
    /// Naive double-and-add (ms) — the seed's serial baseline.
    pub naive_ms: f64,
    /// Width-5 wNAF (ms).
    pub wnaf_ms: f64,
    /// Jacobian Pippenger (ms).
    pub pippenger_ms: f64,
    /// Batch-affine Pippenger (ms) — the new tableless default.
    pub batch_affine_ms: f64,
    /// One-time fixed-base table construction (ms) — setup, not per-commit.
    pub table_build_ms: f64,
    /// Precomputed-table evaluation, single-threaded (ms).
    pub table_ms: f64,
    /// Precomputed-table evaluation across threads (ms); `None` when the
    /// `rayon` feature is off and no parallel path exists.
    pub table_parallel_ms: Option<f64>,
    /// End-to-end `CommitKey::commit_naive` (ms) — the seed commit path.
    pub commit_naive_ms: f64,
    /// End-to-end `CommitKey::commit` on a precomputed key (ms).
    pub commit_fast_ms: f64,
}

impl MsmProfile {
    /// Commit speedup of the precomputed fast path over the seed's naive
    /// serial path (the acceptance metric).
    pub fn commit_speedup(&self) -> f64 {
        self.commit_naive_ms / self.commit_fast_ms.max(1e-9)
    }
}

fn profile_curve<C: Curve>(elements: usize) -> MsmProfile {
    let key = CommitKey::<C>::setup(elements, b"bench-crypto");
    let scalars = deterministic_scalars::<C>(elements);
    let points = &key.generators()[..elements];

    let naive_ms = time_ms(|| {
        std::hint::black_box(
            Msm::new(points)
                .with_strategy(Strategy::Naive)
                .eval(&scalars),
        );
    });
    let wnaf_ms = time_ms(|| {
        std::hint::black_box(
            Msm::new(points)
                .with_strategy(Strategy::Wnaf)
                .eval(&scalars),
        );
    });
    let pippenger_ms = time_ms(|| {
        std::hint::black_box(
            Msm::new(points)
                .with_strategy(Strategy::Pippenger)
                .eval(&scalars),
        );
    });
    let batch_affine_ms = time_ms(|| {
        std::hint::black_box(
            Msm::new(points)
                .with_strategy(Strategy::BatchAffine)
                .with_parallel(false)
                .eval(&scalars),
        );
    });

    let start = Instant::now();
    let table = MsmTable::build(points);
    let table_build_ms = start.elapsed().as_secs_f64() * 1e3;
    let table_ms = time_ms(|| {
        std::hint::black_box(table.eval_parallel(&scalars, false));
    });
    let table_parallel_ms = msm::parallel_enabled().then(|| {
        time_ms(|| {
            std::hint::black_box(table.eval_parallel(&scalars, true));
        })
    });

    let commit_naive_ms = time_ms(|| {
        std::hint::black_box(key.commit_naive(&scalars));
    });
    let mut fast_key = key;
    fast_key.precompute();
    let commit_fast_ms = time_ms(|| {
        std::hint::black_box(fast_key.commit(&scalars));
    });

    MsmProfile {
        curve: C::NAME,
        elements,
        naive_ms,
        wnaf_ms,
        pippenger_ms,
        batch_affine_ms,
        table_build_ms,
        table_ms,
        table_parallel_ms,
        commit_naive_ms,
        commit_fast_ms,
    }
}

/// Profiles the full commitment pipeline — every MSM kernel plus the
/// end-to-end commit — at `elements` scalars on both protocol curves.
pub fn crypto_report(elements: usize) -> Vec<MsmProfile> {
    vec![
        profile_curve::<Secp256k1>(elements),
        profile_curve::<Secp256r1>(elements),
    ]
}

fn json_f64(v: f64) -> String {
    format!("{v:.3}")
}

/// Before/after wall-clock of the commitment checks in one verifiable
/// round: `trainers` gradient blobs of `elements` scalars each, verified
/// one blob at a time (the arrival-order protocol path) versus with a
/// single random-linear-combination batch over the whole round (the
/// `batch_verify` deferred queue, [`CommitKey::batch_culprits`] on the
/// all-honest fast path).
#[derive(Clone, Debug)]
pub struct VerifiableRoundPoint {
    /// Trainers contributing one gradient blob each.
    pub trainers: usize,
    /// Scalars per blob (partition parameters plus the averaging counter).
    pub elements: usize,
    /// Per-blob verification of the whole round (ms).
    pub per_blob_ms: f64,
    /// One batched RLC check of the whole round (ms).
    pub batched_ms: f64,
}

impl VerifiableRoundPoint {
    /// Round-level speedup of the batched check over per-blob verification.
    pub fn speedup(&self) -> f64 {
        self.per_blob_ms / self.batched_ms.max(1e-9)
    }
}

/// Measures one verifiable round of `trainers` × `elements` on the
/// protocol curve. Each trainer's vector is the shared base plus one
/// distinct single-element bump, so its commitment is built homomorphically
/// (base commit ⊕ one single-generator mul) — setup stays O(trainers)
/// scalar muls and the timed spans cover verification only.
pub fn verifiable_round_point(trainers: usize, elements: usize) -> VerifiableRoundPoint {
    let mut key = CommitKey::<Secp256k1>::setup(elements, b"bench-verifiable-round");
    key.precompute();
    let base = deterministic_scalars::<Secp256k1>(elements);
    let base_commit = key.commit(&base);

    let mut vectors: Vec<Vec<Scalar<Secp256k1>>> = Vec::with_capacity(trainers);
    let mut commits: Vec<Commitment<Secp256k1>> = Vec::with_capacity(trainers);
    for i in 0..trainers {
        let k = i % elements;
        let delta = Scalar::<Secp256k1>::from_u64(0x9E37u64.wrapping_mul(i as u64) & 0xFF_FFFF | 1);
        let mut values = base.clone();
        values[k] += delta;
        let bump = key.generators()[k].mul(&delta);
        vectors.push(values);
        commits.push(Commitment::from_point(base_commit.point().add(&bump)));
    }

    let per_blob_ms = time_ms(|| {
        for (values, commitment) in vectors.iter().zip(&commits) {
            assert!(key.verify(values, std::hint::black_box(commitment)));
        }
    });
    let entries: Vec<BatchEntry<'_, Secp256k1>> = vectors
        .iter()
        .zip(&commits)
        .map(|(values, commitment)| BatchEntry::new(values, commitment))
        .collect();
    let batched_ms = time_ms(|| {
        assert!(key
            .batch_culprits(std::hint::black_box(&entries))
            .is_empty());
    });

    VerifiableRoundPoint {
        trainers,
        elements,
        per_blob_ms,
        batched_ms,
    }
}

/// The verifiable-round sweep recorded in `BENCH_crypto.json`: swarm sizes
/// up to the paper's 10k-trainer scale at a fixed per-blob length.
pub fn verifiable_round_sweep(sizes: &[usize], elements: usize) -> Vec<VerifiableRoundPoint> {
    sizes
        .iter()
        .map(|&n| verifiable_round_point(n, elements))
        .collect()
}

/// Hand-formats the report as the `BENCH_crypto.json` document (the repo
/// carries no JSON dependency; the schema is flat enough to emit directly).
pub fn crypto_report_json(profiles: &[MsmProfile], rounds: &[VerifiableRoundPoint]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"parallel_enabled\": {},\n  \"curves\": [\n",
        msm::parallel_enabled()
    ));
    for (i, p) in profiles.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"curve\": \"{}\",\n", p.curve));
        out.push_str(&format!("      \"elements\": {},\n", p.elements));
        out.push_str("      \"before_ms\": {\n");
        out.push_str(&format!("        \"naive\": {},\n", json_f64(p.naive_ms)));
        out.push_str(&format!("        \"wnaf\": {},\n", json_f64(p.wnaf_ms)));
        out.push_str(&format!(
            "        \"pippenger\": {}\n      }},\n",
            json_f64(p.pippenger_ms)
        ));
        out.push_str("      \"after_ms\": {\n");
        out.push_str(&format!(
            "        \"batch_affine\": {},\n",
            json_f64(p.batch_affine_ms)
        ));
        out.push_str(&format!(
            "        \"table_build\": {},\n",
            json_f64(p.table_build_ms)
        ));
        out.push_str(&format!("        \"table\": {}", json_f64(p.table_ms)));
        if let Some(par) = p.table_parallel_ms {
            out.push_str(&format!(",\n        \"table_parallel\": {}", json_f64(par)));
        }
        out.push_str("\n      },\n");
        out.push_str("      \"commit_ms\": {\n");
        out.push_str(&format!(
            "        \"seed_naive\": {},\n",
            json_f64(p.commit_naive_ms)
        ));
        out.push_str(&format!(
            "        \"precomputed\": {}\n      }},\n",
            json_f64(p.commit_fast_ms)
        ));
        out.push_str(&format!(
            "      \"commit_speedup\": {}\n    }}{}\n",
            json_f64(p.commit_speedup()),
            if i + 1 < profiles.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"verifiable_round\": [\n");
    for (i, r) in rounds.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"trainers\": {},\n", r.trainers));
        out.push_str(&format!("      \"elements\": {},\n", r.elements));
        out.push_str(&format!(
            "      \"per_blob_ms\": {},\n",
            json_f64(r.per_blob_ms)
        ));
        out.push_str(&format!(
            "      \"batched_ms\": {},\n",
            json_f64(r.batched_ms)
        ));
        out.push_str(&format!(
            "      \"speedup\": {}\n    }}{}\n",
            json_f64(r.speedup()),
            if i + 1 < rounds.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Trace-query before/after report (BENCH_netsim.json)
// ---------------------------------------------------------------------------

/// Before/after timings of the standard trace-query battery on one trace.
///
/// "Before" is the seed's access pattern: every query walks the whole event
/// log and resolves each event's label to a string for comparison. "After"
/// is the interned-label index introduced with the structured metrics
/// layer: `count`/`sum` are O(1) and `find` walks only one label's index.
/// Produced by [`trace_query_profile`], serialized by [`netsim_report_json`].
#[derive(Clone, Debug)]
pub struct TraceQueryProfile {
    /// Which trace was profiled (`fig2` / `synthetic`).
    pub source: String,
    /// Events in the trace.
    pub events: usize,
    /// Distinct labels in the trace.
    pub labels: usize,
    /// Nodes covered by the per-node `find` battery.
    pub nodes_queried: usize,
    /// Per-label count + sum over the full log, one linear scan per label
    /// (ms per battery run) — the seed's `build_report` pattern.
    pub scan_aggregate_ms: f64,
    /// Per-(label, node) event lookup by linear scan (ms per battery run).
    pub scan_find_ms: f64,
    /// The same aggregate battery through `Trace::count`/`Trace::sum` (ms).
    pub indexed_aggregate_ms: f64,
    /// The same find battery through `Trace::find` (ms).
    pub indexed_find_ms: f64,
}

impl TraceQueryProfile {
    /// Speedup of indexed count/sum over the linear-scan baseline.
    pub fn aggregate_speedup(&self) -> f64 {
        self.scan_aggregate_ms / self.indexed_aggregate_ms.max(1e-9)
    }

    /// Speedup of indexed per-node lookup over the linear-scan baseline.
    pub fn find_speedup(&self) -> f64 {
        self.scan_find_ms / self.indexed_find_ms.max(1e-9)
    }
}

fn scan_aggregate(trace: &Trace, labels: &[String]) -> f64 {
    let mut acc = 0.0;
    for name in labels {
        let mut count = 0usize;
        let mut sum = 0.0;
        for e in trace.events() {
            if trace.label_name(e.label) == name {
                count += 1;
                sum += e.value;
            }
        }
        acc += count as f64 + sum;
    }
    acc
}

fn indexed_aggregate(trace: &Trace, labels: &[String]) -> f64 {
    labels
        .iter()
        .map(|name| trace.count(name) as f64 + trace.sum(name))
        .sum()
}

fn scan_find(trace: &Trace, labels: &[String], nodes: &[NodeId]) -> f64 {
    let mut acc = 0.0;
    for name in labels {
        for &node in nodes {
            for e in trace.events() {
                if e.node == node && trace.label_name(e.label) == name {
                    acc += e.value;
                }
            }
        }
    }
    acc
}

fn indexed_find(trace: &Trace, labels: &[String], nodes: &[NodeId]) -> f64 {
    let mut acc = 0.0;
    for name in labels {
        for &node in nodes {
            for e in trace.find(node, name) {
                acc += e.value;
            }
        }
    }
    acc
}

/// Runs the query battery `reps` times through both access paths and
/// returns per-run timings. The two paths visit events in the same order,
/// so their checksums must agree exactly — a correctness cross-check of the
/// index, not just a timing.
///
/// The `find` battery covers at most 8 nodes to keep the quadratic
/// linear-scan baseline bounded on million-event traces.
///
/// # Panics
///
/// Panics if the indexed results diverge from the linear scan.
pub fn trace_query_profile(source: &str, trace: &Trace, reps: usize) -> TraceQueryProfile {
    let labels: Vec<String> = trace.labels().map(String::from).collect();
    let mut nodes: Vec<NodeId> = trace.events().iter().map(|e| e.node).collect();
    nodes.sort_unstable();
    nodes.dedup();
    nodes.truncate(8);
    let reps = reps.max(1);

    let scan_agg = scan_aggregate(trace, &labels);
    let idx_agg = indexed_aggregate(trace, &labels);
    assert!(
        (scan_agg - idx_agg).abs() <= 1e-9 * scan_agg.abs().max(1.0),
        "indexed aggregate diverged: scan {scan_agg} vs indexed {idx_agg}"
    );
    let scan_f = scan_find(trace, &labels, &nodes);
    let idx_f = indexed_find(trace, &labels, &nodes);
    assert!(
        (scan_f - idx_f).abs() <= 1e-9 * scan_f.abs().max(1.0),
        "indexed find diverged: scan {scan_f} vs indexed {idx_f}"
    );

    let scan_aggregate_ms = time_ms(|| {
        for _ in 0..reps {
            std::hint::black_box(scan_aggregate(trace, &labels));
        }
    }) / reps as f64;
    let indexed_aggregate_ms = time_ms(|| {
        for _ in 0..reps {
            std::hint::black_box(indexed_aggregate(trace, &labels));
        }
    }) / reps as f64;
    let scan_find_ms = time_ms(|| {
        for _ in 0..reps {
            std::hint::black_box(scan_find(trace, &labels, &nodes));
        }
    }) / reps as f64;
    let indexed_find_ms = time_ms(|| {
        for _ in 0..reps {
            std::hint::black_box(indexed_find(trace, &labels, &nodes));
        }
    }) / reps as f64;

    TraceQueryProfile {
        source: source.to_string(),
        events: trace.events().len(),
        labels: labels.len(),
        nodes_queried: nodes.len(),
        scan_aggregate_ms,
        scan_find_ms,
        indexed_aggregate_ms,
        indexed_find_ms,
    }
}

/// Builds a deterministic synthetic trace of `events` events spread over
/// `labels` labels and `nodes` nodes — the stress shape for the query
/// benchmarks (a Fig. 2 run produces a few thousand events; this scales
/// the same battery to millions).
pub fn synthetic_trace(events: usize, labels: usize, nodes: usize, seed: u64) -> Trace {
    let names: Vec<String> = (0..labels)
        .map(|i| format!("synthetic/label_{i:02}"))
        .collect();
    let mut trace = Trace::new();
    let mut state = seed | 1;
    for i in 0..events {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let label = ((state >> 33) as usize) % labels.max(1);
        let node = ((state >> 17) as usize) % nodes.max(1);
        let value = (state & 0xFFFF) as f64;
        trace.record(
            SimTime::from_micros(i as u64),
            NodeId(node),
            &names[label],
            value,
        );
    }
    trace
}

/// Profiles the trace-query battery on a Fig. 2-scale protocol run and on
/// a `synthetic_events`-event synthetic trace.
pub fn netsim_report(synthetic_events: usize) -> Vec<TraceQueryProfile> {
    let report = run_network_experiment(fig2_config(), fig2_param_count());
    vec![
        trace_query_profile("fig2", &report.trace, 20),
        trace_query_profile(
            "synthetic",
            &synthetic_trace(synthetic_events, 32, 64, 7),
            2,
        ),
    ]
}

/// Hand-formats the trace-query profiles, churn wire costs, and scale
/// sweep as the `BENCH_netsim.json` document (same dependency-free scheme
/// as [`crypto_report_json`]).
pub fn netsim_report_json(
    profiles: &[TraceQueryProfile],
    churn: &[ChurnPoint],
    scale: &[ScalePoint],
    overlay: &[OverlayPoint],
    dedup: &[DedupPoint],
) -> String {
    let mut out = String::from("{\n  \"trace_query\": [\n");
    for (i, p) in profiles.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"source\": \"{}\",\n", p.source));
        out.push_str(&format!("      \"events\": {},\n", p.events));
        out.push_str(&format!("      \"labels\": {},\n", p.labels));
        out.push_str(&format!("      \"nodes_queried\": {},\n", p.nodes_queried));
        out.push_str("      \"before_ms\": {\n");
        out.push_str(&format!(
            "        \"aggregate\": {},\n        \"find\": {}\n      }},\n",
            json_f64(p.scan_aggregate_ms),
            json_f64(p.scan_find_ms)
        ));
        out.push_str("      \"after_ms\": {\n");
        out.push_str(&format!(
            "        \"aggregate\": {},\n        \"find\": {}\n      }},\n",
            json_f64(p.indexed_aggregate_ms),
            json_f64(p.indexed_find_ms)
        ));
        out.push_str("      \"speedup\": {\n");
        out.push_str(&format!(
            "        \"aggregate\": {},\n        \"find\": {}\n      }}\n",
            json_f64(p.aggregate_speedup()),
            json_f64(p.find_speedup())
        ));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < profiles.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"churn_wire_cost\": [\n");
    for (i, p) in churn.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!(
            "      \"outage_secs\": {},\n",
            json_f64(p.outage_secs)
        ));
        out.push_str(&format!(
            "      \"completed_rounds\": {},\n      \"rounds\": {},\n",
            p.completed_rounds, p.rounds
        ));
        out.push_str(&format!(
            "      \"total_tx_bytes\": {},\n",
            p.total_tx_bytes
        ));
        out.push_str(&format!(
            "      \"wire_wasted_bytes\": {},\n",
            p.wire_wasted_bytes
        ));
        out.push_str(&format!("      \"wasted_bytes\": {}\n", p.wasted_bytes));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < churn.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"scale\": [\n");
    for (i, p) in scale.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"trainers\": {},\n", p.trainers));
        out.push_str(&format!("      \"nodes\": {},\n", p.nodes));
        out.push_str(&format!("      \"uploads\": {},\n", p.uploads));
        out.push_str(&format!(
            "      \"incremental_ms\": {},\n",
            json_f64(p.incremental_ms)
        ));
        out.push_str(&format!(
            "      \"reference_ms\": {},\n",
            p.reference_ms.map_or("null".to_string(), json_f64)
        ));
        out.push_str(&format!(
            "      \"speedup\": {},\n",
            p.speedup().map_or("null".to_string(), json_f64)
        ));
        out.push_str(&format!(
            "      \"peak_rss_kb\": {}\n",
            p.peak_rss_kb.map_or("null".to_string(), |v| v.to_string())
        ));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < scale.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"overlay\": [\n");
    for (i, p) in overlay.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"trainers\": {},\n", p.trainers));
        out.push_str(&format!("      \"branching\": {},\n", p.branching));
        out.push_str(&format!("      \"levels\": {},\n", p.levels));
        out.push_str(&format!(
            "      \"completed_rounds\": {},\n",
            p.completed_rounds
        ));
        out.push_str(&format!("      \"agg_msgs_max\": {},\n", p.agg_msgs_max));
        out.push_str(&format!("      \"work_bound\": {},\n", p.work_bound));
        out.push_str(&format!("      \"fan_in_max\": {},\n", p.fan_in_max));
        out.push_str(&format!(
            "      \"partials_forwarded\": {},\n",
            p.partials_forwarded
        ));
        out.push_str(&format!(
            "      \"round_secs\": {},\n",
            json_f64(p.round_secs)
        ));
        out.push_str(&format!("      \"wall_ms\": {}\n", json_f64(p.wall_ms)));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < overlay.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"dedup\": [\n");
    for (i, p) in dedup.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"regime\": \"{}\",\n", p.regime));
        out.push_str(&format!(
            "      \"rounds\": {},\n      \"chunk_size\": {},\n",
            p.rounds, p.chunk_size
        ));
        out.push_str(&format!(
            "      \"plain_tx_bytes\": {},\n",
            p.plain_tx_bytes
        ));
        out.push_str(&format!(
            "      \"chunked_tx_bytes\": {},\n",
            p.chunked_tx_bytes
        ));
        out.push_str(&format!(
            "      \"chunks_sent\": {},\n      \"chunks_deduped\": {},\n",
            p.chunks_sent, p.chunks_deduped
        ));
        out.push_str(&format!(
            "      \"dedup_bytes_saved\": {},\n",
            p.dedup_bytes_saved
        ));
        out.push_str(&format!(
            "      \"wire_reduction\": {}\n",
            json_f64(p.wire_reduction())
        ));
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < dedup.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Churn sweep (storage fault tolerance)
// ---------------------------------------------------------------------------

/// One point of the storage-churn sweep: how the protocol degrades as
/// scheduled storage outages get longer.
#[derive(Clone, Debug)]
pub struct ChurnPoint {
    /// Length of each injected storage outage (seconds; 0 = no churn).
    pub outage_secs: f64,
    /// Rounds that ran to completion, out of [`ChurnPoint::rounds`].
    pub completed_rounds: u64,
    /// Rounds the task was configured for.
    pub rounds: u64,
    /// Mean duration of the completed rounds (seconds of simulated time).
    pub avg_round_duration: f64,
    /// Sync-deadline quorum degradations across the task.
    pub quorum_degradations: usize,
    /// Total bytes put on the wire across the task (including partial
    /// transfers torn by crashes).
    pub total_tx_bytes: u64,
    /// Bytes wasted on the wire by churn: torn partial transfers plus
    /// payloads delivered to crashed receivers.
    pub wire_wasted_bytes: u64,
    /// All wasted bytes (wire waste plus misbehavior-invalidated data).
    pub wasted_bytes: u64,
}

/// Churn sweep base setup: 6 trainers on 4 storage nodes, 0.4 MB model in
/// 2 partitions, every block on 2 replicas, 2 s fetch timeout.
pub fn churn_config() -> TaskConfig {
    TaskConfig {
        trainers: 6,
        partitions: 2,
        aggregators_per_partition: 1,
        ipfs_nodes: 4,
        comm: CommMode::Indirect,
        replication: 2,
        rounds: 3,
        bandwidth_mbps: 10,
        latency: SimDuration::from_millis(10),
        poll_interval: SimDuration::from_millis(100),
        t_train: SimDuration::from_secs(60),
        t_sync: SimDuration::from_secs(120),
        fetch_timeout: SimDuration::from_secs(2),
        seed: 9,
        ..TaskConfig::default()
    }
}

/// Parameter count of the churn sweep's synthetic model (0.4 MB).
pub fn churn_param_count() -> usize {
    400_000 / BYTES_PER_ELEMENT
}

/// Runs one churn point: every `period`, one storage node (drawn
/// deterministically from `churn_seed`) crashes for `outage`. With
/// `outage == 0` no faults are injected (the healthy baseline).
pub fn churn_run(outage: SimDuration, period: SimDuration, churn_seed: u64) -> ChurnPoint {
    let mut cfg = churn_config();
    if outage > SimDuration::ZERO {
        let storage: Vec<NodeId> = (1..=cfg.ipfs_nodes).map(NodeId).collect();
        cfg.fault_plan = FaultPlan::churn(
            &storage,
            SimTime::from_micros(2_000_000),
            SimTime::from_micros(cfg.t_sync.as_micros() * cfg.rounds),
            period,
            outage,
            churn_seed,
        );
    }
    let rounds = cfg.rounds;
    let report = run_network_experiment(cfg, churn_param_count());
    let avg_round_duration = if report.rounds.is_empty() {
        0.0
    } else {
        report.rounds.iter().map(|r| r.round_duration).sum::<f64>() / report.rounds.len() as f64
    };
    ChurnPoint {
        outage_secs: outage.as_secs_f64(),
        completed_rounds: report.completed_rounds,
        rounds,
        avg_round_duration,
        quorum_degradations: report.quorum_degradations,
        total_tx_bytes: report.total_tx_bytes,
        wire_wasted_bytes: report.wire_wasted_bytes,
        wasted_bytes: report.wasted_bytes,
    }
}

/// The churn sweep: outage lengths from "none" to "longer than the retry
/// budget", with a fixed period between outages.
pub fn churn_sweep() -> Vec<ChurnPoint> {
    let period = SimDuration::from_secs(10);
    [0u64, 1, 4, 8]
        .iter()
        .map(|&o| churn_run(SimDuration::from_secs(o), period, 42))
        .collect()
}

// ---------------------------------------------------------------------------
// Chunked-storage dedup sweep
// ---------------------------------------------------------------------------

/// One point of the chunked-storage dedup sweep: the same multi-round
/// task run with flat storage and with chunked storage
/// ([`TaskConfig::chunked_storage`]), under one update-stability regime.
#[derive(Clone, Debug)]
pub struct DedupPoint {
    /// Update-stability regime: `"frozen"` re-uploads bit-identical
    /// gradient blobs every round (the dedup best case), `"drifting"`
    /// changes every gradient every round (the dedup worst case).
    pub regime: String,
    /// Rounds the task ran.
    pub rounds: u64,
    /// Chunk size of the chunked run (bytes).
    pub chunk_size: usize,
    /// Total wire bytes of the flat-storage run.
    pub plain_tx_bytes: u64,
    /// Total wire bytes of the chunked run.
    pub chunked_tx_bytes: u64,
    /// Chunks that crossed the wire in the chunked run.
    pub chunks_sent: u64,
    /// Chunks the providers already held (zero wire bytes).
    pub chunks_deduped: u64,
    /// Payload bytes dedup kept off the wire in the chunked run.
    pub dedup_bytes_saved: u64,
}

impl DedupPoint {
    /// Fraction of the flat run's wire bytes that the chunked run saved.
    /// Slightly negative in the drifting regime: manifests and chunk
    /// negotiation cost extra frames when nothing dedups.
    pub fn wire_reduction(&self) -> f64 {
        1.0 - self.chunked_tx_bytes as f64 / self.plain_tx_bytes as f64
    }
}

/// Model stub whose pseudo-gradient never changes across steps. With
/// `lr = 0` every round re-uploads bit-identical blobs — the best case
/// for cross-round chunk dedup ([`SyntheticModel`]'s gradient varies per
/// step, so it is the worst case).
#[derive(Clone, Debug)]
struct FrozenSyntheticModel {
    params: Vec<f32>,
    seed: u64,
}

impl Model for FrozenSyntheticModel {
    fn param_count(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> Vec<f32> {
        self.params.clone()
    }

    fn set_params(&mut self, params: &[f32]) {
        self.params.copy_from_slice(params);
    }

    fn loss_and_grad(&self, _x: &Matrix, _y: &[f32]) -> (f32, Vec<f32>) {
        // Step-independent pseudo-gradient from a splitmix-style stream.
        let mut state = self.seed | 1;
        let grad = (0..self.params.len())
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f32 / (1u64 << 24) as f32) * 0.02 - 0.01
            })
            .collect();
        (1.0, grad)
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        vec![0.0; x.rows()]
    }
}

/// Dedup sweep base setup: the churn topology over 3 rounds with 4 KiB
/// chunks (≈ 50 chunks per 0.2 MB partition blob).
pub fn dedup_config(chunked: bool) -> TaskConfig {
    let mut cfg = churn_config();
    cfg.rounds = 3;
    cfg.chunked_storage = chunked;
    cfg.chunk_size = 4096;
    cfg
}

fn dedup_experiment(chunked: bool, frozen: bool) -> TaskReport {
    let cfg = dedup_config(chunked);
    let datasets: Vec<Dataset> = (0..cfg.trainers)
        .map(|_| Dataset {
            x: Matrix::zeros(1, 1),
            y: vec![0.0],
        })
        .collect();
    let sgd = SgdConfig {
        // lr = 0 keeps the frozen regime's params (and therefore blobs)
        // bit-identical across rounds.
        lr: if frozen { 0.0 } else { 0.01 },
        batch_size: 1,
        epochs: 1,
        clip: None,
    };
    if frozen {
        let model = FrozenSyntheticModel {
            params: dfl_ml::Model::params(&SyntheticModel::new(churn_param_count(), cfg.seed)),
            seed: cfg.seed,
        };
        let params = dfl_ml::Model::params(&model);
        run_task(cfg, model, params, datasets, sgd, &[]).expect("valid dedup config")
    } else {
        let model = SyntheticModel::new(churn_param_count(), cfg.seed);
        let params = dfl_ml::Model::params(&model);
        run_task(cfg, model, params, datasets, sgd, &[]).expect("valid dedup config")
    }
}

/// Runs one dedup point: the same task flat and chunked, in the given
/// stability regime.
pub fn dedup_run(frozen: bool) -> DedupPoint {
    let plain = dedup_experiment(false, frozen);
    let chunked = dedup_experiment(true, frozen);
    let cfg = dedup_config(true);
    DedupPoint {
        regime: if frozen { "frozen" } else { "drifting" }.to_string(),
        rounds: cfg.rounds,
        chunk_size: cfg.chunk_size,
        plain_tx_bytes: plain.total_tx_bytes,
        chunked_tx_bytes: chunked.total_tx_bytes,
        chunks_sent: chunked.chunks_sent,
        chunks_deduped: chunked.chunks_deduped,
        dedup_bytes_saved: chunked.dedup_bytes_saved,
    }
}

/// The dedup sweep: both stability regimes.
pub fn dedup_sweep() -> Vec<DedupPoint> {
    vec![dedup_run(true), dedup_run(false)]
}

// ---------------------------------------------------------------------------
// Swarm scale benchmark (incremental flow reallocation)
// ---------------------------------------------------------------------------

/// Message type of the synthetic swarm workload.
#[derive(Clone, Copy, Debug)]
pub enum SwarmMsg {
    /// A gradient payload from a trainer.
    Upload,
    /// The provider's zero-byte acknowledgment.
    Ack,
}

/// Uploads a gradient-sized payload per wave, the next wave gated on the
/// provider's ack — so flow arrivals and completions churn continuously.
struct SwarmTrainer {
    provider: dfl_netsim::engine::NodeId,
    bytes: u64,
    waves_left: u32,
    start_delay: SimDuration,
}

impl dfl_netsim::engine::Actor<SwarmMsg> for SwarmTrainer {
    fn on_start(&mut self, ctx: &mut dfl_netsim::engine::Context<'_, SwarmMsg>) {
        ctx.set_timer(self.start_delay, 0);
    }

    fn on_message(
        &mut self,
        ctx: &mut dfl_netsim::engine::Context<'_, SwarmMsg>,
        _from: dfl_netsim::engine::NodeId,
        _msg: SwarmMsg,
    ) {
        self.waves_left -= 1;
        if self.waves_left > 0 {
            // Vary the next wave's size so rates keep shifting.
            self.bytes = 60_000 + self.bytes % 50_000;
            ctx.send(self.provider, self.bytes, SwarmMsg::Upload);
        }
    }

    fn on_timer(&mut self, ctx: &mut dfl_netsim::engine::Context<'_, SwarmMsg>, _token: u64) {
        ctx.send(self.provider, self.bytes, SwarmMsg::Upload);
    }
}

/// Counts uploads and acks each one with a zero-byte control message.
struct SwarmProvider;

impl dfl_netsim::engine::Actor<SwarmMsg> for SwarmProvider {
    fn on_message(
        &mut self,
        ctx: &mut dfl_netsim::engine::Context<'_, SwarmMsg>,
        from: dfl_netsim::engine::NodeId,
        _msg: SwarmMsg,
    ) {
        ctx.incr("swarm/upload", 1);
        ctx.send(from, 0, SwarmMsg::Ack);
    }
}

/// Waves each trainer uploads in the swarm workload.
pub const SWARM_WAVES: u32 = 2;

/// Builds and runs the synthetic swarm: `trainers` nodes behind 10 Mbps
/// links, each uploading [`SWARM_WAVES`] ~100–130 kB gradients (ack-gated)
/// to one of `trainers/16` providers, paper-style. Returns the number of
/// uploads that completed and the wall-clock milliseconds the run took.
///
/// The workload is deterministic, so the upload count is a correctness
/// check: both allocators must complete every one of
/// `trainers × SWARM_WAVES` uploads.
pub fn swarm_run(trainers: usize, reference: bool) -> (u64, f64) {
    let mut sim = swarm_sim(trainers, reference);
    let start = Instant::now();
    sim.run();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    (sim.trace().counter("swarm/upload"), wall_ms)
}

/// Runs the swarm workload and returns a fingerprint of its full trace —
/// the run-to-run determinism check at scale.
pub fn swarm_trace_hash(trainers: usize, reference: bool) -> u64 {
    let mut sim = swarm_sim(trainers, reference);
    sim.run();
    trace_fingerprint(sim.trace())
}

fn swarm_sim(trainers: usize, reference: bool) -> dfl_netsim::engine::Simulation<SwarmMsg> {
    use dfl_netsim::engine::{LinkSpec, NodeId as NetNodeId, Simulation};
    let providers = (trainers / 16).max(1);
    let mut sim: Simulation<SwarmMsg> = Simulation::new();
    sim.set_reference_allocator(reference);
    let link = LinkSpec::symmetric_mbps(10, SimDuration::from_millis(10));
    for i in 0..trainers {
        sim.add_node(
            SwarmTrainer {
                provider: NetNodeId(trainers + (i % providers)),
                bytes: 100_000 + (i as u64 * 7_919) % 30_000,
                waves_left: SWARM_WAVES,
                start_delay: SimDuration::from_millis((i % 64) as u64),
            },
            link,
        );
    }
    for _ in 0..providers {
        sim.add_node(SwarmProvider, link);
    }
    // Safety stop well past the contended completion horizon.
    sim.set_time_limit(SimTime::from_micros(600_000_000));
    sim
}

/// FNV-1a over every observable output of a run: each event's time, node,
/// label name, and value bits, then every counter and per-node byte total.
/// Two runs are behaviourally identical iff their fingerprints match
/// (modulo hash collisions).
pub fn trace_fingerprint(trace: &Trace) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    for e in trace.events() {
        eat(&e.time.as_micros().to_le_bytes());
        eat(&(e.node.index() as u64).to_le_bytes());
        eat(trace.label_name(e.label).as_bytes());
        eat(&e.value.to_bits().to_le_bytes());
    }
    for (name, value) in trace.counters() {
        eat(name.as_bytes());
        eat(&value.to_le_bytes());
    }
    eat(&trace.total_bytes_sent().to_le_bytes());
    eat(&trace.total_bytes_received().to_le_bytes());
    h
}

/// One point of the netsim scale sweep: the swarm workload at `trainers`
/// trainers, timed under the incremental allocator and (optionally) the
/// reference global recompute.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    /// Trainers in the swarm.
    pub trainers: usize,
    /// Total simulated nodes (trainers + providers).
    pub nodes: usize,
    /// Uploads completed (must equal `trainers × SWARM_WAVES`).
    pub uploads: u64,
    /// Wall-clock ms under the incremental component-scoped allocator.
    pub incremental_ms: f64,
    /// Wall-clock ms under the reference global allocator (`None` when the
    /// point was too large to time the quadratic path).
    pub reference_ms: Option<f64>,
    /// Process peak resident set (VmHWM, kB) sampled after the incremental
    /// run. Process-wide high-water mark: meaningful when points run in
    /// ascending size order before other large allocations.
    pub peak_rss_kb: Option<u64>,
}

impl ScalePoint {
    /// Reference / incremental wall-clock ratio, when both were timed.
    pub fn speedup(&self) -> Option<f64> {
        self.reference_ms.map(|r| r / self.incremental_ms.max(1e-9))
    }
}

/// Peak resident set size (VmHWM) of this process in kB, from
/// `/proc/self/status`. `None` off Linux or if the field is missing.
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// Runs one scale point; times the reference allocator too when
/// `with_reference` (and asserts both complete the same uploads).
pub fn scale_point(trainers: usize, with_reference: bool) -> ScalePoint {
    let (uploads, incremental_ms) = swarm_run(trainers, false);
    assert_eq!(
        uploads,
        trainers as u64 * SWARM_WAVES as u64,
        "incremental allocator dropped uploads at n={trainers}"
    );
    let peak = peak_rss_kb();
    let reference_ms = with_reference.then(|| {
        let (ref_uploads, ms) = swarm_run(trainers, true);
        assert_eq!(ref_uploads, uploads, "allocators disagree at n={trainers}");
        ms
    });
    ScalePoint {
        trainers,
        nodes: trainers + (trainers / 16).max(1),
        uploads,
        incremental_ms,
        reference_ms,
        peak_rss_kb: peak,
    }
}

/// The scale sweep: one [`ScalePoint`] per entry of `sizes` (run in the
/// given order; ascending keeps the RSS column meaningful). The reference
/// allocator is only timed for sizes ≤ `reference_max` — beyond that the
/// global-recompute path takes minutes per point.
pub fn scale_sweep(sizes: &[usize], reference_max: usize) -> Vec<ScalePoint> {
    sizes
        .iter()
        .map(|&n| scale_point(n, n <= reference_max))
        .collect()
}

// ---------------------------------------------------------------------------
// Hierarchical aggregation overlay sweep
// ---------------------------------------------------------------------------

/// Branching factor used by the overlay sweep (fan-in bound per level).
pub const OVERLAY_BRANCHING: usize = 8;

/// One point of the overlay sweep: a full verifiable round through the
/// multi-level aggregation overlay at `trainers` trainers, with the
/// per-node work extracted from the trace.
#[derive(Clone, Debug)]
pub struct OverlayPoint {
    /// Trainers in the swarm.
    pub trainers: usize,
    /// Overlay branching factor `b`.
    pub branching: usize,
    /// Levels in the overlay tree (a flat round would be 1 level of
    /// `trainers` fan-in; the overlay caps fan-in at `b` per level).
    pub levels: usize,
    /// Rounds that completed (must equal the configured rounds).
    pub completed_rounds: u64,
    /// Overlay messages processed by the busiest aggregator — the
    /// sub-linearity headline. Bounded by `work_bound`, not by `trainers`.
    pub agg_msgs_max: u64,
    /// The per-node work bound the overlay guarantees: `b × levels`.
    pub work_bound: u64,
    /// Child partials received by the busiest interior trainer (fan-in;
    /// at most `b` per round).
    pub fan_in_max: u64,
    /// Partial aggregates forwarded across the whole overlay.
    pub partials_forwarded: u64,
    /// Duration of the completed round (simulated seconds).
    pub round_secs: f64,
    /// Wall-clock milliseconds the simulation took on this machine.
    pub wall_ms: f64,
}

/// Overlay sweep base setup: one verifiable partition, one aggregator,
/// branching-8 overlay, direct communication (the overlay replaces the
/// storage upload path entirely — partials travel trainer-to-trainer).
pub fn overlay_config(trainers: usize) -> TaskConfig {
    TaskConfig {
        trainers,
        partitions: 1,
        aggregators_per_partition: 1,
        ipfs_nodes: 1,
        comm: CommMode::Direct,
        verifiable: true,
        batch_verify: true,
        commit_precompute: true,
        overlay_branching: Some(OVERLAY_BRANCHING),
        rounds: 1,
        bandwidth_mbps: 50,
        latency: SimDuration::from_millis(5),
        poll_interval: SimDuration::from_millis(100),
        t_train: SimDuration::from_secs(60),
        t_sync: SimDuration::from_secs(120),
        seed: 11,
        ..TaskConfig::default()
    }
}

/// Parameter count of the overlay sweep's synthetic model. Small on
/// purpose: the sweep measures message-topology work, which does not
/// depend on the payload size.
pub fn overlay_param_count() -> usize {
    32
}

/// Runs one overlay point and checks the per-node work bounds: the
/// busiest aggregator must process at most `b × levels` overlay messages
/// and the busiest interior trainer at most `b` child partials per round.
///
/// # Panics
///
/// Panics if the round fails to complete or either bound is exceeded.
pub fn overlay_point(trainers: usize) -> OverlayPoint {
    let cfg = overlay_config(trainers);
    let branching = cfg.overlay_branching.expect("overlay config has branching");
    let rounds = cfg.rounds;
    let start = Instant::now();
    let report = run_network_experiment(cfg.clone(), overlay_param_count());
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(
        report.succeeded(&cfg),
        "overlay round incomplete at n={trainers}: {}/{} rounds",
        report.completed_rounds,
        rounds
    );

    // One pass over the trace: per-node counts of the two work labels.
    let mut agg_msgs: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    let mut fan_in: std::collections::HashMap<usize, u64> = std::collections::HashMap::new();
    for e in report.trace.events() {
        let name = report.trace.label_name(e.label);
        if name == labels::OVERLAY_AGG_MSG {
            *agg_msgs.entry(e.node.index()).or_insert(0) += 1;
        } else if name == labels::OVERLAY_CHILD_RECV {
            *fan_in.entry(e.node.index()).or_insert(0) += 1;
        }
    }
    let agg_msgs_max = agg_msgs.values().copied().max().unwrap_or(0);
    let fan_in_max = fan_in.values().copied().max().unwrap_or(0);
    let levels = OverlayTree::new(trainers, branching, cfg.seed).levels();
    let work_bound = (branching * levels) as u64 * rounds;
    assert!(
        agg_msgs_max <= work_bound,
        "aggregator processed {agg_msgs_max} overlay messages at n={trainers}, bound {work_bound}"
    );
    assert!(
        fan_in_max <= branching as u64 * rounds,
        "interior fan-in {fan_in_max} exceeds branching {branching} at n={trainers}"
    );

    OverlayPoint {
        trainers,
        branching,
        levels,
        completed_rounds: report.completed_rounds,
        agg_msgs_max,
        work_bound,
        fan_in_max,
        partials_forwarded: report.trace.count(labels::OVERLAY_FORWARDED) as u64,
        round_secs: report.rounds.first().map_or(0.0, |r| r.round_duration),
        wall_ms,
    }
}

/// The overlay sweep: one [`OverlayPoint`] per swarm size, ascending.
pub fn overlay_sweep(sizes: &[usize]) -> Vec<OverlayPoint> {
    sizes.iter().map(|&n| overlay_point(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_merge_point_completes() {
        let point = fig1_run(CommMode::MergeAndDownload, 4);
        assert!(point.aggregation_delay > 0.0);
        assert!(point.upload_delay > 0.0);
        assert_eq!(point.label, "4");
    }

    #[test]
    fn fig2_point_matches_expected_bytes() {
        let point = fig2_run(2);
        assert!(point.total_delay > 0.0);
        // D = (|T_ij| + |A_i| − 1) · PartitionSize = (8 + 1) · 1.1 MB.
        assert!(
            (point.mb_per_aggregator - point.expected_mb).abs() / point.expected_mb < 0.15,
            "measured {} vs expected {}",
            point.mb_per_aggregator,
            point.expected_mb
        );
    }

    #[test]
    fn fig3_small_point_runs() {
        let points = fig3_commitment(&[256]);
        assert_eq!(points.len(), 1);
        assert!(points[0].pedersen_k1_ms > points[0].sha256_ms);
        assert!(points[0].fast_k1_ms > 0.0);
        assert!(points[0].fast_r1_ms > 0.0);
    }

    #[test]
    fn crypto_report_shows_fast_path_winning() {
        let profiles = crypto_report(512);
        assert_eq!(profiles.len(), 2);
        for p in &profiles {
            // Even at a small size the table path must beat the naive
            // serial baseline comfortably (the full d=8192 numbers go to
            // BENCH_crypto.json via examples/bench_crypto.rs).
            assert!(
                p.commit_speedup() > 2.0,
                "{}: naive {:.2} ms vs fast {:.2} ms",
                p.curve,
                p.commit_naive_ms,
                p.commit_fast_ms
            );
        }
        let rounds = verifiable_round_sweep(&[8], 64);
        let json = crypto_report_json(&profiles, &rounds);
        assert!(json.contains("\"secp256k1\""));
        assert!(json.contains("\"secp256r1\""));
        assert!(json.contains("\"commit_speedup\""));
        assert_eq!(json.matches("\"elements\": 512").count(), 2);
        assert!(json.contains("\"verifiable_round\""));
        assert!(json.contains("\"trainers\": 8"));
    }

    #[test]
    fn batched_round_check_beats_per_blob() {
        // Round-level before/after at a test-sized swarm: one RLC batch
        // over the round must already beat arrival-order per-blob
        // verification at 32 blobs (the 10k-trainer sweep goes to
        // BENCH_crypto.json via examples/bench_crypto.rs).
        let point = verifiable_round_point(32, 128);
        assert_eq!(point.trainers, 32);
        assert!(
            point.speedup() > 1.0,
            "per-blob {:.2} ms vs batched {:.2} ms",
            point.per_blob_ms,
            point.batched_ms
        );
    }

    #[test]
    fn churn_baseline_completes_every_round() {
        let point = churn_run(SimDuration::ZERO, SimDuration::from_secs(10), 42);
        assert_eq!(point.completed_rounds, point.rounds);
        assert!(point.avg_round_duration > 0.0);
        assert_eq!(point.quorum_degradations, 0);
        // No faults → no transfer is ever torn, so nothing is wasted.
        assert!(point.total_tx_bytes > 0);
        assert_eq!(point.wire_wasted_bytes, 0);
        assert_eq!(point.wasted_bytes, 0);
    }

    #[test]
    fn trace_queries_agree_and_index_wins() {
        let trace = synthetic_trace(100_000, 16, 32, 7);
        // trace_query_profile asserts internally that both access paths
        // return identical results before timing them.
        let p = trace_query_profile("synthetic", &trace, 1);
        assert_eq!(p.events, 100_000);
        assert_eq!(p.labels, 16);
        assert_eq!(p.nodes_queried, 8);
        assert!(
            p.aggregate_speedup() > 50.0,
            "aggregate: scan {:.3} ms vs indexed {:.3} ms",
            p.scan_aggregate_ms,
            p.indexed_aggregate_ms
        );
        // The find battery's win is bounded by the visit ratio (events per
        // label vs total events); debug builds flatten it further, so the
        // bar here is conservative — release numbers go to BENCH_netsim.json.
        assert!(
            p.find_speedup() > 2.0,
            "find: scan {:.3} ms vs indexed {:.3} ms",
            p.scan_find_ms,
            p.indexed_find_ms
        );
        let json = netsim_report_json(std::slice::from_ref(&p), &[], &[], &[], &[]);
        assert!(json.contains("\"source\": \"synthetic\""));
        assert!(json.contains("\"speedup\""));
        assert!(json.contains("\"churn_wire_cost\""));
        assert!(json.contains("\"scale\""));
        assert!(json.contains("\"overlay\""));
        assert!(json.contains("\"dedup\""));
    }

    #[test]
    fn frozen_dedup_point_saves_wire_bytes() {
        // The frozen regime re-uploads bit-identical blobs each round, so
        // the chunked run must dedup rounds 2..n down to manifest traffic
        // and beat the flat run's total wire bytes.
        let point = dedup_run(true);
        assert_eq!(point.regime, "frozen");
        assert!(point.chunks_sent > 0);
        assert!(
            point.chunks_deduped > point.chunks_sent,
            "3 frozen rounds must dedup more chunks than they ship: sent {} deduped {}",
            point.chunks_sent,
            point.chunks_deduped
        );
        assert!(
            point.wire_reduction() > 0.2,
            "chunked {} vs plain {} bytes (reduction {:.3})",
            point.chunked_tx_bytes,
            point.plain_tx_bytes,
            point.wire_reduction()
        );
        let json = netsim_report_json(&[], &[], &[], &[], std::slice::from_ref(&point));
        assert!(json.contains("\"regime\": \"frozen\""));
        assert!(json.contains("\"wire_reduction\""));
    }

    #[test]
    fn overlay_point_completes_with_bounded_per_node_work() {
        // 200 trainers at branching 8 is a 3-level overlay; overlay_point
        // asserts internally that the round completes, the aggregator
        // processes ≤ b × levels overlay messages, and no interior node
        // sees more than b child partials.
        let point = overlay_point(200);
        assert_eq!(point.trainers, 200);
        assert_eq!(point.branching, OVERLAY_BRANCHING);
        assert!(point.levels >= 3, "200 trainers at b=8 is ≥3 levels");
        assert_eq!(point.completed_rounds, 1);
        // The headline property: aggregator work is a constant (one root
        // partial per round), far below the flat round's 200 messages.
        assert!(point.agg_msgs_max <= point.work_bound);
        assert!(point.agg_msgs_max < 200);
        assert!(point.fan_in_max > 0 && point.fan_in_max <= 8);
        let json = netsim_report_json(&[], &[], &[], std::slice::from_ref(&point), &[]);
        assert!(json.contains("\"trainers\": 200"));
        assert!(json.contains("\"agg_msgs_max\""));
    }

    #[test]
    fn swarm_scale_point_completes_and_allocators_agree() {
        // A small swarm (64 trainers, 4 providers) through both
        // allocators: every ack-gated upload wave must complete, and the
        // two paths must agree on the outcome.
        let point = scale_point(64, true);
        assert_eq!(point.uploads, 64 * SWARM_WAVES as u64);
        assert_eq!(point.nodes, 68);
        assert!(point.incremental_ms > 0.0);
        assert!(point.reference_ms.is_some());
    }

    #[test]
    fn churn_point_with_short_outages_still_completes() {
        // 1 s outages are far below the 2 s fetch timeout + failover
        // budget: retry masks them and no round is lost.
        let point = churn_run(SimDuration::from_secs(1), SimDuration::from_secs(10), 42);
        assert_eq!(point.completed_rounds, point.rounds);
    }
}
