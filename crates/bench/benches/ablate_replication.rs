//! Ablation: IPFS replication factor (§VI "Guarantee availability of
//! gradients in the IPFS network"). Replicating every block to `r` nodes
//! costs extra upload bandwidth per round; this bench quantifies the
//! round-time price of the availability insurance.
//!
//! Run with `cargo bench -p dfl-bench --bench ablate_replication`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfl_bench::run_network_experiment;
use ipls::TaskConfig;

fn cfg(replication: usize) -> TaskConfig {
    TaskConfig {
        trainers: 8,
        partitions: 2,
        aggregators_per_partition: 1,
        ipfs_nodes: 4,
        replication,
        rounds: 1,
        seed: 13,
        ..TaskConfig::default()
    }
}

const PARAMS: usize = 64 * 1024; // ~0.5 MB of gradient data per partition

fn bench_replication(c: &mut Criterion) {
    println!("\n=== replication ablation (simulated round duration) ===");
    for r in [1usize, 2, 4] {
        let report = run_network_experiment(cfg(r), PARAMS);
        println!(
            "replication {r}: round {:.2}s, upload {:.2}s",
            report.rounds[0].round_duration, report.rounds[0].upload_delay_avg
        );
    }
    println!();

    let mut group = c.benchmark_group("ablate_replication");
    group.sample_size(10);
    for &r in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |b, &r| {
            b.iter(|| run_network_experiment(cfg(r), PARAMS))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replication);
criterion_main!(benches);
