//! Criterion bench regenerating **Figure 2** of the paper: total
//! aggregation delay (gradient aggregation + synchronization) and bytes
//! received per aggregator versus the number of aggregators per partition
//! (16 trainers, 8 storage nodes, 4 × 1.1 MB partitions, 20 Mbps).
//!
//! Run with `cargo bench -p dfl-bench --bench fig2_aggregators`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfl_bench::fig2_run;

fn bench_fig2(c: &mut Criterion) {
    println!("\n=== Figure 2 series (simulated) ===");
    println!(
        "{:>6} {:>16} {:>10} {:>10} {:>16} {:>13}",
        "|A_i|", "aggregation (s)", "sync (s)", "total (s)", "MB/aggregator", "expected MB"
    );
    for &a in &[1usize, 2, 4] {
        let p = fig2_run(a);
        println!(
            "{:>6} {:>16.2} {:>10.2} {:>10.2} {:>16.2} {:>13.2}",
            p.aggregators_per_partition,
            p.aggregation_delay,
            p.sync_delay,
            p.total_delay,
            p.mb_per_aggregator,
            p.expected_mb
        );
    }
    println!();

    let mut group = c.benchmark_group("fig2_aggregators");
    group.sample_size(10);
    for &a in &[1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(a), &a, |b, &a| {
            b.iter(|| fig2_run(a))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
