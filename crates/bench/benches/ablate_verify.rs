//! Ablation: what verifiable aggregation costs end-to-end — the same task
//! with commitments off versus on (§V "Impact of verifiability on
//! performance", measured in situ rather than as a microbenchmark).
//!
//! The model is kept small (1 024 parameters) so the real group operations
//! run inside the benchmark loop; the Fig. 3 bench covers how the cost
//! scales with the parameter count.
//!
//! Run with `cargo bench -p dfl-bench --bench ablate_verify`.

use criterion::{criterion_group, criterion_main, Criterion};
use dfl_bench::run_network_experiment;
use ipls::TaskConfig;

fn cfg(verifiable: bool) -> TaskConfig {
    TaskConfig {
        trainers: 8,
        partitions: 2,
        aggregators_per_partition: 2,
        ipfs_nodes: 4,
        verifiable,
        rounds: 1,
        seed: 9,
        // Charge simulated time for commitment computation at the naive
        // per-element rate measured in Fig. 3 (~120 µs/param on one core),
        // so the simulated round duration shows the §V verifiability tax.
        commit_us_per_element: if verifiable { 120 } else { 0 },
        ..TaskConfig::default()
    }
}

const PARAMS: usize = 1024;

fn bench_verify(c: &mut Criterion) {
    // Report the simulated-time impact once.
    let plain = run_network_experiment(cfg(false), PARAMS);
    let verified = run_network_experiment(cfg(true), PARAMS);
    println!(
        "\n=== verifiability ablation (simulated round duration) ===\n\
         off: {:.3}s    on: {:.3}s\n",
        plain.rounds[0].round_duration, verified.rounds[0].round_duration
    );

    let mut group = c.benchmark_group("ablate_verify");
    group.sample_size(10);
    group.bench_function("verification_off", |b| {
        b.iter(|| run_network_experiment(cfg(false), PARAMS))
    });
    group.bench_function("verification_on", |b| {
        b.iter(|| run_network_experiment(cfg(true), PARAMS))
    });
    group.finish();
}

criterion_group!(benches, bench_verify);
criterion_main!(benches);
