//! Microbenchmarks of the cryptographic substrate: field multiplication,
//! curve arithmetic, scalar multiplication, hashing, and quantization —
//! the primitives every higher-level number in Fig. 3 decomposes into.
//!
//! Run with `cargo bench -p dfl-bench --bench crypto_micro`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dfl_crypto::curve::{Affine, Curve, Jacobian, Scalar, Secp256k1, Secp256r1};
use dfl_crypto::field::Fp;
use dfl_crypto::msm::MsmTable;
use dfl_crypto::pedersen::{CommitKey, Commitment};
use dfl_crypto::quantize::{encode, quantize_vector};
use dfl_crypto::schnorr::SigningKey;
use dfl_crypto::sha256::Sha256;

fn bench_field(c: &mut Criterion) {
    let a = Fp::<<Secp256k1 as Curve>::Base>::from_u64(0xDEADBEEF)
        .pow(&dfl_crypto::bigint::U256::from_u64(12345));
    let b = a.square();
    let mut group = c.benchmark_group("field");
    group.bench_function("mul_secp256k1", |bch| bch.iter(|| a * b));
    group.bench_function("square_secp256k1", |bch| bch.iter(|| a.square()));
    group.bench_function("invert_secp256k1", |bch| bch.iter(|| a.invert()));
    let ar = Fp::<<Secp256r1 as Curve>::Base>::from_u64(0xDEADBEEF);
    group.bench_function("mul_secp256r1", |bch| bch.iter(|| ar * ar));
    group.finish();
}

fn bench_curve(c: &mut Criterion) {
    let g = Secp256k1::generator().to_jacobian();
    let p = g.double();
    let k = Scalar::<Secp256k1>::from_u64(0xFEDCBA9876543210);
    let pa = p.to_affine();
    let mut group = c.benchmark_group("curve");
    group.bench_function("add_jacobian", |b| b.iter(|| g.add(&p)));
    group.bench_function("add_mixed", |b| b.iter(|| g.add_affine(&pa)));
    group.bench_function("double", |b| b.iter(|| g.double()));
    group.bench_function("scalar_mul_wnaf", |b| {
        b.iter(|| Secp256k1::generator().mul(&k))
    });
    group.bench_function("to_affine", |b| b.iter(|| g.to_affine()));
    group.bench_function("decompress", |b| {
        let bytes = Secp256k1::generator().to_compressed();
        b.iter(|| Affine::<Secp256k1>::from_compressed(&bytes))
    });
    group.finish();
}

fn bench_hash_and_quantize(c: &mut Criterion) {
    let data = vec![0x5Au8; 1 << 20];
    let mut group = c.benchmark_group("hash");
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("sha256_1mib", |b| b.iter(|| Sha256::digest(&data)));
    group.finish();

    let values: Vec<f32> = (0..65536).map(|i| (i as f32).sin()).collect();
    let mut group = c.benchmark_group("quantize");
    group.throughput(Throughput::Elements(values.len() as u64));
    group.bench_function("quantize_64k", |b| b.iter(|| quantize_vector(&values)));
    let q = quantize_vector(&values);
    group.bench_function("encode_64k", |b| b.iter(|| encode(&q)));
    group.finish();
}

fn bench_msm_pipeline(c: &mut Criterion) {
    // The building blocks of the batch-affine/table pipeline, plus the
    // commit before/after at one representative size.
    const N: usize = 1024;
    let key = CommitKey::<Secp256k1>::setup(N, b"micro-msm");
    let scalars: Vec<Scalar<Secp256k1>> = (0..N)
        .map(|i| {
            Scalar::<Secp256k1>::from_i64(if i % 2 == 0 {
                i as i64 + 1
            } else {
                -(i as i64)
            })
        })
        .collect();
    let jacobians: Vec<Jacobian<Secp256k1>> = key
        .generators()
        .iter()
        .map(|p| p.to_jacobian().double())
        .collect();
    let field_elems: Vec<Fp<<Secp256k1 as Curve>::Base>> = (1..=N as u64)
        .map(Fp::<<Secp256k1 as Curve>::Base>::from_u64)
        .collect();

    let mut group = c.benchmark_group("msm_pipeline");
    group.sample_size(10);
    group.throughput(Throughput::Elements(N as u64));
    group.bench_function("batch_invert_1k", |b| {
        b.iter(|| {
            let mut elems = field_elems.clone();
            Fp::batch_invert(&mut elems);
            elems
        })
    });
    group.bench_function("batch_normalize_1k", |b| {
        b.iter(|| Jacobian::batch_normalize(&jacobians))
    });
    group.bench_function("table_build_1k", |b| {
        b.iter(|| MsmTable::build(key.generators()))
    });
    let mut fast_key = key.clone();
    fast_key.precompute();
    group.bench_function("commit_naive_1k", |b| b.iter(|| key.commit_naive(&scalars)));
    group.bench_function("commit_fast_1k", |b| b.iter(|| fast_key.commit(&scalars)));
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    // Batched vs individual commitment verification: the §VI
    // directory-load reduction, quantified. 8 openings of 256-element
    // vectors ≈ one round of a 4-partition task with |A_i| = 2.
    let key = CommitKey::<Secp256k1>::setup(256, b"micro");
    // Mixed-sign quantized-gradient scalars: half are ≈256-bit canonical
    // exponents, as in the real protocol (otherwise the batch's random
    // combination coefficients dominate and the comparison is unfair).
    let vectors: Vec<Vec<Scalar<Secp256k1>>> = (0..8)
        .map(|i| {
            (0..256)
                .map(|j| {
                    let v = (i * 1000 + j + 1) as i64;
                    Scalar::<Secp256k1>::from_i64(if j % 2 == 0 { v } else { -v })
                })
                .collect()
        })
        .collect();
    let commits: Vec<Commitment<Secp256k1>> = vectors.iter().map(|v| key.commit(v)).collect();
    let items: Vec<(&[Scalar<Secp256k1>], &Commitment<Secp256k1>)> = vectors
        .iter()
        .map(Vec::as_slice)
        .zip(commits.iter())
        .collect();

    let mut group = c.benchmark_group("verification");
    group.sample_size(10);
    group.bench_function("individual_x8", |b| {
        b.iter(|| {
            for (v, cm) in &items {
                assert!(key.verify(v, cm));
            }
        })
    });
    group.bench_function("batched_x8", |b| {
        b.iter(|| assert!(key.batch_verify(&items)))
    });
    group.finish();

    // Schnorr registration authentication.
    let sk = SigningKey::<Secp256k1>::derive(b"bench", 0);
    let vk = sk.verifying_key();
    let sig = sk.sign(b"register gradient");
    let mut group = c.benchmark_group("schnorr");
    group.bench_function("sign", |b| b.iter(|| sk.sign(b"register gradient")));
    group.bench_function("verify", |b| {
        b.iter(|| vk.verify(b"register gradient", &sig))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_field,
    bench_curve,
    bench_hash_and_quantize,
    bench_msm_pipeline,
    bench_verification
);
criterion_main!(benches);
