//! Ablation: multi-scalar-multiplication strategy for Pedersen commitment
//! computation — naive double-and-add (the paper's implementation), per-
//! term wNAF, Jacobian Pippenger buckets (the multi-exponentiation
//! optimization the paper cites as future work [27, 28]), batch-affine
//! Pippenger, and the precomputed fixed-base table.
//!
//! Run with `cargo bench -p dfl-bench --bench ablate_msm`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfl_crypto::curve::{Scalar, Secp256k1};
use dfl_crypto::msm::{Msm, MsmTable, Strategy};
use dfl_crypto::pedersen::CommitKey;

const SIZES: &[usize] = &[256, 1024, 4096];

fn bench_msm(c: &mut Criterion) {
    let max = *SIZES.last().expect("sizes");
    let key = CommitKey::<Secp256k1>::setup(max, b"msm-ablation");
    // Alternate signs so half the canonical exponents are ≈256-bit, as in
    // real quantized-gradient commitments.
    let scalars: Vec<Scalar<Secp256k1>> = (0..max)
        .map(|i| {
            let magnitude = (i as u64 * 0x9E37 + 3) & 0xFF_FFFF;
            if i % 2 == 0 {
                Scalar::<Secp256k1>::from_u64(magnitude)
            } else {
                Scalar::<Secp256k1>::from_i64(-(magnitude as i64))
            }
        })
        .collect();

    let mut group = c.benchmark_group("ablate_msm");
    group.sample_size(10);
    for &n in SIZES {
        let points = &key.generators()[..n];
        let ks = &scalars[..n];
        for (label, strategy) in [
            ("naive", Strategy::Naive),
            ("wnaf", Strategy::Wnaf),
            ("pippenger", Strategy::Pippenger),
            ("batch_affine", Strategy::BatchAffine),
        ] {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| Msm::new(points).with_strategy(strategy).eval(ks))
            });
        }
        let table = MsmTable::build(points);
        group.bench_with_input(BenchmarkId::new("table", n), &n, |b, _| {
            b.iter(|| Msm::new(points).with_table(&table).eval(ks))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_msm);
criterion_main!(benches);
