//! Criterion bench regenerating **Figure 1** of the paper: aggregation and
//! upload delays for one FL iteration versus the number of IPFS providers
//! per aggregator (16 trainers, 1.3 MB partition, 10 Mbps).
//!
//! The benchmark measures the wall-clock cost of simulating each
//! configuration and — more importantly — prints the simulated delay
//! series the figure plots. Run with `cargo bench -p dfl-bench --bench
//! fig1_providers`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfl_bench::fig1_run;
use ipls::CommMode;

fn bench_fig1(c: &mut Criterion) {
    // Print the paper series once, up front.
    println!("\n=== Figure 1 series (simulated seconds) ===");
    println!(
        "{:<12} {:>18} {:>14}",
        "providers", "aggregation (s)", "upload (s)"
    );
    for &p in &[1usize, 2, 4, 8, 16] {
        let point = fig1_run(CommMode::MergeAndDownload, p);
        println!(
            "{:<12} {:>18.2} {:>14.2}",
            point.label, point.aggregation_delay, point.upload_delay
        );
    }
    for (mode, p) in [(CommMode::Indirect, 8usize), (CommMode::Direct, 8)] {
        let point = fig1_run(mode, p);
        println!(
            "{:<12} {:>18.2} {:>14.2}",
            point.label, point.aggregation_delay, point.upload_delay
        );
    }
    println!();

    let mut group = c.benchmark_group("fig1_providers");
    group.sample_size(10);
    for &providers in &[1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("merge_and_download", providers),
            &providers,
            |b, &p| b.iter(|| fig1_run(CommMode::MergeAndDownload, p)),
        );
    }
    group.bench_function("naive_8", |b| b.iter(|| fig1_run(CommMode::Indirect, 8)));
    group.bench_function("direct_8", |b| b.iter(|| fig1_run(CommMode::Direct, 8)));
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
