//! Criterion bench for the trace-query layer: the per-label count/sum and
//! per-node lookup batteries through the seed's linear-scan access pattern
//! ("scan") versus the interned-label index ("indexed"), on a deterministic
//! 100 k-event synthetic trace, plus the hot `record` path itself.
//!
//! Run with `cargo bench -p dfl-bench --bench netsim_trace`.

use criterion::{criterion_group, criterion_main, Criterion};
use dfl_bench::{synthetic_trace, trace_query_profile};
use dfl_netsim::{NodeId, SimTime, Trace};

const EVENTS: usize = 100_000;
const LABELS: usize = 32;
const NODES: usize = 64;

fn bench_trace_queries(c: &mut Criterion) {
    let trace = synthetic_trace(EVENTS, LABELS, NODES, 7);
    let profile = trace_query_profile("synthetic", &trace, 3);
    println!(
        "\n=== Trace queries, {} events / {} labels ===\n\
         aggregate: scan {:.3} ms vs indexed {:.3} ms ({:.0}x)\n\
         find:      scan {:.3} ms vs indexed {:.3} ms ({:.0}x)\n",
        profile.events,
        profile.labels,
        profile.scan_aggregate_ms,
        profile.indexed_aggregate_ms,
        profile.aggregate_speedup(),
        profile.scan_find_ms,
        profile.indexed_find_ms,
        profile.find_speedup()
    );

    let mut group = c.benchmark_group("netsim_trace");
    group.sample_size(20);
    group.bench_function("scan_sum", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            for e in trace.events() {
                if trace.label_name(e.label) == "synthetic/label_00" {
                    sum += e.value;
                }
            }
            std::hint::black_box(sum)
        })
    });
    group.bench_function("indexed_sum", |b| {
        b.iter(|| std::hint::black_box(trace.sum("synthetic/label_00")))
    });
    group.bench_function("indexed_find", |b| {
        b.iter(|| std::hint::black_box(trace.find(NodeId(0), "synthetic/label_00").len()))
    });
    group.bench_function("record_seen_label", |b| {
        let mut trace = Trace::new();
        trace.record(SimTime::ZERO, NodeId(0), "bench/label", 1.0);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            trace.record(SimTime::from_micros(i), NodeId(0), "bench/label", 1.0);
        })
    });
    group.finish();
}

criterion_group!(benches, bench_trace_queries);
criterion_main!(benches);
