//! Criterion bench regenerating **Figure 3** of the paper: time to compute
//! the SHA-256 hash and the Pedersen commitment of a model's parameters on
//! secp256k1 and secp256r1, versus the number of parameters.
//!
//! The naive-MSM measurements mirror the paper's "straightforward"
//! implementation. Run with `cargo bench -p dfl-bench --bench
//! fig3_commitment`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dfl_crypto::curve::{Scalar, Secp256k1, Secp256r1};
use dfl_crypto::pedersen::CommitKey;
use dfl_crypto::sha256::Sha256;

const SIZES: &[usize] = &[1 << 10, 1 << 12, 1 << 14];

fn scalars_k1(n: usize) -> Vec<Scalar<Secp256k1>> {
    (0..n)
        .map(|i| {
            Scalar::<Secp256k1>::from_i64(if i % 2 == 0 {
                7 * i as i64 + 1
            } else {
                -(7 * i as i64) - 1
            })
        })
        .collect()
}

fn scalars_r1(n: usize) -> Vec<Scalar<Secp256r1>> {
    (0..n)
        .map(|i| {
            Scalar::<Secp256r1>::from_i64(if i % 2 == 0 {
                7 * i as i64 + 1
            } else {
                -(7 * i as i64) - 1
            })
        })
        .collect()
}

fn bench_fig3(c: &mut Criterion) {
    let max = *SIZES.last().expect("sizes");
    let key_k1 = CommitKey::<Secp256k1>::setup(max, b"fig3-bench");
    let key_r1 = CommitKey::<Secp256r1>::setup(max, b"fig3-bench");
    let fast_k1 = CommitKey::<Secp256k1>::setup_precomputed(max, b"fig3-bench");
    let fast_r1 = CommitKey::<Secp256r1>::setup_precomputed(max, b"fig3-bench");

    let mut group = c.benchmark_group("fig3_sha256");
    for &n in SIZES {
        let bytes = vec![0xA5u8; n * 8];
        group.throughput(Throughput::Bytes(bytes.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &bytes, |b, bytes| {
            b.iter(|| Sha256::digest(bytes))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig3_pedersen_secp256k1");
    group.sample_size(10);
    for &n in SIZES {
        let scalars = scalars_k1(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &scalars, |b, s| {
            b.iter(|| key_k1.commit_naive(s))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig3_pedersen_secp256r1");
    group.sample_size(10);
    for &n in SIZES {
        let scalars = scalars_r1(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &scalars, |b, s| {
            b.iter(|| key_r1.commit_naive(s))
        });
    }
    group.finish();

    // The redesigned pipeline: same commitments, precomputed-table MSM.
    let mut group = c.benchmark_group("fig3_pedersen_fast_secp256k1");
    group.sample_size(10);
    for &n in SIZES {
        let scalars = scalars_k1(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &scalars, |b, s| {
            b.iter(|| fast_k1.commit(s))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fig3_pedersen_fast_secp256r1");
    group.sample_size(10);
    for &n in SIZES {
        let scalars = scalars_r1(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &scalars, |b, s| {
            b.iter(|| fast_r1.commit(s))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
