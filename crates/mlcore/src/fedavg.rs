//! Centralized FedAvg — the reference point the paper's protocol must
//! match.
//!
//! §V of the paper claims that because partitioned aggregation computes
//! exactly the same average as a single server, "both the model's
//! convergence rate and final accuracy will be exactly the same as that of
//! traditional FL". This module is that traditional FL: a single aggregator
//! that averages every client's local update each round. Integration tests
//! verify the IPLS pipeline produces bit-identical parameter vectors.

use crate::data::Dataset;
use crate::model::Model;
use crate::train::{average_params, local_update, SgdConfig};

/// A centralized federated-averaging driver.
pub struct FedAvg<M: Model> {
    model: M,
    clients: Vec<Dataset>,
    cfg: SgdConfig,
    round: usize,
}

impl<M: Model + Clone> FedAvg<M> {
    /// Creates a driver over `clients` local datasets.
    ///
    /// # Panics
    ///
    /// Panics if `clients` is empty or any client dataset is empty.
    pub fn new(model: M, clients: Vec<Dataset>, cfg: SgdConfig) -> FedAvg<M> {
        assert!(!clients.is_empty(), "need at least one client");
        assert!(
            clients.iter().all(|c| !c.is_empty()),
            "clients must have data"
        );
        FedAvg {
            model,
            clients,
            cfg,
            round: 0,
        }
    }

    /// The current global model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Rounds completed so far.
    pub fn round(&self) -> usize {
        self.round
    }

    /// Runs one synchronous round: every client trains locally from the
    /// global parameters, the server averages the updates. Returns the new
    /// global parameter vector.
    ///
    /// Client `i` trains with seed `seed_base + i`, matching the seeds the
    /// decentralized pipeline hands its trainers, so the two can be compared
    /// update-for-update.
    pub fn run_round(&mut self, seed_base: u64) -> Vec<f32> {
        let global = self.model.params();
        let mut updates = Vec::with_capacity(self.clients.len());
        let mut worker = self.model.clone();
        for (i, client) in self.clients.iter().enumerate() {
            updates.push(local_update(
                &mut worker,
                &global,
                client,
                &self.cfg,
                seed_base + i as u64,
            ));
        }
        let averaged = average_params(&updates);
        self.model.set_params(&averaged);
        self.round += 1;
        averaged
    }

    /// Runs `rounds` rounds; returns the final parameters.
    pub fn run(&mut self, rounds: usize, seed_base: u64) -> Vec<f32> {
        let mut last = self.model.params();
        for r in 0..rounds {
            last = self.run_round(seed_base + (r as u64) * 1000);
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{make_blobs, partition_iid};
    use crate::metrics::accuracy;
    use crate::model::LogisticRegression;

    #[test]
    fn fedavg_learns() {
        let ds = make_blobs(400, 2, 2, 0.4, 11);
        let clients = partition_iid(&ds, 8, 0);
        let mut fed = FedAvg::new(
            LogisticRegression::new(2, 2),
            clients,
            SgdConfig {
                lr: 0.3,
                epochs: 2,
                ..SgdConfig::default()
            },
        );
        fed.run(15, 7);
        let preds = fed.model().predict(&ds.x);
        let acc = accuracy(&preds, &ds.y);
        assert!(acc > 0.9, "accuracy {acc}");
        assert_eq!(fed.round(), 15);
    }

    #[test]
    fn round_is_deterministic() {
        let ds = make_blobs(100, 2, 2, 0.4, 3);
        let clients = partition_iid(&ds, 4, 0);
        let mut a = FedAvg::new(
            LogisticRegression::new(2, 2),
            clients.clone(),
            SgdConfig::default(),
        );
        let mut b = FedAvg::new(LogisticRegression::new(2, 2), clients, SgdConfig::default());
        assert_eq!(a.run_round(5), b.run_round(5));
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_clients_panics() {
        FedAvg::new(LogisticRegression::new(2, 2), vec![], SgdConfig::default());
    }
}
