//! # dfl-ml
//!
//! The machine-learning substrate under the decentralized FL protocol: the
//! models whose parameter vectors get partitioned and aggregated, the local
//! SGD each trainer runs, synthetic federated datasets, and the two
//! baselines the paper positions itself against.
//!
//! * [`linalg`] — minimal dense vectors/matrices.
//! * [`data`] — synthetic classification/regression datasets with IID and
//!   Dirichlet non-IID federated partitioning.
//! * [`model`] — [`model::Model`] trait (flat parameter vectors) with
//!   linear regression, softmax regression, a one-hidden-layer MLP (manual
//!   backprop, gradient-checked), and a [`model::SyntheticModel`] stub for
//!   network-delay experiments where only parameter-vector *size* matters.
//! * [`train`] — deterministic local SGD ([`train::local_update`]) and
//!   parameter averaging.
//! * [`fedavg`] — centralized FedAvg, the reference the protocol must match
//!   bit-for-bit (§V "convergence … exactly the same as traditional FL").
//! * [`gossip`] — gossip averaging, the purely-decentralized baseline from
//!   the paper's introduction.
//! * [`metrics`] — accuracy / MSE / parameter-distance.

pub mod data;
pub mod fedavg;
pub mod gossip;
pub mod linalg;
pub mod metrics;
pub mod model;
pub mod train;

pub use data::Dataset;
pub use fedavg::FedAvg;
pub use gossip::{Gossip, GossipTopology};
pub use linalg::Matrix;
pub use model::{LinearRegression, LogisticRegression, Mlp, Model, SyntheticModel};
pub use train::{average_params, local_update, SgdConfig};
