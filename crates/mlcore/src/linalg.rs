//! Minimal dense linear algebra: exactly the operations the models need.

use std::fmt;

/// A dense row-major matrix of `f32`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Matrix {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        assert!(i < self.rows, "row {i} out of bounds ({} rows)", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element access.
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Mutable element access.
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// The underlying row-major buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Builds a matrix holding only the given rows of `self`.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.data[dst * self.cols..(dst + 1) * self.cols].copy_from_slice(self.row(src));
        }
        out
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)
    }
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// `acc += scale * v`, element-wise.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn axpy(acc: &mut [f32], scale: f32, v: &[f32]) {
    assert_eq!(acc.len(), v.len(), "axpy length mismatch");
    for (a, x) in acc.iter_mut().zip(v) {
        *a += scale * x;
    }
}

/// Numerically-stable softmax over `logits`, in place.
pub fn softmax_in_place(logits: &mut [f32]) {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let mut sum = 0.0;
    for l in logits.iter_mut() {
        *l = (*l - max).exp();
        sum += *l;
    }
    for l in logits.iter_mut() {
        *l /= sum;
    }
}

/// Index of the maximum element (first on ties).
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn argmax(values: &[f32]) -> usize {
    assert!(!values.is_empty(), "argmax of empty slice");
    let mut best = 0;
    for (i, &v) in values.iter().enumerate() {
        if v > values[best] {
            best = i;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_shape_and_access() {
        let mut m = Matrix::zeros(2, 3);
        m.set(1, 2, 5.0);
        assert_eq!(m.get(1, 2), 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 3);
        assert_eq!(m.row(1), &[0.0, 0.0, 5.0]);
    }

    #[test]
    fn from_vec_and_select() {
        let m = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let sel = m.select_rows(&[2, 0]);
        assert_eq!(sel.row(0), &[5.0, 6.0]);
        assert_eq!(sel.row(1), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn from_vec_wrong_len_panics() {
        Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn dot_and_axpy() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        let mut acc = vec![1.0, 1.0];
        axpy(&mut acc, 2.0, &[3.0, -1.0]);
        assert_eq!(acc, vec![7.0, -1.0]);
    }

    #[test]
    fn softmax_properties() {
        let mut v = vec![1.0, 2.0, 3.0];
        softmax_in_place(&mut v);
        let sum: f32 = v.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(v[2] > v[1] && v[1] > v[0]);
        // Large logits don't overflow.
        let mut big = vec![1000.0, 1001.0];
        softmax_in_place(&mut big);
        assert!(big.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn argmax_first_max() {
        assert_eq!(argmax(&[1.0, 3.0, 3.0, 2.0]), 1);
        assert_eq!(argmax(&[-5.0]), 0);
    }
}
