//! Evaluation metrics.

/// Fraction of predictions equal to the target class.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn accuracy(predictions: &[f32], targets: &[f32]) -> f32 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty evaluation set");
    let correct = predictions
        .iter()
        .zip(targets)
        .filter(|(p, t)| p == t)
        .count();
    correct as f32 / predictions.len() as f32
}

/// Mean squared error.
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
pub fn mse(predictions: &[f32], targets: &[f32]) -> f32 {
    assert_eq!(predictions.len(), targets.len(), "length mismatch");
    assert!(!predictions.is_empty(), "empty evaluation set");
    predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f32>()
        / predictions.len() as f32
}

/// L2 distance between two parameter vectors (used to compare training
/// pipelines for equivalence).
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn param_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_counts_matches() {
        assert_eq!(accuracy(&[0.0, 1.0, 1.0], &[0.0, 1.0, 0.0]), 2.0 / 3.0);
        assert_eq!(accuracy(&[1.0], &[1.0]), 1.0);
    }

    #[test]
    fn mse_basic() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 4.0]), 2.0);
        assert_eq!(mse(&[3.0], &[3.0]), 0.0);
    }

    #[test]
    fn param_distance_euclidean() {
        assert_eq!(param_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(param_distance(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        accuracy(&[1.0], &[1.0, 2.0]);
    }
}
