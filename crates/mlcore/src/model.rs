//! Trainable models with flat parameter vectors.
//!
//! The IPLS protocol works on the model's *parameter vector*: it is split
//! into partitions, aggregated per-partition, and reassembled (§II). The
//! [`Model`] trait therefore exposes parameters as a flat `Vec<f32>` with
//! explicit get/set, so protocol code never needs to know the architecture.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::linalg::{argmax, axpy, dot, softmax_in_place, Matrix};

/// A differentiable model with a flat parameter vector.
pub trait Model: Send {
    /// Number of parameters.
    fn param_count(&self) -> usize;

    /// The flattened parameter vector.
    fn params(&self) -> Vec<f32>;

    /// Replaces the parameters from a flattened vector.
    ///
    /// # Panics
    ///
    /// Implementations panic if `params.len() != self.param_count()`.
    fn set_params(&mut self, params: &[f32]);

    /// Mean loss and mean gradient over a batch.
    fn loss_and_grad(&self, x: &Matrix, y: &[f32]) -> (f32, Vec<f32>);

    /// Predicted target (class index or regression value) per row.
    fn predict(&self, x: &Matrix) -> Vec<f32>;
}

// ---------------------------------------------------------------------------
// Linear regression
// ---------------------------------------------------------------------------

/// Linear regression `ŷ = w·x + b` trained with mean-squared error.
#[derive(Clone, Debug)]
pub struct LinearRegression {
    w: Vec<f32>,
    b: f32,
}

impl LinearRegression {
    /// Zero-initialized model for `dim` features.
    pub fn new(dim: usize) -> LinearRegression {
        LinearRegression {
            w: vec![0.0; dim],
            b: 0.0,
        }
    }
}

impl Model for LinearRegression {
    fn param_count(&self) -> usize {
        self.w.len() + 1
    }

    fn params(&self) -> Vec<f32> {
        let mut p = self.w.clone();
        p.push(self.b);
        p
    }

    fn set_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "parameter length mismatch"
        );
        let (w, b) = params.split_at(self.w.len());
        self.w.copy_from_slice(w);
        self.b = b[0];
    }

    fn loss_and_grad(&self, x: &Matrix, y: &[f32]) -> (f32, Vec<f32>) {
        assert_eq!(x.rows(), y.len(), "feature/target count mismatch");
        let n = x.rows().max(1) as f32;
        let mut grad = vec![0.0f32; self.param_count()];
        let mut loss = 0.0f32;
        for (i, &target) in y.iter().enumerate() {
            let row = x.row(i);
            let err = dot(&self.w, row) + self.b - target;
            loss += err * err;
            axpy(&mut grad[..self.w.len()], 2.0 * err / n, row);
            grad[self.w.len()] += 2.0 * err / n;
        }
        (loss / n, grad)
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows())
            .map(|i| dot(&self.w, x.row(i)) + self.b)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Softmax (multinomial logistic) regression
// ---------------------------------------------------------------------------

/// Multinomial logistic regression with cross-entropy loss.
#[derive(Clone, Debug)]
pub struct LogisticRegression {
    dim: usize,
    classes: usize,
    /// Row-major `classes × dim` weight matrix followed by biases.
    w: Vec<f32>,
    b: Vec<f32>,
}

impl LogisticRegression {
    /// Zero-initialized model.
    ///
    /// # Panics
    ///
    /// Panics if `classes < 2`.
    pub fn new(dim: usize, classes: usize) -> LogisticRegression {
        assert!(classes >= 2, "need at least two classes");
        LogisticRegression {
            dim,
            classes,
            w: vec![0.0; classes * dim],
            b: vec![0.0; classes],
        }
    }

    fn logits(&self, row: &[f32]) -> Vec<f32> {
        (0..self.classes)
            .map(|c| dot(&self.w[c * self.dim..(c + 1) * self.dim], row) + self.b[c])
            .collect()
    }
}

impl Model for LogisticRegression {
    fn param_count(&self) -> usize {
        self.classes * self.dim + self.classes
    }

    fn params(&self) -> Vec<f32> {
        let mut p = self.w.clone();
        p.extend_from_slice(&self.b);
        p
    }

    fn set_params(&mut self, params: &[f32]) {
        assert_eq!(
            params.len(),
            self.param_count(),
            "parameter length mismatch"
        );
        let (w, b) = params.split_at(self.w.len());
        self.w.copy_from_slice(w);
        self.b.copy_from_slice(b);
    }

    fn loss_and_grad(&self, x: &Matrix, y: &[f32]) -> (f32, Vec<f32>) {
        assert_eq!(x.rows(), y.len(), "feature/target count mismatch");
        let n = x.rows().max(1) as f32;
        let mut grad = vec![0.0f32; self.param_count()];
        let mut loss = 0.0f32;
        let (gw, gb) = grad.split_at_mut(self.w.len());
        for (i, &label) in y.iter().enumerate() {
            let row = x.row(i);
            let mut probs = self.logits(row);
            softmax_in_place(&mut probs);
            let target = label as usize;
            loss -= probs[target].max(1e-12).ln();
            for c in 0..self.classes {
                let delta = probs[c] - if c == target { 1.0 } else { 0.0 };
                axpy(&mut gw[c * self.dim..(c + 1) * self.dim], delta / n, row);
                gb[c] += delta / n;
            }
        }
        (loss / n, grad)
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows())
            .map(|i| argmax(&self.logits(x.row(i))) as f32)
            .collect()
    }
}

// ---------------------------------------------------------------------------
// One-hidden-layer MLP
// ---------------------------------------------------------------------------

/// A one-hidden-layer perceptron: `softmax(W2 · tanh(W1 x + b1) + b2)`,
/// trained with cross-entropy via manual backprop.
#[derive(Clone, Debug)]
pub struct Mlp {
    dim: usize,
    hidden: usize,
    classes: usize,
    /// Flat parameters: `W1 (hidden×dim) | b1 | W2 (classes×hidden) | b2`.
    params: Vec<f32>,
}

impl Mlp {
    /// Creates an MLP with small random init (deterministic per seed).
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `classes < 2`.
    pub fn new(dim: usize, hidden: usize, classes: usize, seed: u64) -> Mlp {
        assert!(dim > 0 && hidden > 0, "dimensions must be positive");
        assert!(classes >= 2, "need at least two classes");
        let count = hidden * dim + hidden + classes * hidden + classes;
        let mut rng = StdRng::seed_from_u64(seed);
        let scale = (1.0 / dim as f32).sqrt();
        let params = (0..count).map(|_| rng.gen_range(-scale..scale)).collect();
        Mlp {
            dim,
            hidden,
            classes,
            params,
        }
    }

    /// Parameter count for a given architecture (handy for sizing
    /// partitions before constructing the model).
    pub fn param_count_for(dim: usize, hidden: usize, classes: usize) -> usize {
        hidden * dim + hidden + classes * hidden + classes
    }

    fn split(&self) -> (&[f32], &[f32], &[f32], &[f32]) {
        let w1 = self.hidden * self.dim;
        let b1 = w1 + self.hidden;
        let w2 = b1 + self.classes * self.hidden;
        (
            &self.params[..w1],
            &self.params[w1..b1],
            &self.params[b1..w2],
            &self.params[w2..],
        )
    }

    fn forward(&self, row: &[f32]) -> (Vec<f32>, Vec<f32>) {
        let (w1, b1, w2, b2) = self.split();
        let mut hidden = vec![0.0f32; self.hidden];
        for h in 0..self.hidden {
            hidden[h] = (dot(&w1[h * self.dim..(h + 1) * self.dim], row) + b1[h]).tanh();
        }
        let mut logits = vec![0.0f32; self.classes];
        for c in 0..self.classes {
            logits[c] = dot(&w2[c * self.hidden..(c + 1) * self.hidden], &hidden) + b2[c];
        }
        (hidden, logits)
    }
}

impl Model for Mlp {
    fn param_count(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> Vec<f32> {
        self.params.clone()
    }

    fn set_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        self.params.copy_from_slice(params);
    }

    fn loss_and_grad(&self, x: &Matrix, y: &[f32]) -> (f32, Vec<f32>) {
        assert_eq!(x.rows(), y.len(), "feature/target count mismatch");
        let n = x.rows().max(1) as f32;
        let w1_len = self.hidden * self.dim;
        let b1_len = self.hidden;
        let w2_len = self.classes * self.hidden;
        let mut grad = vec![0.0f32; self.params.len()];
        let mut loss = 0.0f32;
        let (_, _, w2, _) = self.split();
        let w2 = w2.to_vec();

        for (i, &label) in y.iter().enumerate() {
            let row = x.row(i);
            let (hidden, mut probs) = self.forward(row);
            softmax_in_place(&mut probs);
            let target = label as usize;
            loss -= probs[target].max(1e-12).ln();

            // Output layer deltas.
            let mut dlogits = probs;
            dlogits[target] -= 1.0;

            // Backprop into hidden activations.
            let mut dhidden = vec![0.0f32; self.hidden];
            for c in 0..self.classes {
                let dl = dlogits[c] / n;
                // dW2, db2
                axpy(
                    &mut grad[w1_len + b1_len + c * self.hidden
                        ..w1_len + b1_len + (c + 1) * self.hidden],
                    dl,
                    &hidden,
                );
                grad[w1_len + b1_len + w2_len + c] += dl;
                axpy(
                    &mut dhidden,
                    dlogits[c],
                    &w2[c * self.hidden..(c + 1) * self.hidden],
                );
            }
            // Through tanh: dpre = dhidden * (1 - h²).
            for h in 0..self.hidden {
                let dpre = dhidden[h] * (1.0 - hidden[h] * hidden[h]) / n;
                axpy(&mut grad[h * self.dim..(h + 1) * self.dim], dpre, row);
                grad[w1_len + h] += dpre;
            }
        }
        (loss / n, grad)
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        (0..x.rows())
            .map(|i| {
                let (_, logits) = self.forward(x.row(i));
                argmax(&logits) as f32
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Synthetic model (network experiments)
// ---------------------------------------------------------------------------

/// A model stub with a configurable parameter count and pseudo-random
/// "gradients".
///
/// The paper's delay experiments (Figs. 1–2) only care about *how many
/// bytes* move, not what the gradients contain; this stub lets the network
/// experiments use multi-megabyte parameter vectors without paying for real
/// training. Accuracy experiments use the real models above.
#[derive(Clone, Debug)]
pub struct SyntheticModel {
    params: Vec<f32>,
    seed: u64,
    step: u64,
}

impl SyntheticModel {
    /// Creates a stub with `count` parameters.
    pub fn new(count: usize, seed: u64) -> SyntheticModel {
        let mut rng = StdRng::seed_from_u64(seed);
        let params = (0..count).map(|_| rng.gen_range(-1.0..1.0)).collect();
        SyntheticModel {
            params,
            seed,
            step: 0,
        }
    }
}

impl Model for SyntheticModel {
    fn param_count(&self) -> usize {
        self.params.len()
    }

    fn params(&self) -> Vec<f32> {
        self.params.clone()
    }

    fn set_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.params.len(), "parameter length mismatch");
        self.params.copy_from_slice(params);
        self.step += 1;
    }

    fn loss_and_grad(&self, _x: &Matrix, _y: &[f32]) -> (f32, Vec<f32>) {
        // Deterministic pseudo-gradient that varies per step.
        let mut rng = StdRng::seed_from_u64(self.seed ^ self.step.wrapping_mul(0x9E3779B97F4A7C15));
        let grad = (0..self.params.len())
            .map(|_| rng.gen_range(-0.01..0.01))
            .collect();
        (1.0, grad)
    }

    fn predict(&self, x: &Matrix) -> Vec<f32> {
        vec![0.0; x.rows()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{make_blobs, make_regression};

    fn numeric_grad_check<M: Model + Clone>(model: &M, x: &Matrix, y: &[f32], indices: &[usize]) {
        let (_, grad) = model.loss_and_grad(x, y);
        let base = model.params();
        let eps = 1e-3f32;
        for &i in indices {
            let mut plus = base.clone();
            plus[i] += eps;
            let mut minus = base.clone();
            minus[i] -= eps;
            let mut m = model.clone();
            m.set_params(&plus);
            let (lp, _) = m.loss_and_grad(x, y);
            m.set_params(&minus);
            let (lm, _) = m.loss_and_grad(x, y);
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad[i]).abs() < 2e-2 * (1.0 + numeric.abs()),
                "param {i}: numeric {numeric} vs analytic {}",
                grad[i]
            );
        }
    }

    #[test]
    fn linear_regression_gradient_check() {
        let ds = make_regression(32, 3, 0.1, 1);
        let mut model = LinearRegression::new(3);
        model.set_params(&[0.5, -0.25, 0.1, 0.0]);
        numeric_grad_check(&model, &ds.x, &ds.y, &[0, 1, 2, 3]);
    }

    #[test]
    fn logistic_regression_gradient_check() {
        let ds = make_blobs(32, 3, 3, 0.5, 2);
        let mut model = LogisticRegression::new(3, 3);
        let p: Vec<f32> = (0..model.param_count())
            .map(|i| (i as f32 * 0.1).sin() * 0.2)
            .collect();
        model.set_params(&p);
        numeric_grad_check(&model, &ds.x, &ds.y, &[0, 4, 8, 9, 11]);
    }

    #[test]
    fn mlp_gradient_check() {
        let ds = make_blobs(16, 3, 2, 0.5, 3);
        let model = Mlp::new(3, 5, 2, 42);
        let indices = [0, 7, 14, 15, 20, 26, 30, 31];
        numeric_grad_check(&model, &ds.x, &ds.y, &indices);
    }

    #[test]
    fn param_round_trip_all_models() {
        let models: Vec<Box<dyn Model>> = vec![
            Box::new(LinearRegression::new(4)),
            Box::new(LogisticRegression::new(4, 3)),
            Box::new(Mlp::new(4, 6, 3, 1)),
            Box::new(SyntheticModel::new(10, 2)),
        ];
        for mut m in models {
            let p: Vec<f32> = (0..m.param_count()).map(|i| i as f32 * 0.01).collect();
            m.set_params(&p);
            assert_eq!(m.params(), p);
        }
    }

    #[test]
    fn mlp_param_count_formula() {
        let m = Mlp::new(7, 11, 4, 0);
        assert_eq!(m.param_count(), Mlp::param_count_for(7, 11, 4));
        assert_eq!(m.param_count(), 11 * 7 + 11 + 4 * 11 + 4);
    }

    #[test]
    fn gradient_descent_reduces_loss() {
        // A few full-batch steps must reduce training loss on every model.
        let cls = make_blobs(100, 4, 3, 0.4, 5);
        let reg = make_regression(100, 4, 0.05, 6);
        let mut models: Vec<(Box<dyn Model>, &Matrix, &Vec<f32>)> = vec![
            (Box::new(LinearRegression::new(4)), &reg.x, &reg.y),
            (Box::new(LogisticRegression::new(4, 3)), &cls.x, &cls.y),
            (Box::new(Mlp::new(4, 8, 3, 9)), &cls.x, &cls.y),
        ];
        for (model, x, y) in models.iter_mut() {
            let (initial, _) = model.loss_and_grad(x, y);
            for _ in 0..50 {
                let (_, grad) = model.loss_and_grad(x, y);
                let mut p = model.params();
                axpy(&mut p, -0.1, &grad);
                model.set_params(&p);
            }
            let (fin, _) = model.loss_and_grad(x, y);
            assert!(
                fin < initial * 0.8,
                "loss {initial} -> {fin} did not drop enough"
            );
        }
    }

    #[test]
    fn logistic_learns_separable_blobs() {
        let ds = make_blobs(300, 2, 2, 0.3, 7);
        let mut model = LogisticRegression::new(2, 2);
        for _ in 0..200 {
            let (_, grad) = model.loss_and_grad(&ds.x, &ds.y);
            let mut p = model.params();
            axpy(&mut p, -0.5, &grad);
            model.set_params(&p);
        }
        let preds = model.predict(&ds.x);
        let correct = preds.iter().zip(&ds.y).filter(|(p, y)| p == y).count();
        assert!(
            correct as f32 / 300.0 > 0.95,
            "accuracy {}",
            correct as f32 / 300.0
        );
    }

    #[test]
    fn synthetic_model_gradient_changes_per_step() {
        let mut m = SyntheticModel::new(8, 3);
        let (_, g1) = m.loss_and_grad(&Matrix::zeros(1, 1), &[0.0]);
        let p = m.params();
        m.set_params(&p); // advances the step counter
        let (_, g2) = m.loss_and_grad(&Matrix::zeros(1, 1), &[0.0]);
        assert_ne!(g1, g2);
        assert_eq!(g1.len(), 8);
    }
}
