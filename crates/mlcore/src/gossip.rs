//! Gossip averaging — the *purely decentralized* FL baseline.
//!
//! The paper's introduction contrasts its storage-mediated design with
//! purely decentralized schemes where "peers communicate directly with
//! others and perform the learning process via gossiping", noting they "may
//! not always achieve the same performance in model accuracy and
//! convergence as centralized FL". This module implements that baseline so
//! the comparison example can show the gap on non-IID data.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::Dataset;
use crate::model::Model;
use crate::train::{average_params, local_update, SgdConfig};

/// How peers are matched each gossip round.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum GossipTopology {
    /// Peers form a ring and average with both neighbours.
    Ring,
    /// Peers are paired uniformly at random each round.
    RandomPairs,
}

/// A gossip-learning driver: every peer keeps its own model, trains
/// locally, and averages parameters with neighbours — no aggregator at all.
pub struct Gossip<M: Model> {
    worker: M,
    peer_params: Vec<Vec<f32>>,
    datasets: Vec<Dataset>,
    cfg: SgdConfig,
    topology: GossipTopology,
}

impl<M: Model + Clone> Gossip<M> {
    /// Creates a driver with one peer per dataset, all starting from
    /// `model`'s parameters.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two datasets are supplied or any is empty.
    pub fn new(
        model: M,
        datasets: Vec<Dataset>,
        cfg: SgdConfig,
        topology: GossipTopology,
    ) -> Gossip<M> {
        assert!(datasets.len() >= 2, "gossip needs at least two peers");
        assert!(
            datasets.iter().all(|d| !d.is_empty()),
            "peers must have data"
        );
        let params = model.params();
        Gossip {
            worker: model,
            peer_params: vec![params; datasets.len()],
            datasets,
            cfg,
            topology,
        }
    }

    /// Number of peers.
    pub fn peers(&self) -> usize {
        self.peer_params.len()
    }

    /// The parameter vector held by peer `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn peer(&self, i: usize) -> &[f32] {
        &self.peer_params[i]
    }

    /// The average of all peers' parameters (the "consensus model" used for
    /// evaluation).
    pub fn consensus(&self) -> Vec<f32> {
        average_params(&self.peer_params)
    }

    /// Runs one round: local training at every peer, then neighbour
    /// averaging per the topology.
    pub fn run_round(&mut self, seed: u64) {
        let n = self.peers();
        // Local step.
        for i in 0..n {
            let start = self.peer_params[i].clone();
            self.peer_params[i] = local_update(
                &mut self.worker,
                &start,
                &self.datasets[i],
                &self.cfg,
                seed + i as u64,
            );
        }
        // Mixing step.
        match self.topology {
            GossipTopology::Ring => {
                let old = self.peer_params.clone();
                for i in 0..n {
                    let left = &old[(i + n - 1) % n];
                    let right = &old[(i + 1) % n];
                    self.peer_params[i] =
                        average_params(&[old[i].clone(), left.clone(), right.clone()]);
                }
            }
            GossipTopology::RandomPairs => {
                let mut order: Vec<usize> = (0..n).collect();
                let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A);
                order.shuffle(&mut rng);
                for pair in order.chunks(2) {
                    if let [a, b] = *pair {
                        let avg = average_params(&[
                            self.peer_params[a].clone(),
                            self.peer_params[b].clone(),
                        ]);
                        self.peer_params[a] = avg.clone();
                        self.peer_params[b] = avg;
                    }
                }
            }
        }
    }

    /// Runs `rounds` rounds.
    pub fn run(&mut self, rounds: usize, seed_base: u64) {
        for r in 0..rounds {
            self.run_round(seed_base + (r as u64) * 1000);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{make_blobs, partition_iid};
    use crate::metrics::accuracy;
    use crate::model::LogisticRegression;

    #[test]
    fn gossip_learns_on_iid_data() {
        let ds = make_blobs(300, 2, 2, 0.4, 21);
        let peers = partition_iid(&ds, 6, 0);
        let mut gossip = Gossip::new(
            LogisticRegression::new(2, 2),
            peers,
            SgdConfig {
                lr: 0.3,
                epochs: 2,
                ..SgdConfig::default()
            },
            GossipTopology::Ring,
        );
        gossip.run(15, 3);
        let mut model = LogisticRegression::new(2, 2);
        model.set_params(&gossip.consensus());
        let acc = accuracy(&model.predict(&ds.x), &ds.y);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn mixing_contracts_disagreement() {
        // After many rounds the ring must bring peers close together.
        let ds = make_blobs(200, 2, 2, 0.4, 22);
        let peers = partition_iid(&ds, 4, 1);
        let mut gossip = Gossip::new(
            LogisticRegression::new(2, 2),
            peers,
            SgdConfig {
                lr: 0.1,
                epochs: 1,
                ..SgdConfig::default()
            },
            GossipTopology::Ring,
        );
        gossip.run(20, 5);
        let consensus = gossip.consensus();
        for i in 0..gossip.peers() {
            let dist: f32 = gossip
                .peer(i)
                .iter()
                .zip(&consensus)
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt();
            assert!(dist < 1.0, "peer {i} is {dist} from consensus");
        }
    }

    #[test]
    fn random_pairs_topology_runs() {
        let ds = make_blobs(120, 2, 2, 0.4, 23);
        let peers = partition_iid(&ds, 5, 2); // odd count: one peer unpaired
        let mut gossip = Gossip::new(
            LogisticRegression::new(2, 2),
            peers,
            SgdConfig::default(),
            GossipTopology::RandomPairs,
        );
        gossip.run(3, 9);
        assert_eq!(gossip.peers(), 5);
    }

    #[test]
    #[should_panic(expected = "at least two peers")]
    fn single_peer_panics() {
        let ds = make_blobs(10, 2, 2, 0.4, 24);
        Gossip::new(
            LogisticRegression::new(2, 2),
            vec![ds],
            SgdConfig::default(),
            GossipTopology::Ring,
        );
    }
}
