//! Synthetic datasets and federated partitioning.
//!
//! The paper trains on edge-device data that never leaves the trainers; as a
//! stand-in we generate labelled synthetic datasets and split them across
//! trainers either IID or with Dirichlet label skew (the standard non-IID
//! federated benchmark protocol).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::linalg::Matrix;

/// A supervised dataset: feature matrix plus one target per row.
///
/// Classification targets are class indices stored as `f32`; regression
/// targets are real values.
#[derive(Clone, Debug)]
pub struct Dataset {
    /// Feature matrix, one row per example.
    pub x: Matrix,
    /// Targets, `y.len() == x.rows()`.
    pub y: Vec<f32>,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.y.len()
    }

    /// `true` when the dataset has no examples.
    pub fn is_empty(&self) -> bool {
        self.y.is_empty()
    }

    /// Feature dimensionality.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }

    /// The subset with the given row indices.
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            x: self.x.select_rows(indices),
            y: indices.iter().map(|&i| self.y[i]).collect(),
        }
    }
}

/// Samples from a standard normal via Box–Muller (keeps us off external
/// distribution crates).
fn normal(rng: &mut StdRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Gaussian-blob classification data: `classes` isotropic clusters in
/// `dim` dimensions, `n` points total, cluster centres on a scaled simplex.
pub fn make_blobs(n: usize, dim: usize, classes: usize, spread: f32, seed: u64) -> Dataset {
    assert!(classes >= 2, "need at least two classes");
    assert!(dim >= 1, "need at least one feature");
    let mut rng = StdRng::seed_from_u64(seed);
    // Random but well-separated centres: resample any centre that lands too
    // close to an earlier one (separation is what callers rely on — the
    // learning tests assume the classes are actually distinguishable), and
    // keep the best candidate if the box is too crowded to separate fully.
    let min_sep = (5.0 * spread).max(2.0);
    let mut centres: Vec<Vec<f32>> = Vec::with_capacity(classes);
    for _ in 0..classes {
        let mut best: Option<(f32, Vec<f32>)> = None;
        for _ in 0..64 {
            let cand: Vec<f32> = (0..dim).map(|_| rng.gen_range(-4.0..4.0)).collect();
            let sep = centres
                .iter()
                .map(|c| {
                    c.iter()
                        .zip(&cand)
                        .map(|(a, b)| (a - b) * (a - b))
                        .sum::<f32>()
                        .sqrt()
                })
                .fold(f32::INFINITY, f32::min);
            let better = best.as_ref().is_none_or(|(b, _)| sep > *b);
            if better {
                best = Some((sep, cand));
            }
            if sep >= min_sep {
                break;
            }
        }
        centres.push(best.expect("at least one candidate").1);
    }
    let mut x = Matrix::zeros(n, dim);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let class = i % classes;
        for (j, centre) in centres[class].iter().enumerate() {
            x.set(i, j, centre + spread * normal(&mut rng));
        }
        y.push(class as f32);
    }
    // Shuffle rows so partitions are not trivially ordered.
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let ds = Dataset { x, y };
    ds.subset(&order)
}

/// Linear-regression data `y = w·x + b + noise` with a hidden random `w`.
pub fn make_regression(n: usize, dim: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let w: Vec<f32> = (0..dim).map(|_| rng.gen_range(-2.0..2.0)).collect();
    let b: f32 = rng.gen_range(-1.0..1.0);
    let mut x = Matrix::zeros(n, dim);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let mut target = b;
        for (j, wj) in w.iter().enumerate() {
            let v = normal(&mut rng);
            x.set(i, j, v);
            target += wj * v;
        }
        y.push(target + noise * normal(&mut rng));
    }
    Dataset { x, y }
}

/// Seven-segment digit patterns: which of the segments
/// (top, top-left, top-right, middle, bottom-left, bottom-right, bottom)
/// are lit for each digit 0-9.
const SEGMENTS: [[f32; 7]; 10] = [
    [1.0, 1.0, 1.0, 0.0, 1.0, 1.0, 1.0], // 0
    [0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0], // 1
    [1.0, 0.0, 1.0, 1.0, 1.0, 0.0, 1.0], // 2
    [1.0, 0.0, 1.0, 1.0, 0.0, 1.0, 1.0], // 3
    [0.0, 1.0, 1.0, 1.0, 0.0, 1.0, 0.0], // 4
    [1.0, 1.0, 0.0, 1.0, 0.0, 1.0, 1.0], // 5
    [1.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0], // 6
    [1.0, 0.0, 1.0, 0.0, 0.0, 1.0, 0.0], // 7
    [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0], // 8
    [1.0, 1.0, 1.0, 1.0, 0.0, 1.0, 1.0], // 9
];

/// A digits-like classification dataset: noisy seven-segment renderings of
/// the digits 0–9 (7 features, 10 classes). Harder than blobs — classes
/// share segments — but still learnable by a small MLP; the non-trivial
/// workload for the end-to-end examples.
pub fn make_digits(n: usize, noise: f32, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut x = Matrix::zeros(n, 7);
    let mut y = Vec::with_capacity(n);
    for i in 0..n {
        let digit = i % 10;
        for (j, &segment) in SEGMENTS[digit].iter().enumerate() {
            // Lit segments glow around 1, unlit around 0, with sensor noise
            // and occasional dropouts/ghosts.
            let mut v = segment + noise * normal(&mut rng);
            if rng.gen_range(0.0..1.0) < 0.02 {
                v = 1.0 - v; // flipped segment
            }
            x.set(i, j, v);
        }
        y.push(digit as f32);
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let ds = Dataset { x, y };
    ds.subset(&order)
}

/// Splits `dataset` into `parts` IID shards of (near-)equal size.
///
/// # Panics
///
/// Panics if `parts` is zero or exceeds the number of examples.
pub fn partition_iid(dataset: &Dataset, parts: usize, seed: u64) -> Vec<Dataset> {
    assert!(parts > 0 && parts <= dataset.len(), "invalid part count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    order.shuffle(&mut rng);
    (0..parts)
        .map(|p| {
            let indices: Vec<usize> = order.iter().skip(p).step_by(parts).copied().collect();
            dataset.subset(&indices)
        })
        .collect()
}

/// Splits a classification dataset non-IID with Dirichlet(`alpha`) label
/// skew: each class's examples are divided across parts with proportions
/// drawn from a Dirichlet distribution. Small `alpha` → heavy skew.
///
/// # Panics
///
/// Panics if `parts` is zero or `alpha` is not positive.
pub fn partition_dirichlet(dataset: &Dataset, parts: usize, alpha: f64, seed: u64) -> Vec<Dataset> {
    assert!(parts > 0, "invalid part count");
    assert!(alpha > 0.0, "alpha must be positive");
    let mut rng = StdRng::seed_from_u64(seed);
    let classes = dataset
        .y
        .iter()
        .map(|&y| y as usize)
        .max()
        .map_or(1, |m| m + 1);
    let mut part_indices: Vec<Vec<usize>> = vec![Vec::new(); parts];
    for class in 0..classes {
        let members: Vec<usize> = (0..dataset.len())
            .filter(|&i| dataset.y[i] as usize == class)
            .collect();
        let weights = dirichlet(&mut rng, alpha, parts);
        // Cumulative assignment of this class's members by the weights.
        let mut cursor = 0usize;
        for (p, w) in weights.iter().enumerate() {
            let take = if p == parts - 1 {
                members.len() - cursor
            } else {
                ((members.len() as f64 * w).round() as usize).min(members.len() - cursor)
            };
            part_indices[p].extend(&members[cursor..cursor + take]);
            cursor += take;
        }
    }
    part_indices
        .into_iter()
        .map(|idx| dataset.subset(&idx))
        .collect()
}

/// Draws Dirichlet(`alpha`) proportions via normalized Gamma samples
/// (Marsaglia–Tsang for alpha >= 1, boost trick below 1).
fn dirichlet(rng: &mut StdRng, alpha: f64, k: usize) -> Vec<f64> {
    let samples: Vec<f64> = (0..k).map(|_| gamma_sample(rng, alpha)).collect();
    let total: f64 = samples.iter().sum();
    if total <= 0.0 {
        return vec![1.0 / k as f64; k];
    }
    samples.into_iter().map(|s| s / total).collect()
}

fn gamma_sample(rng: &mut StdRng, alpha: f64) -> f64 {
    if alpha < 1.0 {
        // Boost: Gamma(a) = Gamma(a+1) * U^(1/a).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma_sample(rng, alpha + 1.0) * u.powf(1.0 / alpha);
    }
    // Marsaglia–Tsang squeeze method.
    let d = alpha - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
        };
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
            return d * v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn blobs_shape_and_labels() {
        let ds = make_blobs(100, 4, 3, 0.5, 1);
        assert_eq!(ds.len(), 100);
        assert_eq!(ds.dim(), 4);
        let labels: HashSet<u32> = ds.y.iter().map(|&y| y as u32).collect();
        assert_eq!(labels, HashSet::from([0, 1, 2]));
    }

    #[test]
    fn blobs_deterministic_per_seed() {
        let a = make_blobs(50, 3, 2, 0.5, 7);
        let b = make_blobs(50, 3, 2, 0.5, 7);
        assert_eq!(a.x.as_slice(), b.x.as_slice());
        assert_eq!(a.y, b.y);
        let c = make_blobs(50, 3, 2, 0.5, 8);
        assert_ne!(a.x.as_slice(), c.x.as_slice());
    }

    #[test]
    fn regression_correlates_with_features() {
        let ds = make_regression(200, 3, 0.0, 2);
        assert_eq!(ds.len(), 200);
        // Noise-free targets vary with inputs.
        assert!(ds.y.iter().any(|&y| y != ds.y[0]));
    }

    #[test]
    fn iid_partition_covers_everything_once() {
        let ds = make_blobs(100, 2, 2, 0.5, 3);
        let parts = partition_iid(&ds, 7, 0);
        let total: usize = parts.iter().map(Dataset::len).sum();
        assert_eq!(total, 100);
        for p in &parts {
            assert!(p.len() >= 100 / 7);
        }
    }

    #[test]
    fn dirichlet_partition_covers_everything() {
        let ds = make_blobs(300, 2, 3, 0.5, 4);
        let parts = partition_dirichlet(&ds, 5, 0.3, 0);
        let total: usize = parts.iter().map(Dataset::len).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn small_alpha_skews_labels() {
        let ds = make_blobs(600, 2, 3, 0.5, 5);
        let skewed = partition_dirichlet(&ds, 6, 0.05, 1);
        // With alpha = 0.05 most parts should be dominated by one class.
        let mut dominated = 0;
        for p in &skewed {
            if p.is_empty() {
                continue;
            }
            let mut counts = [0usize; 3];
            for &y in &p.y {
                counts[y as usize] += 1;
            }
            let max = *counts.iter().max().unwrap();
            if max as f64 / p.len() as f64 > 0.8 {
                dominated += 1;
            }
        }
        assert!(
            dominated >= 3,
            "expected heavy skew, got {dominated} dominated parts"
        );
    }

    #[test]
    fn digits_shape_and_learnability_prereqs() {
        let ds = make_digits(500, 0.1, 9);
        assert_eq!(ds.len(), 500);
        assert_eq!(ds.dim(), 7);
        let labels: HashSet<u32> = ds.y.iter().map(|&y| y as u32).collect();
        assert_eq!(labels.len(), 10, "all ten digits present");
        // Noise-free class means must match the segment patterns.
        let clean = make_digits(1000, 0.0, 10);
        for (digit, segments) in SEGMENTS.iter().enumerate() {
            let rows: Vec<usize> = (0..clean.len())
                .filter(|&i| clean.y[i] as usize == digit)
                .collect();
            let first = clean.x.row(rows[0]);
            for &j in &[0usize, 3, 6] {
                let expect = segments[j];
                // Most samples keep the clean value (2% flip chance).
                let agreeing = rows
                    .iter()
                    .filter(|&&r| (clean.x.get(r, j) - expect).abs() < 0.5)
                    .count();
                assert!(agreeing * 10 > rows.len() * 9, "digit {digit} segment {j}");
            }
            let _ = first;
        }
    }

    #[test]
    fn digits_deterministic() {
        let a = make_digits(100, 0.2, 5);
        let b = make_digits(100, 0.2, 5);
        assert_eq!(a.x.as_slice(), b.x.as_slice());
    }

    #[test]
    fn subset_preserves_rows() {
        let ds = make_regression(10, 2, 0.1, 6);
        let sub = ds.subset(&[3, 7]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.x.row(0), ds.x.row(3));
        assert_eq!(sub.y[1], ds.y[7]);
    }
}
