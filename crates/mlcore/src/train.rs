//! Local training: the computation each IPLS trainer runs per round
//! (`train(M)` in Algorithm 1 of the paper).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::data::Dataset;
use crate::linalg::axpy;
use crate::model::Model;

/// Hyper-parameters of one local training pass.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Mini-batch size (clamped to the dataset size).
    pub batch_size: usize,
    /// Number of passes over the local data per round.
    pub epochs: usize,
    /// Gradient-norm clip; `None` disables clipping.
    pub clip: Option<f32>,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.1,
            batch_size: 32,
            epochs: 1,
            clip: None,
        }
    }
}

/// Runs local SGD starting from `start_params` and returns the locally
/// updated parameter vector — the "gradient update" a trainer uploads
/// (FedAvg-style local update, which is what Algorithm 1 averages).
///
/// Deterministic given `seed`.
///
/// # Panics
///
/// Panics if `dataset` is empty or `start_params` has the wrong length.
pub fn local_update<M: Model>(
    model: &mut M,
    start_params: &[f32],
    dataset: &Dataset,
    cfg: &SgdConfig,
    seed: u64,
) -> Vec<f32> {
    assert!(!dataset.is_empty(), "cannot train on an empty dataset");
    model.set_params(start_params);
    let mut rng = StdRng::seed_from_u64(seed);
    let batch = cfg.batch_size.max(1).min(dataset.len());
    let mut order: Vec<usize> = (0..dataset.len()).collect();

    for _ in 0..cfg.epochs {
        order.shuffle(&mut rng);
        for chunk in order.chunks(batch) {
            let sub = dataset.subset(chunk);
            let (_, mut grad) = model.loss_and_grad(&sub.x, &sub.y);
            if let Some(clip) = cfg.clip {
                clip_gradient(&mut grad, clip);
            }
            let mut params = model.params();
            axpy(&mut params, -cfg.lr, &grad);
            model.set_params(&params);
        }
    }
    model.params()
}

/// Scales `grad` down so its L2 norm is at most `max_norm`.
pub fn clip_gradient(grad: &mut [f32], max_norm: f32) {
    let norm: f32 = grad.iter().map(|g| g * g).sum::<f32>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in grad.iter_mut() {
            *g *= scale;
        }
    }
}

/// Averages parameter vectors element-wise — what the aggregation of
/// Algorithm 1 computes once trainers divide by the appended counter.
///
/// # Panics
///
/// Panics if `updates` is empty or lengths differ.
pub fn average_params(updates: &[Vec<f32>]) -> Vec<f32> {
    assert!(!updates.is_empty(), "no updates to average");
    let len = updates[0].len();
    let mut acc = vec![0.0f32; len];
    for u in updates {
        assert_eq!(u.len(), len, "update length mismatch");
        axpy(&mut acc, 1.0, u);
    }
    let scale = 1.0 / updates.len() as f32;
    for a in acc.iter_mut() {
        *a *= scale;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::make_blobs;
    use crate::model::LogisticRegression;

    #[test]
    fn local_update_is_deterministic() {
        let ds = make_blobs(64, 3, 2, 0.4, 1);
        let mut model = LogisticRegression::new(3, 2);
        let start = model.params();
        let cfg = SgdConfig {
            epochs: 2,
            ..SgdConfig::default()
        };
        let a = local_update(&mut model, &start, &ds, &cfg, 42);
        let b = local_update(&mut model, &start, &ds, &cfg, 42);
        assert_eq!(a, b);
        let c = local_update(&mut model, &start, &ds, &cfg, 43);
        assert_ne!(a, c, "different seed shuffles differently");
    }

    #[test]
    fn local_update_reduces_loss() {
        let ds = make_blobs(128, 3, 2, 0.4, 2);
        let mut model = LogisticRegression::new(3, 2);
        let start = model.params();
        let (loss_before, _) = model.loss_and_grad(&ds.x, &ds.y);
        let updated = local_update(
            &mut model,
            &start,
            &ds,
            &SgdConfig {
                lr: 0.3,
                epochs: 5,
                ..SgdConfig::default()
            },
            1,
        );
        model.set_params(&updated);
        let (loss_after, _) = model.loss_and_grad(&ds.x, &ds.y);
        assert!(loss_after < loss_before, "{loss_before} -> {loss_after}");
    }

    #[test]
    fn clip_bounds_norm() {
        let mut g = vec![3.0, 4.0]; // norm 5
        clip_gradient(&mut g, 1.0);
        let norm: f32 = g.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-6);
        // Under the bound: untouched.
        let mut small = vec![0.1, 0.1];
        clip_gradient(&mut small, 1.0);
        assert_eq!(small, vec![0.1, 0.1]);
    }

    #[test]
    fn average_params_is_mean() {
        let avg = average_params(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        assert_eq!(avg, vec![2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "no updates")]
    fn average_empty_panics() {
        average_params(&[]);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn train_empty_dataset_panics() {
        let ds = Dataset {
            x: crate::linalg::Matrix::zeros(0, 2),
            y: vec![],
        };
        let mut model = LogisticRegression::new(2, 2);
        let start = model.params();
        local_update(&mut model, &start, &ds, &SgdConfig::default(), 0);
    }
}
