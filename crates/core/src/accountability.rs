//! Byzantine accountability: transferable proofs of aggregator
//! misbehavior.
//!
//! Verifiable aggregation (§IV) *detects* a dropped or altered gradient —
//! the offending blob fails its accumulated Pedersen commitment — but
//! detection alone only protects the detector. This module turns a
//! detection into a **self-contained, Schnorr-signed [`Misbehavior`]
//! record** that any party can re-check offline, in the style of
//! accountability systems (PeerReview): because the offender *signed* the
//! announcement binding its identity to the blob's CID, and the blob
//! provably fails the commitment that an honest partial would open, the
//! record is a transferable proof. No voting is needed — peers blacklist
//! and the directory evicts on independently re-verified evidence.
//!
//! Two kinds of evidence exist:
//!
//! * [`MisbehaviorKind::BadPartial`] — a partition peer's partial update
//!   failed commitment verification against the signed announcement's
//!   claimed contributor set. Detected by peer aggregators during sync.
//! * [`MisbehaviorKind::BadUpdate`] — a registered global update failed
//!   commitment verification. Detected by the directory.
//!
//! Signing keys are derived deterministically from the task seed (like
//! trainer registration keys) under a separate domain; a deployment would
//! distribute real keys at enrollment.

use dfl_crypto::schnorr::{Signature, SigningKey, VerifyingKey};
use dfl_ipfs::Cid;

use crate::gradient::{verify_blob, ProtocolCommitment, ProtocolCurve, ProtocolKey};
use crate::messages::{announce_message, update_message, SignatureBytes};

/// Pub/sub topic misbehavior evidence is gossiped on.
pub const EVIDENCE_TOPIC: &str = "ipls/evidence";

/// Sentinel detector id for evidence issued by the directory service.
pub const DIRECTORY_DETECTOR: u64 = u64::MAX;

/// Derives the Schnorr signing key of aggregator `g` (global index).
///
/// Uses a domain-separated seed so aggregator identities can never
/// collide with trainer registration keys derived from the raw task seed.
pub fn agg_signing_key(task_seed: u64, g: usize) -> SigningKey<ProtocolCurve> {
    SigningKey::derive(&agg_domain(task_seed), g as u64)
}

/// Public key counterpart of [`agg_signing_key`].
pub fn agg_verifying_key(task_seed: u64, g: usize) -> VerifyingKey<ProtocolCurve> {
    agg_signing_key(task_seed, g).verifying_key()
}

/// Derives the directory's Schnorr signing key (it signs `BadUpdate`
/// evidence as detector [`DIRECTORY_DETECTOR`]).
pub fn directory_signing_key(task_seed: u64) -> SigningKey<ProtocolCurve> {
    SigningKey::derive(&agg_domain(task_seed), DIRECTORY_DETECTOR)
}

fn agg_domain(task_seed: u64) -> Vec<u8> {
    let mut seed = b"ipls-aggregator-identity".to_vec();
    seed.extend_from_slice(&task_seed.to_be_bytes());
    seed
}

/// What the offender provably did.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum MisbehaviorKind {
    /// A partial update, announced over pub/sub under the offender's
    /// signature, does not open the accumulated commitment of its claimed
    /// contributor set.
    BadPartial,
    /// A global update, registered at the directory under the offender's
    /// signature, does not open the partition's accumulated commitment.
    BadUpdate,
}

/// A self-contained, transferable proof that an aggregator published a
/// partial or global update inconsistent with its trainers' registered
/// commitments.
///
/// The record embeds the offending blob itself, so re-verification needs
/// no storage round-trip: a verifier recomputes the signed message from
/// the semantic fields, checks both signatures, checks the blob hashes to
/// the signed CID, independently derives the expected accumulated
/// commitment, and confirms the blob fails it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Misbehavior {
    /// Which protocol step the evidence covers.
    pub kind: MisbehaviorKind,
    /// Partition the offender aggregates.
    pub partition: usize,
    /// Offender's slot `j` within the partition's aggregator set.
    pub agg_j: usize,
    /// Round number.
    pub iter: u64,
    /// CID of the offending blob (bound by the offender's signature).
    pub cid: Cid,
    /// Claimed contributor set. For `BadPartial`: ranks within the slot's
    /// trainer set `T_ij`. For `BadUpdate`: global trainer indices, empty
    /// meaning the full partition membership.
    pub contributors: Vec<u32>,
    /// Serialized accumulated commitment the blob was checked against.
    pub accumulator: [u8; 33],
    /// The offending blob itself.
    pub blob: Vec<u8>,
    /// The offender's signature over its announcement / registration.
    pub offender_sig: SignatureBytes,
    /// Who detected it: an aggregator's global index, or
    /// [`DIRECTORY_DETECTOR`].
    pub detector: u64,
    /// Detector's signature over the rest of the record.
    pub detector_sig: SignatureBytes,
}

impl Misbehavior {
    /// Global aggregator index of the offender, given the partition's
    /// aggregator-set size.
    pub fn offender(&self, aggregators_per_partition: usize) -> usize {
        self.partition * aggregators_per_partition + self.agg_j
    }

    /// The canonical byte string the *offender's* signature must cover.
    pub fn offender_message(&self, aggregators_per_partition: usize) -> Vec<u8> {
        match self.kind {
            MisbehaviorKind::BadPartial => {
                let ranks: Vec<u16> = self.contributors.iter().map(|&r| r as u16).collect();
                announce_message(self.partition, self.agg_j, self.iter, &self.cid, &ranks)
            }
            MisbehaviorKind::BadUpdate => {
                let contributors = if self.contributors.is_empty() {
                    None
                } else {
                    Some(self.contributors.clone())
                };
                update_message(
                    self.offender(aggregators_per_partition),
                    self.partition,
                    self.iter,
                    &self.cid,
                    &contributors,
                )
            }
        }
    }

    /// The byte string the *detector* signs: the whole record minus the
    /// detector signature itself.
    pub fn detector_message(&self) -> Vec<u8> {
        let mut bytes = self.encode();
        bytes.truncate(bytes.len() - 65);
        bytes
    }

    /// Signs the record as `detector`, filling `detector_sig`.
    pub fn sign_as_detector(&mut self, detector: u64, key: &SigningKey<ProtocolCurve>) {
        self.detector = detector;
        self.detector_sig = key.sign(&self.detector_message()).to_bytes();
    }

    /// Fully re-checks the evidence against an independently derived
    /// expected accumulated commitment.
    ///
    /// Valid evidence requires *all* of:
    /// 1. the offender's signature covers (partition, slot, round, CID,
    ///    contributors) under the offender's identity key;
    /// 2. the detector's signature covers the record;
    /// 3. the embedded blob hashes to the signed CID — or, under chunked
    ///    storage (`chunk_size = Some(..)`), re-chunking the blob with the
    ///    task's chunk size reproduces the manifest whose CID was signed
    ///    (the chunker is deterministic, so the blob still binds to the
    ///    signed CID);
    /// 4. the record's accumulator equals the verifier's independently
    ///    computed `expected` commitment for the claimed contributor set;
    /// 5. the blob **fails** commitment verification against it.
    ///
    /// A forged accusation against an honest aggregator fails at (5): the
    /// honest blob opens the commitment. A doctored blob fails at (3); a
    /// doctored accusation fails at (1) or (2).
    pub fn verify(
        &self,
        key: &ProtocolKey,
        task_seed: u64,
        aggregators_per_partition: usize,
        expected: &ProtocolCommitment,
        chunk_size: Option<usize>,
    ) -> bool {
        let Some(offender_sig) = Signature::from_bytes(&self.offender_sig) else {
            return false;
        };
        let offender_vk = agg_verifying_key(task_seed, self.offender(aggregators_per_partition));
        if !offender_vk.verify(
            &self.offender_message(aggregators_per_partition),
            &offender_sig,
        ) {
            return false;
        }
        let Some(detector_sig) = Signature::from_bytes(&self.detector_sig) else {
            return false;
        };
        let detector_vk = if self.detector == DIRECTORY_DETECTOR {
            directory_signing_key(task_seed).verifying_key()
        } else {
            agg_verifying_key(task_seed, self.detector as usize)
        };
        if !detector_vk.verify(&self.detector_message(), &detector_sig) {
            return false;
        }
        let cid_bound = match chunk_size {
            None => Cid::of(&self.blob) == self.cid,
            Some(size) => {
                let (manifest, _) = dfl_ipfs::chunker::split(&self.blob, size);
                Cid::of(&manifest.encode()) == self.cid
            }
        };
        if !cid_bound {
            return false;
        }
        if expected.to_bytes() != self.accumulator {
            return false;
        }
        !verify_blob(key, &self.blob, expected)
    }

    /// Serializes the record for gossip and directory reports.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(220 + 4 * self.contributors.len() + self.blob.len());
        out.push(match self.kind {
            MisbehaviorKind::BadPartial => 0,
            MisbehaviorKind::BadUpdate => 1,
        });
        out.extend_from_slice(&(self.partition as u64).to_le_bytes());
        out.extend_from_slice(&(self.agg_j as u64).to_le_bytes());
        out.extend_from_slice(&self.iter.to_le_bytes());
        out.extend_from_slice(self.cid.as_bytes());
        out.extend_from_slice(&(self.contributors.len() as u32).to_le_bytes());
        for c in &self.contributors {
            out.extend_from_slice(&c.to_le_bytes());
        }
        out.extend_from_slice(&self.accumulator);
        out.extend_from_slice(&(self.blob.len() as u64).to_le_bytes());
        out.extend_from_slice(&self.blob);
        out.extend_from_slice(&self.offender_sig);
        out.extend_from_slice(&self.detector.to_le_bytes());
        out.extend_from_slice(&self.detector_sig);
        out
    }

    /// Parses a serialized record; `None` when malformed.
    pub fn decode(bytes: &[u8]) -> Option<Misbehavior> {
        let mut at = 0usize;
        let take = |at: &mut usize, n: usize| -> Option<&[u8]> {
            let slice = bytes.get(*at..*at + n)?;
            *at += n;
            Some(slice)
        };
        let u64_of = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8 bytes"));

        let kind = match take(&mut at, 1)?[0] {
            0 => MisbehaviorKind::BadPartial,
            1 => MisbehaviorKind::BadUpdate,
            _ => return None,
        };
        let partition = u64_of(take(&mut at, 8)?) as usize;
        let agg_j = u64_of(take(&mut at, 8)?) as usize;
        let iter = u64_of(take(&mut at, 8)?);
        let cid = Cid::from_bytes(take(&mut at, 32)?.try_into().expect("32 bytes"));
        let count = u32::from_le_bytes(take(&mut at, 4)?.try_into().expect("4 bytes")) as usize;
        // Contributor count is bounded by the remaining payload; reject
        // absurd counts before allocating.
        if count > bytes.len() / 4 {
            return None;
        }
        let mut contributors = Vec::with_capacity(count);
        for _ in 0..count {
            contributors.push(u32::from_le_bytes(
                take(&mut at, 4)?.try_into().expect("4 bytes"),
            ));
        }
        let accumulator: [u8; 33] = take(&mut at, 33)?.try_into().expect("33 bytes");
        let blob_len = u64_of(take(&mut at, 8)?) as usize;
        if blob_len > bytes.len() {
            return None;
        }
        let blob = take(&mut at, blob_len)?.to_vec();
        let offender_sig: SignatureBytes = take(&mut at, 65)?.try_into().expect("65 bytes");
        let detector = u64_of(take(&mut at, 8)?);
        let detector_sig: SignatureBytes = take(&mut at, 65)?.try_into().expect("65 bytes");
        if at != bytes.len() {
            return None;
        }
        Some(Misbehavior {
            kind,
            partition,
            agg_j,
            iter,
            cid,
            contributors,
            accumulator,
            blob,
            offender_sig,
            detector,
            detector_sig,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradient::{build_blob, commit_blob, derive_key};

    const SEED: u64 = 7;
    const SLOTS: usize = 2;

    /// Builds valid evidence: offender (partition 1, slot 1 → global 3)
    /// signed an announce for a blob that does not open the honest
    /// commitment.
    fn valid_evidence() -> (Misbehavior, ProtocolKey, ProtocolCommitment) {
        let key = derive_key(8, SEED, false);
        let honest = build_blob(&[0.5f32; 8]);
        let expected = commit_blob(&key, &honest).unwrap();
        let altered = build_blob(&[0.75f32; 8]);
        let cid = Cid::of(&altered);
        let ranks: Vec<u16> = vec![0, 1];
        let msg = announce_message(1, 1, 4, &cid, &ranks);
        let offender_sig = agg_signing_key(SEED, 3).sign(&msg).to_bytes();
        let mut record = Misbehavior {
            kind: MisbehaviorKind::BadPartial,
            partition: 1,
            agg_j: 1,
            iter: 4,
            cid,
            contributors: vec![0, 1],
            accumulator: expected.to_bytes(),
            blob: altered,
            offender_sig,
            detector: 0,
            detector_sig: [0u8; 65],
        };
        record.sign_as_detector(2, &agg_signing_key(SEED, 2));
        (record, key, expected)
    }

    #[test]
    fn encode_decode_round_trips() {
        let (record, _, _) = valid_evidence();
        let decoded = Misbehavior::decode(&record.encode()).unwrap();
        assert_eq!(decoded, record);
        assert_eq!(Misbehavior::decode(b"garbage"), None);
        let mut truncated = record.encode();
        truncated.pop();
        assert_eq!(Misbehavior::decode(&truncated), None);
        let mut extended = record.encode();
        extended.push(0);
        assert_eq!(Misbehavior::decode(&extended), None);
    }

    #[test]
    fn valid_evidence_verifies() {
        let (record, key, expected) = valid_evidence();
        assert!(record.verify(&key, SEED, SLOTS, &expected, None));
    }

    #[test]
    fn honest_blob_cannot_be_framed() {
        // An "accusation" whose blob actually opens the commitment is
        // rejected: detection condition (5).
        let key = derive_key(8, SEED, false);
        let honest = build_blob(&[0.5f32; 8]);
        let expected = commit_blob(&key, &honest).unwrap();
        let cid = Cid::of(&honest);
        let msg = announce_message(1, 1, 4, &cid, &[0, 1]);
        let mut record = Misbehavior {
            kind: MisbehaviorKind::BadPartial,
            partition: 1,
            agg_j: 1,
            iter: 4,
            cid,
            contributors: vec![0, 1],
            accumulator: expected.to_bytes(),
            blob: honest,
            offender_sig: agg_signing_key(SEED, 3).sign(&msg).to_bytes(),
            detector: 0,
            detector_sig: [0u8; 65],
        };
        record.sign_as_detector(2, &agg_signing_key(SEED, 2));
        assert!(!record.verify(&key, SEED, SLOTS, &expected, None));
    }

    #[test]
    fn tampered_evidence_is_rejected() {
        let (record, key, expected) = valid_evidence();

        // Substituted blob no longer hashes to the signed CID.
        let mut doctored = record.clone();
        doctored.blob = build_blob(&[0.1f32; 8]);
        doctored.sign_as_detector(2, &agg_signing_key(SEED, 2));
        assert!(!doctored.verify(&key, SEED, SLOTS, &expected, None));

        // Re-attributed offender invalidates the offender signature.
        let mut doctored = record.clone();
        doctored.agg_j = 0;
        doctored.sign_as_detector(2, &agg_signing_key(SEED, 2));
        assert!(!doctored.verify(&key, SEED, SLOTS, &expected, None));

        // Detector signature must cover the record.
        let mut doctored = record.clone();
        doctored.iter = 5;
        assert!(!doctored.verify(&key, SEED, SLOTS, &expected, None));

        // Wrong expected accumulator (verifier view mismatch).
        let other = commit_blob(&key, &build_blob(&[0.9f32; 8])).unwrap();
        assert!(!record.verify(&key, SEED, SLOTS, &other, None));
    }

    #[test]
    fn bad_update_evidence_binds_global_index() {
        let key = derive_key(8, SEED, false);
        let honest = build_blob(&[0.5f32; 8]);
        let expected = commit_blob(&key, &honest).unwrap();
        let altered = build_blob(&[0.25f32; 8]);
        let cid = Cid::of(&altered);
        // Offender: partition 1, slot 1 → global index 3 (SLOTS = 2).
        let msg = update_message(3, 1, 2, &cid, &None);
        let mut record = Misbehavior {
            kind: MisbehaviorKind::BadUpdate,
            partition: 1,
            agg_j: 1,
            iter: 2,
            cid,
            contributors: Vec::new(),
            accumulator: expected.to_bytes(),
            blob: altered,
            offender_sig: agg_signing_key(SEED, 3).sign(&msg).to_bytes(),
            detector: 0,
            detector_sig: [0u8; 65],
        };
        record.sign_as_detector(DIRECTORY_DETECTOR, &directory_signing_key(SEED));
        assert!(record.verify(&key, SEED, SLOTS, &expected, None));
        // The same record under a different aggregator-set size points at
        // a different offender (1·3 + 1 = 4, not 3) and must fail.
        assert!(!record.verify(&key, SEED, 3, &expected, None));
    }

    /// Chunked storage: the offender signs the *manifest* CID (that is
    /// what storage acks and what announces carry), while the evidence
    /// embeds the reassembled blob. Verification must re-chunk the blob to
    /// re-derive the signed CID — and must still reject a substituted
    /// blob, whose manifest hashes differently.
    #[test]
    fn chunked_evidence_binds_blob_through_manifest() {
        let chunk_size = 64;
        let key = derive_key(8, SEED, false);
        let honest = build_blob(&[0.5f32; 8]);
        let expected = commit_blob(&key, &honest).unwrap();
        let altered = build_blob(&[0.75f32; 8]);
        let (manifest, _) = dfl_ipfs::chunker::split(&altered, chunk_size);
        let cid = Cid::of(&manifest.encode());
        let msg = announce_message(1, 1, 4, &cid, &[0, 1]);
        let mut record = Misbehavior {
            kind: MisbehaviorKind::BadPartial,
            partition: 1,
            agg_j: 1,
            iter: 4,
            cid,
            contributors: vec![0, 1],
            accumulator: expected.to_bytes(),
            blob: altered,
            offender_sig: agg_signing_key(SEED, 3).sign(&msg).to_bytes(),
            detector: 0,
            detector_sig: [0u8; 65],
        };
        record.sign_as_detector(2, &agg_signing_key(SEED, 2));
        assert!(record.verify(&key, SEED, SLOTS, &expected, Some(chunk_size)));
        // Without the chunk size the raw-blob hash check fails: the signed
        // CID addresses the manifest, not the blob.
        assert!(!record.verify(&key, SEED, SLOTS, &expected, None));
        // A substituted blob re-chunks to a different manifest.
        let mut doctored = record.clone();
        doctored.blob = build_blob(&[0.1f32; 8]);
        doctored.sign_as_detector(2, &agg_signing_key(SEED, 2));
        assert!(!doctored.verify(&key, SEED, SLOTS, &expected, Some(chunk_size)));
    }

    #[test]
    fn identity_keys_are_domain_separated() {
        // Aggregator 0's identity key differs from trainer 0's
        // registration key derived from the raw task seed.
        let trainer_key: SigningKey<ProtocolCurve> = SigningKey::derive(&SEED.to_be_bytes(), 0);
        let agg_key = agg_signing_key(SEED, 0);
        assert_ne!(
            trainer_key.verifying_key().to_bytes(),
            agg_key.verifying_key().to_bytes()
        );
        assert_ne!(
            agg_signing_key(SEED, 0).verifying_key().to_bytes(),
            agg_signing_key(SEED, 1).verifying_key().to_bytes()
        );
    }
}
