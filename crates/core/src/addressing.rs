//! Addressing metadata for the directory service (§III-C of the paper).
//!
//! Every object uploaded to the storage network is described by the tuple
//! `addr = (uploader_id, partition_id, iter, type)`; the directory service
//! maps this tuple to the object's CID so other participants can locate it
//! without knowing the hash in advance.

use std::fmt;

/// Role-scoped identifier of an uploader.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum Uploader {
    /// Trainer index within the task.
    Trainer(usize),
    /// Aggregator index within the task.
    Aggregator(usize),
}

/// What kind of object an address refers to (the `type` field of §III-C).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub enum ObjectKind {
    /// A trainer's gradient partition.
    Gradient,
    /// An aggregator's partial update (multi-aggregator sync).
    PartialUpdate,
    /// The globally updated partition.
    GlobalUpdate,
}

/// The full addressing tuple.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub struct Addr {
    /// Who uploaded the object.
    pub uploader: Uploader,
    /// Which model partition it belongs to.
    pub partition: usize,
    /// Training round number.
    pub iter: u64,
    /// Object type.
    pub kind: ObjectKind,
}

impl Addr {
    /// Address of a trainer's gradient for a partition and round.
    pub fn gradient(trainer: usize, partition: usize, iter: u64) -> Addr {
        Addr {
            uploader: Uploader::Trainer(trainer),
            partition,
            iter,
            kind: ObjectKind::Gradient,
        }
    }

    /// Address of an aggregator's partial update.
    pub fn partial(aggregator: usize, partition: usize, iter: u64) -> Addr {
        Addr {
            uploader: Uploader::Aggregator(aggregator),
            partition,
            iter,
            kind: ObjectKind::PartialUpdate,
        }
    }

    /// Address of the global update for a partition and round.
    pub fn global(aggregator: usize, partition: usize, iter: u64) -> Addr {
        Addr {
            uploader: Uploader::Aggregator(aggregator),
            partition,
            iter,
            kind: ObjectKind::GlobalUpdate,
        }
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            ObjectKind::Gradient => "gradient",
            ObjectKind::PartialUpdate => "partial_update",
            ObjectKind::GlobalUpdate => "update",
        };
        let who = match self.uploader {
            Uploader::Trainer(t) => format!("T{t}"),
            Uploader::Aggregator(a) => format!("A{a}"),
        };
        write!(f, "({who}, p{}, i{}, {kind})", self.partition, self.iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn constructors_set_kind() {
        assert_eq!(Addr::gradient(1, 2, 3).kind, ObjectKind::Gradient);
        assert_eq!(Addr::partial(1, 2, 3).kind, ObjectKind::PartialUpdate);
        assert_eq!(Addr::global(1, 2, 3).kind, ObjectKind::GlobalUpdate);
    }

    #[test]
    fn addresses_are_distinct_keys() {
        let mut set = HashSet::new();
        for iter in 0..3 {
            for part in 0..3 {
                for t in 0..3 {
                    set.insert(Addr::gradient(t, part, iter));
                    set.insert(Addr::partial(t, part, iter));
                }
            }
        }
        assert_eq!(set.len(), 3 * 3 * 3 * 2);
    }

    #[test]
    fn display_is_readable() {
        let s = Addr::gradient(4, 1, 9).to_string();
        assert!(s.contains("T4") && s.contains("p1") && s.contains("i9"));
    }
}
