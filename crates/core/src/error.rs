//! Error type for the IPLS protocol crate.

use std::fmt;

/// Errors surfaced by protocol configuration and the task runner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IplsError {
    /// The task configuration is inconsistent (message explains how).
    InvalidConfig(String),
    /// A training round did not complete (e.g. every aggregator of a
    /// partition was malicious or dead and the deadline passed).
    RoundFailed { round: u64, reason: String },
    /// Verification rejected an aggregator's update.
    VerificationFailed { partition: usize, aggregator: usize },
    /// Summed quantized gradients exceeded the fixed-point range (would
    /// have wrapped or saturated silently).
    Overflow,
    /// A gradient blob failed to decode: truncated, not 8-byte aligned, or
    /// missing the counter element. Blobs arrive from remote (possibly
    /// Byzantine) peers, so this is an error, never a panic.
    MalformedBlob,
    /// A storage upload target was requested in a communication mode that
    /// never routes gradients through storage (`CommMode::Direct`).
    NoStorageRoute {
        /// Partition whose gradient was about to be routed.
        partition: usize,
        /// Trainer that asked for an upload target.
        trainer: usize,
    },
    /// A merge group referenced a provider that is absent from the grouped
    /// member map. The member lists derive from directory `GradientList`
    /// messages — remote, possibly Byzantine input — so the mismatch is an
    /// error, never a panic.
    UnlistedProvider {
        /// Simulation node index of the missing provider.
        provider: usize,
    },
    /// A storage acknowledgment arrived for a request this node never
    /// routed through storage: a misrouted or duplicated frame from a
    /// remote backend (observed from the TCP transport).
    MisroutedAck {
        /// The acknowledged request id.
        req_id: u64,
    },
    /// A cryptographic verification step ran without a commitment key —
    /// a remote message steered a non-verifiable node onto a verifying
    /// code path.
    MissingCommitKey,
}

impl fmt::Display for IplsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IplsError::InvalidConfig(msg) => write!(f, "invalid task configuration: {msg}"),
            IplsError::RoundFailed { round, reason } => {
                write!(f, "round {round} failed: {reason}")
            }
            IplsError::VerificationFailed {
                partition,
                aggregator,
            } => write!(
                f,
                "verification failed for partition {partition} (aggregator {aggregator})"
            ),
            IplsError::Overflow => {
                write!(f, "quantized gradient sum overflowed the fixed-point range")
            }
            IplsError::MalformedBlob => {
                write!(
                    f,
                    "malformed gradient blob (truncated, unaligned, or missing the counter)"
                )
            }
            IplsError::NoStorageRoute { partition, trainer } => write!(
                f,
                "no storage route for partition {partition} gradient of trainer {trainer}: \
                 direct mode uploads no gradients to storage"
            ),
            IplsError::UnlistedProvider { provider } => write!(
                f,
                "merge group references provider node {provider} absent from the member map"
            ),
            IplsError::MisroutedAck { req_id } => write!(
                f,
                "storage acknowledgment for request {req_id} that was never routed through storage"
            ),
            IplsError::MissingCommitKey => {
                write!(f, "verification requested without a commitment key")
            }
        }
    }
}

impl std::error::Error for IplsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = IplsError::InvalidConfig("zero partitions".into());
        assert!(e.to_string().contains("zero partitions"));
        let e = IplsError::VerificationFailed {
            partition: 2,
            aggregator: 1,
        };
        assert!(e.to_string().contains("partition 2"));
        let e = IplsError::UnlistedProvider { provider: 7 };
        assert!(e.to_string().contains("provider node 7"));
        let e = IplsError::MisroutedAck { req_id: 41 };
        assert!(e.to_string().contains("request 41"));
        assert!(IplsError::MissingCommitKey.to_string().contains("key"));
    }
}
