//! Error type for the IPLS protocol crate.

use std::fmt;

/// Errors surfaced by protocol configuration and the task runner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IplsError {
    /// The task configuration is inconsistent (message explains how).
    InvalidConfig(String),
    /// A training round did not complete (e.g. every aggregator of a
    /// partition was malicious or dead and the deadline passed).
    RoundFailed { round: u64, reason: String },
    /// Verification rejected an aggregator's update.
    VerificationFailed { partition: usize, aggregator: usize },
    /// Summed quantized gradients exceeded the fixed-point range (would
    /// have wrapped or saturated silently).
    Overflow,
    /// A gradient blob failed to decode: truncated, not 8-byte aligned, or
    /// missing the counter element. Blobs arrive from remote (possibly
    /// Byzantine) peers, so this is an error, never a panic.
    MalformedBlob,
    /// A storage upload target was requested in a communication mode that
    /// never routes gradients through storage (`CommMode::Direct`).
    NoStorageRoute {
        /// Partition whose gradient was about to be routed.
        partition: usize,
        /// Trainer that asked for an upload target.
        trainer: usize,
    },
}

impl fmt::Display for IplsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IplsError::InvalidConfig(msg) => write!(f, "invalid task configuration: {msg}"),
            IplsError::RoundFailed { round, reason } => {
                write!(f, "round {round} failed: {reason}")
            }
            IplsError::VerificationFailed {
                partition,
                aggregator,
            } => write!(
                f,
                "verification failed for partition {partition} (aggregator {aggregator})"
            ),
            IplsError::Overflow => {
                write!(f, "quantized gradient sum overflowed the fixed-point range")
            }
            IplsError::MalformedBlob => {
                write!(
                    f,
                    "malformed gradient blob (truncated, unaligned, or missing the counter)"
                )
            }
            IplsError::NoStorageRoute { partition, trainer } => write!(
                f,
                "no storage route for partition {partition} gradient of trainer {trainer}: \
                 direct mode uploads no gradients to storage"
            ),
        }
    }
}

impl std::error::Error for IplsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = IplsError::InvalidConfig("zero partitions".into());
        assert!(e.to_string().contains("zero partitions"));
        let e = IplsError::VerificationFailed {
            partition: 2,
            aggregator: 1,
        };
        assert!(e.to_string().contains("partition 2"));
    }
}
