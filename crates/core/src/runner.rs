//! Task runner: builds the simulated deployment (directory, storage nodes,
//! aggregators, trainers), runs the configured number of rounds, and
//! extracts the delay metrics the paper's evaluation reports.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use dfl_ipfs::{IpfsNode, RetryPolicy};
use dfl_ml::{Dataset, Model, SgdConfig};
use dfl_netsim::{NodeId, SimTime, Simulation, Trace};

use crate::adversary::Behavior;
use crate::config::{TaskConfig, Topology};
use crate::directory::Directory;
use crate::error::IplsError;
use crate::gradient::{derive_key, ProtocolKey};
use crate::labels;
use crate::messages::Msg;
use crate::protocol::{IpfsCore, NetsimAdapter};
use crate::trainer::{ParamSink, Trainer};
use crate::Aggregator;

/// Delay metrics of one training round (all in seconds of simulated time).
#[derive(Clone, Debug, Default)]
pub struct RoundMetrics {
    /// Round number.
    pub round: u64,
    /// Mean trainer upload delay (upload start → last store ack, §V).
    pub upload_delay_avg: f64,
    /// Worst trainer upload delay.
    pub upload_delay_max: f64,
    /// Gradient-aggregation delay: first gradient hash written in the
    /// directory → all aggregators finished aggregating (§V).
    pub aggregation_delay: f64,
    /// Mean per-aggregator gradient-gathering span: first own-gradient
    /// fetch or merge RPC → that aggregator's gradients aggregated. Zero in
    /// direct mode (no storage fetch).
    pub merge_delay: f64,
    /// Synchronization delay: gradients aggregated → all partials combined.
    pub sync_delay: f64,
    /// Total aggregation delay (`aggregation_delay + sync_delay`).
    pub total_aggregation_delay: f64,
    /// Wall-clock duration of the round (announcement → all trainers done).
    pub round_duration: f64,
}

/// Everything a task run produced.
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// Per-round delay metrics (only rounds that completed).
    pub rounds: Vec<RoundMetrics>,
    /// Rounds that ran to completion.
    pub completed_rounds: u64,
    /// Final model parameters per trainer (present for trainers that
    /// finished at least one round).
    pub final_params: HashMap<usize, Vec<f32>>,
    /// Application bytes received by each aggregator over the whole task.
    pub aggregator_rx_bytes: Vec<u64>,
    /// Number of updates the directory rejected for failing commitment
    /// verification.
    pub verification_failures: usize,
    /// Number of dropout recoveries performed by peer aggregators.
    pub dropout_recoveries: usize,
    /// Number of times an aggregator passed its sync deadline and continued
    /// with a quorum of received gradients instead of the full trainer set.
    pub quorum_degradations: usize,
    /// Number of merge RPC failures that degraded to plain per-CID fetches.
    pub merge_fallbacks: usize,
    /// Misbehavior detections: commitment mismatches pinned on a specific
    /// aggregator (by a peer during partial sync or by the directory).
    pub detections: usize,
    /// Aggregators the directory evicted on verified misbehavior evidence.
    pub evictions: usize,
    /// Rounds in which at least one aggregator completed the partition
    /// sync from recovered gradients instead of a peer partial.
    pub recovered_rounds: usize,
    /// Bytes spent on data that never became useful: misbehavior-invalidated
    /// data (bad partials, rejected updates, corrupt recovered blobs) plus
    /// the wire waste in [`TaskReport::wire_wasted_bytes`].
    pub wasted_bytes: u64,
    /// Bytes the network carried that no application consumed: partial
    /// transfers torn by crashes and completed payloads dropped because the
    /// receiver was down at delivery.
    pub wire_wasted_bytes: u64,
    /// Application bytes sent across all nodes over the whole task (the
    /// run's total wire cost).
    pub total_tx_bytes: u64,
    /// Chunked storage: chunks clients actually shipped in `ChunkFill`s
    /// (zero unless `TaskConfig::chunked_storage`).
    pub chunks_sent: u64,
    /// Chunked storage: distinct chunks providers already held, elided
    /// from the wire by cross-round dedup.
    pub chunks_deduped: u64,
    /// Chunked storage: payload bytes dedup kept off the wire.
    pub dedup_bytes_saved: u64,
    /// Chunked storage: chunk download requests issued per storage-node
    /// index — how evenly striped fetches spread across providers.
    pub chunk_stripe: Vec<u64>,
    /// The raw simulation trace, for custom analysis.
    pub trace: Trace,
}

impl TaskReport {
    /// `true` when every configured round completed.
    pub fn succeeded(&self, cfg: &TaskConfig) -> bool {
        self.completed_rounds == cfg.rounds
    }

    /// The parameter vector all trainers converged to, if they agree.
    ///
    /// Returns `None` when trainers disagree (which would indicate a
    /// protocol bug or an undetected attack) or no round completed.
    pub fn consensus_params(&self) -> Option<Vec<f32>> {
        let mut iter = self.final_params.values();
        let first = iter.next()?.clone();
        for other in iter {
            if *other != first {
                return None;
            }
        }
        Some(first)
    }
}

/// Runs a full task and reports its metrics.
///
/// `datasets[t]` is trainer `t`'s local data; `behaviors` overrides the
/// behaviour of specific aggregators by global index (all others honest).
///
/// # Errors
///
/// Returns an error when the configuration is invalid or inconsistent with
/// the model/datasets.
pub fn run_task<M: Model + Clone + 'static>(
    cfg: TaskConfig,
    model: M,
    initial_params: Vec<f32>,
    datasets: Vec<Dataset>,
    sgd: SgdConfig,
    behaviors: &[(usize, Behavior)],
) -> Result<TaskReport, IplsError> {
    let topo = Arc::new(Topology::new(cfg.clone(), initial_params.len())?);
    if datasets.len() != cfg.trainers {
        return Err(IplsError::InvalidConfig(format!(
            "{} datasets for {} trainers",
            datasets.len(),
            cfg.trainers
        )));
    }
    if model.param_count() != initial_params.len() {
        return Err(IplsError::InvalidConfig(
            "model parameter count does not match initial parameters".to_string(),
        ));
    }
    for (g, _) in behaviors {
        if *g >= cfg.total_aggregators() {
            return Err(IplsError::InvalidConfig(format!(
                "no aggregator with index {g}"
            )));
        }
    }
    let node_count = topo.node_count();
    for node in cfg.fault_plan.nodes() {
        if node.index() >= node_count {
            return Err(IplsError::InvalidConfig(format!(
                "fault plan targets node {} but the deployment has only {node_count} nodes",
                node.index()
            )));
        }
    }

    let key: Option<Arc<ProtocolKey>> = cfg.verifiable.then(|| {
        Arc::new(derive_key(
            topo.max_partition_len(),
            cfg.seed,
            cfg.commit_precompute,
        ))
    });

    let mut sim: Simulation<Msg> = Simulation::new();
    sim.set_reference_allocator(cfg.reference_allocator);
    // Generous stop-gap: a stalled round ends the simulation at the limit.
    let limit_us = (cfg.t_sync.as_micros() + 120_000_000) * cfg.rounds;
    sim.set_time_limit(SimTime::from_micros(limit_us));

    let link = cfg.link();
    let sink: ParamSink = Arc::new(Mutex::new(HashMap::new()));

    // Node 0: the directory (bootstrapper).
    let dir_id = sim.add_node(
        NetsimAdapter::new(Directory::new(topo.clone(), key.clone())),
        link,
    );
    assert_eq!(dir_id, topo.directory());

    // Storage nodes (possibly on faster infrastructure links).
    let ipfs_link = cfg.ipfs_link();
    let roster = IpfsNode::roster_for(&topo.ipfs_ids());
    for k in 0..cfg.ipfs_nodes {
        let mut node = IpfsNode::new(topo.ipfs_node(k), roster.clone());
        node.set_retry_policy(RetryPolicy {
            base_timeout: cfg.fetch_timeout,
            ..RetryPolicy::default()
        });
        if cfg.lossy_ipfs_nodes.contains(&k) {
            node.set_lossy(true);
        }
        let id = sim.add_node(NetsimAdapter::new(IpfsCore::new(node)), ipfs_link);
        assert_eq!(id, topo.ipfs_node(k));
    }

    // Aggregators.
    let behavior_of = |g: usize| {
        behaviors
            .iter()
            .find(|(i, _)| *i == g)
            .map(|(_, b)| *b)
            .unwrap_or(Behavior::Honest)
    };
    for g in 0..cfg.total_aggregators() {
        let id = sim.add_node(
            NetsimAdapter::new(Aggregator::new(
                g,
                topo.clone(),
                key.clone(),
                behavior_of(g),
            )),
            link,
        );
        assert_eq!(id, topo.aggregator(g));
    }

    // Trainers.
    for (t, dataset) in datasets.into_iter().enumerate() {
        let id = sim.add_node(
            NetsimAdapter::new(Trainer::new(
                t,
                topo.clone(),
                key.clone(),
                model.clone(),
                initial_params.clone(),
                dataset,
                sgd,
                sink.clone(),
            )),
            link,
        );
        assert_eq!(id, topo.trainer(t));
    }

    sim.apply_fault_plan(&cfg.fault_plan);

    sim.run();
    let trace = sim.into_trace();
    let params = sink.lock().expect("param sink").clone();
    Ok(build_report(&topo, &trace, &params))
}

/// One label's events bucketed by round: each event whose value is the
/// round number lands in `out[round]` as `(node, seconds)`. One walk of the
/// label's index, regardless of the round count.
fn by_round(trace: &Trace, label: &str, rounds: u64) -> Vec<Vec<(NodeId, f64)>> {
    let mut out = vec![Vec::new(); rounds as usize];
    for e in trace.find_all(label) {
        let iter = e.value;
        if iter >= 0.0 && iter.fract() == 0.0 && (iter as u64) < rounds {
            out[iter as usize].push((e.node, e.time.as_secs_f64()));
        }
    }
    out
}

fn build_report(topo: &Topology, trace: &Trace, sink: &HashMap<usize, Vec<f32>>) -> TaskReport {
    let cfg = topo.config();

    // Bucket every per-round label once, instead of re-querying the trace
    // for each round.
    let complete = by_round(trace, labels::ROUND_COMPLETE, cfg.rounds);
    let round_starts = by_round(trace, labels::ROUND_START, cfg.rounds);
    let upload_starts = by_round(trace, labels::UPLOAD_START, cfg.rounds);
    let upload_dones = by_round(trace, labels::UPLOAD_DONE, cfg.rounds);
    let first_hashes = by_round(trace, labels::FIRST_GRADIENT_HASH, cfg.rounds);
    let fetch_starts = by_round(trace, labels::FETCH_START, cfg.rounds);
    let aggregated = by_round(trace, labels::GRADS_AGGREGATED, cfg.rounds);
    let syncs = by_round(trace, labels::SYNC_DONE, cfg.rounds);

    let mut rounds = Vec::new();
    for iter in 0..cfg.rounds as usize {
        if complete[iter].is_empty() {
            break; // this and later rounds did not finish
        }
        let round_start = round_starts[iter].first().map(|(_, t)| *t).unwrap_or(0.0);
        let round_end = complete[iter][0].1;

        // Upload delays, paired per trainer.
        let starts: HashMap<NodeId, f64> = upload_starts[iter].iter().copied().collect();
        let mut delays: Vec<f64> = upload_dones[iter]
            .iter()
            .filter_map(|(node, done)| starts.get(node).map(|start| done - start))
            .collect();
        delays.sort_by(f64::total_cmp);
        let upload_delay_avg = if delays.is_empty() {
            0.0
        } else {
            delays.iter().sum::<f64>() / delays.len() as f64
        };
        let upload_delay_max = delays.last().copied().unwrap_or(0.0);

        let first_hash = first_hashes[iter]
            .first()
            .map(|(_, t)| *t)
            .unwrap_or(round_start);
        let last_aggregated = aggregated[iter]
            .iter()
            .map(|(_, t)| *t)
            .fold(first_hash, f64::max);
        let last_sync = syncs[iter]
            .iter()
            .map(|(_, t)| *t)
            .fold(last_aggregated, f64::max);

        // Merge delay: per-aggregator fetch-start → grads-aggregated span.
        let fetch_by_node: HashMap<NodeId, f64> = fetch_starts[iter].iter().copied().collect();
        let spans: Vec<f64> = aggregated[iter]
            .iter()
            .filter_map(|(node, done)| fetch_by_node.get(node).map(|start| done - start))
            .collect();
        let merge_delay = if spans.is_empty() {
            0.0
        } else {
            spans.iter().sum::<f64>() / spans.len() as f64
        };

        rounds.push(RoundMetrics {
            round: iter as u64,
            upload_delay_avg,
            upload_delay_max,
            aggregation_delay: last_aggregated - first_hash,
            merge_delay,
            sync_delay: last_sync - last_aggregated,
            total_aggregation_delay: last_sync - first_hash,
            round_duration: round_end - round_start,
        });
    }

    let aggregator_rx_bytes = (0..cfg.total_aggregators())
        .map(|g| trace.bytes_received(topo.aggregator(g)))
        .collect();

    // Wire waste: bytes the network carried that no application consumed
    // (crash-torn partial transfers and payloads dropped at delivery).
    // Per-label value sums are maintained incrementally by the trace.
    let wire_wasted_bytes = (trace.sum(dfl_netsim::trace::net::FLOW_TORN_INBOUND)
        + trace.sum(dfl_netsim::trace::net::FLOW_TORN_OUTBOUND)
        + trace.sum(dfl_netsim::trace::net::FLOW_UNDELIVERED)) as u64;
    let protocol_wasted_bytes = trace.sum(labels::WASTED_BYTES) as u64;

    TaskReport {
        completed_rounds: rounds.len() as u64,
        rounds,
        final_params: sink.clone(),
        aggregator_rx_bytes,
        verification_failures: trace.count(labels::VERIFICATION_FAILED),
        dropout_recoveries: trace.count(labels::DROPOUT_RECOVERY),
        quorum_degradations: trace.count(labels::QUORUM_DEGRADED),
        merge_fallbacks: trace.count(labels::MERGE_FALLBACK),
        detections: trace.count(labels::MISBEHAVIOR_DETECTED),
        evictions: trace.count(labels::EVICTED),
        recovered_rounds: {
            // Distinct rounds, not events: several aggregators may recover
            // the same round independently.
            let mut iters: Vec<u64> = trace
                .find_all(labels::ROUND_RECOVERED)
                .into_iter()
                .map(|e| e.value as u64)
                .collect();
            iters.sort_unstable();
            iters.dedup();
            iters.len()
        },
        wasted_bytes: protocol_wasted_bytes + wire_wasted_bytes,
        wire_wasted_bytes,
        total_tx_bytes: trace.total_bytes_sent(),
        chunks_sent: trace.counter(labels::CHUNKS_SENT),
        chunks_deduped: trace.counter(labels::CHUNKS_DEDUPED),
        dedup_bytes_saved: trace.counter(labels::DEDUP_BYTES_SAVED),
        chunk_stripe: {
            // Striping spread: each CHUNK_STRIPE event's value is the
            // storage-node index one chunk request went to.
            let mut spread = vec![0u64; cfg.ipfs_nodes];
            for e in trace.find_all(labels::CHUNK_STRIPE) {
                if e.value >= 0.0 && (e.value as usize) < spread.len() {
                    spread[e.value as usize] += 1;
                }
            }
            spread
        },
        trace: trace.clone(),
    }
}
