//! Trace labels recorded by protocol actors; the runner turns these into
//! the delay metrics the paper reports.

/// Directory: round `iter` announced (value = iter).
pub const ROUND_START: &str = "round_start";
/// Directory: first gradient hash of the round written (value = iter).
/// Aggregation delay is measured from this instant (§V).
pub const FIRST_GRADIENT_HASH: &str = "first_gradient_hash";
/// Trainer: began uploading gradients (value = iter).
pub const UPLOAD_START: &str = "upload_start";
/// Trainer: all gradient uploads acknowledged (value = iter). The upload
/// delay is `UPLOAD_DONE − UPLOAD_START` (§V).
pub const UPLOAD_DONE: &str = "upload_done";
/// Aggregator: all of `T_ij`'s gradients aggregated (value = iter).
pub const GRADS_AGGREGATED: &str = "grads_aggregated";
/// Aggregator: all peer partials combined into the global partition
/// (value = iter). Sync delay is `SYNC_DONE − GRADS_AGGREGATED`.
pub const SYNC_DONE: &str = "sync_done";
/// Directory: a partition's global update registered and accepted
/// (value = partition index).
pub const UPDATE_REGISTERED: &str = "update_registered";
/// Directory: an update failed commitment verification (value = partition).
pub const VERIFICATION_FAILED: &str = "verification_failed";
/// Directory: every trainer finished the round (value = iter).
pub const ROUND_COMPLETE: &str = "round_complete";
/// Directory: all rounds finished (value = total rounds).
pub const TASK_COMPLETE: &str = "task_complete";
/// Trainer: rebuilt the model from updated partitions (value = iter).
pub const TRAINER_ROUND_DONE: &str = "trainer_round_done";
/// Aggregator: recovered a dead peer's trainer set at the sync deadline
/// (value = the missing peer's index).
pub const DROPOUT_RECOVERY: &str = "dropout_recovery";
/// Directory: a registration failed signature verification (value = the
/// claimed trainer index).
pub const FORGED_REGISTRATION: &str = "forged_registration";
/// Aggregator: the sync deadline passed and the round continued with a
/// quorum of the received gradients instead of the full trainer set
/// (value = number of gradients missing).
pub const QUORUM_DEGRADED: &str = "quorum_degraded";
/// Aggregator: a merge-and-download RPC failed and the aggregator fell
/// back to fetching that provider's gradients individually (value = number
/// of CIDs fetched individually).
pub const MERGE_FALLBACK: &str = "merge_fallback";
/// Aggregator: summing gradients overflowed the fixed-point range and the
/// aggregate was abandoned rather than silently clamped (value = iter).
pub const SUM_OVERFLOW: &str = "sum_overflow";
/// A commitment mismatch was pinned on a specific aggregator — by a peer
/// whose fetched partial failed verification, or by the directory whose
/// registered update failed verification (value = offending aggregator's
/// global index).
pub const MISBEHAVIOR_DETECTED: &str = "misbehavior_detected";
/// Directory: an aggregator was evicted on valid misbehavior evidence;
/// its future update registrations are ignored (value = offender index).
pub const EVICTED: &str = "evicted";
/// Directory: a registration from an evicted aggregator was dropped
/// (value = offender index).
pub const EVICTED_REJECTED: &str = "evicted_rejected";
/// Aggregator: a partition peer was locally blacklisted — either on
/// re-verified misbehavior evidence or on watchdog timeout suspicion
/// (value = the blacklisted slot's global aggregator index).
pub const PEER_BLACKLISTED: &str = "peer_blacklisted";
/// Aggregator: a round's partition sync completed using gradients
/// re-downloaded from storage in place of at least one peer partial
/// (value = iter).
pub const ROUND_RECOVERED: &str = "round_recovered";
/// Bytes fetched, stored, or uploaded for data that misbehavior later
/// invalidated (value = byte count; summed by the runner).
pub const WASTED_BYTES: &str = "wasted_bytes";
/// Aggregator: started gathering its trainers' gradients — the first
/// own-gradient fetch or merge RPC of the round (value = iter). The merge
/// delay is `GRADS_AGGREGATED − FETCH_START`.
pub const FETCH_START: &str = "fetch_start";
/// Histogram label: wall-clock milliseconds spent verifying one gradient
/// blob against its commitment (trainer, aggregator, and directory verify
/// paths). Wall-clock — excluded from determinism comparisons.
pub const VERIFY_MS: &str = "verify_ms";
/// Counter: total gradient blobs whose commitment was checked. The
/// per-blob path bumps it by 1 per verification; the batched path bumps it
/// by 1 at the instant each blob *would* have been verified per-blob
/// (enqueue time for deferred queues, drain time for stash drains), so the
/// total is identical in both modes — even in rounds that stall before a
/// flush — and `dfl report` never under-counts verification work.
pub const BLOBS_VERIFIED: &str = "blobs_verified";
/// Histogram label: verification batch size — one sample per verify call
/// (1.0 on the per-blob path, the queue length on the batched path).
/// Batch sizes depend only on simulated behaviour, but the histogram
/// channel keeps batched and per-blob fingerprints comparable.
pub const VERIFY_BATCHED: &str = "verify_batched";
/// Counter: the backend reported a delivery failure
/// ([`ProtocolEvent::DeliveryFailure`](crate::ProtocolEvent)) — an
/// outbound message was dropped after connection supervision exhausted
/// its retries or the per-peer queue overflowed. Only real-socket
/// backends emit these; in netsim every loss is injected and traced.
pub const DELIVERY_FAILED: &str = "delivery_failed";
/// Counter: a merge group named a provider absent from the grouped member
/// map ([`IplsError::UnlistedProvider`](crate::IplsError)). The member
/// lists derive from directory messages, so the mismatch is booked and the
/// provider skipped instead of panicking.
pub const UNLISTED_PROVIDER: &str = "unlisted_provider";
/// Counter: a storage acknowledgment arrived for a request this node never
/// routed through storage ([`IplsError::MisroutedAck`](crate::IplsError))
/// — a misrouted or duplicated frame from a remote backend. Dropped.
pub const MISROUTED_ACK: &str = "misrouted_ack";
/// Counter: an update blob reply reached a verification path without a
/// commitment key ([`IplsError::MissingCommitKey`](crate::IplsError)).
/// Dropped instead of panicking.
pub const MISSING_COMMIT_KEY: &str = "missing_commit_key";
/// Trainer (overlay mode): forwarded its level's partial — own gradient
/// plus verified child partials — one hop up the aggregation tree
/// (value = partition index).
pub const OVERLAY_FORWARDED: &str = "overlay_forwarded";
/// Trainer (overlay mode): received one child's partial (value =
/// partition index). Per-node event counts of this label bound the
/// measured fan-in at every interior node.
pub const OVERLAY_CHILD_RECV: &str = "overlay_child_recv";
/// Trainer (overlay mode): a child partial failed its Pedersen opening
/// or signature check and was excluded from the level's sum (value = the
/// offending child's trainer index).
pub const OVERLAY_CHILD_REJECTED: &str = "overlay_child_rejected";
/// Trainer (overlay mode): the level deadline fired before every child
/// delivered; the partial went up with the contributions that arrived
/// (value = number of children missing).
pub const OVERLAY_TIMEOUT: &str = "overlay_timeout";
/// Aggregator (overlay mode): processed one protocol message (value =
/// iter). Per-aggregator event counts of this label are the sub-linear
/// per-node work measurement of the overlay bench.
pub const OVERLAY_AGG_MSG: &str = "overlay_agg_msg";
/// Aggregator (overlay mode): a root partial failed verification and was
/// dropped (value = the claimed root trainer index).
pub const OVERLAY_PARTIAL_REJECTED: &str = "overlay_partial_rejected";
/// Aggregator (overlay mode): pushed the final partition update into the
/// dissemination tree (value = iter).
pub const OVERLAY_UPDATE_PUSHED: &str = "overlay_update_pushed";
/// Trainer (overlay mode): an update pushed down the tree failed its
/// aggregator signature check and was dropped (value = partition).
pub const OVERLAY_UPDATE_REJECTED: &str = "overlay_update_rejected";
/// Client (chunked storage): chunks actually shipped over the wire in a
/// `ChunkFill` after the provider's want-list negotiation (counter).
pub const CHUNKS_SENT: &str = "chunks_sent";
/// Client (chunked storage): chunks the provider already held, elided
/// from the upload entirely — the cross-round dedup win (counter).
pub const CHUNKS_DEDUPED: &str = "chunks_deduped";
/// Client (chunked storage): payload bytes saved by dedup — the sum of
/// the elided chunks' lengths (counter).
pub const DEDUP_BYTES_SAVED: &str = "dedup_bytes_saved";
/// Client (chunked storage): a reassembled blob failed manifest or CID
/// verification and was dropped before decode (counter).
pub const CHUNK_DECODE_FAILED: &str = "chunk_decode_failed";
/// Client (chunked storage): a chunk request was issued to a storage node
/// (value = that node's storage index). Per-value event counts are the
/// per-provider stripe distribution in [`TaskReport`].
///
/// [`TaskReport`]: crate::runner::TaskReport
pub const CHUNK_STRIPE: &str = "chunk_stripe";
