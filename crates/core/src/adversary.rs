//! Malicious-aggregator behaviours (the adversarial model of §III-A).
//!
//! The paper secures the protocol against aggregators that *drop* or
//! *alter* gradients. These behaviours are injected into the aggregator
//! actor so tests and benches can demonstrate both the attack and the
//! detection path (commitment verification at the directory and at peer
//! aggregators).

/// How an aggregator behaves.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Default)]
pub enum Behavior {
    /// Follows the protocol.
    #[default]
    Honest,
    /// Omits the gradients of up to `count` of its trainers from the
    /// aggregation — violating *completeness* (a lazy aggregator saving
    /// bandwidth, §III-A).
    DropGradients {
        /// How many trainers' gradients to silently drop.
        count: usize,
    },
    /// Adds a perturbation to the aggregated update before uploading —
    /// violating *correctness* (model poisoning, §III-A).
    AlterUpdate,
    /// Never responds at all (crash/dropout; exercises the recovery path
    /// where peers download the dead aggregator's gradients, §III-D).
    Offline,
    /// Registers a *forged* gradient commitment under its first trainer's
    /// name and substitutes a fabricated gradient in the aggregation. With
    /// unauthenticated registrations this defeats the §IV verification —
    /// the poisoned update opens the (forged) accumulated commitment; with
    /// Schnorr-authenticated registrations the forgery is discarded and
    /// the attack is caught.
    ForgeRegistration,
    /// Computes the honest partial but *equivocates* during partial sync:
    /// different partition peers are announced different partials (one
    /// honest, one altered), each under a valid signature. Receivers of the
    /// altered variant obtain a transferable proof of misbehavior — the
    /// signed announcement plus the blob that fails its accumulated
    /// commitment. Only meaningful with more than one aggregator per
    /// partition; degenerates to `Honest` otherwise.
    Equivocate,
}

impl Behavior {
    /// `true` if the behaviour deviates from the protocol.
    pub fn is_malicious(&self) -> bool {
        *self != Behavior::Honest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_honest() {
        assert_eq!(Behavior::default(), Behavior::Honest);
        assert!(!Behavior::Honest.is_malicious());
        assert!(Behavior::DropGradients { count: 1 }.is_malicious());
        assert!(Behavior::AlterUpdate.is_malicious());
        assert!(Behavior::Offline.is_malicious());
        assert!(Behavior::ForgeRegistration.is_malicious());
        assert!(Behavior::Equivocate.is_malicious());
    }
}
