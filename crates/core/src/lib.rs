//! # ipls
//!
//! The paper's contribution: the modified IPLS protocol — decentralized
//! federated learning with **indirect communication** over a decentralized
//! storage network (§III) and **verifiable aggregation** against malicious
//! aggregators via homomorphic Pedersen commitments (§IV).
//!
//! A task is a set of actors on a simulated network:
//!
//! * the **bootstrapper/directory** ([`Directory`]) maps addressing tuples
//!   to CIDs, accumulates gradient commitments, verifies updates, and
//!   drives the round schedule;
//! * **trainers** ([`Trainer`]) train locally, upload per-partition
//!   gradient blobs (with an appended averaging counter), and rebuild the
//!   model from verified updates;
//! * **aggregators** ([`Aggregator`]) collect their trainer set's
//!   gradients (directly, naively via storage, or through
//!   merge-and-download), sum them, synchronize partials over pub/sub, and
//!   register the global update;
//! * **storage nodes** (from [`dfl_ipfs`]) provide availability, provider
//!   routing, replication, and storage-side pre-aggregation.
//!
//! The three protocol state machines are **sans-io** ([`protocol`]): they
//! consume [`ProtocolEvent`]s and emit [`ProtocolAction`]s, and never touch
//! a socket, clock, or simulator directly. A backend interprets the
//! actions: [`runner::run_task`] drives the cores inside the deterministic
//! network simulator and reports the delay metrics of §V, while the
//! `dfl-backend-tokio` crate drives the identical cores over real TCP
//! sockets.
//!
//! ```
//! use dfl_ml::{data, LogisticRegression, Model, SgdConfig};
//! use ipls::{run_task, TaskConfig};
//!
//! let cfg = TaskConfig { trainers: 4, partitions: 2, rounds: 1, ..TaskConfig::default() };
//! let dataset = data::make_blobs(64, 2, 2, 0.5, 1);
//! let clients = data::partition_iid(&dataset, 4, 0);
//! let model = LogisticRegression::new(2, 2);
//! let params = model.params();
//! let report = run_task(cfg.clone(), model, params, clients, SgdConfig::default(), &[])?;
//! assert!(report.succeeded(&cfg));
//! # Ok::<(), ipls::IplsError>(())
//! ```

pub mod accountability;
pub mod addressing;
pub mod adversary;
pub mod aggregator;
pub mod chunked;
pub mod config;
pub mod directory;
pub mod error;
pub mod gradient;
pub mod labels;
pub mod messages;
pub mod overlay;
pub mod protocol;
pub mod runner;
pub mod trainer;

/// One-stop imports for task setup: `use ipls::prelude::*;`.
///
/// Covers what nearly every experiment touches — configuration
/// ([`TaskConfig`] and its builder, [`CommMode`], [`Topology`]), the
/// runner entry points ([`run_task`], [`TaskReport`], [`RoundMetrics`]),
/// the sans-io protocol boundary ([`ProtocolEvent`], [`ProtocolAction`]),
/// adversary [`Behavior`], the error type, and the network-simulation
/// vocabulary types ([`prelude::SimDuration`], [`prelude::SimTime`],
/// [`prelude::FaultPlan`], [`prelude::Fault`], [`prelude::LinkSpec`],
/// [`prelude::NodeId`]) that configs and fault plans are built from.
pub mod prelude {
    pub use crate::adversary::Behavior;
    pub use crate::config::{CommMode, TaskConfig, TaskConfigBuilder, Topology};
    pub use crate::error::IplsError;
    pub use crate::protocol::{ProtocolAction, ProtocolEvent};
    pub use crate::runner::{run_task, RoundMetrics, TaskReport};
    pub use dfl_netsim::{ChaosSpec, Fault, FaultPlan, LinkSpec, NodeId, SimDuration, SimTime};
}

// The crate-root surface: the state machines, the event/action boundary
// they speak, the configuration and runner entry points, and the message
// enum backends transport. Everything else (addressing tuples, evidence
// records, wire payloads, trace labels) is deliberately *not* re-exported
// here — reach through the owning module so internals read as internals.
pub use adversary::Behavior;
pub use aggregator::Aggregator;
pub use config::{CommMode, TaskConfig, TaskConfigBuilder, Topology};
pub use directory::Directory;
pub use error::IplsError;
pub use messages::Msg;
pub use protocol::{ProtocolAction, ProtocolCore, ProtocolEvent};
pub use runner::{run_task, RoundMetrics, TaskReport};
pub use trainer::Trainer;
