//! The application message type shared by every actor in a task simulation.
//!
//! One enum covers storage traffic (embedded [`IpfsWire`]), directory
//! traffic (register/query, §III-C and §IV-B), and the round schedule the
//! bootstrapper broadcasts. Control messages cost [`CONTROL_BYTES`]-scale
//! wire bytes; data rides inside the storage messages.

use dfl_ipfs::{Cid, IpfsWire, WireEmbed, CONTROL_BYTES};

/// A serialized Pedersen commitment (compressed secp256k1 point).
pub type CommitmentBytes = [u8; 33];

/// A serialized Schnorr signature.
pub type SignatureBytes = [u8; 65];

/// Canonical byte string a trainer signs when batch-registering a whole
/// round (`compact_registration` mode): one signature binds every
/// partition's CID and commitment.
pub fn batch_registration_message(
    trainer: usize,
    iter: u64,
    entries: &[(usize, Cid, Option<CommitmentBytes>)],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + entries.len() * 80);
    out.extend_from_slice(b"ipls-register-batch");
    out.extend_from_slice(&(trainer as u64).to_be_bytes());
    out.extend_from_slice(&iter.to_be_bytes());
    for (partition, cid, commitment) in entries {
        out.extend_from_slice(&(*partition as u64).to_be_bytes());
        out.extend_from_slice(cid.as_bytes());
        match commitment {
            Some(c) => {
                out.push(1);
                out.extend_from_slice(c);
            }
            None => out.push(0),
        }
    }
    out
}

/// Canonical byte string a trainer signs when registering a gradient, so
/// the directory can authenticate the registration (trainer id, partition,
/// round, CID, and commitment are all bound).
pub fn registration_message(
    trainer: usize,
    partition: usize,
    iter: u64,
    cid: &Cid,
    commitment: &Option<CommitmentBytes>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(b"ipls-register-gradient");
    out.extend_from_slice(&(trainer as u64).to_be_bytes());
    out.extend_from_slice(&(partition as u64).to_be_bytes());
    out.extend_from_slice(&iter.to_be_bytes());
    out.extend_from_slice(cid.as_bytes());
    match commitment {
        Some(c) => {
            out.push(1);
            out.extend_from_slice(c);
        }
        None => out.push(0),
    }
    out
}

/// Canonical byte string an aggregator signs over a partial-update
/// announcement (accountability mode): partition, slot, round, CID, and
/// the claimed contributor ranks are all bound, so a later commitment
/// mismatch against the blob is attributable to the signer.
pub fn announce_message(
    partition: usize,
    agg_j: usize,
    iter: u64,
    cid: &Cid,
    contributors: &[u16],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + 2 * contributors.len());
    out.extend_from_slice(b"ipls-sync-announce");
    out.extend_from_slice(&(partition as u64).to_be_bytes());
    out.extend_from_slice(&(agg_j as u64).to_be_bytes());
    out.extend_from_slice(&iter.to_be_bytes());
    out.extend_from_slice(cid.as_bytes());
    out.extend_from_slice(&(contributors.len() as u16).to_be_bytes());
    for rank in contributors {
        out.extend_from_slice(&rank.to_be_bytes());
    }
    out
}

/// Canonical byte string an aggregator signs over a global-update
/// registration (accountability mode). `contributors` is the claimed set
/// of global trainer indices the update averages over (`None` = the full
/// partition membership).
pub fn update_message(
    aggregator: usize,
    partition: usize,
    iter: u64,
    cid: &Cid,
    contributors: &Option<Vec<u32>>,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    out.extend_from_slice(b"ipls-register-update");
    out.extend_from_slice(&(aggregator as u64).to_be_bytes());
    out.extend_from_slice(&(partition as u64).to_be_bytes());
    out.extend_from_slice(&iter.to_be_bytes());
    out.extend_from_slice(cid.as_bytes());
    match contributors {
        Some(set) => {
            out.push(1);
            out.extend_from_slice(&(set.len() as u32).to_be_bytes());
            for t in set {
                out.extend_from_slice(&t.to_be_bytes());
            }
        }
        None => out.push(0),
    }
    out
}

/// Canonical byte string a trainer signs over the overlay level partial it
/// forwards up the aggregation tree: sender, partition, round, contributor
/// count, the blob's content hash, and the composed commitment are all
/// bound, so a parent (or the aggregator, for the root) can attribute a
/// bad partial to the exact hop that produced it. Domain-separated from
/// every flat-mode signing context.
pub fn overlay_partial_message(
    trainer: usize,
    partition: usize,
    iter: u64,
    count: u64,
    cid: &Cid,
    commitment: &CommitmentBytes,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    out.extend_from_slice(b"ipls-overlay-partial");
    out.extend_from_slice(&(trainer as u64).to_be_bytes());
    out.extend_from_slice(&(partition as u64).to_be_bytes());
    out.extend_from_slice(&iter.to_be_bytes());
    out.extend_from_slice(&count.to_be_bytes());
    out.extend_from_slice(cid.as_bytes());
    out.extend_from_slice(commitment);
    out
}

/// Canonical byte string an aggregator signs over the final update it
/// pushes down the overlay dissemination tree (the overlay counterpart of
/// [`update_message`]; trainers check it before applying or forwarding).
pub fn overlay_update_message(
    aggregator: usize,
    partition: usize,
    iter: u64,
    cid: &Cid,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(96);
    out.extend_from_slice(b"ipls-overlay-update");
    out.extend_from_slice(&(aggregator as u64).to_be_bytes());
    out.extend_from_slice(&(partition as u64).to_be_bytes());
    out.extend_from_slice(&iter.to_be_bytes());
    out.extend_from_slice(cid.as_bytes());
    out
}

/// Messages exchanged between task participants.
#[derive(Clone, Debug)]
pub enum Msg {
    /// Storage-layer traffic.
    Ipfs(IpfsWire),

    /// Bootstrapper → everyone: a new round begins (the schedule message
    /// carrying the iteration number; deadlines are in the shared config).
    StartRound {
        /// Round number.
        iter: u64,
    },

    /// Trainer → directory: register a gradient's CID and (optionally) its
    /// commitment under its addressing tuple.
    RegisterGradient {
        /// Trainer index.
        trainer: usize,
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
        /// Content identifier of the uploaded gradient blob.
        cid: Cid,
        /// Pedersen commitment to the quantized gradient (verifiable mode).
        commitment: Option<CommitmentBytes>,
        /// Schnorr signature over [`registration_message`] (authenticated
        /// mode).
        signature: Option<SignatureBytes>,
    },

    /// Trainer → directory, compact mode: register every partition of the
    /// round in one message (§VI directory-load reduction).
    RegisterGradientBatch {
        /// Trainer index.
        trainer: usize,
        /// Round number.
        iter: u64,
        /// `(partition, cid, commitment)` per partition.
        entries: Vec<(usize, Cid, Option<CommitmentBytes>)>,
        /// Schnorr signature over [`batch_registration_message`].
        signature: Option<SignatureBytes>,
    },

    /// Aggregator → directory: which gradients have been registered for my
    /// partition and trainer set?
    QueryGradients {
        /// Partition index.
        partition: usize,
        /// Aggregator position `j` within `A_i`.
        agg_j: usize,
        /// Round number.
        iter: u64,
    },

    /// Directory → aggregator: gradients registered so far for `(partition,
    /// T_ij, iter)`, with each gradient's commitment in verifiable mode so
    /// the aggregator can check merged downloads and recovered gradients
    /// (§IV-B).
    GradientList {
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
        /// `(trainer, cid, commitment)` triples.
        entries: Vec<(usize, Cid, Option<CommitmentBytes>)>,
    },

    /// Aggregator → directory: the per-aggregator accumulated commitments
    /// for a partition (used to verify peers' partial updates, §IV-B).
    QueryAccumulators {
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
    },

    /// Directory → aggregator: accumulated commitment per aggregator slot
    /// `j` (present once all of `T_ij`'s gradients are registered).
    Accumulators {
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
        /// Index `j` → accumulated commitment over `T_ij`.
        accumulated: Vec<Option<CommitmentBytes>>,
    },

    /// Trainer → directory: the accumulated commitment over *all* trainers
    /// of a partition, for independent update verification (§IV-B).
    QueryTotalAccumulator {
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
    },

    /// Directory → trainer: the total accumulated commitment, once every
    /// trainer's gradient is registered.
    TotalAccumulator {
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
        /// Product of all trainers' commitments for the partition.
        accumulated: Option<CommitmentBytes>,
    },

    /// Aggregator → directory: register the globally updated partition.
    RegisterUpdate {
        /// Global aggregator index.
        aggregator: usize,
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
        /// CID of the uploaded update blob.
        cid: Cid,
        /// Global trainer indices the update averages over, when a quorum
        /// degradation left out part of the membership (`None` = full set).
        contributors: Option<Vec<u32>>,
        /// Schnorr signature over [`update_message`] (accountability mode).
        signature: Option<SignatureBytes>,
    },

    /// Directory → aggregator: the update was rejected (failed
    /// verification or arrived after another valid update).
    UpdateRejected {
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
        /// Human-readable reason.
        reason: String,
    },

    /// Trainer → directory: is the update for `(partition, iter)` ready?
    QueryUpdate {
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
    },

    /// Directory → trainer: update CID when available.
    UpdateInfo {
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
        /// CID of the verified global update, if registered yet.
        cid: Option<Cid>,
    },

    /// Trainer → directory: finished the round (downloaded every updated
    /// partition and rebuilt the model).
    TrainerDone {
        /// Trainer index.
        trainer: usize,
        /// Round number.
        iter: u64,
    },

    /// Detector → directory: a serialized, transferable
    /// [`Misbehavior`](crate::accountability::Misbehavior) proof. The
    /// directory re-verifies it independently before evicting the offender.
    ReportMisbehavior {
        /// The encoded evidence record.
        record: bytes::Bytes,
    },

    /// Trainer → aggregator, direct mode only: the gradient blob itself,
    /// bypassing storage (the original IPLS design Fig. 1 compares against).
    DirectGradient {
        /// Trainer index.
        trainer: usize,
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
        /// The encoded gradient blob.
        data: bytes::Bytes,
    },

    /// Trainer → overlay parent (or tree root → aggregator): one level's
    /// partial aggregate — the sender's gradient summed with its verified
    /// children's partials, the homomorphically composed commitment, and
    /// how many trainers the sum covers.
    OverlayPartial {
        /// Sending trainer's index.
        trainer: usize,
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
        /// The encoded partial-sum blob (values + summed counter).
        data: bytes::Bytes,
        /// Trainers whose gradients the partial covers.
        count: u64,
        /// Composed Pedersen commitment over the partial.
        commitment: CommitmentBytes,
        /// Schnorr signature over [`overlay_partial_message`]
        /// (authenticated mode).
        signature: Option<SignatureBytes>,
    },

    /// Aggregator → tree root, then trainer → children: the final
    /// partition update disseminated down the overlay tree (replaces the
    /// flat mode's directory polling, so dissemination is O(|T|) messages
    /// with per-node fan-out bounded by the branching factor).
    OverlayUpdate {
        /// Partition index.
        partition: usize,
        /// Round number.
        iter: u64,
        /// The aggregated update blob (same encoding as the flat global
        /// update, so depth-1 overlays reproduce flat rounds bit for bit).
        data: bytes::Bytes,
        /// Schnorr signature over [`overlay_update_message`]
        /// (authenticated mode).
        signature: Option<SignatureBytes>,
    },
}

impl crate::protocol::WireCost for Msg {
    fn wire_bytes(&self) -> u64 {
        Msg::wire_bytes(self)
    }
}

impl Msg {
    /// Wire size of the message in bytes.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Msg::Ipfs(wire) => wire.wire_bytes(),
            Msg::GradientList { entries, .. } => CONTROL_BYTES + 73 * entries.len() as u64,
            Msg::Accumulators { accumulated, .. } => CONTROL_BYTES + 33 * accumulated.len() as u64,
            Msg::RegisterGradient {
                commitment,
                signature,
                ..
            } => {
                CONTROL_BYTES
                    + 32
                    + if commitment.is_some() { 33 } else { 0 }
                    + if signature.is_some() { 65 } else { 0 }
            }
            Msg::RegisterUpdate {
                contributors,
                signature,
                ..
            } => {
                CONTROL_BYTES
                    + 32
                    + contributors.as_ref().map_or(0, |s| 4 * s.len() as u64)
                    + if signature.is_some() { 65 } else { 0 }
            }
            Msg::UpdateInfo { cid: Some(_), .. } => CONTROL_BYTES + 32,
            Msg::ReportMisbehavior { record } => CONTROL_BYTES + record.len() as u64,
            Msg::TotalAccumulator {
                accumulated: Some(_),
                ..
            } => CONTROL_BYTES + 33,
            Msg::DirectGradient { data, .. } => CONTROL_BYTES + data.len() as u64,
            Msg::OverlayPartial {
                data, signature, ..
            } => CONTROL_BYTES + data.len() as u64 + 33 + if signature.is_some() { 65 } else { 0 },
            Msg::OverlayUpdate {
                data, signature, ..
            } => CONTROL_BYTES + data.len() as u64 + if signature.is_some() { 65 } else { 0 },
            Msg::RegisterGradientBatch {
                entries, signature, ..
            } => {
                CONTROL_BYTES + 73 * entries.len() as u64 + if signature.is_some() { 65 } else { 0 }
            }
            _ => CONTROL_BYTES,
        }
    }
}

impl WireEmbed for Msg {
    fn embed(wire: IpfsWire) -> Msg {
        Msg::Ipfs(wire)
    }

    fn extract(self) -> Result<IpfsWire, Msg> {
        match self {
            Msg::Ipfs(wire) => Ok(wire),
            other => Err(other),
        }
    }
}

/// Payload published on the sync topic when an aggregator finishes its
/// partial update (§IV-B: "aggregators use the IPFS pub/sub functionality
/// to publish their IPFS hashes for their partial updates").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SyncAnnounce {
    /// Partition index.
    pub partition: usize,
    /// Aggregator position `j` within `A_i`.
    pub agg_j: usize,
    /// Round number.
    pub iter: u64,
    /// CID of the partial update blob.
    pub cid: Cid,
    /// Ranks, within the slot's trainer set `T_ij`, of the trainers whose
    /// gradients the partial sums (quorum degradation announces a subset;
    /// the full set otherwise).
    pub contributors: Vec<u16>,
    /// Schnorr signature over [`announce_message`] (accountability mode);
    /// unsigned announces are discarded by accountability-mode receivers.
    pub signature: Option<SignatureBytes>,
}

impl SyncAnnounce {
    /// The canonical byte string the announcement's signature covers.
    pub fn message(&self) -> Vec<u8> {
        announce_message(
            self.partition,
            self.agg_j,
            self.iter,
            &self.cid,
            &self.contributors,
        )
    }

    /// Serializes to the pub/sub payload format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(59 + 2 * self.contributors.len() + 65);
        out.extend_from_slice(&(self.partition as u64).to_le_bytes());
        out.extend_from_slice(&(self.agg_j as u64).to_le_bytes());
        out.extend_from_slice(&self.iter.to_le_bytes());
        out.extend_from_slice(self.cid.as_bytes());
        out.extend_from_slice(&(self.contributors.len() as u16).to_le_bytes());
        for rank in &self.contributors {
            out.extend_from_slice(&rank.to_le_bytes());
        }
        match &self.signature {
            Some(sig) => {
                out.push(1);
                out.extend_from_slice(sig);
            }
            None => out.push(0),
        }
        out
    }

    /// Parses a pub/sub payload; `None` when malformed.
    pub fn decode(bytes: &[u8]) -> Option<SyncAnnounce> {
        if bytes.len() < 59 {
            return None;
        }
        let u64_at = |i: usize| u64::from_le_bytes(bytes[i..i + 8].try_into().expect("8 bytes"));
        let mut cid = [0u8; 32];
        cid.copy_from_slice(&bytes[24..56]);
        let count = u16::from_le_bytes(bytes[56..58].try_into().expect("2 bytes")) as usize;
        let mut at = 58;
        if bytes.len() < at + 2 * count + 1 {
            return None;
        }
        let mut contributors = Vec::with_capacity(count);
        for _ in 0..count {
            contributors.push(u16::from_le_bytes(
                bytes[at..at + 2].try_into().expect("2 bytes"),
            ));
            at += 2;
        }
        let signature = match bytes[at] {
            0 if bytes.len() == at + 1 => None,
            1 if bytes.len() == at + 66 => {
                let mut sig = [0u8; 65];
                sig.copy_from_slice(&bytes[at + 1..at + 66]);
                Some(sig)
            }
            _ => return None,
        };
        Some(SyncAnnounce {
            partition: u64_at(0) as usize,
            agg_j: u64_at(8) as usize,
            iter: u64_at(16),
            cid: Cid::from_bytes(cid),
            contributors,
            signature,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_embedding_round_trips() {
        let wire = IpfsWire::Get {
            cid: Cid::of(b"x"),
            req_id: 1,
        };
        let msg = Msg::embed(wire);
        assert!(matches!(msg, Msg::Ipfs(_)));
        assert!(msg.extract().is_ok());
        let other = Msg::StartRound { iter: 3 };
        assert!(matches!(other.extract(), Err(Msg::StartRound { iter: 3 })));
    }

    #[test]
    fn wire_sizes_scale_with_content() {
        let small = Msg::StartRound { iter: 0 };
        let list = Msg::GradientList {
            partition: 0,
            iter: 0,
            entries: vec![(0, Cid::of(b"a"), None), (1, Cid::of(b"b"), None)],
        };
        assert!(list.wire_bytes() > small.wire_bytes());
        let with_commit = Msg::RegisterGradient {
            trainer: 0,
            partition: 0,
            iter: 0,
            cid: Cid::of(b"g"),
            commitment: Some([0u8; 33]),
            signature: None,
        };
        let without = Msg::RegisterGradient {
            trainer: 0,
            partition: 0,
            iter: 0,
            cid: Cid::of(b"g"),
            commitment: None,
            signature: None,
        };
        assert_eq!(with_commit.wire_bytes(), without.wire_bytes() + 33);
        let signed = Msg::RegisterGradient {
            trainer: 0,
            partition: 0,
            iter: 0,
            cid: Cid::of(b"g"),
            commitment: None,
            signature: Some([0u8; 65]),
        };
        assert_eq!(signed.wire_bytes(), without.wire_bytes() + 65);
    }

    #[test]
    fn sync_announce_round_trip() {
        let ann = SyncAnnounce {
            partition: 3,
            agg_j: 1,
            iter: 42,
            cid: Cid::of(b"partial"),
            contributors: vec![0, 2, 3],
            signature: None,
        };
        let decoded = SyncAnnounce::decode(&ann.encode()).unwrap();
        assert_eq!(decoded, ann);
        assert_eq!(SyncAnnounce::decode(b"short"), None);

        let signed = SyncAnnounce {
            signature: Some([7u8; 65]),
            ..ann.clone()
        };
        let decoded = SyncAnnounce::decode(&signed.encode()).unwrap();
        assert_eq!(decoded, signed);

        // Truncated signature or trailing garbage must not parse.
        let mut bytes = signed.encode();
        bytes.pop();
        assert_eq!(SyncAnnounce::decode(&bytes), None);
        let mut bytes = ann.encode();
        bytes.push(0);
        assert_eq!(SyncAnnounce::decode(&bytes), None);
    }

    #[test]
    fn announce_message_binds_contributors() {
        let cid = Cid::of(b"partial");
        let a = announce_message(0, 1, 2, &cid, &[0, 1]);
        let b = announce_message(0, 1, 2, &cid, &[0, 2]);
        assert_ne!(a, b);
        let c = update_message(3, 0, 2, &cid, &None);
        let d = update_message(3, 0, 2, &cid, &Some(vec![0, 1, 2]));
        assert_ne!(c, d);
    }

    // -- golden vectors -----------------------------------------------------
    //
    // The canonical signing byte strings are a wire format: every deployed
    // signer and verifier must build the identical bytes, so the layout may
    // never drift. These tests pin it byte for byte against hardcoded hex —
    // if one fails, the change is a protocol break, not a refactor.

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn registration_message_golden_vector() {
        let cid = Cid::from_bytes([0xab; 32]);
        let expected = concat!(
            "69706c732d72656769737465722d6772616469656e74", // "ipls-register-gradient"
            "0000000000000003",                             // trainer 3
            "0000000000000001",                             // partition 1
            "0000000000000002",                             // iter 2
            "abababababababababababababababababababababababababababababababab",
            "01", // commitment present
            "cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd",
        );
        assert_eq!(
            hex(&registration_message(3, 1, 2, &cid, &Some([0xcd; 33]))),
            expected
        );

        let expected_bare = concat!(
            "69706c732d72656769737465722d6772616469656e74",
            "0000000000000003",
            "0000000000000001",
            "0000000000000002",
            "abababababababababababababababababababababababababababababababab",
            "00", // no commitment
        );
        assert_eq!(
            hex(&registration_message(3, 1, 2, &cid, &None)),
            expected_bare
        );
    }

    #[test]
    fn batch_registration_message_golden_vector() {
        let entries = vec![
            (0usize, Cid::from_bytes([0x11; 32]), None),
            (1usize, Cid::from_bytes([0x22; 32]), Some([0x33; 33])),
        ];
        let expected = concat!(
            "69706c732d72656769737465722d6261746368", // "ipls-register-batch"
            "0000000000000002",                       // trainer 2
            "0000000000000005",                       // iter 5
            // entry (partition 0, cid 0x11…, no commitment)
            "0000000000000000",
            "1111111111111111111111111111111111111111111111111111111111111111",
            "00",
            // entry (partition 1, cid 0x22…, commitment 0x33…)
            "0000000000000001",
            "2222222222222222222222222222222222222222222222222222222222222222",
            "01",
            "333333333333333333333333333333333333333333333333333333333333333333",
        );
        assert_eq!(hex(&batch_registration_message(2, 5, &entries)), expected);
    }

    #[test]
    fn announce_message_golden_vector() {
        let cid = Cid::from_bytes([0x44; 32]);
        let expected = concat!(
            "69706c732d73796e632d616e6e6f756e6365", // "ipls-sync-announce"
            "0000000000000001",                     // partition 1
            "0000000000000000",                     // agg_j 0
            "0000000000000007",                     // iter 7
            "4444444444444444444444444444444444444444444444444444444444444444",
            "0003",         // 3 contributors
            "000000020005", // ranks 0, 2, 5
        );
        assert_eq!(hex(&announce_message(1, 0, 7, &cid, &[0, 2, 5])), expected);
    }

    #[test]
    fn update_message_golden_vector() {
        let cid = Cid::from_bytes([0x55; 32]);
        let expected = concat!(
            "69706c732d72656769737465722d757064617465", // "ipls-register-update"
            "0000000000000004",                         // aggregator 4
            "0000000000000000",                         // partition 0
            "0000000000000009",                         // iter 9
            "5555555555555555555555555555555555555555555555555555555555555555",
            "01",               // contributor set present
            "00000002",         // 2 contributors
            "0000000100000003", // trainers 1, 3
        );
        assert_eq!(
            hex(&update_message(4, 0, 9, &cid, &Some(vec![1, 3]))),
            expected
        );

        let expected_full = concat!(
            "69706c732d72656769737465722d757064617465",
            "0000000000000004",
            "0000000000000000",
            "0000000000000009",
            "5555555555555555555555555555555555555555555555555555555555555555",
            "00", // full membership
        );
        assert_eq!(hex(&update_message(4, 0, 9, &cid, &None)), expected_full);
    }

    #[test]
    fn overlay_partial_message_golden_vector() {
        let cid = Cid::from_bytes([0xab; 32]);
        let expected = concat!(
            "69706c732d6f7665726c61792d7061727469616c", // "ipls-overlay-partial"
            "0000000000000003",                         // trainer 3
            "0000000000000001",                         // partition 1
            "0000000000000002",                         // iter 2
            "0000000000000005",                         // count 5
            "abababababababababababababababababababababababababababababababab",
            "cdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcdcd",
        );
        assert_eq!(
            hex(&overlay_partial_message(3, 1, 2, 5, &cid, &[0xcd; 33])),
            expected
        );
    }

    #[test]
    fn overlay_update_message_golden_vector() {
        let cid = Cid::from_bytes([0x55; 32]);
        let expected = concat!(
            "69706c732d6f7665726c61792d757064617465", // "ipls-overlay-update"
            "0000000000000004",                       // aggregator 4
            "0000000000000000",                       // partition 0
            "0000000000000009",                       // iter 9
            "5555555555555555555555555555555555555555555555555555555555555555",
        );
        assert_eq!(hex(&overlay_update_message(4, 0, 9, &cid)), expected);
    }

    #[test]
    fn overlay_wire_sizes_scale_with_content() {
        let partial = Msg::OverlayPartial {
            trainer: 0,
            partition: 0,
            iter: 0,
            data: bytes::Bytes::from(vec![0u8; 100]),
            count: 1,
            commitment: [0u8; 33],
            signature: None,
        };
        let update = Msg::OverlayUpdate {
            partition: 0,
            iter: 0,
            data: bytes::Bytes::from(vec![0u8; 100]),
            signature: None,
        };
        // Partial carries the 33-byte commitment on top of the payload.
        assert_eq!(partial.wire_bytes(), update.wire_bytes() + 33);
        let update_signed = Msg::OverlayUpdate {
            partition: 0,
            iter: 0,
            data: bytes::Bytes::from(vec![0u8; 100]),
            signature: Some([0u8; 65]),
        };
        assert_eq!(update_signed.wire_bytes(), update.wire_bytes() + 65);
    }
}
