//! Gradient blob codec: how parameter partitions travel over the storage
//! network.
//!
//! Per Algorithm 1, a trainer uploads `[gradU[i], 1]` — the partition's
//! values with an appended counter element — and after aggregation divides
//! the summed vector by the summed counter (lines 14 and 20–21). Values are
//! fixed-point quantized ([`dfl_crypto::quantize`]) so that storage-side
//! merging, aggregator summation, and Pedersen commitments all operate in
//! the same exact arithmetic.

use dfl_crypto::curve::Secp256k1;
use dfl_crypto::pedersen::{CommitKey, Commitment};
use dfl_crypto::quantize::{decode, encode, to_scalars, Quantized};

use crate::error::IplsError;
use crate::protocol::Actions;

/// The curve the protocol's commitments use.
pub type ProtocolCurve = Secp256k1;
/// Commitment key type for the protocol.
pub type ProtocolKey = CommitKey<ProtocolCurve>;
/// Commitment type for the protocol.
pub type ProtocolCommitment = Commitment<ProtocolCurve>;

/// Builds the upload blob for one partition: `quantize(values ++ [1.0])`.
pub fn build_blob(values: &[f32]) -> Vec<u8> {
    let mut quantized: Vec<Quantized> = values
        .iter()
        .map(|&v| Quantized::from_f64(v as f64))
        .collect();
    quantized.push(Quantized::from_f64(1.0)); // the averaging counter
    encode(&quantized)
}

/// Decodes a blob into its quantized vector (values + counter).
pub fn decode_blob(blob: &[u8]) -> Option<Vec<Quantized>> {
    let v = decode(blob)?;
    if v.len() < 2 {
        return None; // at least one value plus the counter
    }
    Some(v)
}

/// Decodes an aggregated update blob and divides by the counter, returning
/// the averaged partition values (Algorithm 1 lines 20–21).
///
/// Returns `None` when the blob is malformed or the counter is not
/// positive.
pub fn decode_update(blob: &[u8]) -> Option<(Vec<f32>, u64)> {
    let v = decode_blob(blob)?;
    let (values, counter) = v.split_at(v.len() - 1);
    let count = counter[0].to_f64();
    if count < 1.0 || count.fract() != 0.0 {
        return None;
    }
    let averaged = values.iter().map(|q| (q.to_f64() / count) as f32).collect();
    Some((averaged, count as u64))
}

/// Element-wise sum of decoded gradient vectors (values and counters alike).
///
/// Accumulates in `i128` and reports overflow explicitly: a sum past the
/// `i64` fixed-point range would previously saturate silently, which both
/// skews the averaged update and breaks the homomorphic commitment check
/// (the commitments accumulate the TRUE sum, not the clamped one).
///
/// # Panics
///
/// Panics if the vectors differ in length or the input is empty.
pub fn sum_gradients(grads: &[Vec<Quantized>]) -> Result<Vec<Quantized>, IplsError> {
    assert!(!grads.is_empty(), "nothing to sum");
    let mut acc: Vec<i128> = grads[0].iter().map(|q| q.0 as i128).collect();
    for g in &grads[1..] {
        assert_eq!(g.len(), acc.len(), "gradient length mismatch");
        for (a, b) in acc.iter_mut().zip(g) {
            *a += b.0 as i128;
        }
    }
    acc.into_iter()
        .map(|v| {
            i64::try_from(v)
                .map(Quantized)
                .map_err(|_| IplsError::Overflow)
        })
        .collect()
}

/// Commits to a blob's quantized vector (including the counter element).
///
/// Returns [`IplsError::MalformedBlob`] when the blob does not decode —
/// blobs can arrive from Byzantine peers (e.g. the recovery re-commit
/// path), so a malformed one must never panic an honest node.
///
/// # Panics
///
/// Panics if the decoded vector is longer than the key (a configuration
/// invariant: keys are derived for the task's maximum partition length).
pub fn commit_blob(key: &ProtocolKey, blob: &[u8]) -> Result<ProtocolCommitment, IplsError> {
    let v = decode_blob(blob).ok_or(IplsError::MalformedBlob)?;
    Ok(key.commit(&to_scalars::<ProtocolCurve>(&v)))
}

/// Verifies that `blob` opens `commitment`.
pub fn verify_blob(key: &ProtocolKey, blob: &[u8], commitment: &ProtocolCommitment) -> bool {
    match decode_blob(blob) {
        Some(v) => key.verify(&to_scalars::<ProtocolCurve>(&v), commitment),
        None => false,
    }
}

/// [`verify_blob`], recording the wall-clock cost into the run's
/// [`labels::VERIFY_MS`](crate::labels::VERIFY_MS) histogram. Wall-clock
/// time is real (not simulated) and varies run to run; determinism
/// comparisons deliberately cover only events and byte counters.
pub fn verify_blob_timed<M>(
    out: &mut Actions<M>,
    key: &ProtocolKey,
    blob: &[u8],
    commitment: &ProtocolCommitment,
) -> bool {
    let started = std::time::Instant::now();
    let ok = verify_blob(key, blob, commitment);
    out.observe(
        crate::labels::VERIFY_MS,
        started.elapsed().as_secs_f64() * 1e3,
    );
    out.incr(crate::labels::BLOBS_VERIFIED, 1);
    out.observe(crate::labels::VERIFY_BATCHED, 1.0);
    ok
}

/// Verifies a whole queue of `(blob, commitment)` pairs with one
/// random-linear-combination check ([`CommitKey::batch_check`]), bisecting
/// on failure so the returned indices are exactly the pairs that
/// [`verify_blob`] would reject one at a time — malformed blobs included.
/// The blob bytes double as the Fiat–Shamir binding (they uniquely
/// determine the decoded scalars), which keeps transcript hashing at 8
/// bytes per element.
///
/// Books one [`labels::VERIFY_MS`](crate::labels::VERIFY_MS) sample for
/// the whole flush, bumps
/// [`labels::BLOBS_VERIFIED`](crate::labels::BLOBS_VERIFIED) by the queue
/// length, and records the batch size under
/// [`labels::VERIFY_BATCHED`](crate::labels::VERIFY_BATCHED) — the same
/// ledger totals as running [`verify_blob_timed`] per blob.
///
/// Use this when the batch is verified at the same simulated instant the
/// per-blob path would have verified each item (singleton batches, stash
/// drains). Deferred queues that count blobs at enqueue time call
/// [`flush_verify_queue`] instead.
///
/// Returns the sorted indices of the failing pairs (empty = all verified).
pub fn verify_blobs_timed<M>(
    out: &mut Actions<M>,
    key: &ProtocolKey,
    items: &[(&[u8], &ProtocolCommitment)],
) -> Vec<usize> {
    if items.is_empty() {
        return Vec::new();
    }
    out.incr(crate::labels::BLOBS_VERIFIED, items.len() as u64);
    flush_verify_queue(out, key, items)
}

/// [`verify_blobs_timed`] minus the
/// [`labels::BLOBS_VERIFIED`](crate::labels::BLOBS_VERIFIED) bump: books
/// the [`labels::VERIFY_MS`](crate::labels::VERIFY_MS) wall-clock sample
/// and the [`labels::VERIFY_BATCHED`](crate::labels::VERIFY_BATCHED) batch
/// size, but leaves blob counting to the caller. Deferred verification
/// queues bump the counter when a blob is *enqueued* — the instant the
/// per-blob path verifies it — so counter totals stay identical across
/// modes even in rounds that stall before any flush happens.
pub fn flush_verify_queue<M>(
    out: &mut Actions<M>,
    key: &ProtocolKey,
    items: &[(&[u8], &ProtocolCommitment)],
) -> Vec<usize> {
    use dfl_crypto::pedersen::BatchEntry;
    if items.is_empty() {
        return Vec::new();
    }
    let started = std::time::Instant::now();
    // Malformed blobs can never open a commitment: convict them up front
    // and batch the RLC over the decodable remainder.
    let mut culprits: Vec<usize> = Vec::new();
    let mut decoded: Vec<(usize, Vec<dfl_crypto::curve::Scalar<ProtocolCurve>>)> = Vec::new();
    for (i, (blob, _)) in items.iter().enumerate() {
        match decode_blob(blob) {
            Some(v) => decoded.push((i, to_scalars::<ProtocolCurve>(&v))),
            None => culprits.push(i),
        }
    }
    let entries: Vec<BatchEntry<'_, ProtocolCurve>> = decoded
        .iter()
        .map(|(i, scalars)| BatchEntry::with_binding(scalars, items[*i].1, items[*i].0))
        .collect();
    culprits.extend(key.batch_culprits(&entries).iter().map(|&j| decoded[j].0));
    culprits.sort_unstable();
    out.observe(
        crate::labels::VERIFY_MS,
        started.elapsed().as_secs_f64() * 1e3,
    );
    out.observe(crate::labels::VERIFY_BATCHED, items.len() as f64);
    culprits
}

/// Derives the protocol commitment key for a task: enough generators for
/// the largest partition plus the counter element.
///
/// `precompute` additionally builds the key's fixed-base MSM table
/// ([`CommitKey::precompute`]) — a one-time per-task cost that makes every
/// subsequent commit and verification take the table fast path. All peers
/// derive identical keys either way; the table is derived data and does
/// not affect key equality.
pub fn derive_key(max_partition_len: usize, task_seed: u64, precompute: bool) -> ProtocolKey {
    let mut seed = b"ipls-task-".to_vec();
    seed.extend_from_slice(&task_seed.to_be_bytes());
    if precompute {
        CommitKey::setup_precomputed(max_partition_len + 1, &seed)
    } else {
        CommitKey::setup(max_partition_len + 1, &seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_round_trip_single_trainer() {
        let values = [0.5f32, -1.25, 3.0];
        let blob = build_blob(&values);
        let (avg, count) = decode_update(&blob).unwrap();
        assert_eq!(count, 1);
        assert_eq!(avg, values);
    }

    #[test]
    fn sum_then_average_matches_mean() {
        let blobs = [
            build_blob(&[1.0, 2.0]),
            build_blob(&[3.0, 6.0]),
            build_blob(&[5.0, 1.0]),
        ];
        let decoded: Vec<_> = blobs.iter().map(|b| decode_blob(b).unwrap()).collect();
        let summed = sum_gradients(&decoded).unwrap();
        let (avg, count) = decode_update(&encode(&summed)).unwrap();
        assert_eq!(count, 3);
        assert_eq!(avg, vec![3.0, 3.0]);
    }

    #[test]
    fn storage_merge_equals_aggregator_sum() {
        // The merge-and-download path and the naive path must agree bit-
        // for-bit: merging blobs at a storage node produces exactly the sum
        // the aggregator would compute.
        let b1 = build_blob(&[0.25, -1.0, 2.0]);
        let b2 = build_blob(&[1.75, 1.0, -2.0]);
        let merged = dfl_ipfs::merge::merge_blobs(&[b1.as_slice(), b2.as_slice()]).unwrap();
        let summed =
            sum_gradients(&[decode_blob(&b1).unwrap(), decode_blob(&b2).unwrap()]).unwrap();
        assert_eq!(decode(&merged).unwrap(), summed);
    }

    #[test]
    fn decode_update_rejects_malformed() {
        assert!(decode_update(&[1, 2, 3]).is_none()); // not 8-aligned
        assert!(decode_update(&[]).is_none());
        // A single element (counter only, no values) is rejected.
        assert!(decode_update(&encode(&[Quantized::from_f64(1.0)])).is_none());
        // Zero counter rejected.
        let mut v = decode_blob(&build_blob(&[1.0])).unwrap();
        let last = v.len() - 1;
        v[last] = Quantized(0);
        assert!(decode_update(&encode(&v)).is_none());
    }

    #[test]
    fn commitments_verify_and_accumulate() {
        let key = derive_key(4, 7, false);
        let b1 = build_blob(&[1.0, -2.0, 0.5, 0.0]);
        let b2 = build_blob(&[0.5, 2.0, 1.5, -1.0]);
        let c1 = commit_blob(&key, &b1).unwrap();
        let c2 = commit_blob(&key, &b2).unwrap();
        assert!(verify_blob(&key, &b1, &c1));
        assert!(!verify_blob(&key, &b1, &c2));

        // Accumulated commitment opens the aggregated blob.
        let summed =
            sum_gradients(&[decode_blob(&b1).unwrap(), decode_blob(&b2).unwrap()]).unwrap();
        let agg_blob = encode(&summed);
        let acc = c1.combine(&c2);
        assert!(verify_blob(&key, &agg_blob, &acc));
    }

    #[test]
    fn dropped_gradient_breaks_verification() {
        // Completeness (§III-A): omitting one trainer's gradient makes the
        // update fail against the accumulated commitment.
        let key = derive_key(2, 7, false);
        let blobs = [
            build_blob(&[1.0, 1.0]),
            build_blob(&[2.0, 2.0]),
            build_blob(&[3.0, 3.0]),
        ];
        let commits: Vec<_> = blobs
            .iter()
            .map(|b| commit_blob(&key, b).unwrap())
            .collect();
        let acc = Commitment::accumulate(&commits);
        // Malicious aggregator drops blob 1.
        let partial = sum_gradients(&[
            decode_blob(&blobs[0]).unwrap(),
            decode_blob(&blobs[2]).unwrap(),
        ])
        .unwrap();
        assert!(!verify_blob(&key, &encode(&partial), &acc));
    }

    #[test]
    fn altered_gradient_breaks_verification() {
        // Correctness (§III-A): perturbing one element fails verification.
        let key = derive_key(2, 7, false);
        let blobs = [build_blob(&[1.0, 1.0]), build_blob(&[2.0, 2.0])];
        let commits: Vec<_> = blobs
            .iter()
            .map(|b| commit_blob(&key, b).unwrap())
            .collect();
        let acc = Commitment::accumulate(&commits);
        let mut summed = sum_gradients(&[
            decode_blob(&blobs[0]).unwrap(),
            decode_blob(&blobs[1]).unwrap(),
        ])
        .unwrap();
        summed[0] = Quantized(summed[0].0 + 1);
        assert!(!verify_blob(&key, &encode(&summed), &acc));
    }

    #[test]
    fn sum_reports_overflow_instead_of_saturating() {
        // Regression: two near-max quantized values used to clamp at
        // i64::MAX silently, corrupting the average AND the commitment
        // check. The boundary case (sum == i64::MAX exactly) must still
        // succeed; one past it must error.
        let near = Quantized(i64::MAX - 1);
        let at_boundary =
            sum_gradients(&[vec![near, Quantized(1)], vec![Quantized(1), Quantized(1)]]);
        assert_eq!(at_boundary.unwrap()[0], Quantized(i64::MAX));
        let past = sum_gradients(&[vec![near, Quantized(1)], vec![Quantized(2), Quantized(1)]]);
        assert_eq!(past.unwrap_err(), IplsError::Overflow);
        // Same at the negative end.
        let low = Quantized(i64::MIN + 1);
        let neg = sum_gradients(&[vec![low, Quantized(1)], vec![Quantized(-2), Quantized(1)]]);
        assert_eq!(neg.unwrap_err(), IplsError::Overflow);
    }

    #[test]
    fn commit_blob_rejects_malformed_instead_of_panicking() {
        // Regression: a truncated blob from a Byzantine peer used to hit
        // `expect("well-formed gradient blob")` and take the node down.
        let key = derive_key(4, 7, false);
        let good = build_blob(&[1.0, -2.0, 0.5, 0.0]);
        let truncated = &good[..good.len() - 3]; // not 8-byte aligned
        assert_eq!(
            commit_blob(&key, truncated).unwrap_err(),
            IplsError::MalformedBlob
        );
        assert_eq!(
            commit_blob(&key, &[]).unwrap_err(),
            IplsError::MalformedBlob
        );
        // Counter-only blob (one element) is malformed too.
        let counter_only = encode(&[Quantized::from_f64(1.0)]);
        assert_eq!(
            commit_blob(&key, &counter_only).unwrap_err(),
            IplsError::MalformedBlob
        );
        // And the well-formed blob still commits.
        assert!(commit_blob(&key, &good).is_ok());
    }

    #[test]
    fn key_derivation_deterministic_per_task() {
        let a = derive_key(3, 1, false);
        let b = derive_key(3, 1, false);
        let c = derive_key(3, 2, false);
        assert_eq!(a.generators(), b.generators());
        assert_ne!(a.generators(), c.generators());
        assert_eq!(a.len(), 4, "max_len + counter element");
    }

    #[test]
    fn precomputed_key_commits_identically() {
        // Protocol-critical: a peer that precomputes and one that does not
        // must produce the same commitments, or verification would fail
        // between them.
        let plain = derive_key(4, 9, false);
        let fast = derive_key(4, 9, true);
        assert!(fast.is_precomputed() && !plain.is_precomputed());
        assert_eq!(plain, fast, "table must not affect key identity");
        let blob = build_blob(&[1.5, -0.25, 3.0, 0.125]);
        let c = commit_blob(&plain, &blob).unwrap();
        assert_eq!(c, commit_blob(&fast, &blob).unwrap());
        assert!(verify_blob(&fast, &blob, &c));
    }
}
