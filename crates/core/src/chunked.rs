//! Client-side planner for chunked content-addressed storage.
//!
//! When [`TaskConfig::chunked_storage`] is on, trainers and aggregators
//! stop shipping opaque partition blobs and instead negotiate chunk DAGs
//! with the storage layer:
//!
//! * **Uploads** send a [`Manifest`] first (`PutChunked`); the provider
//!   answers with the want-list of chunk CIDs it does not already hold
//!   (`ChunkWant`), and only those chunks ride the wire in the `ChunkFill`.
//!   Chunks unchanged since the previous round dedup to zero payload
//!   bytes.
//! * **Downloads** fetch the manifest through the ordinary `Get` path,
//!   then stripe one `GetChunk` per distinct chunk CID across the storage
//!   nodes, reassembling and CID-verifying before the blob is decoded.
//!
//! [`ChunkedClient`] owns the bookkeeping both actors share: in-flight
//! upload negotiations (for retransmission and dedup accounting) and
//! in-flight reassemblies (mapping chunk request ids back to their
//! manifest fetch). It is sans-io like the cores that embed it — every
//! method returns wires for the caller to send.
//!
//! [`TaskConfig::chunked_storage`]: crate::config::TaskConfig::chunked_storage
//! [`Manifest`]: dfl_ipfs::chunker::Manifest

use std::collections::HashMap;

use bytes::Bytes;

use dfl_ipfs::chunker::{self, Reassembly};
use dfl_ipfs::{Cid, IpfsWire};
use dfl_netsim::NodeId;

/// Wire accounting for one finished upload negotiation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DedupStats {
    /// Chunks actually shipped in a `ChunkFill`.
    pub sent: u64,
    /// Payload bytes those chunks carried.
    pub sent_bytes: u64,
    /// Distinct chunks the provider already held (never sent).
    pub deduped: u64,
    /// Payload bytes dedup elided from the wire.
    pub saved_bytes: u64,
}

/// What a freshly decoded manifest asks the caller to do next.
#[derive(Debug)]
pub enum ManifestOutcome {
    /// Issue one `GetChunk` per entry: `(slot index, chunk cid)`, one per
    /// distinct CID (duplicate slots are filled locally on receipt).
    Requests(Vec<(usize, Cid)>),
    /// The blob had no chunks (empty partition); it is already complete.
    Done { tag: u64, blob: Vec<u8> },
}

/// Result of feeding a chunk response into the planner.
#[derive(Debug)]
pub enum ChunkProgress {
    /// The request id is not a chunk request of this planner.
    NotMine,
    /// Accepted; more chunks are still outstanding.
    Progress,
    /// The last chunk landed and the blob reassembled and verified.
    Done {
        manifest_req: u64,
        tag: u64,
        blob: Vec<u8>,
    },
    /// Verification failed; the whole fetch was cancelled. The returned
    /// request ids are the sibling chunk requests the caller should
    /// forget.
    Corrupt {
        manifest_req: u64,
        tag: u64,
        cancelled: Vec<u64>,
    },
}

struct Upload {
    manifest: Bytes,
    /// Chunk payloads by CID, for answering the provider's want-list.
    chunks: HashMap<Cid, Bytes>,
    replicate: usize,
    sent: u64,
    sent_bytes: u64,
    /// Distinct chunk count and payload bytes — the dedup baseline.
    distinct: u64,
    distinct_bytes: u64,
}

struct Fetch {
    tag: u64,
    reassembly: Reassembly,
}

struct ChunkReq {
    manifest_req: u64,
    index: usize,
    to: NodeId,
    cid: Cid,
}

/// Sans-io upload/download planner for chunked storage (see module docs).
pub struct ChunkedClient {
    chunk_size: usize,
    uploads: HashMap<u64, Upload>,
    fetches: HashMap<u64, Fetch>,
    chunk_reqs: HashMap<u64, ChunkReq>,
}

impl ChunkedClient {
    pub fn new(chunk_size: usize) -> ChunkedClient {
        ChunkedClient {
            chunk_size,
            uploads: HashMap::new(),
            fetches: HashMap::new(),
            chunk_reqs: HashMap::new(),
        }
    }

    /// Drops every in-flight negotiation and fetch (round boundary).
    pub fn reset(&mut self) {
        self.uploads.clear();
        self.fetches.clear();
        self.chunk_reqs.clear();
    }

    // -- uploads ------------------------------------------------------------

    /// Splits `blob` and returns the `PutChunked` wire opening the
    /// negotiation under `req_id` (the caller's put request id).
    pub fn begin_upload(&mut self, req_id: u64, blob: &[u8], replicate: usize) -> IpfsWire {
        let (manifest, blocks) = chunker::split(blob, self.chunk_size);
        let manifest_bytes = manifest.encode();
        let chunks: HashMap<Cid, Bytes> = blocks
            .into_iter()
            .map(|b| (b.cid(), b.data().clone()))
            .collect();
        let distinct = chunks.len() as u64;
        let distinct_bytes = chunks.values().map(|d| d.len() as u64).sum();
        self.uploads.insert(
            req_id,
            Upload {
                manifest: manifest_bytes.clone(),
                chunks,
                replicate,
                sent: 0,
                sent_bytes: 0,
                distinct,
                distinct_bytes,
            },
        );
        IpfsWire::PutChunked {
            manifest: manifest_bytes,
            req_id,
            replicate,
        }
    }

    /// Rebuilds the opening wire of a still-unacked upload, for
    /// retransmission. The provider treats a repeated `PutChunked` as a
    /// fresh negotiation.
    pub fn upload_wire(&self, req_id: u64) -> Option<IpfsWire> {
        self.uploads.get(&req_id).map(|u| IpfsWire::PutChunked {
            manifest: u.manifest.clone(),
            req_id,
            replicate: u.replicate,
        })
    }

    /// Answers a provider's want-list with the matching chunk payloads
    /// (want-list order). Returns `None` for want-lists that belong to no
    /// live upload (stale) or name chunks this upload never had (forged).
    pub fn on_chunk_want(&mut self, req_id: u64, cids: &[Cid]) -> Option<IpfsWire> {
        let upload = self.uploads.get_mut(&req_id)?;
        let mut chunks = Vec::with_capacity(cids.len());
        for cid in cids {
            chunks.push(upload.chunks.get(cid)?.clone());
        }
        // A re-negotiated want-list supersedes the previous one.
        upload.sent = chunks.len() as u64;
        upload.sent_bytes = chunks.iter().map(|d| d.len() as u64).sum();
        Some(IpfsWire::ChunkFill { chunks, req_id })
    }

    /// Settles an acked upload and returns its dedup accounting.
    pub fn finish_upload(&mut self, req_id: u64) -> Option<DedupStats> {
        self.uploads.remove(&req_id).map(|u| DedupStats {
            sent: u.sent,
            sent_bytes: u.sent_bytes,
            deduped: u.distinct - u.sent,
            saved_bytes: u.distinct_bytes - u.sent_bytes,
        })
    }

    // -- downloads ----------------------------------------------------------

    /// Feeds a fetched manifest in. `manifest_req` is the request id of
    /// the manifest `Get`, `tag` an opaque caller token (the partition for
    /// trainers) carried back on completion.
    ///
    /// # Errors
    ///
    /// Returns the decode error for malformed manifest bytes; no fetch
    /// state is created.
    pub fn on_manifest(
        &mut self,
        manifest_req: u64,
        tag: u64,
        data: &[u8],
    ) -> Result<ManifestOutcome, chunker::ChunkError> {
        let manifest = chunker::Manifest::decode(data)?;
        let reassembly = Reassembly::new(manifest);
        if reassembly.is_complete() {
            return Ok(ManifestOutcome::Done {
                tag,
                blob: reassembly.assemble()?,
            });
        }
        let mut requests = Vec::new();
        let mut seen = HashMap::new();
        for (index, &(cid, _)) in reassembly.manifest().chunks().iter().enumerate() {
            if seen.insert(cid, index).is_none() {
                requests.push((index, cid));
            }
        }
        self.fetches.insert(manifest_req, Fetch { tag, reassembly });
        Ok(ManifestOutcome::Requests(requests))
    }

    /// Records an issued chunk request so its response (and retries) can
    /// be routed back to the owning reassembly.
    pub fn register_chunk_req(
        &mut self,
        chunk_req: u64,
        manifest_req: u64,
        index: usize,
        to: NodeId,
        cid: Cid,
    ) {
        self.chunk_reqs.insert(
            chunk_req,
            ChunkReq {
                manifest_req,
                index,
                to,
                cid,
            },
        );
    }

    /// Feeds a chunk response in; fills every slot expecting that CID.
    pub fn chunk_received(&mut self, chunk_req: u64, data: &Bytes) -> ChunkProgress {
        let Some(req) = self.chunk_reqs.remove(&chunk_req) else {
            return ChunkProgress::NotMine;
        };
        let Some(fetch) = self.fetches.get_mut(&req.manifest_req) else {
            return ChunkProgress::Progress; // fetch already cancelled
        };
        // Fill the requested slot plus any duplicate slots naming the same
        // CID (only distinct CIDs are requested over the wire).
        let dup_slots: Vec<usize> = fetch
            .reassembly
            .manifest()
            .chunks()
            .iter()
            .enumerate()
            .filter(|&(i, &(cid, _))| cid == req.cid && i != req.index)
            .map(|(i, _)| i)
            .collect();
        let mut fill = fetch.reassembly.fill(req.index, data.clone());
        for slot in dup_slots {
            if fill.is_err() {
                break;
            }
            fill = fetch.reassembly.fill(slot, data.clone());
        }
        if fill.is_err() {
            let manifest_req = req.manifest_req;
            let tag = fetch.tag;
            let cancelled = self.cancel_fetch(manifest_req);
            return ChunkProgress::Corrupt {
                manifest_req,
                tag,
                cancelled,
            };
        }
        if !fetch.reassembly.is_complete() {
            return ChunkProgress::Progress;
        }
        let fetch = self
            .fetches
            .remove(&req.manifest_req)
            .expect("fetch checked present above");
        match fetch.reassembly.assemble() {
            Ok(blob) => ChunkProgress::Done {
                manifest_req: req.manifest_req,
                tag: fetch.tag,
                blob,
            },
            // Unreachable in practice — every slot was CID-verified on
            // fill — but assemble's length check stays typed.
            Err(_) => ChunkProgress::Corrupt {
                manifest_req: req.manifest_req,
                tag: fetch.tag,
                cancelled: self.cancel_fetch(req.manifest_req),
            },
        }
    }

    /// Routes a failed chunk request: cancels the owning fetch entirely
    /// and returns `(tag, sibling chunk request ids)` so the caller can
    /// drop its own records. `None` when the id is not a chunk request.
    pub fn chunk_failed(&mut self, chunk_req: u64) -> Option<(u64, Vec<u64>)> {
        let req = self.chunk_reqs.remove(&chunk_req)?;
        let tag = self.fetches.get(&req.manifest_req).map(|f| f.tag)?;
        Some((tag, self.cancel_fetch(req.manifest_req)))
    }

    /// Drops a fetch and every chunk request that belongs to it, returning
    /// the dropped chunk request ids.
    pub fn cancel_fetch(&mut self, manifest_req: u64) -> Vec<u64> {
        self.fetches.remove(&manifest_req);
        let mut dropped: Vec<u64> = self
            .chunk_reqs
            .iter()
            .filter(|(_, r)| r.manifest_req == manifest_req)
            .map(|(&id, _)| id)
            .collect();
        dropped.sort_unstable();
        for id in &dropped {
            self.chunk_reqs.remove(id);
        }
        dropped
    }

    /// All in-flight chunk requests as re-sendable wires, in request-id
    /// order (deterministic retransmission).
    pub fn outstanding_chunk_wires(&self) -> Vec<(NodeId, IpfsWire)> {
        let mut reqs: Vec<(&u64, &ChunkReq)> = self.chunk_reqs.iter().collect();
        reqs.sort_unstable_by_key(|(&id, _)| id);
        reqs.into_iter()
            .map(|(&req_id, r)| (r.to, IpfsWire::GetChunk { cid: r.cid, req_id }))
            .collect()
    }

    /// Whether any upload negotiation or chunk fetch is still in flight
    /// (drives the caller's retransmission timer).
    pub fn busy(&self) -> bool {
        !self.uploads.is_empty() || !self.chunk_reqs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn upload_negotiation_tracks_dedup() {
        let mut c = ChunkedClient::new(64);
        let data = blob(200); // chunks of 64/64/64/8, all distinct
        let wire = c.begin_upload(1, &data, 1);
        let IpfsWire::PutChunked { manifest, .. } = wire else {
            panic!("expected PutChunked");
        };
        let m = chunker::Manifest::decode(&manifest).unwrap();
        assert_eq!(m.chunks().len(), 4);
        // Provider wants only the last two chunks.
        let want: Vec<Cid> = m.chunks()[2..].iter().map(|&(cid, _)| cid).collect();
        let fill = c.on_chunk_want(1, &want).unwrap();
        let IpfsWire::ChunkFill { chunks, req_id: 1 } = fill else {
            panic!("expected ChunkFill");
        };
        assert_eq!(chunks.len(), 2);
        let stats = c.finish_upload(1).unwrap();
        assert_eq!(stats.sent, 2);
        assert_eq!(stats.sent_bytes, 64 + 8);
        assert_eq!(stats.deduped, 2);
        assert_eq!(stats.saved_bytes, 128);
        assert!(c.finish_upload(1).is_none());
    }

    #[test]
    fn fully_deduped_upload_never_sees_a_want_list() {
        let mut c = ChunkedClient::new(64);
        c.begin_upload(3, &blob(100), 1);
        let stats = c.finish_upload(3).unwrap();
        assert_eq!(stats.sent, 0);
        assert_eq!(stats.deduped, 2);
        assert_eq!(stats.saved_bytes, 100);
    }

    #[test]
    fn forged_want_list_is_refused() {
        let mut c = ChunkedClient::new(64);
        c.begin_upload(1, &blob(100), 1);
        assert!(c.on_chunk_want(1, &[Cid::of(b"never uploaded")]).is_none());
        assert!(c.on_chunk_want(99, &[]).is_none());
    }

    #[test]
    fn fetch_reassembles_across_chunk_responses() {
        let mut c = ChunkedClient::new(64);
        let data = blob(150);
        let (manifest, blocks) = chunker::split(&data, 64);
        let outcome = c.on_manifest(10, 7, &manifest.encode()).unwrap();
        let ManifestOutcome::Requests(reqs) = outcome else {
            panic!("expected requests");
        };
        assert_eq!(reqs.len(), 3);
        for (k, &(index, cid)) in reqs.iter().enumerate() {
            c.register_chunk_req(100 + k as u64, 10, index, NodeId(k), cid);
        }
        // Deliver out of order.
        let progress = c.chunk_received(102, blocks[2].data());
        assert!(matches!(progress, ChunkProgress::Progress));
        let progress = c.chunk_received(100, blocks[0].data());
        assert!(matches!(progress, ChunkProgress::Progress));
        match c.chunk_received(101, blocks[1].data()) {
            ChunkProgress::Done {
                manifest_req: 10,
                tag: 7,
                blob,
            } => assert_eq!(blob, data),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_chunk_slots_fill_from_one_response() {
        let mut c = ChunkedClient::new(64);
        let data = vec![3u8; 192]; // three identical chunks
        let (manifest, blocks) = chunker::split(&data, 64);
        let ManifestOutcome::Requests(reqs) = c.on_manifest(1, 0, &manifest.encode()).unwrap()
        else {
            panic!("expected requests");
        };
        assert_eq!(reqs.len(), 1, "one request per distinct CID");
        c.register_chunk_req(50, 1, reqs[0].0, NodeId(0), reqs[0].1);
        match c.chunk_received(50, blocks[0].data()) {
            ChunkProgress::Done { blob, .. } => assert_eq!(blob, data),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_blob_completes_without_requests() {
        let mut c = ChunkedClient::new(64);
        let (manifest, _) = chunker::split(&[], 64);
        match c.on_manifest(1, 4, &manifest.encode()).unwrap() {
            ManifestOutcome::Done { tag: 4, blob } => assert!(blob.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn malformed_manifest_is_a_typed_error() {
        let mut c = ChunkedClient::new(64);
        assert!(c.on_manifest(1, 0, b"garbage").is_err());
        assert!(!c.busy());
    }

    #[test]
    fn corrupt_chunk_cancels_the_whole_fetch() {
        let mut c = ChunkedClient::new(64);
        let data = blob(150);
        let (manifest, _) = chunker::split(&data, 64);
        let ManifestOutcome::Requests(reqs) = c.on_manifest(1, 9, &manifest.encode()).unwrap()
        else {
            panic!("expected requests");
        };
        for (k, &(index, cid)) in reqs.iter().enumerate() {
            c.register_chunk_req(200 + k as u64, 1, index, NodeId(0), cid);
        }
        match c.chunk_received(200, &Bytes::from_static(b"wrong bytes, right length?")) {
            ChunkProgress::Corrupt {
                manifest_req: 1,
                tag: 9,
                cancelled,
            } => assert_eq!(cancelled, vec![201, 202]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(!c.busy());
    }

    #[test]
    fn chunk_failure_cancels_siblings() {
        let mut c = ChunkedClient::new(64);
        let data = blob(150);
        let (manifest, _) = chunker::split(&data, 64);
        let ManifestOutcome::Requests(reqs) = c.on_manifest(1, 2, &manifest.encode()).unwrap()
        else {
            panic!("expected requests");
        };
        for (k, &(index, cid)) in reqs.iter().enumerate() {
            c.register_chunk_req(300 + k as u64, 1, index, NodeId(0), cid);
        }
        let (tag, cancelled) = c.chunk_failed(301).unwrap();
        assert_eq!(tag, 2);
        assert_eq!(cancelled, vec![300, 302]);
        assert!(c.chunk_failed(300).is_none());
    }

    #[test]
    fn outstanding_wires_are_deterministic() {
        let mut c = ChunkedClient::new(64);
        let data = blob(150);
        let (manifest, _) = chunker::split(&data, 64);
        let ManifestOutcome::Requests(reqs) = c.on_manifest(1, 0, &manifest.encode()).unwrap()
        else {
            panic!("expected requests");
        };
        for (k, &(index, cid)) in reqs.iter().enumerate() {
            c.register_chunk_req(400 + k as u64, 1, index, NodeId(k % 2), cid);
        }
        let wires = c.outstanding_chunk_wires();
        let ids: Vec<u64> = wires
            .iter()
            .map(|(_, w)| match w {
                IpfsWire::GetChunk { req_id, .. } => *req_id,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(ids, vec![400, 401, 402]);
    }
}
