//! The trainer actor — the TRAINER procedure of Algorithm 1.
//!
//! Per round: train locally from the current model, split the updated
//! parameter vector into partitions, append the averaging counter, upload
//! each partition (to storage or directly to the aggregator depending on
//! the communication mode), register CIDs (and commitments) with the
//! directory, then poll for the globally updated partitions, divide by the
//! counter, and rebuild the model.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use bytes::Bytes;

use dfl_ipfs::{Cid, IpfsWire};
use dfl_ml::{local_update, Dataset, Model, SgdConfig};
use dfl_netsim::{NodeId, SimDuration, SimTime};

use dfl_crypto::quantize::encode;
use dfl_crypto::schnorr::{Signature, SigningKey};

use crate::accountability::agg_verifying_key;
use crate::chunked::{ChunkProgress, ChunkedClient, ManifestOutcome};
use crate::config::{CommMode, Topology};
use crate::gradient::{
    build_blob, commit_blob, decode_blob, decode_update, flush_verify_queue, sum_gradients,
    verify_blob_timed, verify_blobs_timed, ProtocolCommitment, ProtocolCurve, ProtocolKey,
};
use crate::labels;
use crate::messages::{
    batch_registration_message, overlay_partial_message, overlay_update_message,
    registration_message, Msg,
};
use crate::overlay::OverlayTree;
use crate::protocol::{Actions, ProtocolCore, ProtocolEvent};

const TK_TRAIN: u64 = 1 << 32;
const TK_POLL: u64 = 2 << 32;
const TK_RETRY: u64 = 3 << 32;
/// Overlay-mode level deadline (low 32 bits carry the round it was armed
/// for, so stale timers from finished rounds are ignored).
const TK_OVERLAY: u64 = 4 << 32;

/// One buffered child partial: the child's trainer index, its composed
/// blob, the number of gradients folded into it, the claimed commitment,
/// and the child's signature (authenticated mode).
type ChildPartial = (usize, Vec<u8>, u64, [u8; 33], Option<[u8; 65]>);

/// Shared sink the runner reads trainers' final parameters from after the
/// run ends. `Arc<Mutex<..>>` so socket backends can host each trainer on
/// its own thread; in the single-threaded simulator the lock is free.
pub type ParamSink = Arc<Mutex<HashMap<usize, Vec<f32>>>>;

/// The trainer actor.
pub struct Trainer<M: Model> {
    t: usize,
    topo: Arc<Topology>,
    key: Option<Arc<ProtocolKey>>,
    model: M,
    dataset: Dataset,
    sgd: SgdConfig,
    /// Current global model parameters (updated every round).
    params: Vec<f32>,
    sink: ParamSink,

    // -- per-round state ----------------------------------------------------
    iter: u64,
    round_start: SimTime,
    finished: bool,
    /// Blob + commitment per partition for the current round.
    blobs: HashMap<usize, (Vec<u8>, Option<[u8; 33]>)>,
    /// Put request id → partition awaiting its ack.
    pending_acks: HashMap<u64, usize>,
    acked: usize,
    /// Partitions currently being fetched (update download de-dup).
    fetching: HashSet<usize>,
    /// Get request id → (partition, update cid), kept for retransmission.
    pending_gets: HashMap<u64, (usize, Cid)>,
    /// Downloaded averaged partitions.
    received: HashMap<usize, Vec<f32>>,
    /// Acked registrations awaiting the batched send (compact mode).
    batch_entries: Vec<(usize, Cid, Option<[u8; 33]>)>,
    /// Total accumulated commitment per partition (trainer-verification
    /// mode, §IV-B "can be performed by any participant").
    accumulators: HashMap<usize, ProtocolCommitment>,
    /// Update blobs awaiting an accumulator to verify against.
    unverified_updates: HashMap<usize, Vec<u8>>,
    /// Deferred verification queue (`batch_verify` mode): update blobs
    /// accepted optimistically, settled with one RLC batch check when the
    /// last partition arrives and the round is about to finish.
    pending_verify: Vec<(usize, Vec<u8>, ProtocolCommitment)>,
    /// Blocks uploaded in the current round, released at the next round
    /// (ephemeral storage lifecycle, §VI).
    uploads: Vec<(NodeId, Cid)>,
    /// Chunked mode: the previous round's uploads, kept pinned one extra
    /// round so the new round's chunked put can dedup against them; the
    /// unpins go out at the following round start (pin-new-before-
    /// unpin-old).
    deferred_unpins: Vec<(NodeId, Cid)>,
    /// Chunk DAG planner ([`TaskConfig::chunked_storage`] mode).
    ///
    /// [`TaskConfig::chunked_storage`]: crate::config::TaskConfig::chunked_storage
    chunked: Option<ChunkedClient>,
    /// Registration signing key (authenticated mode).
    signing_key: Option<SigningKey<ProtocolCurve>>,
    polling: bool,
    /// Whether a storage-retransmission timer is armed.
    retrying: bool,
    next_req: u64,

    // -- overlay mode --------------------------------------------------------
    /// Child partials buffered per `(iter, partition)`. Keyed by round
    /// because a fast child can send its level's partial before this
    /// node's own `StartRound` arrives.
    overlay_children: HashMap<(u64, usize), Vec<ChildPartial>>,
    /// Children already counted into a `(iter, partition)` buffer —
    /// duplicates (retransmissions, Byzantine replays) are dropped.
    overlay_seen: HashSet<(u64, usize, usize)>,
    /// Own blobs are built and the node may compose/forward (set when the
    /// TK_TRAIN timer fires, i.e. local training finished).
    overlay_ready: bool,
    /// Partitions whose level partial already went up this round.
    overlay_sent: HashSet<usize>,
}

impl<M: Model> Trainer<M> {
    /// Creates a trainer with its local dataset.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        t: usize,
        topo: Arc<Topology>,
        key: Option<Arc<ProtocolKey>>,
        model: M,
        initial_params: Vec<f32>,
        dataset: Dataset,
        sgd: SgdConfig,
        sink: ParamSink,
    ) -> Trainer<M> {
        assert_eq!(
            initial_params.len(),
            topo.param_count(),
            "parameter count mismatch"
        );
        let signing_key = topo
            .config()
            .authenticate
            .then(|| SigningKey::derive(&topo.config().seed.to_be_bytes(), t as u64));
        let (chunked_storage, chunk_size) =
            (topo.config().chunked_storage, topo.config().chunk_size);
        Trainer {
            t,
            topo,
            key,
            model,
            dataset,
            sgd,
            params: initial_params,
            sink,
            iter: 0,
            round_start: SimTime::ZERO,
            finished: false,
            blobs: HashMap::new(),
            pending_acks: HashMap::new(),
            acked: 0,
            fetching: HashSet::new(),
            pending_gets: HashMap::new(),
            received: HashMap::new(),
            batch_entries: Vec::new(),
            accumulators: HashMap::new(),
            unverified_updates: HashMap::new(),
            pending_verify: Vec::new(),
            uploads: Vec::new(),
            deferred_unpins: Vec::new(),
            chunked: chunked_storage.then(|| ChunkedClient::new(chunk_size)),
            signing_key,
            polling: false,
            retrying: false,
            next_req: 0,
            overlay_children: HashMap::new(),
            overlay_seen: HashSet::new(),
            overlay_ready: false,
            overlay_sent: HashSet::new(),
        }
    }

    fn sign_registration(
        &self,
        partition: usize,
        cid: &Cid,
        commitment: &Option<[u8; 33]>,
    ) -> Option<[u8; 65]> {
        self.signing_key.as_ref().map(|key| {
            let message = registration_message(self.t, partition, self.iter, cid, commitment);
            key.sign(&message).to_bytes()
        })
    }

    fn fresh_req(&mut self) -> u64 {
        self.next_req += 1;
        self.next_req
    }

    /// Deterministic per-round training seed, aligned with
    /// [`dfl_ml::FedAvg::run`] so pipelines can be compared exactly.
    fn round_seed(&self) -> u64 {
        self.topo.config().seed + self.iter * 1000 + self.t as u64
    }

    fn begin_round(&mut self, now: SimTime, out: &mut Actions<Msg>, iter: u64) {
        self.iter = iter;
        self.round_start = now;
        self.finished = false;
        self.blobs.clear();
        self.pending_acks.clear();
        self.acked = 0;
        self.fetching.clear();
        self.pending_gets.clear();
        self.received.clear();
        self.batch_entries.clear();
        self.accumulators.clear();
        self.unverified_updates.clear();
        self.pending_verify.clear();
        self.overlay_ready = false;
        self.overlay_sent.clear();
        if let Some(planner) = &mut self.chunked {
            planner.reset();
        }
        // Keep buffered partials for this and later rounds (children may
        // race ahead of our StartRound); drop anything older.
        self.overlay_children.retain(|&(i, _), _| i >= iter);
        self.overlay_seen.retain(|&(i, _, _)| i >= iter);

        // Release last round's gradient blobs: they have served their
        // purpose once the round completed (§VI ephemeral-data lifecycle).
        // Chunked mode lags the release by one round — the previous
        // round's chunks must still be pinned when this round's manifest
        // negotiates, or there is nothing to dedup against.
        let replicate = self.topo.config().replication;
        if self.chunked.is_some() {
            for (target, cid) in std::mem::take(&mut self.deferred_unpins) {
                let unpin = IpfsWire::Unpin { cid, replicate };
                out.send(target, Msg::Ipfs(unpin));
            }
            self.deferred_unpins = std::mem::take(&mut self.uploads);
        } else {
            for (target, cid) in std::mem::take(&mut self.uploads) {
                let unpin = IpfsWire::Unpin { cid, replicate };
                out.send(target, Msg::Ipfs(unpin));
            }
        }

        // Train now (real computation), charge the virtual compute time,
        // and continue in the TK_TRAIN timer.
        let seed = self.round_seed();
        let new_params = local_update(
            &mut self.model,
            &self.params.clone(),
            &self.dataset,
            &self.sgd,
            seed,
        );

        let mut commit_elements = 0u64;
        for i in 0..self.topo.config().partitions {
            let (s, e) = self.topo.partition_range(i);
            let blob = build_blob(&new_params[s..e]);
            let commitment = self.key.as_ref().map(|key| {
                commit_elements += (e - s + 1) as u64;
                commit_blob(key, &blob)
                    .expect("locally built blob is well-formed")
                    .to_bytes()
            });
            self.blobs.insert(i, (blob, commitment));
        }

        let compute = self.topo.config().train_compute
            + SimDuration::from_micros(self.topo.config().commit_us_per_element * commit_elements);
        out.set_timer(compute, TK_TRAIN);
    }

    fn upload(&mut self, now: SimTime, out: &mut Actions<Msg>) {
        // Overlay mode replaces both the upload and the download path:
        // partials climb the aggregation tree, the final model rides the
        // same edges back down, and lateness is governed by the per-level
        // deadline rather than the flat t_train cut-off.
        if let Some(tree) = self.topo.overlay() {
            self.upload_overlay(out, &tree);
            return;
        }
        // Abort the round if training blew the t_train deadline
        // (Algorithm 1, lines 10–12): skip uploading, but keep polling so
        // the trainer still picks up the next global model.
        let deadline = self.round_start + self.topo.config().t_train;
        if now > deadline {
            out.record("train_abort", self.iter as f64);
            self.start_polling(out);
            return;
        }

        match self.topo.config().comm {
            CommMode::Direct => {
                for i in 0..self.topo.config().partitions {
                    let (blob, commitment) = &self.blobs[&i];
                    let j = self.topo.agg_for_trainer(i, self.t);
                    let to = self.topo.aggregator(self.topo.agg_index(i, j));
                    let msg = Msg::DirectGradient {
                        trainer: self.t,
                        partition: i,
                        iter: self.iter,
                        data: Bytes::from(blob.clone()),
                    };
                    out.send(to, msg);
                    // Register the hash (and commitment) with the directory
                    // so the aggregation-delay metric and the verification
                    // path work identically across communication modes.
                    let cid = Cid::of(blob);
                    let signature = self.sign_registration(i, &cid, commitment);
                    let register = Msg::RegisterGradient {
                        trainer: self.t,
                        partition: i,
                        iter: self.iter,
                        cid,
                        commitment: *commitment,
                        signature,
                    };
                    out.send(self.topo.directory(), register);
                }
                self.start_polling(out);
            }
            CommMode::Indirect | CommMode::MergeAndDownload => {
                out.record(labels::UPLOAD_START, self.iter as f64);
                for i in 0..self.topo.config().partitions {
                    let (blob, _) = &self.blobs[&i];
                    let req_id = self.next_req + 1;
                    self.next_req = req_id;
                    self.pending_acks.insert(req_id, i);
                    let replicate = self.topo.config().replication;
                    let put = match &mut self.chunked {
                        Some(planner) => planner.begin_upload(req_id, blob, replicate),
                        None => IpfsWire::Put {
                            data: Bytes::from(blob.clone()),
                            req_id,
                            replicate,
                        },
                    };
                    // Truly local invariant: this match arm only runs in the
                    // storage-backed comm modes, where every partition has a
                    // storage route by construction.
                    let to = self
                        .topo
                        .upload_target(i, self.t)
                        .expect("storage-backed mode routes uploads through storage");
                    out.send(to, Msg::Ipfs(put));
                }
                self.arm_retry(out);
            }
        }
    }

    /// Overlay upload: leaves forward their partial immediately; interior
    /// nodes arm the level deadline and forward each partition as its
    /// children complete (buffered partials may already be waiting).
    fn upload_overlay(&mut self, out: &mut Actions<Msg>, tree: &OverlayTree) {
        out.record(labels::UPLOAD_START, self.iter as f64);
        self.overlay_ready = true;
        if !tree.children(self.t).is_empty() {
            // Deeper interior nodes get earlier deadlines, so a partial
            // forwarded on timeout still has a level's budget to climb
            // each remaining hop before its ancestors give up in turn.
            let depth_below = (tree.levels() - tree.level(self.t)) as u64;
            let deadline =
                SimDuration::from_micros(self.topo.config().t_sync.as_micros() * depth_below);
            out.set_timer(deadline, TK_OVERLAY | (self.iter & 0xFFFF_FFFF));
        }
        for i in 0..self.topo.config().partitions {
            self.try_forward_overlay(out, tree, i, false);
        }
    }

    /// Composes and forwards one partition's level partial once every
    /// child contribution has arrived (or unconditionally when `force` —
    /// the level deadline — says so). Each child's Pedersen opening (and
    /// signature, when authenticated) is verified, the accepted blobs are
    /// summed with this node's own gradient, the commitments are combined
    /// homomorphically, and a single blob goes one hop up — to the parent
    /// trainer, or from the root to the partition's aggregator.
    fn try_forward_overlay(
        &mut self,
        out: &mut Actions<Msg>,
        tree: &OverlayTree,
        partition: usize,
        force: bool,
    ) {
        if !self.overlay_ready || self.overlay_sent.contains(&partition) {
            return;
        }
        let expected = tree.children(self.t).len();
        let arrived = self
            .overlay_children
            .get(&(self.iter, partition))
            .map_or(0, Vec::len);
        if arrived < expected {
            if !force {
                return;
            }
            out.record(labels::OVERLAY_TIMEOUT, (expected - arrived) as f64);
        }
        self.overlay_sent.insert(partition);
        let buffered = self
            .overlay_children
            .remove(&(self.iter, partition))
            .unwrap_or_default();

        // Validate the children: parseable commitment, authentic
        // signature, then one batched Pedersen opening check over the
        // survivors (the batch is empty at leaves and costs nothing).
        let key = self
            .key
            .as_ref()
            .expect("overlay requires verifiable mode") // TaskConfig::validate
            .clone();
        let seed = self.topo.config().seed.to_be_bytes();
        let mut candidates: Vec<(usize, Vec<u8>, u64, ProtocolCommitment)> = Vec::new();
        for (child, blob, count, commitment, signature) in buffered {
            let Some(point) = ProtocolCommitment::from_bytes(&commitment) else {
                out.record(labels::OVERLAY_CHILD_REJECTED, child as f64);
                continue;
            };
            if self.topo.config().authenticate {
                let vk = SigningKey::<ProtocolCurve>::derive(&seed, child as u64).verifying_key();
                let msg = overlay_partial_message(
                    child,
                    partition,
                    self.iter,
                    count,
                    &Cid::of(&blob),
                    &commitment,
                );
                let authentic = signature
                    .and_then(|b| Signature::<ProtocolCurve>::from_bytes(&b))
                    .is_some_and(|sig| vk.verify(&msg, &sig));
                if !authentic {
                    out.record(labels::OVERLAY_CHILD_REJECTED, child as f64);
                    continue;
                }
            }
            candidates.push((child, blob, count, point));
        }
        let items: Vec<(&[u8], &ProtocolCommitment)> = candidates
            .iter()
            .map(|(_, blob, _, point)| (blob.as_slice(), point))
            .collect();
        let culprits: HashSet<usize> = verify_blobs_timed(out, &key, &items).into_iter().collect();

        // Sum the accepted child partials with this node's own gradient.
        // The i128-exact summation makes the composed total bit-identical
        // to the flat aggregator's sum of the same leaves, independent of
        // tree shape — addition never rounds, so association is free.
        let (own_blob, own_commitment) = self.blobs[&partition].clone();
        let own_commitment = own_commitment.expect("overlay requires verifiable mode");
        let mut grads = Vec::with_capacity(1 + candidates.len());
        let mut commits = Vec::with_capacity(1 + candidates.len());
        let mut count = 1u64;
        grads.push(decode_blob(&own_blob).expect("locally built blob is well-formed"));
        commits.push(
            ProtocolCommitment::from_bytes(&own_commitment)
                .expect("locally built commitment is a curve point"),
        );
        for (i, (child, blob, child_count, point)) in candidates.iter().enumerate() {
            if culprits.contains(&i) {
                out.record(labels::OVERLAY_CHILD_REJECTED, *child as f64);
                continue;
            }
            let accepted = decode_blob(blob).filter(|d| d.len() == grads[0].len());
            let Some(decoded) = accepted else {
                // Opens its commitment but doesn't decode to this
                // partition's shape: drop it like any other bad child.
                out.record(labels::OVERLAY_CHILD_REJECTED, *child as f64);
                continue;
            };
            grads.push(decoded);
            commits.push(*point);
            count += child_count;
        }
        let summed = match sum_gradients(&grads) {
            Ok(s) => s,
            Err(_) => {
                out.record(labels::SUM_OVERFLOW, self.iter as f64);
                return;
            }
        };
        let blob = if grads.len() == 1 {
            own_blob // no accepted children: the partial is the own blob verbatim
        } else {
            encode(&summed)
        };
        let commitment = ProtocolCommitment::accumulate(commits.iter()).to_bytes();
        let cid = Cid::of(&blob);
        let signature = self.signing_key.as_ref().map(|k| {
            let msg =
                overlay_partial_message(self.t, partition, self.iter, count, &cid, &commitment);
            k.sign(&msg).to_bytes()
        });
        let to = match tree.parent(self.t) {
            Some(p) => self.topo.trainer(p),
            // The root hands the fully composed partial to the
            // partition's (single) aggregator slot.
            None => self.topo.aggregator(self.topo.agg_index(partition, 0)),
        };
        out.send(
            to,
            Msg::OverlayPartial {
                trainer: self.t,
                partition,
                iter: self.iter,
                data: Bytes::from(blob),
                count,
                commitment,
                signature,
            },
        );
        out.record(labels::OVERLAY_FORWARDED, partition as f64);
        if self.overlay_sent.len() == self.topo.config().partitions {
            out.record(labels::UPLOAD_DONE, self.iter as f64);
        }
    }

    /// Buffers one child partial (de-duplicated) and forwards the level if
    /// it is now complete. Partials for future rounds are held until this
    /// node's own `StartRound` catches up.
    #[allow(clippy::too_many_arguments)]
    fn on_overlay_partial(
        &mut self,
        out: &mut Actions<Msg>,
        tree: &OverlayTree,
        trainer: usize,
        partition: usize,
        iter: u64,
        data: Bytes,
        count: u64,
        commitment: [u8; 33],
        signature: Option<[u8; 65]>,
    ) {
        if iter < self.iter {
            return; // late for a level that already went up — harmless
        }
        // Only accept partials from this node's actual children: the tree
        // is a pure function of the shared config, so a partial arriving
        // from anywhere else is misrouted or forged.
        if trainer >= tree.len()
            || tree.parent(trainer) != Some(self.t)
            || partition >= self.topo.config().partitions
        {
            out.record(labels::OVERLAY_CHILD_REJECTED, trainer as f64);
            return;
        }
        if !self.overlay_seen.insert((iter, partition, trainer)) {
            return; // duplicate (retransmission or replay)
        }
        out.record(labels::OVERLAY_CHILD_RECV, partition as f64);
        self.overlay_children
            .entry((iter, partition))
            .or_default()
            .push((trainer, data.to_vec(), count, commitment, signature));
        if iter == self.iter {
            self.try_forward_overlay(out, tree, partition, false);
        }
    }

    /// Applies a final update pushed down the dissemination tree and
    /// relays it verbatim to this node's children.
    fn on_overlay_update(
        &mut self,
        out: &mut Actions<Msg>,
        tree: &OverlayTree,
        partition: usize,
        data: Bytes,
        signature: Option<[u8; 65]>,
    ) {
        if self.finished || self.received.contains_key(&partition) {
            return; // already applied — and already relayed downward
        }
        if self.topo.config().authenticate {
            let g = self.topo.agg_index(partition, 0);
            let vk = agg_verifying_key(self.topo.config().seed, g);
            let msg = overlay_update_message(g, partition, self.iter, &Cid::of(&data));
            let authentic = signature
                .and_then(|b| Signature::<ProtocolCurve>::from_bytes(&b))
                .is_some_and(|sig| vk.verify(&msg, &sig));
            if !authentic {
                out.record(labels::OVERLAY_UPDATE_REJECTED, partition as f64);
                return;
            }
        }
        // Relay before applying: the subtree is waiting on this hop.
        for child in tree.children(self.t) {
            out.send(
                self.topo.trainer(child),
                Msg::OverlayUpdate {
                    partition,
                    iter: self.iter,
                    data: data.clone(),
                    signature,
                },
            );
        }
        let Some((averaged, _count)) = decode_update(&data) else {
            return;
        };
        if averaged.len() != self.topo.partition_len(partition) {
            return;
        }
        self.received.insert(partition, averaged);
        if self.received.len() == self.topo.config().partitions {
            self.finish_round(out);
        }
    }

    /// Arms the storage-retransmission timer: a Put or Get sent to a
    /// storage node that crashes before answering is silently lost, so
    /// anything still unanswered after `fetch_timeout` is re-sent.
    fn arm_retry(&mut self, out: &mut Actions<Msg>) {
        if !self.retrying {
            self.retrying = true;
            let token = TK_RETRY | (self.iter & 0xFFFF_FFFF);
            out.set_timer(self.topo.config().fetch_timeout, token);
        }
    }

    fn on_retry(&mut self, out: &mut Actions<Msg>, iter: u64) {
        self.retrying = false;
        if iter != self.iter || self.finished {
            // Stale timer from a previous round; re-cover the current one.
            if !self.pending_acks.is_empty()
                || !self.pending_gets.is_empty()
                || self.chunked.as_ref().is_some_and(ChunkedClient::busy)
            {
                self.arm_retry(out);
            }
            return;
        }
        // Re-send in request order — iterating the maps directly would make
        // the wire order (and so the whole simulation) nondeterministic.
        let mut puts: Vec<(u64, usize)> = self.pending_acks.iter().map(|(&r, &p)| (r, p)).collect();
        puts.sort_unstable();
        for (req_id, partition) in puts {
            let (blob, _) = &self.blobs[&partition];
            // Chunked mode retransmits the manifest; the provider treats a
            // repeated PutChunked as a fresh negotiation.
            let put = match &self.chunked {
                Some(planner) => planner
                    .upload_wire(req_id)
                    .unwrap_or_else(|| panic!("pending ack {req_id} has no chunked upload")),
                None => IpfsWire::Put {
                    data: Bytes::from(blob.clone()),
                    req_id,
                    replicate: self.topo.config().replication,
                },
            };
            // Truly local invariant: pending_acks is only populated by the
            // storage-backed upload path, never from remote input.
            let to = self
                .topo
                .upload_target(partition, self.t)
                .expect("retries only exist for storage-backed uploads");
            out.send(to, Msg::Ipfs(put));
        }
        let mut gets: Vec<(u64, Cid)> = self
            .pending_gets
            .iter()
            .map(|(&r, &(_, cid))| (r, cid))
            .collect();
        gets.sort_unstable_by_key(|&(r, _)| r);
        let gateway = self.topo.trainer_gateway(self.t);
        for (req_id, cid) in gets {
            let get = IpfsWire::Get { cid, req_id };
            out.send(gateway, Msg::Ipfs(get));
        }
        if let Some(planner) = &self.chunked {
            for (to, wire) in planner.outstanding_chunk_wires() {
                out.send(to, Msg::Ipfs(wire));
            }
        }
        if !self.pending_acks.is_empty()
            || !self.pending_gets.is_empty()
            || self.chunked.as_ref().is_some_and(ChunkedClient::busy)
        {
            self.arm_retry(out);
        }
    }

    fn on_put_ack(&mut self, out: &mut Actions<Msg>, cid: Cid, req_id: u64) {
        let Some(partition) = self.pending_acks.remove(&req_id) else {
            return;
        };
        // A storage acknowledgment whose partition has no storage route is
        // a misrouted or duplicated frame from the backend — per-node
        // request ids are small integers, so a frame delivered to the
        // wrong node can collide with a live id here
        // ([`IplsError::MisroutedAck`](crate::IplsError)). Book and drop
        // it rather than killing the node.
        let Ok(target) = self.topo.upload_target(partition, self.t) else {
            out.incr(labels::MISROUTED_ACK, 1);
            return;
        };
        if let Some(planner) = &mut self.chunked {
            if let Some(stats) = planner.finish_upload(req_id) {
                out.incr(labels::CHUNKS_SENT, stats.sent);
                out.incr(labels::CHUNKS_DEDUPED, stats.deduped);
                out.incr(labels::DEDUP_BYTES_SAVED, stats.saved_bytes);
            }
        }
        self.uploads.push((target, cid));
        let commitment = self.blobs[&partition].1;
        if self.topo.config().compact_registration {
            // Accumulate; one batched registration goes out with the last
            // acknowledgment (§VI directory-load reduction).
            self.batch_entries.push((partition, cid, commitment));
        } else {
            let signature = self.sign_registration(partition, &cid, &commitment);
            let msg = Msg::RegisterGradient {
                trainer: self.t,
                partition,
                iter: self.iter,
                cid,
                commitment,
                signature,
            };
            out.send(self.topo.directory(), msg);
        }
        self.acked += 1;
        if self.acked == self.topo.config().partitions {
            if self.topo.config().compact_registration {
                let entries = std::mem::take(&mut self.batch_entries);
                let signature = self.signing_key.as_ref().map(|key| {
                    key.sign(&batch_registration_message(self.t, self.iter, &entries))
                        .to_bytes()
                });
                let msg = Msg::RegisterGradientBatch {
                    trainer: self.t,
                    iter: self.iter,
                    entries,
                    signature,
                };
                out.send(self.topo.directory(), msg);
            }
            // Upload delay = last store acknowledgment − upload start (§V).
            out.record(labels::UPLOAD_DONE, self.iter as f64);
            self.start_polling(out);
        }
    }

    fn start_polling(&mut self, out: &mut Actions<Msg>) {
        if !self.polling {
            self.polling = true;
            out.set_timer(self.topo.config().poll_interval, TK_POLL);
        }
    }

    fn poll(&mut self, out: &mut Actions<Msg>) {
        if self.finished {
            self.polling = false;
            return;
        }
        let mut outstanding = false;
        for i in 0..self.topo.config().partitions {
            if !self.received.contains_key(&i) && !self.fetching.contains(&i) {
                outstanding = true;
                let msg = Msg::QueryUpdate {
                    partition: i,
                    iter: self.iter,
                };
                out.send(self.topo.directory(), msg);
            }
            if self.topo.config().trainer_verifies
                && !self.received.contains_key(&i)
                && !self.accumulators.contains_key(&i)
            {
                outstanding = true;
                let msg = Msg::QueryTotalAccumulator {
                    partition: i,
                    iter: self.iter,
                };
                out.send(self.topo.directory(), msg);
            }
        }
        if outstanding || !self.fetching.is_empty() {
            out.set_timer(self.topo.config().poll_interval, TK_POLL);
        } else {
            self.polling = false;
        }
    }

    fn on_update_info(&mut self, out: &mut Actions<Msg>, partition: usize, cid: Option<Cid>) {
        let Some(cid) = cid else { return };
        if self.finished
            || self.received.contains_key(&partition)
            || self.unverified_updates.contains_key(&partition)
            || self.fetching.contains(&partition)
        {
            return;
        }
        self.fetching.insert(partition);
        let req_id = self.fresh_req();
        self.pending_gets.insert(req_id, (partition, cid));
        let get = IpfsWire::Get { cid, req_id };
        let gateway = self.topo.trainer_gateway(self.t);
        out.send(gateway, Msg::Ipfs(get));
        self.arm_retry(out);
    }

    fn on_update_blob(&mut self, out: &mut Actions<Msg>, req_id: u64, data: &[u8]) {
        let Some((partition, _)) = self.pending_gets.remove(&req_id) else {
            return;
        };
        self.fetching.remove(&partition);
        self.accept_update(out, partition, data.to_vec());
    }

    /// Chunked-mode `GetOk` routing: a response is either the manifest of
    /// a pending update download (then the chunk fan-out starts, striped
    /// across the storage nodes) or one chunk of an in-flight reassembly.
    fn on_chunked_get_ok(&mut self, out: &mut Actions<Msg>, req_id: u64, data: &Bytes) {
        let Some(planner) = &mut self.chunked else {
            return;
        };
        if let Some((partition, _)) = self.pending_gets.remove(&req_id) {
            match planner.on_manifest(req_id, partition as u64, data) {
                Ok(ManifestOutcome::Done { blob, .. }) => {
                    self.fetching.remove(&partition);
                    self.accept_update(out, partition, blob);
                }
                Ok(ManifestOutcome::Requests(requests)) => {
                    let ipfs_nodes = self.topo.config().ipfs_nodes;
                    for (index, cid) in requests {
                        let chunk_req = self.next_req + 1;
                        self.next_req = chunk_req;
                        // Stripe chunk requests round-robin over the
                        // storage nodes, starting from this trainer's
                        // gateway offset so concurrent downloaders spread
                        // their load.
                        let k = (self.t + index) % ipfs_nodes;
                        let to = self.topo.ipfs_node(k);
                        let planner = self.chunked.as_mut().expect("chunked mode");
                        planner.register_chunk_req(chunk_req, req_id, index, to, cid);
                        out.record(labels::CHUNK_STRIPE, k as f64);
                        out.send(
                            to,
                            Msg::Ipfs(IpfsWire::GetChunk {
                                cid,
                                req_id: chunk_req,
                            }),
                        );
                    }
                    self.arm_retry(out);
                }
                Err(_) => {
                    // Corrupt manifest bytes: drop the download and let
                    // the poll loop re-offer the update.
                    out.incr(labels::CHUNK_DECODE_FAILED, 1);
                    self.fetching.remove(&partition);
                }
            }
            return;
        }
        match planner.chunk_received(req_id, data) {
            ChunkProgress::NotMine | ChunkProgress::Progress => {}
            ChunkProgress::Done { tag, blob, .. } => {
                let partition = tag as usize;
                self.fetching.remove(&partition);
                self.accept_update(out, partition, blob);
            }
            ChunkProgress::Corrupt { tag, .. } => {
                out.incr(labels::CHUNK_DECODE_FAILED, 1);
                self.fetching.remove(&(tag as usize));
            }
        }
    }

    /// Validates (and in trainer-verification mode, cryptographically
    /// verifies) a downloaded update blob, then applies it.
    fn accept_update(&mut self, out: &mut Actions<Msg>, partition: usize, data: Vec<u8>) {
        if self.finished || self.received.contains_key(&partition) {
            return;
        }
        if self.topo.config().trainer_verifies {
            match self.accumulators.get(&partition) {
                Some(acc) => {
                    let acc = *acc;
                    // Truly local invariant: TaskConfig::validate rejects
                    // trainer_verifies without verifiable, so the key
                    // always exists on this path.
                    let key = self.key.as_ref().expect("verifiable mode").clone();
                    if self.topo.config().batch_verify {
                        // Deferred mode: accept optimistically and queue
                        // the blob for the end-of-round flush. Count it
                        // now — the instant the per-blob path verifies —
                        // so `blobs_verified` totals match per-blob mode
                        // even in rounds that never complete.
                        out.incr(labels::BLOBS_VERIFIED, 1);
                        self.pending_verify.push((partition, data.clone(), acc));
                    } else if !verify_blob_timed(out, &key, &data, &acc) {
                        // Never accept an unverified update (the poll loop
                        // will re-fetch if a correct one appears).
                        out.record("trainer_rejected_update", partition as f64);
                        return;
                    }
                }
                None => {
                    // Accumulator not known yet; stash and re-check later.
                    self.unverified_updates.insert(partition, data);
                    return;
                }
            }
        }
        let Some((averaged, _count)) = decode_update(&data) else {
            return; // corrupt update: retry via polling
        };
        if averaged.len() != self.topo.partition_len(partition) {
            return;
        }
        self.received.insert(partition, averaged);
        if self.received.len() == self.topo.config().partitions && self.flush_pending_verify(out) {
            self.finish_round(out);
        }
    }

    /// Settles the deferred update-verification queue (`batch_verify`
    /// mode) with one RLC batch check; returns whether the round may
    /// finish (no culprits). A culprit partition is rejected exactly as
    /// the per-blob path rejects it at arrival — dropped from `received`
    /// so the poll loop re-fetches it.
    fn flush_pending_verify(&mut self, out: &mut Actions<Msg>) -> bool {
        if self.pending_verify.is_empty() {
            return true;
        }
        let Some(key) = self.key.clone() else {
            return true; // unreachable: entries only queue in verifiable mode
        };
        let pending = std::mem::take(&mut self.pending_verify);
        let items: Vec<(&[u8], &ProtocolCommitment)> = pending
            .iter()
            .map(|(_, blob, acc)| (blob.as_slice(), acc))
            .collect();
        // Blobs were counted at enqueue time; the flush books only the
        // wall-clock and batch-size metrics.
        let culprits = flush_verify_queue(out, &key, &items);
        for &i in &culprits {
            let partition = pending[i].0;
            out.record("trainer_rejected_update", partition as f64);
            self.received.remove(&partition);
        }
        culprits.is_empty()
    }

    fn finish_round(&mut self, out: &mut Actions<Msg>) {
        self.finished = true;
        // Rebuild the full model by concatenating updated partitions
        // (Algorithm 1, line 23).
        for (i, values) in self.received.drain() {
            let (s, e) = self.topo.partition_range(i);
            self.params[s..e].copy_from_slice(&values);
        }
        self.sink
            .lock()
            .expect("param sink")
            .insert(self.t, self.params.clone());
        out.record(labels::TRAINER_ROUND_DONE, self.iter as f64);
        let msg = Msg::TrainerDone {
            trainer: self.t,
            iter: self.iter,
        };
        out.send(self.topo.directory(), msg);
        self.polling = false;
    }
}

impl<M: Model> ProtocolCore for Trainer<M> {
    type Msg = Msg;

    fn handle(&mut self, now: SimTime, event: ProtocolEvent<Msg>, out: &mut Actions<Msg>) {
        let (from, msg) = match event {
            ProtocolEvent::Message { from, msg } => (from, msg),
            ProtocolEvent::Timer { token } => {
                match token & !0xFFFF_FFFF {
                    TK_TRAIN => self.upload(now, out),
                    TK_POLL => self.poll(out),
                    TK_RETRY => self.on_retry(out, token & 0xFFFF_FFFF),
                    TK_OVERLAY
                        if (token & 0xFFFF_FFFF) == (self.iter & 0xFFFF_FFFF)
                            && !self.finished =>
                    {
                        // Level deadline: forward every partition still
                        // waiting on children, with whatever arrived.
                        if let Some(tree) = self.topo.overlay() {
                            for i in 0..self.topo.config().partitions {
                                self.try_forward_overlay(out, &tree, i, true);
                            }
                        }
                    }
                    _ => {}
                }
                return;
            }
            ProtocolEvent::Start | ProtocolEvent::Fault { .. } => return,
            ProtocolEvent::DeliveryFailure { .. } => {
                out.incr(labels::DELIVERY_FAILED, 1);
                return;
            }
        };
        match msg {
            Msg::StartRound { iter } => self.begin_round(now, out, iter),
            Msg::UpdateInfo {
                partition,
                iter,
                cid,
            } if iter == self.iter => {
                self.on_update_info(out, partition, cid);
            }
            Msg::TotalAccumulator {
                partition,
                iter,
                accumulated,
            } if iter == self.iter => {
                if let Some(c) = accumulated.and_then(|b| ProtocolCommitment::from_bytes(&b)) {
                    self.accumulators.entry(partition).or_insert(c);
                    if let Some(blob) = self.unverified_updates.remove(&partition) {
                        self.accept_update(out, partition, blob);
                    }
                }
            }
            Msg::Ipfs(IpfsWire::PutAck { cid, req_id }) => self.on_put_ack(out, cid, req_id),
            Msg::Ipfs(IpfsWire::ChunkWant { cids, req_id })
                if self.pending_acks.contains_key(&req_id) =>
            {
                // A provider's want-list for one of our chunked uploads:
                // answer with exactly the requested chunk payloads. Stale
                // or forged want-lists are dropped by the planner.
                if let Some(planner) = &mut self.chunked {
                    if let Some(fill) = planner.on_chunk_want(req_id, &cids) {
                        out.send(from, Msg::Ipfs(fill));
                    }
                }
            }
            Msg::Ipfs(IpfsWire::PutChunkedErr { req_id, .. })
                if self.pending_acks.contains_key(&req_id) =>
            {
                // The provider refused the negotiation (e.g. its state was
                // lost mid-fill after a crash). Keep the pending ack: the
                // retransmission timer re-sends the manifest and the
                // negotiation starts over.
                out.record("put_chunked_rejected", req_id as f64);
            }
            Msg::Ipfs(IpfsWire::GetOk { data, req_id, .. }) => {
                if self.chunked.is_some() {
                    self.on_chunked_get_ok(out, req_id, &data);
                } else {
                    let data = data.to_vec();
                    self.on_update_blob(out, req_id, &data);
                }
            }
            Msg::Ipfs(IpfsWire::GetErr { req_id, .. }) => {
                // Allow the poll loop to retry the partition.
                if let Some((partition, _)) = self.pending_gets.remove(&req_id) {
                    self.fetching.remove(&partition);
                } else if let Some(planner) = &mut self.chunked {
                    // A failed chunk fetch abandons the whole reassembly;
                    // polling re-offers the manifest later.
                    if let Some((tag, _)) = planner.chunk_failed(req_id) {
                        self.fetching.remove(&(tag as usize));
                    }
                }
            }
            Msg::OverlayPartial {
                trainer,
                partition,
                iter,
                data,
                count,
                commitment,
                signature,
            } => {
                if let Some(tree) = self.topo.overlay() {
                    self.on_overlay_partial(
                        out, &tree, trainer, partition, iter, data, count, commitment, signature,
                    );
                }
            }
            Msg::OverlayUpdate {
                partition,
                iter,
                data,
                signature,
            } if iter == self.iter => {
                if let Some(tree) = self.topo.overlay() {
                    self.on_overlay_update(out, &tree, partition, data, signature);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaskConfig;
    use crate::protocol::ProtocolAction;
    use dfl_ml::{data, LogisticRegression};

    /// Regression: a storage acknowledgment colliding with a live request
    /// id in a mode with no storage route must be booked
    /// ([`IplsError::MisroutedAck`](crate::IplsError)) and dropped — it
    /// used to kill the node via
    /// `.expect("puts are only acked in storage-backed modes")`.
    #[test]
    fn misrouted_put_ack_is_booked_not_fatal() {
        let cfg = TaskConfig {
            trainers: 2,
            partitions: 1,
            comm: CommMode::Direct,
            ..TaskConfig::default()
        };
        let model = LogisticRegression::new(2, 2);
        let params = model.params();
        let topo = Arc::new(Topology::new(cfg, params.len()).unwrap());
        let dataset = data::make_blobs(8, 2, 2, 0.5, 1);
        let sink: ParamSink = Arc::new(Mutex::new(HashMap::new()));
        let mut trainer = Trainer::new(
            0,
            topo,
            None,
            model,
            params,
            dataset,
            SgdConfig::default(),
            sink,
        );
        // A frame delivered to the wrong node whose req_id collides with
        // a live one — per-node request ids are small integers.
        trainer.pending_acks.insert(7, 0);
        let mut out = Actions::new();
        trainer.handle(
            SimTime::ZERO,
            ProtocolEvent::Message {
                from: NodeId(1),
                msg: Msg::Ipfs(IpfsWire::PutAck {
                    cid: Cid::of(b"x"),
                    req_id: 7,
                }),
            },
            &mut out,
        );
        let booked = out.drain().any(
            |a| matches!(a, ProtocolAction::Incr { label, .. } if label == labels::MISROUTED_ACK),
        );
        assert!(booked, "misrouted ack must increment the counter");
    }
}
