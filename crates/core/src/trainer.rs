//! The trainer actor — the TRAINER procedure of Algorithm 1.
//!
//! Per round: train locally from the current model, split the updated
//! parameter vector into partitions, append the averaging counter, upload
//! each partition (to storage or directly to the aggregator depending on
//! the communication mode), register CIDs (and commitments) with the
//! directory, then poll for the globally updated partitions, divide by the
//! counter, and rebuild the model.

use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

use bytes::Bytes;

use dfl_ipfs::{Cid, IpfsWire};
use dfl_ml::{local_update, Dataset, Model, SgdConfig};
use dfl_netsim::{NodeId, SimDuration, SimTime};

use dfl_crypto::schnorr::SigningKey;

use crate::config::{CommMode, Topology};
use crate::gradient::{
    build_blob, commit_blob, decode_update, flush_verify_queue, verify_blob_timed,
    ProtocolCommitment, ProtocolCurve, ProtocolKey,
};
use crate::labels;
use crate::messages::{batch_registration_message, registration_message, Msg};
use crate::protocol::{Actions, ProtocolCore, ProtocolEvent};

const TK_TRAIN: u64 = 1 << 32;
const TK_POLL: u64 = 2 << 32;
const TK_RETRY: u64 = 3 << 32;

/// Shared sink the runner reads trainers' final parameters from after the
/// run ends. `Arc<Mutex<..>>` so socket backends can host each trainer on
/// its own thread; in the single-threaded simulator the lock is free.
pub type ParamSink = Arc<Mutex<HashMap<usize, Vec<f32>>>>;

/// The trainer actor.
pub struct Trainer<M: Model> {
    t: usize,
    topo: Arc<Topology>,
    key: Option<Arc<ProtocolKey>>,
    model: M,
    dataset: Dataset,
    sgd: SgdConfig,
    /// Current global model parameters (updated every round).
    params: Vec<f32>,
    sink: ParamSink,

    // -- per-round state ----------------------------------------------------
    iter: u64,
    round_start: SimTime,
    finished: bool,
    /// Blob + commitment per partition for the current round.
    blobs: HashMap<usize, (Vec<u8>, Option<[u8; 33]>)>,
    /// Put request id → partition awaiting its ack.
    pending_acks: HashMap<u64, usize>,
    acked: usize,
    /// Partitions currently being fetched (update download de-dup).
    fetching: HashSet<usize>,
    /// Get request id → (partition, update cid), kept for retransmission.
    pending_gets: HashMap<u64, (usize, Cid)>,
    /// Downloaded averaged partitions.
    received: HashMap<usize, Vec<f32>>,
    /// Acked registrations awaiting the batched send (compact mode).
    batch_entries: Vec<(usize, Cid, Option<[u8; 33]>)>,
    /// Total accumulated commitment per partition (trainer-verification
    /// mode, §IV-B "can be performed by any participant").
    accumulators: HashMap<usize, ProtocolCommitment>,
    /// Update blobs awaiting an accumulator to verify against.
    unverified_updates: HashMap<usize, Vec<u8>>,
    /// Deferred verification queue (`batch_verify` mode): update blobs
    /// accepted optimistically, settled with one RLC batch check when the
    /// last partition arrives and the round is about to finish.
    pending_verify: Vec<(usize, Vec<u8>, ProtocolCommitment)>,
    /// Blocks uploaded in the current round, released at the next round
    /// (ephemeral storage lifecycle, §VI).
    uploads: Vec<(NodeId, Cid)>,
    /// Registration signing key (authenticated mode).
    signing_key: Option<SigningKey<ProtocolCurve>>,
    polling: bool,
    /// Whether a storage-retransmission timer is armed.
    retrying: bool,
    next_req: u64,
}

impl<M: Model> Trainer<M> {
    /// Creates a trainer with its local dataset.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        t: usize,
        topo: Arc<Topology>,
        key: Option<Arc<ProtocolKey>>,
        model: M,
        initial_params: Vec<f32>,
        dataset: Dataset,
        sgd: SgdConfig,
        sink: ParamSink,
    ) -> Trainer<M> {
        assert_eq!(
            initial_params.len(),
            topo.param_count(),
            "parameter count mismatch"
        );
        let signing_key = topo
            .config()
            .authenticate
            .then(|| SigningKey::derive(&topo.config().seed.to_be_bytes(), t as u64));
        Trainer {
            t,
            topo,
            key,
            model,
            dataset,
            sgd,
            params: initial_params,
            sink,
            iter: 0,
            round_start: SimTime::ZERO,
            finished: false,
            blobs: HashMap::new(),
            pending_acks: HashMap::new(),
            acked: 0,
            fetching: HashSet::new(),
            pending_gets: HashMap::new(),
            received: HashMap::new(),
            batch_entries: Vec::new(),
            accumulators: HashMap::new(),
            unverified_updates: HashMap::new(),
            pending_verify: Vec::new(),
            uploads: Vec::new(),
            signing_key,
            polling: false,
            retrying: false,
            next_req: 0,
        }
    }

    fn sign_registration(
        &self,
        partition: usize,
        cid: &Cid,
        commitment: &Option<[u8; 33]>,
    ) -> Option<[u8; 65]> {
        self.signing_key.as_ref().map(|key| {
            let message = registration_message(self.t, partition, self.iter, cid, commitment);
            key.sign(&message).to_bytes()
        })
    }

    fn fresh_req(&mut self) -> u64 {
        self.next_req += 1;
        self.next_req
    }

    /// Deterministic per-round training seed, aligned with
    /// [`dfl_ml::FedAvg::run`] so pipelines can be compared exactly.
    fn round_seed(&self) -> u64 {
        self.topo.config().seed + self.iter * 1000 + self.t as u64
    }

    fn begin_round(&mut self, now: SimTime, out: &mut Actions<Msg>, iter: u64) {
        self.iter = iter;
        self.round_start = now;
        self.finished = false;
        self.blobs.clear();
        self.pending_acks.clear();
        self.acked = 0;
        self.fetching.clear();
        self.pending_gets.clear();
        self.received.clear();
        self.batch_entries.clear();
        self.accumulators.clear();
        self.unverified_updates.clear();
        self.pending_verify.clear();

        // Release last round's gradient blobs: they have served their
        // purpose once the round completed (§VI ephemeral-data lifecycle).
        let replicate = self.topo.config().replication;
        for (target, cid) in std::mem::take(&mut self.uploads) {
            let unpin = IpfsWire::Unpin { cid, replicate };
            out.send(target, Msg::Ipfs(unpin));
        }

        // Train now (real computation), charge the virtual compute time,
        // and continue in the TK_TRAIN timer.
        let seed = self.round_seed();
        let new_params = local_update(
            &mut self.model,
            &self.params.clone(),
            &self.dataset,
            &self.sgd,
            seed,
        );

        let mut commit_elements = 0u64;
        for i in 0..self.topo.config().partitions {
            let (s, e) = self.topo.partition_range(i);
            let blob = build_blob(&new_params[s..e]);
            let commitment = self.key.as_ref().map(|key| {
                commit_elements += (e - s + 1) as u64;
                commit_blob(key, &blob)
                    .expect("locally built blob is well-formed")
                    .to_bytes()
            });
            self.blobs.insert(i, (blob, commitment));
        }

        let compute = self.topo.config().train_compute
            + SimDuration::from_micros(self.topo.config().commit_us_per_element * commit_elements);
        out.set_timer(compute, TK_TRAIN);
    }

    fn upload(&mut self, now: SimTime, out: &mut Actions<Msg>) {
        // Abort the round if training blew the t_train deadline
        // (Algorithm 1, lines 10–12): skip uploading, but keep polling so
        // the trainer still picks up the next global model.
        let deadline = self.round_start + self.topo.config().t_train;
        if now > deadline {
            out.record("train_abort", self.iter as f64);
            self.start_polling(out);
            return;
        }

        match self.topo.config().comm {
            CommMode::Direct => {
                for i in 0..self.topo.config().partitions {
                    let (blob, commitment) = &self.blobs[&i];
                    let j = self.topo.agg_for_trainer(i, self.t);
                    let to = self.topo.aggregator(self.topo.agg_index(i, j));
                    let msg = Msg::DirectGradient {
                        trainer: self.t,
                        partition: i,
                        iter: self.iter,
                        data: Bytes::from(blob.clone()),
                    };
                    out.send(to, msg);
                    // Register the hash (and commitment) with the directory
                    // so the aggregation-delay metric and the verification
                    // path work identically across communication modes.
                    let cid = Cid::of(blob);
                    let signature = self.sign_registration(i, &cid, commitment);
                    let register = Msg::RegisterGradient {
                        trainer: self.t,
                        partition: i,
                        iter: self.iter,
                        cid,
                        commitment: *commitment,
                        signature,
                    };
                    out.send(self.topo.directory(), register);
                }
                self.start_polling(out);
            }
            CommMode::Indirect | CommMode::MergeAndDownload => {
                out.record(labels::UPLOAD_START, self.iter as f64);
                for i in 0..self.topo.config().partitions {
                    let (blob, _) = &self.blobs[&i];
                    let req_id = self.next_req + 1;
                    self.next_req = req_id;
                    self.pending_acks.insert(req_id, i);
                    let put = IpfsWire::Put {
                        data: Bytes::from(blob.clone()),
                        req_id,
                        replicate: self.topo.config().replication,
                    };
                    let to = self
                        .topo
                        .upload_target(i, self.t)
                        .expect("storage-backed mode routes uploads through storage");
                    out.send(to, Msg::Ipfs(put));
                }
                self.arm_retry(out);
            }
        }
    }

    /// Arms the storage-retransmission timer: a Put or Get sent to a
    /// storage node that crashes before answering is silently lost, so
    /// anything still unanswered after `fetch_timeout` is re-sent.
    fn arm_retry(&mut self, out: &mut Actions<Msg>) {
        if !self.retrying {
            self.retrying = true;
            let token = TK_RETRY | (self.iter & 0xFFFF_FFFF);
            out.set_timer(self.topo.config().fetch_timeout, token);
        }
    }

    fn on_retry(&mut self, out: &mut Actions<Msg>, iter: u64) {
        self.retrying = false;
        if iter != self.iter || self.finished {
            // Stale timer from a previous round; re-cover the current one.
            if !self.pending_acks.is_empty() || !self.pending_gets.is_empty() {
                self.arm_retry(out);
            }
            return;
        }
        // Re-send in request order — iterating the maps directly would make
        // the wire order (and so the whole simulation) nondeterministic.
        let mut puts: Vec<(u64, usize)> = self.pending_acks.iter().map(|(&r, &p)| (r, p)).collect();
        puts.sort_unstable();
        for (req_id, partition) in puts {
            let (blob, _) = &self.blobs[&partition];
            let put = IpfsWire::Put {
                data: Bytes::from(blob.clone()),
                req_id,
                replicate: self.topo.config().replication,
            };
            let to = self
                .topo
                .upload_target(partition, self.t)
                .expect("retries only exist for storage-backed uploads");
            out.send(to, Msg::Ipfs(put));
        }
        let mut gets: Vec<(u64, Cid)> = self
            .pending_gets
            .iter()
            .map(|(&r, &(_, cid))| (r, cid))
            .collect();
        gets.sort_unstable_by_key(|&(r, _)| r);
        let gateway = self.topo.trainer_gateway(self.t);
        for (req_id, cid) in gets {
            let get = IpfsWire::Get { cid, req_id };
            out.send(gateway, Msg::Ipfs(get));
        }
        if !self.pending_acks.is_empty() || !self.pending_gets.is_empty() {
            self.arm_retry(out);
        }
    }

    fn on_put_ack(&mut self, out: &mut Actions<Msg>, cid: Cid, req_id: u64) {
        let Some(partition) = self.pending_acks.remove(&req_id) else {
            return;
        };
        let target = self
            .topo
            .upload_target(partition, self.t)
            .expect("puts are only acked in storage-backed modes");
        self.uploads.push((target, cid));
        let commitment = self.blobs[&partition].1;
        if self.topo.config().compact_registration {
            // Accumulate; one batched registration goes out with the last
            // acknowledgment (§VI directory-load reduction).
            self.batch_entries.push((partition, cid, commitment));
        } else {
            let signature = self.sign_registration(partition, &cid, &commitment);
            let msg = Msg::RegisterGradient {
                trainer: self.t,
                partition,
                iter: self.iter,
                cid,
                commitment,
                signature,
            };
            out.send(self.topo.directory(), msg);
        }
        self.acked += 1;
        if self.acked == self.topo.config().partitions {
            if self.topo.config().compact_registration {
                let entries = std::mem::take(&mut self.batch_entries);
                let signature = self.signing_key.as_ref().map(|key| {
                    key.sign(&batch_registration_message(self.t, self.iter, &entries))
                        .to_bytes()
                });
                let msg = Msg::RegisterGradientBatch {
                    trainer: self.t,
                    iter: self.iter,
                    entries,
                    signature,
                };
                out.send(self.topo.directory(), msg);
            }
            // Upload delay = last store acknowledgment − upload start (§V).
            out.record(labels::UPLOAD_DONE, self.iter as f64);
            self.start_polling(out);
        }
    }

    fn start_polling(&mut self, out: &mut Actions<Msg>) {
        if !self.polling {
            self.polling = true;
            out.set_timer(self.topo.config().poll_interval, TK_POLL);
        }
    }

    fn poll(&mut self, out: &mut Actions<Msg>) {
        if self.finished {
            self.polling = false;
            return;
        }
        let mut outstanding = false;
        for i in 0..self.topo.config().partitions {
            if !self.received.contains_key(&i) && !self.fetching.contains(&i) {
                outstanding = true;
                let msg = Msg::QueryUpdate {
                    partition: i,
                    iter: self.iter,
                };
                out.send(self.topo.directory(), msg);
            }
            if self.topo.config().trainer_verifies
                && !self.received.contains_key(&i)
                && !self.accumulators.contains_key(&i)
            {
                outstanding = true;
                let msg = Msg::QueryTotalAccumulator {
                    partition: i,
                    iter: self.iter,
                };
                out.send(self.topo.directory(), msg);
            }
        }
        if outstanding || !self.fetching.is_empty() {
            out.set_timer(self.topo.config().poll_interval, TK_POLL);
        } else {
            self.polling = false;
        }
    }

    fn on_update_info(&mut self, out: &mut Actions<Msg>, partition: usize, cid: Option<Cid>) {
        let Some(cid) = cid else { return };
        if self.finished
            || self.received.contains_key(&partition)
            || self.unverified_updates.contains_key(&partition)
            || self.fetching.contains(&partition)
        {
            return;
        }
        self.fetching.insert(partition);
        let req_id = self.fresh_req();
        self.pending_gets.insert(req_id, (partition, cid));
        let get = IpfsWire::Get { cid, req_id };
        let gateway = self.topo.trainer_gateway(self.t);
        out.send(gateway, Msg::Ipfs(get));
        self.arm_retry(out);
    }

    fn on_update_blob(&mut self, out: &mut Actions<Msg>, req_id: u64, data: &[u8]) {
        let Some((partition, _)) = self.pending_gets.remove(&req_id) else {
            return;
        };
        self.fetching.remove(&partition);
        self.accept_update(out, partition, data.to_vec());
    }

    /// Validates (and in trainer-verification mode, cryptographically
    /// verifies) a downloaded update blob, then applies it.
    fn accept_update(&mut self, out: &mut Actions<Msg>, partition: usize, data: Vec<u8>) {
        if self.finished || self.received.contains_key(&partition) {
            return;
        }
        if self.topo.config().trainer_verifies {
            match self.accumulators.get(&partition) {
                Some(acc) => {
                    let acc = *acc;
                    let key = self.key.as_ref().expect("verifiable mode").clone();
                    if self.topo.config().batch_verify {
                        // Deferred mode: accept optimistically and queue
                        // the blob for the end-of-round flush. Count it
                        // now — the instant the per-blob path verifies —
                        // so `blobs_verified` totals match per-blob mode
                        // even in rounds that never complete.
                        out.incr(labels::BLOBS_VERIFIED, 1);
                        self.pending_verify.push((partition, data.clone(), acc));
                    } else if !verify_blob_timed(out, &key, &data, &acc) {
                        // Never accept an unverified update (the poll loop
                        // will re-fetch if a correct one appears).
                        out.record("trainer_rejected_update", partition as f64);
                        return;
                    }
                }
                None => {
                    // Accumulator not known yet; stash and re-check later.
                    self.unverified_updates.insert(partition, data);
                    return;
                }
            }
        }
        let Some((averaged, _count)) = decode_update(&data) else {
            return; // corrupt update: retry via polling
        };
        if averaged.len() != self.topo.partition_len(partition) {
            return;
        }
        self.received.insert(partition, averaged);
        if self.received.len() == self.topo.config().partitions && self.flush_pending_verify(out) {
            self.finish_round(out);
        }
    }

    /// Settles the deferred update-verification queue (`batch_verify`
    /// mode) with one RLC batch check; returns whether the round may
    /// finish (no culprits). A culprit partition is rejected exactly as
    /// the per-blob path rejects it at arrival — dropped from `received`
    /// so the poll loop re-fetches it.
    fn flush_pending_verify(&mut self, out: &mut Actions<Msg>) -> bool {
        if self.pending_verify.is_empty() {
            return true;
        }
        let Some(key) = self.key.clone() else {
            return true; // unreachable: entries only queue in verifiable mode
        };
        let pending = std::mem::take(&mut self.pending_verify);
        let items: Vec<(&[u8], &ProtocolCommitment)> = pending
            .iter()
            .map(|(_, blob, acc)| (blob.as_slice(), acc))
            .collect();
        // Blobs were counted at enqueue time; the flush books only the
        // wall-clock and batch-size metrics.
        let culprits = flush_verify_queue(out, &key, &items);
        for &i in &culprits {
            let partition = pending[i].0;
            out.record("trainer_rejected_update", partition as f64);
            self.received.remove(&partition);
        }
        culprits.is_empty()
    }

    fn finish_round(&mut self, out: &mut Actions<Msg>) {
        self.finished = true;
        // Rebuild the full model by concatenating updated partitions
        // (Algorithm 1, line 23).
        for (i, values) in self.received.drain() {
            let (s, e) = self.topo.partition_range(i);
            self.params[s..e].copy_from_slice(&values);
        }
        self.sink
            .lock()
            .expect("param sink")
            .insert(self.t, self.params.clone());
        out.record(labels::TRAINER_ROUND_DONE, self.iter as f64);
        let msg = Msg::TrainerDone {
            trainer: self.t,
            iter: self.iter,
        };
        out.send(self.topo.directory(), msg);
        self.polling = false;
    }
}

impl<M: Model> ProtocolCore for Trainer<M> {
    type Msg = Msg;

    fn handle(&mut self, now: SimTime, event: ProtocolEvent<Msg>, out: &mut Actions<Msg>) {
        let msg = match event {
            ProtocolEvent::Message { msg, .. } => msg,
            ProtocolEvent::Timer { token } => {
                match token & !0xFFFF_FFFF {
                    TK_TRAIN => self.upload(now, out),
                    TK_POLL => self.poll(out),
                    TK_RETRY => self.on_retry(out, token & 0xFFFF_FFFF),
                    _ => {}
                }
                return;
            }
            ProtocolEvent::Start | ProtocolEvent::Fault { .. } => return,
            ProtocolEvent::DeliveryFailure { .. } => {
                out.incr(labels::DELIVERY_FAILED, 1);
                return;
            }
        };
        match msg {
            Msg::StartRound { iter } => self.begin_round(now, out, iter),
            Msg::UpdateInfo {
                partition,
                iter,
                cid,
            } if iter == self.iter => {
                self.on_update_info(out, partition, cid);
            }
            Msg::TotalAccumulator {
                partition,
                iter,
                accumulated,
            } if iter == self.iter => {
                if let Some(c) = accumulated.and_then(|b| ProtocolCommitment::from_bytes(&b)) {
                    self.accumulators.entry(partition).or_insert(c);
                    if let Some(blob) = self.unverified_updates.remove(&partition) {
                        self.accept_update(out, partition, blob);
                    }
                }
            }
            Msg::Ipfs(IpfsWire::PutAck { cid, req_id }) => self.on_put_ack(out, cid, req_id),
            Msg::Ipfs(IpfsWire::GetOk { data, req_id, .. }) => {
                let data = data.to_vec();
                self.on_update_blob(out, req_id, &data);
            }
            Msg::Ipfs(IpfsWire::GetErr { req_id, .. }) => {
                // Allow the poll loop to retry the partition.
                if let Some((partition, _)) = self.pending_gets.remove(&req_id) {
                    self.fetching.remove(&partition);
                }
            }
            _ => {}
        }
    }
}
