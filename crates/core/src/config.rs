//! Task configuration and deterministic role/partition assignment.
//!
//! A task is described by counts (trainers, partitions, aggregators per
//! partition |A_i|, storage nodes, providers per aggregator |P_ij|),
//! feature switches (merge-and-download §III-E, verifiable aggregation
//! §IV), network characteristics, and the round schedule (t_train /
//! t_sync). [`Topology`] derives every assignment the participants need —
//! who aggregates which partition, which trainers feed which aggregator
//! (T_ij), which storage nodes serve as an aggregator's providers (P_ij),
//! and where everyone sits in the simulated network.

use dfl_netsim::{FaultPlan, LinkSpec, NodeId, SimDuration};

use crate::error::IplsError;

/// How gradients travel from trainers to aggregators — the three designs
/// Fig. 1 compares.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum CommMode {
    /// Original IPLS: trainers send gradients straight to their aggregator
    /// over direct links (the strong assumption §III-B relaxes).
    Direct,
    /// Indirect via storage, one blob per trainer ("naive" in Fig. 1).
    Indirect,
    /// Indirect with storage-side pre-aggregation (§III-E).
    MergeAndDownload,
}

/// Full configuration of one federated-learning task.
#[derive(Clone, Debug, PartialEq)]
pub struct TaskConfig {
    /// Number of trainers `|T|`.
    pub trainers: usize,
    /// Number of model partitions.
    pub partitions: usize,
    /// Aggregators assigned to each partition, `|A_i|`.
    pub aggregators_per_partition: usize,
    /// Number of storage (IPFS) nodes.
    pub ipfs_nodes: usize,
    /// Providers per aggregator `|P_ij|` when merge-and-download is on.
    pub providers_per_aggregator: usize,
    /// How gradients reach aggregators.
    pub comm: CommMode,
    /// Enable verifiable aggregation with Pedersen commitments (§IV).
    pub verifiable: bool,
    /// Trainers register all partitions of a round in one batched message
    /// instead of one per partition — the §VI "send an accumulation over
    /// the hashes" direction that cuts the directory's query load from
    /// `partitions × trainers` to `trainers` registrations per round.
    pub compact_registration: bool,
    /// Trainers independently verify downloaded updates against the
    /// accumulated commitment instead of trusting the directory's check —
    /// §IV-B: "this can be performed by any participant (trainer or
    /// bootstrapper)". Only meaningful with `verifiable`.
    pub trainer_verifies: bool,
    /// Require Schnorr signatures on directory registrations. Without
    /// this, a malicious party can register a forged commitment under a
    /// trainer's name and defeat the §IV verification (see
    /// `Behavior::ForgeRegistration`).
    pub authenticate: bool,
    /// Byzantine accountability: aggregators sign their partial-update
    /// announcements and global-update registrations, detectors package
    /// commitment mismatches into transferable `Misbehavior` proofs,
    /// peers blacklist proven offenders, and the directory evicts them.
    /// Requires `verifiable` (evidence is a commitment mismatch).
    pub accountability: bool,
    /// Optional early watchdog for partial-update sync: an aggregator that
    /// has not seen a peer slot's announcement this long after round start
    /// recovers that slot's trainer set from storage instead of waiting
    /// for the full `t_sync` deadline. Must not exceed `t_sync`.
    pub sync_watchdog: Option<SimDuration>,
    /// Total replicas per stored block (1 = no replication).
    pub replication: usize,
    /// Training rounds to run.
    pub rounds: u64,
    /// Link bandwidth of every participant (Mbps, symmetric — the paper
    /// gives trainers and aggregators equal bandwidth).
    pub bandwidth_mbps: u64,
    /// Link bandwidth of storage nodes; `None` shapes them like
    /// participants. The paper's mininet testbed shapes participant links
    /// explicitly, so experiments may leave infrastructure links faster.
    pub ipfs_bandwidth_mbps: Option<u64>,
    /// One-way link latency.
    pub latency: SimDuration,
    /// Directory poll interval for aggregators and trainers.
    pub poll_interval: SimDuration,
    /// Deadline for trainers to finish uploading gradients (t_train).
    pub t_train: SimDuration,
    /// Deadline for the whole round, including aggregator sync (t_sync).
    pub t_sync: SimDuration,
    /// Simulated wall-clock cost of local training per round.
    pub train_compute: SimDuration,
    /// Storage nodes (by index) that silently discard stored data —
    /// availability-failure injection for the §VI replication experiments.
    pub lossy_ipfs_nodes: Vec<usize>,
    /// Clock-driven fault schedule (crashes, recoveries, data loss, link
    /// degradation) applied to the simulation before it runs. Node ids
    /// refer to the task's simulated layout
    /// (`directory | ipfs | aggregators | trainers`).
    pub fault_plan: FaultPlan,
    /// Minimum number of trainers (globally) whose gradients must be in
    /// before the t_sync deadline lets the round complete without the
    /// rest. `None` keeps the strict behavior: a round waits for every
    /// trainer, so one crashed trainer stalls it. Composes with
    /// `verifiable`: degraded partials carry their contributor set and are
    /// verified against the product of the surviving members' individual
    /// commitments instead of the full accumulated commitment.
    pub min_quorum: Option<usize>,
    /// Base timeout for storage-layer retrievals before the client gateway
    /// retries and then fails over to another provider. Must comfortably
    /// exceed the worst-case transfer time under contention, or healthy
    /// slow fetches get duplicated.
    pub fetch_timeout: SimDuration,
    /// Virtual cost of committing, microseconds per vector element
    /// (0 = commitments are free in simulated time; the real group
    /// operations still run when `verifiable` is set).
    pub commit_us_per_element: u64,
    /// Defer commitment checks to round boundaries and verify each queue
    /// with one random-linear-combination MSM ([`CommitKey::batch_check`]),
    /// bisecting failures back to the exact per-blob culprits. Verdicts,
    /// detection counters, and Misbehavior evidence are identical to the
    /// per-blob path; only real-world wall-clock changes. Only meaningful
    /// with `verifiable`.
    ///
    /// [`CommitKey::batch_check`]: dfl_crypto::pedersen::CommitKey::batch_check
    pub batch_verify: bool,
    /// Build the commitment key's fixed-base MSM precomputation table at
    /// task start (one-time cost ≈ one scalar multiplication per
    /// generator), so every commit and verification in the run takes the
    /// table fast path. Results are bit-identical either way; only
    /// real-world wall-clock changes. Only meaningful with `verifiable`.
    pub commit_precompute: bool,
    /// Multi-level aggregation overlay (Handel-style): `Some(b)` arranges
    /// each trainer set into a deterministic `b`-ary tree seeded from
    /// `seed`. Leaves send their gradient one hop up; every interior
    /// trainer verifies its children's Pedersen openings, composes the
    /// commitments homomorphically, signs its level partial, and forwards
    /// one blob upward, so per-node fan-in is bounded by `b` at every
    /// level and the aggregator receives a single root partial per round.
    /// The final model is disseminated back down the same tree. `None`
    /// (default) keeps flat aggregation — the trace-fingerprint oracle the
    /// overlay is checked against. Requires `verifiable` (interior
    /// verification is a commitment check) and a single aggregator per
    /// partition (partial sync across slots stays flat-mode-only).
    pub overlay_branching: Option<usize>,
    /// Store gradient blobs as content-addressed chunk DAGs instead of one
    /// opaque block per partition: uploads ship a manifest first and only
    /// the chunks the provider does not already hold (cross-round dedup),
    /// downloads stripe chunk requests across all storage nodes with
    /// per-chunk retry/failover, and every chunk is re-hashed against its
    /// CID before reassembly. Off by default — the blob path is the
    /// trace-fingerprint oracle. Incompatible with
    /// [`CommMode::MergeAndDownload`] (the merge RPC pre-aggregates raw
    /// blobs server-side and would sum manifest bytes).
    pub chunked_storage: bool,
    /// Chunk payload size in bytes when `chunked_storage` is on. Must be
    /// at least [`dfl_ipfs::chunker::MIN_CHUNK_SIZE`]; blobs that are not
    /// a multiple carry a short final chunk.
    pub chunk_size: usize,
    /// Master seed for all task randomness.
    pub seed: u64,
    /// Run the network simulation under the reference global max–min
    /// allocator instead of the incremental component-scoped one. Both are
    /// bit-identical in output (the equivalence suite proves it); the
    /// reference path exists as the oracle those tests compare against and
    /// is far slower at scale.
    pub reference_allocator: bool,
}

impl Default for TaskConfig {
    fn default() -> Self {
        TaskConfig {
            trainers: 4,
            partitions: 2,
            aggregators_per_partition: 1,
            ipfs_nodes: 4,
            providers_per_aggregator: 2,
            comm: CommMode::Indirect,
            verifiable: false,
            trainer_verifies: false,
            compact_registration: false,
            authenticate: false,
            accountability: false,
            sync_watchdog: None,
            replication: 1,
            rounds: 1,
            bandwidth_mbps: 10,
            ipfs_bandwidth_mbps: None,
            latency: SimDuration::from_millis(10),
            poll_interval: SimDuration::from_millis(100),
            t_train: SimDuration::from_secs(600),
            t_sync: SimDuration::from_secs(1200),
            train_compute: SimDuration::ZERO,
            lossy_ipfs_nodes: Vec::new(),
            fault_plan: FaultPlan::new(),
            min_quorum: None,
            fetch_timeout: SimDuration::from_secs(30),
            commit_us_per_element: 0,
            commit_precompute: true,
            batch_verify: false,
            overlay_branching: None,
            chunked_storage: false,
            chunk_size: dfl_ipfs::chunker::DEFAULT_CHUNK_SIZE,
            seed: 0,
            reference_allocator: false,
        }
    }
}

impl TaskConfig {
    /// Starts a [`TaskConfigBuilder`] from the default configuration.
    /// [`TaskConfigBuilder::build`] validates, so an inconsistent
    /// configuration is caught at construction instead of deep inside
    /// [`Topology::new`] or the runner:
    ///
    /// ```
    /// use ipls::config::{CommMode, TaskConfig};
    ///
    /// let cfg = TaskConfig::builder()
    ///     .trainers(16)
    ///     .partitions(4)
    ///     .comm(CommMode::MergeAndDownload)
    ///     .verifiable(true)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.trainers, 16);
    ///
    /// // Contradictory settings fail at build time.
    /// assert!(TaskConfig::builder()
    ///     .accountability(true) // evidence needs commitments
    ///     .verifiable(false)
    ///     .build()
    ///     .is_err());
    /// ```
    pub fn builder() -> TaskConfigBuilder {
        TaskConfigBuilder {
            cfg: TaskConfig::default(),
        }
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`IplsError::InvalidConfig`] describing the first violated
    /// constraint.
    pub fn validate(&self) -> Result<(), IplsError> {
        let err = |msg: &str| Err(IplsError::InvalidConfig(msg.to_string()));
        if self.trainers == 0 {
            return err("at least one trainer required");
        }
        if self.partitions == 0 {
            return err("at least one partition required");
        }
        if self.aggregators_per_partition == 0 {
            return err("at least one aggregator per partition required");
        }
        if self.ipfs_nodes == 0 {
            return err("at least one storage node required");
        }
        if self.comm == CommMode::MergeAndDownload
            && !(1..=self.ipfs_nodes).contains(&self.providers_per_aggregator)
        {
            return err("providers per aggregator must be in 1..=ipfs_nodes");
        }
        if !(1..=self.ipfs_nodes).contains(&self.replication) {
            return err("replication must be in 1..=ipfs_nodes");
        }
        if self.rounds == 0 {
            return err("at least one round required");
        }
        if self.bandwidth_mbps == 0 {
            return err("bandwidth must be positive");
        }
        if self.t_train > self.t_sync {
            return err("t_train must not exceed t_sync");
        }
        if self.lossy_ipfs_nodes.iter().any(|&k| k >= self.ipfs_nodes) {
            return err("lossy node index out of range");
        }
        if self.trainer_verifies && !self.verifiable {
            return err("trainer verification requires verifiable mode");
        }
        if self.batch_verify && !self.verifiable {
            return err("batch_verify requires verifiable mode \
                 (there are no commitments to batch otherwise)");
        }
        if let Some(q) = self.min_quorum {
            if !(1..=self.trainers).contains(&q) {
                return err("min_quorum must be in 1..=trainers");
            }
        }
        if self.accountability && !self.verifiable {
            return err("accountability requires verifiable mode \
                 (misbehavior evidence is a commitment mismatch)");
        }
        if let Some(w) = self.sync_watchdog {
            if w <= SimDuration::ZERO {
                return err("sync_watchdog must be positive");
            }
            if w > self.t_sync {
                return err("sync_watchdog must not exceed t_sync");
            }
        }
        if self.fetch_timeout <= SimDuration::ZERO {
            return err("fetch_timeout must be positive");
        }
        if self.chunked_storage {
            if self.chunk_size < dfl_ipfs::chunker::MIN_CHUNK_SIZE {
                return err("chunk_size is below the minimum chunk size");
            }
            if self.comm == CommMode::MergeAndDownload {
                return err("chunked_storage is incompatible with merge-and-download \
                     (the merge RPC pre-aggregates raw blobs and would sum manifest bytes)");
            }
        }
        if let Some(b) = self.overlay_branching {
            if b < 2 {
                return err("overlay_branching must be at least 2");
            }
            if !self.verifiable {
                return err("overlay aggregation requires verifiable mode \
                     (interior nodes verify child partials against commitments)");
            }
            if self.aggregators_per_partition != 1 {
                return err(
                    "overlay aggregation requires a single aggregator per partition \
                     (cross-slot partial sync is flat-mode-only)",
                );
            }
            if self.trainer_verifies {
                return err(
                    "overlay aggregation replaces trainer-side update verification \
                     (no directory accumulator exists; each hop verifies child openings \
                     and the aggregator signs the pushed update)",
                );
            }
        }
        Ok(())
    }

    /// Total number of aggregators in the task.
    pub fn total_aggregators(&self) -> usize {
        self.partitions * self.aggregators_per_partition
    }

    /// The access link every participant sits behind.
    pub fn link(&self) -> LinkSpec {
        LinkSpec::symmetric_mbps(self.bandwidth_mbps, self.latency)
    }

    /// The access link storage nodes sit behind.
    pub fn ipfs_link(&self) -> LinkSpec {
        LinkSpec::symmetric_mbps(
            self.ipfs_bandwidth_mbps.unwrap_or(self.bandwidth_mbps),
            self.latency,
        )
    }
}

macro_rules! builder_setters {
    ($($name:ident: $ty:ty),* $(,)?) => {
        $(
            #[doc = concat!("Sets [`TaskConfig::", stringify!($name), "`].")]
            pub fn $name(mut self, value: $ty) -> Self {
                self.cfg.$name = value;
                self
            }
        )*
    };
}

/// Builder for [`TaskConfig`] that validates on [`TaskConfigBuilder::build`].
///
/// Starts from [`TaskConfig::default`]; every field has a same-named
/// setter. Construct via [`TaskConfig::builder`].
#[derive(Clone, Debug)]
pub struct TaskConfigBuilder {
    cfg: TaskConfig,
}

impl TaskConfigBuilder {
    builder_setters! {
        trainers: usize,
        partitions: usize,
        aggregators_per_partition: usize,
        ipfs_nodes: usize,
        providers_per_aggregator: usize,
        comm: CommMode,
        verifiable: bool,
        compact_registration: bool,
        trainer_verifies: bool,
        authenticate: bool,
        accountability: bool,
        sync_watchdog: Option<SimDuration>,
        replication: usize,
        rounds: u64,
        bandwidth_mbps: u64,
        ipfs_bandwidth_mbps: Option<u64>,
        latency: SimDuration,
        poll_interval: SimDuration,
        t_train: SimDuration,
        t_sync: SimDuration,
        train_compute: SimDuration,
        lossy_ipfs_nodes: Vec<usize>,
        fault_plan: FaultPlan,
        min_quorum: Option<usize>,
        fetch_timeout: SimDuration,
        commit_us_per_element: u64,
        commit_precompute: bool,
        batch_verify: bool,
        overlay_branching: Option<usize>,
        chunked_storage: bool,
        chunk_size: usize,
        seed: u64,
        reference_allocator: bool,
    }

    /// Validates the assembled configuration and returns it.
    ///
    /// # Errors
    ///
    /// Returns [`IplsError::InvalidConfig`] (from
    /// [`TaskConfig::validate`]) describing the first violated constraint.
    pub fn build(self) -> Result<TaskConfig, IplsError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Node placement and assignment rules derived from a [`TaskConfig`].
///
/// Simulation node layout: `directory | ipfs nodes | aggregators | trainers`.
#[derive(Clone, Debug)]
pub struct Topology {
    cfg: TaskConfig,
    /// Half-open element ranges of each partition within the flat
    /// parameter vector.
    partition_ranges: Vec<(usize, usize)>,
}

impl Topology {
    /// Builds a topology for a model with `param_count` parameters.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation failures, and rejects models
    /// with fewer parameters than partitions.
    pub fn new(cfg: TaskConfig, param_count: usize) -> Result<Topology, IplsError> {
        cfg.validate()?;
        if param_count < cfg.partitions {
            return Err(IplsError::InvalidConfig(format!(
                "model has {param_count} parameters but {} partitions requested",
                cfg.partitions
            )));
        }
        let base = param_count / cfg.partitions;
        let extra = param_count % cfg.partitions;
        let mut ranges = Vec::with_capacity(cfg.partitions);
        let mut start = 0;
        for i in 0..cfg.partitions {
            let len = base + usize::from(i < extra);
            ranges.push((start, start + len));
            start += len;
        }
        Ok(Topology {
            cfg,
            partition_ranges: ranges,
        })
    }

    /// The underlying configuration.
    pub fn config(&self) -> &TaskConfig {
        &self.cfg
    }

    /// Total number of model parameters.
    pub fn param_count(&self) -> usize {
        self.partition_ranges.last().map_or(0, |&(_, end)| end)
    }

    /// Element range `[start, end)` of partition `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn partition_range(&self, i: usize) -> (usize, usize) {
        self.partition_ranges[i]
    }

    /// Number of elements in partition `i`.
    pub fn partition_len(&self, i: usize) -> usize {
        let (s, e) = self.partition_range(i);
        e - s
    }

    /// Largest partition length (sizes the commitment key).
    pub fn max_partition_len(&self) -> usize {
        (0..self.cfg.partitions)
            .map(|i| self.partition_len(i))
            .max()
            .unwrap_or(0)
    }

    // -- simulation node ids ------------------------------------------------

    /// Total simulated nodes.
    pub fn node_count(&self) -> usize {
        1 + self.cfg.ipfs_nodes + self.cfg.total_aggregators() + self.cfg.trainers
    }

    /// The directory-service node (also the bootstrapper).
    pub fn directory(&self) -> NodeId {
        NodeId(0)
    }

    /// The `k`-th storage node.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn ipfs_node(&self, k: usize) -> NodeId {
        assert!(k < self.cfg.ipfs_nodes, "storage node {k} out of range");
        NodeId(1 + k)
    }

    /// All storage node ids.
    pub fn ipfs_ids(&self) -> Vec<NodeId> {
        (0..self.cfg.ipfs_nodes)
            .map(|k| self.ipfs_node(k))
            .collect()
    }

    /// The aggregator with global index `g`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is out of range.
    pub fn aggregator(&self, g: usize) -> NodeId {
        assert!(
            g < self.cfg.total_aggregators(),
            "aggregator {g} out of range"
        );
        NodeId(1 + self.cfg.ipfs_nodes + g)
    }

    /// The `t`-th trainer.
    ///
    /// # Panics
    ///
    /// Panics if `t` is out of range.
    pub fn trainer(&self, t: usize) -> NodeId {
        assert!(t < self.cfg.trainers, "trainer {t} out of range");
        NodeId(1 + self.cfg.ipfs_nodes + self.cfg.total_aggregators() + t)
    }

    // -- role assignment ----------------------------------------------------

    /// Global aggregator index of the `j`-th aggregator of partition `i`.
    pub fn agg_index(&self, partition: usize, j: usize) -> usize {
        assert!(j < self.cfg.aggregators_per_partition);
        partition * self.cfg.aggregators_per_partition + j
    }

    /// `(partition, j)` of a global aggregator index.
    pub fn agg_role(&self, g: usize) -> (usize, usize) {
        (
            g / self.cfg.aggregators_per_partition,
            g % self.cfg.aggregators_per_partition,
        )
    }

    /// Which aggregator (index `j` within `A_i`) trainer `t` sends partition
    /// `i` to. Trainers are spread round-robin so the `T_ij` sets partition
    /// `T` evenly and disjointly (the §II invariants).
    pub fn agg_for_trainer(&self, _partition: usize, t: usize) -> usize {
        t % self.cfg.aggregators_per_partition
    }

    /// The trainer set `T_ij` feeding aggregator `j` of any partition.
    pub fn trainer_set(&self, _partition: usize, j: usize) -> Vec<usize> {
        (0..self.cfg.trainers)
            .filter(|t| t % self.cfg.aggregators_per_partition == j)
            .collect()
    }

    /// The provider set `P_ij` (storage nodes) of the aggregator with
    /// global index `g`; also that aggregator's gateway nodes. When
    /// merge-and-download is off the provider set is a single round-robin
    /// gateway.
    pub fn providers(&self, g: usize) -> Vec<NodeId> {
        if self.cfg.comm == CommMode::MergeAndDownload {
            (0..self.cfg.providers_per_aggregator)
                .map(|k| {
                    self.ipfs_node(
                        (g * self.cfg.providers_per_aggregator + k) % self.cfg.ipfs_nodes,
                    )
                })
                .collect()
        } else {
            vec![self.ipfs_node(g % self.cfg.ipfs_nodes)]
        }
    }

    /// The storage node trainer `t` must upload its partition-`i` gradient
    /// to. Under merge-and-download this is one of its aggregator's
    /// providers, chosen round-robin by the trainer's rank within `T_ij`;
    /// otherwise it is the trainer's own gateway.
    ///
    /// # Errors
    ///
    /// Returns [`IplsError::NoStorageRoute`] in [`CommMode::Direct`],
    /// where gradients never touch storage.
    pub fn upload_target(&self, partition: usize, t: usize) -> Result<NodeId, IplsError> {
        match self.cfg.comm {
            CommMode::Direct => Err(IplsError::NoStorageRoute {
                partition,
                trainer: t,
            }),
            CommMode::Indirect => Ok(self.trainer_gateway(t)),
            CommMode::MergeAndDownload => {
                let j = self.agg_for_trainer(partition, t);
                let g = self.agg_index(partition, j);
                let providers = self.providers(g);
                let rank = t / self.cfg.aggregators_per_partition;
                Ok(providers[rank % providers.len()])
            }
        }
    }

    /// The gateway storage node a trainer uses for downloads.
    pub fn trainer_gateway(&self, t: usize) -> NodeId {
        self.ipfs_node(t % self.cfg.ipfs_nodes)
    }

    /// The gateway storage node an aggregator uses (its first provider).
    pub fn aggregator_gateway(&self, g: usize) -> NodeId {
        self.providers(g)[0]
    }

    /// The pub/sub topic aggregators of partition `i` synchronize on.
    pub fn sync_topic(&self, partition: usize) -> String {
        format!("ipls/sync/{partition}")
    }

    /// The multi-level aggregation tree, when `overlay_branching` is
    /// configured. Topology-owned so every backend derives the identical
    /// levels from the shared `TaskConfig`; the tree is a pure function of
    /// `(trainers, branching, seed)` and costs O(1) to build, so each call
    /// may construct it afresh.
    pub fn overlay(&self) -> Option<crate::overlay::OverlayTree> {
        self.cfg
            .overlay_branching
            .map(|b| crate::overlay::OverlayTree::new(self.cfg.trainers, b, self.cfg.seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn cfg_16_trainers() -> TaskConfig {
        TaskConfig {
            trainers: 16,
            partitions: 4,
            aggregators_per_partition: 2,
            ipfs_nodes: 8,
            providers_per_aggregator: 4,
            comm: CommMode::MergeAndDownload,
            ..TaskConfig::default()
        }
    }

    #[test]
    fn default_config_is_valid() {
        TaskConfig::default().validate().unwrap();
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(
            TaskConfig::builder().build().unwrap(),
            TaskConfig::default()
        );
    }

    #[test]
    fn builder_sets_every_touched_field() {
        let cfg = TaskConfig::builder()
            .trainers(16)
            .partitions(4)
            .aggregators_per_partition(2)
            .ipfs_nodes(8)
            .providers_per_aggregator(4)
            .comm(CommMode::MergeAndDownload)
            .verifiable(true)
            .trainer_verifies(true)
            .authenticate(true)
            .replication(2)
            .rounds(3)
            .commit_precompute(false)
            .seed(42)
            .build()
            .unwrap();
        assert_eq!(cfg.trainers, 16);
        assert_eq!(cfg.comm, CommMode::MergeAndDownload);
        assert!(cfg.verifiable && cfg.trainer_verifies && cfg.authenticate);
        assert!(!cfg.commit_precompute);
        assert_eq!(cfg.seed, 42);
        // Untouched fields keep their defaults.
        assert_eq!(cfg.poll_interval, TaskConfig::default().poll_interval);
    }

    #[test]
    fn min_quorum_composes_with_verifiable() {
        // The restriction lifted by the accountability subsystem: degraded
        // quorums now verify against per-member commitments.
        let cfg = TaskConfig::builder()
            .verifiable(true)
            .min_quorum(Some(2))
            .build()
            .unwrap();
        assert!(cfg.verifiable && cfg.min_quorum == Some(2));
    }

    #[test]
    fn chunked_storage_validation() {
        // Default-off keeps any chunk_size acceptable.
        assert!(TaskConfig::builder().chunk_size(1).build().is_ok());
        // Enabled: chunk_size must clear the floor.
        assert!(TaskConfig::builder()
            .chunked_storage(true)
            .chunk_size(dfl_ipfs::chunker::MIN_CHUNK_SIZE - 1)
            .build()
            .is_err());
        assert!(TaskConfig::builder()
            .chunked_storage(true)
            .chunk_size(dfl_ipfs::chunker::MIN_CHUNK_SIZE)
            .build()
            .is_ok());
        // Merge-and-download pre-aggregates raw blobs server-side, which
        // chunked manifests would corrupt.
        assert!(TaskConfig::builder()
            .chunked_storage(true)
            .comm(CommMode::MergeAndDownload)
            .build()
            .is_err());
        // Direct mode never touches storage for gradients, but the flag
        // still validates (the global model path can use it).
        assert!(TaskConfig::builder()
            .chunked_storage(true)
            .comm(CommMode::Direct)
            .build()
            .is_ok());
    }

    #[test]
    fn batch_verify_requires_verifiable() {
        let err = TaskConfig::builder()
            .batch_verify(true)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("batch_verify"));
        let cfg = TaskConfig::builder()
            .verifiable(true)
            .batch_verify(true)
            .build()
            .unwrap();
        assert!(cfg.batch_verify);
    }

    #[test]
    fn builder_rejects_invalid_at_build() {
        let err = TaskConfig::builder().trainers(0).build().unwrap_err();
        assert!(err.to_string().contains("trainer"));
        let err = TaskConfig::builder()
            .accountability(true)
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("accountability"));
        let err = TaskConfig::builder()
            .sync_watchdog(Some(SimDuration::from_secs(100_000)))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("sync_watchdog"));
        let err = TaskConfig::builder()
            .t_train(SimDuration::from_secs(10))
            .t_sync(SimDuration::from_secs(5))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("t_train"));
    }

    #[test]
    fn validation_catches_bad_configs() {
        for (mutate, expect) in [
            (
                Box::new(|c: &mut TaskConfig| c.trainers = 0) as Box<dyn Fn(&mut TaskConfig)>,
                "trainer",
            ),
            (Box::new(|c| c.partitions = 0), "partition"),
            (Box::new(|c| c.ipfs_nodes = 0), "storage"),
            (Box::new(|c| c.replication = 9), "replication"),
            (
                Box::new(|c| {
                    c.comm = CommMode::MergeAndDownload;
                    c.providers_per_aggregator = 100;
                }),
                "providers",
            ),
            (Box::new(|c| c.rounds = 0), "round"),
            (
                Box::new(|c| {
                    c.t_train = SimDuration::from_secs(10);
                    c.t_sync = SimDuration::from_secs(5);
                }),
                "t_train",
            ),
        ] {
            let mut cfg = cfg_16_trainers();
            mutate(&mut cfg);
            let err = cfg.validate().unwrap_err();
            assert!(
                err.to_string().contains(expect),
                "{err} should mention {expect}"
            );
        }
    }

    #[test]
    fn partition_ranges_cover_model() {
        let topo = Topology::new(cfg_16_trainers(), 103).unwrap();
        let mut covered = 0;
        for i in 0..4 {
            let (s, e) = topo.partition_range(i);
            assert_eq!(s, covered);
            covered = e;
        }
        assert_eq!(covered, 103);
        assert_eq!(topo.param_count(), 103);
        // Uneven split: first 3 partitions get the remainder.
        assert_eq!(topo.partition_len(0), 26);
        assert_eq!(topo.partition_len(3), 25);
        assert_eq!(topo.max_partition_len(), 26);
    }

    #[test]
    fn node_ids_are_disjoint_and_complete() {
        let topo = Topology::new(cfg_16_trainers(), 100).unwrap();
        let mut seen = HashSet::new();
        seen.insert(topo.directory());
        for k in 0..8 {
            seen.insert(topo.ipfs_node(k));
        }
        for g in 0..topo.config().total_aggregators() {
            seen.insert(topo.aggregator(g));
        }
        for t in 0..16 {
            seen.insert(topo.trainer(t));
        }
        assert_eq!(seen.len(), topo.node_count());
        assert_eq!(topo.node_count(), 1 + 8 + 8 + 16);
    }

    #[test]
    fn trainer_sets_partition_trainers() {
        // §II invariants: T = ∪ T_ij and T_ij disjoint, for every partition.
        let topo = Topology::new(cfg_16_trainers(), 100).unwrap();
        for partition in 0..4 {
            let mut all = HashSet::new();
            for j in 0..2 {
                for t in topo.trainer_set(partition, j) {
                    assert!(all.insert(t), "trainer {t} assigned twice");
                    assert_eq!(topo.agg_for_trainer(partition, t), j);
                }
            }
            assert_eq!(all.len(), 16);
        }
    }

    #[test]
    fn agg_index_round_trips() {
        let topo = Topology::new(cfg_16_trainers(), 100).unwrap();
        for g in 0..topo.config().total_aggregators() {
            let (partition, j) = topo.agg_role(g);
            assert_eq!(topo.agg_index(partition, j), g);
        }
    }

    #[test]
    fn providers_have_requested_size() {
        let topo = Topology::new(cfg_16_trainers(), 100).unwrap();
        for g in 0..topo.config().total_aggregators() {
            assert_eq!(topo.providers(g).len(), 4);
        }
        // Without merge-and-download: one gateway.
        let mut cfg = cfg_16_trainers();
        cfg.comm = CommMode::Indirect;
        let topo = Topology::new(cfg, 100).unwrap();
        assert_eq!(topo.providers(0).len(), 1);
    }

    #[test]
    fn upload_targets_are_providers() {
        let topo = Topology::new(cfg_16_trainers(), 100).unwrap();
        for partition in 0..4 {
            for t in 0..16 {
                let target = topo.upload_target(partition, t).unwrap();
                let j = topo.agg_for_trainer(partition, t);
                let providers = topo.providers(topo.agg_index(partition, j));
                assert!(providers.contains(&target));
            }
        }
    }

    #[test]
    fn upload_targets_spread_across_providers() {
        // With 16 trainers, 1 aggregator per partition, 4 providers:
        // each provider receives uploads from exactly 4 trainers.
        let mut cfg = cfg_16_trainers();
        cfg.aggregators_per_partition = 1;
        let topo = Topology::new(cfg, 100).unwrap();
        let mut counts: std::collections::HashMap<NodeId, usize> = Default::default();
        for t in 0..16 {
            *counts.entry(topo.upload_target(0, t).unwrap()).or_default() += 1;
        }
        assert_eq!(counts.len(), 4);
        assert!(counts.values().all(|&c| c == 4), "{counts:?}");
    }

    #[test]
    fn direct_mode_upload_target_is_typed_error() {
        // Regression: this used to panic instead of returning an error.
        let mut cfg = cfg_16_trainers();
        cfg.comm = CommMode::Direct;
        let topo = Topology::new(cfg, 100).unwrap();
        assert_eq!(
            topo.upload_target(1, 5),
            Err(IplsError::NoStorageRoute {
                partition: 1,
                trainer: 5,
            })
        );
    }

    #[test]
    fn overlay_knob_is_validated() {
        // Overlay without verifiable mode: rejected.
        let err = TaskConfig::builder()
            .overlay_branching(Some(4))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("verifiable"));
        // Degenerate branching: rejected.
        let err = TaskConfig::builder()
            .verifiable(true)
            .overlay_branching(Some(1))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("at least 2"));
        // Multiple aggregator slots: rejected.
        let err = TaskConfig::builder()
            .verifiable(true)
            .aggregators_per_partition(2)
            .overlay_branching(Some(4))
            .build()
            .unwrap_err();
        assert!(err.to_string().contains("single aggregator"));
        // The valid shape builds, and the topology exposes the tree.
        let cfg = TaskConfig::builder()
            .trainers(16)
            .verifiable(true)
            .overlay_branching(Some(4))
            .build()
            .unwrap();
        let topo = Topology::new(cfg, 16).unwrap();
        let tree = topo.overlay().unwrap();
        assert_eq!(tree.len(), 16);
        // Flat default: no tree.
        let topo = Topology::new(TaskConfig::default(), 16).unwrap();
        assert!(topo.overlay().is_none());
    }

    #[test]
    fn model_smaller_than_partitions_rejected() {
        let err = Topology::new(cfg_16_trainers(), 2).unwrap_err();
        assert!(err.to_string().contains("partitions"));
    }
}
