//! The sans-io protocol boundary: event-in / action-out.
//!
//! Every IPLS state machine ([`Trainer`](crate::Trainer),
//! [`Aggregator`](crate::Aggregator), [`Directory`](crate::Directory), and
//! the storage wrapper [`IpfsCore`]) implements [`ProtocolCore`]: a pure
//! function from `(now, event)` to state mutation plus a queue of
//! [`ProtocolAction`]s. The cores never perform I/O, read clocks, or draw
//! randomness — time arrives as an explicit [`SimTime`] argument, messages
//! and timers arrive as [`ProtocolEvent`]s, and everything the node wants
//! done to the outside world leaves as an action.
//!
//! Backends are thin interpreters of the action queue:
//!
//! * [`NetsimAdapter`] replays actions into a [`dfl_netsim::Context`],
//!   making any core a deterministic-simulation [`Actor`]. Because the
//!   simulator's `send`/`set_timer` are themselves buffered until the
//!   callback returns, replaying the queue in push order is
//!   observationally identical to the old inline-`ctx` style — the
//!   fig1/fig2 trace fingerprints prove it bit-for-bit.
//! * `dfl-backend-tokio` (the `tokio` workspace feature) replays the same
//!   actions onto real TCP sockets and wall-clock timers.
//!
//! The contract a backend must honour:
//!
//! 1. Deliver each event with a monotonically non-decreasing `now`.
//! 2. Execute the drained actions of one `handle` call **in push order**
//!    before delivering the next event to the same core.
//! 3. Never reorder or drop actions of a live node (a crashed node's
//!    actions may be discarded wholesale, as netsim does).

use dfl_ipfs::{IpfsNode, Outgoing, WireEmbed};
use dfl_netsim::{Actor, Context, Fault, NodeId, SimDuration, SimTime};
use std::marker::PhantomData;

/// An input to a protocol state machine. The type parameter `M` is the
/// application message type (for IPLS tasks, [`Msg`](crate::Msg)).
#[derive(Clone, Debug)]
pub enum ProtocolEvent<M> {
    /// The node comes alive (delivered exactly once, before any other
    /// event; `now` is the epoch of the run).
    Start,
    /// A message from another node was fully delivered.
    Message {
        /// Sending node.
        from: NodeId,
        /// The delivered message.
        msg: M,
    },
    /// A timer armed with [`Actions::set_timer`] fired.
    Timer {
        /// The token the timer was armed with.
        token: u64,
    },
    /// An injected fault hit this node (see [`Fault`]).
    Fault {
        /// The fault kind.
        fault: Fault,
    },
    /// The backend gave up delivering a previously queued `Send` to `to`
    /// (connection supervision exhausted its retries, or the outbound
    /// queue overflowed). Purely informational: cores typically count it
    /// ([`labels::DELIVERY_FAILED`](crate::labels::DELIVERY_FAILED)) and
    /// rely on the existing timeout/retry machinery for recovery. The
    /// netsim backend never emits it — simulated sends either deliver or
    /// are dropped by an injected fault, which the trace accounts for.
    DeliveryFailure {
        /// The destination the backend failed to reach.
        to: NodeId,
    },
}

/// An effect a protocol state machine asks its backend to perform.
#[derive(Clone, Debug)]
pub enum ProtocolAction<M> {
    /// Transmit `msg` to `to`. The backend derives the wire cost (netsim)
    /// or the encoding (sockets) from the message itself.
    Send {
        /// Destination node.
        to: NodeId,
        /// The message to transmit.
        msg: M,
    },
    /// Arm a timer that fires `delay` from now, delivering
    /// [`ProtocolEvent::Timer`] with `token`.
    SetTimer {
        /// Relative delay.
        delay: SimDuration,
        /// Token returned when the timer fires.
        token: u64,
    },
    /// Record an observability event (timestamped sample in the trace).
    Record {
        /// Metric label.
        label: &'static str,
        /// Sample value.
        value: f64,
    },
    /// Bump a monotonic counter.
    Incr {
        /// Counter label.
        label: &'static str,
        /// Increment.
        delta: u64,
    },
    /// Feed a histogram sample.
    Observe {
        /// Histogram label.
        label: &'static str,
        /// Sample value.
        value: f64,
    },
}

/// The ordered action queue a [`ProtocolCore`] pushes effects into.
///
/// Handlers call the imperative helpers (`send`, `set_timer`, `record`,
/// ...) exactly where the old code called the simulator context; the
/// backend drains the queue after the handler returns and executes the
/// actions in push order.
#[derive(Debug, Default)]
pub struct Actions<M> {
    queued: Vec<ProtocolAction<M>>,
}

impl<M> Actions<M> {
    /// An empty queue.
    pub fn new() -> Actions<M> {
        Actions { queued: Vec::new() }
    }

    /// Queues a message transmission.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.queued.push(ProtocolAction::Send { to, msg });
    }

    /// Queues arming a timer.
    pub fn set_timer(&mut self, delay: SimDuration, token: u64) {
        self.queued.push(ProtocolAction::SetTimer { delay, token });
    }

    /// Queues a trace sample.
    pub fn record(&mut self, label: &'static str, value: f64) {
        self.queued.push(ProtocolAction::Record { label, value });
    }

    /// Queues a counter increment.
    pub fn incr(&mut self, label: &'static str, delta: u64) {
        self.queued.push(ProtocolAction::Incr { label, delta });
    }

    /// Queues a histogram sample.
    pub fn observe(&mut self, label: &'static str, value: f64) {
        self.queued.push(ProtocolAction::Observe { label, value });
    }

    /// Removes and returns every queued action, in push order.
    pub fn drain(&mut self) -> std::vec::Drain<'_, ProtocolAction<M>> {
        self.queued.drain(..)
    }

    /// Number of queued actions.
    pub fn len(&self) -> usize {
        self.queued.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.queued.is_empty()
    }
}

/// A pure protocol state machine: consumes [`ProtocolEvent`]s, mutates
/// private state, and pushes [`ProtocolAction`]s. Implementations must not
/// perform I/O or read ambient time — `now` is the only clock.
pub trait ProtocolCore {
    /// The application message type the core speaks.
    type Msg;

    /// Handles one event at time `now`, pushing effects into `out`.
    fn handle(
        &mut self,
        now: SimTime,
        event: ProtocolEvent<Self::Msg>,
        out: &mut Actions<Self::Msg>,
    );
}

/// Wire-cost metadata a netsim backend needs from a message type: how many
/// bytes the message occupies on the wire (the simulator models transfer
/// time from this).
pub trait WireCost {
    /// Serialized size in bytes.
    fn wire_bytes(&self) -> u64;
}

/// The one netsim glue type: wraps any [`ProtocolCore`] into a simulation
/// [`Actor`] by translating callbacks into events and replaying the
/// resulting action queue into the [`Context`].
pub struct NetsimAdapter<C: ProtocolCore> {
    core: C,
    out: Actions<C::Msg>,
}

impl<C: ProtocolCore> NetsimAdapter<C> {
    /// Wraps a core.
    pub fn new(core: C) -> NetsimAdapter<C> {
        NetsimAdapter {
            core,
            out: Actions::new(),
        }
    }

    /// The wrapped core.
    pub fn core(&self) -> &C {
        &self.core
    }

    /// Mutable access to the wrapped core (e.g. test setup).
    pub fn core_mut(&mut self) -> &mut C {
        &mut self.core
    }
}

impl<C: ProtocolCore> NetsimAdapter<C>
where
    C::Msg: WireCost,
{
    fn dispatch(&mut self, ctx: &mut Context<'_, C::Msg>, event: ProtocolEvent<C::Msg>) {
        self.core.handle(ctx.now(), event, &mut self.out);
        for action in self.out.drain() {
            match action {
                ProtocolAction::Send { to, msg } => ctx.send(to, msg.wire_bytes(), msg),
                ProtocolAction::SetTimer { delay, token } => ctx.set_timer(delay, token),
                ProtocolAction::Record { label, value } => ctx.record(label, value),
                ProtocolAction::Incr { label, delta } => ctx.incr(label, delta),
                ProtocolAction::Observe { label, value } => ctx.observe(label, value),
            }
        }
    }
}

impl<C: ProtocolCore> Actor<C::Msg> for NetsimAdapter<C>
where
    C::Msg: WireCost,
{
    fn on_start(&mut self, ctx: &mut Context<'_, C::Msg>) {
        self.dispatch(ctx, ProtocolEvent::Start);
    }

    fn on_message(&mut self, ctx: &mut Context<'_, C::Msg>, from: NodeId, msg: C::Msg) {
        self.dispatch(ctx, ProtocolEvent::Message { from, msg });
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, C::Msg>, token: u64) {
        self.dispatch(ctx, ProtocolEvent::Timer { token });
    }

    fn on_fault(&mut self, ctx: &mut Context<'_, C::Msg>, fault: Fault) {
        self.dispatch(ctx, ProtocolEvent::Fault { fault });
    }
}

/// Sans-io wrapper for the storage layer: drives an [`IpfsNode`] (already
/// a pure request/response machine) through the [`ProtocolCore`] API, so
/// storage nodes ride the same backends as the IPLS roles.
///
/// Mirrors `dfl_ipfs::IpfsActor` exactly — produced wires, then timer
/// requests, then drained stat counters, then the store-occupancy sample —
/// so traces are bit-identical to the pre-sans-io actor.
pub struct IpfsCore<M> {
    node: IpfsNode,
    last_reported_blocks: usize,
    _msg: PhantomData<M>,
}

impl<M: WireEmbed> IpfsCore<M> {
    /// Wraps a node.
    pub fn new(node: IpfsNode) -> IpfsCore<M> {
        IpfsCore {
            node,
            last_reported_blocks: 0,
            _msg: PhantomData,
        }
    }

    /// The wrapped node.
    pub fn node(&self) -> &IpfsNode {
        &self.node
    }

    /// Mutable access (e.g. for configuration before a run).
    pub fn node_mut(&mut self) -> &mut IpfsNode {
        &mut self.node
    }

    fn flush(&mut self, outgoing: Vec<Outgoing>, out: &mut Actions<M>) {
        for Outgoing { to, wire } in outgoing {
            out.send(to, M::embed(wire));
        }
        for (token, delay) in self.node.take_timer_requests() {
            out.set_timer(delay, token);
        }
        for (label, delta) in self.node.take_stats() {
            out.incr(label, delta);
        }
        let blocks = self.node.store().len();
        if blocks != self.last_reported_blocks {
            self.last_reported_blocks = blocks;
            out.record("store_blocks", blocks as f64);
        }
    }
}

impl<M: WireEmbed> ProtocolCore for IpfsCore<M> {
    type Msg = M;

    fn handle(&mut self, _now: SimTime, event: ProtocolEvent<M>, out: &mut Actions<M>) {
        match event {
            ProtocolEvent::Start => {}
            ProtocolEvent::Message { from, msg } => {
                let wire = match msg.extract() {
                    Ok(wire) => wire,
                    Err(_) => return, // not a storage message; ignore
                };
                let produced = self.node.handle(from, wire);
                self.flush(produced, out);
            }
            ProtocolEvent::Timer { token } => {
                let produced = self.node.on_timeout(token);
                self.flush(produced, out);
            }
            ProtocolEvent::Fault { fault } => match fault {
                // A crash loses volatile state (request tables, armed
                // timers); stored blocks are durable and survive.
                Fault::Crash(_) => self.node.drop_volatile_state(),
                Fault::DataLoss(_) => {
                    self.node.drop_stored_data();
                    self.last_reported_blocks = 0;
                    out.record("store_blocks", 0.0);
                }
                // Recovery, link shaping, partitions and frame chaos are
                // transport-level: the storage state machine is unaffected.
                _ => {}
            },
            ProtocolEvent::DeliveryFailure { .. } => {
                out.incr(crate::labels::DELIVERY_FAILED, 1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Ping(u64);

    impl WireCost for Ping {
        fn wire_bytes(&self) -> u64 {
            8
        }
    }

    /// Echoes every message back with the token of the last timer fired.
    struct Echo {
        timer_token: u64,
    }

    impl ProtocolCore for Echo {
        type Msg = Ping;

        fn handle(&mut self, _now: SimTime, event: ProtocolEvent<Ping>, out: &mut Actions<Ping>) {
            match event {
                ProtocolEvent::Start => out.set_timer(SimDuration::from_millis(1), 7),
                ProtocolEvent::Message { from, msg } => {
                    out.send(from, Ping(msg.0 + self.timer_token));
                    out.incr("echoed", 1);
                }
                ProtocolEvent::Timer { token } => self.timer_token = token,
                ProtocolEvent::Fault { .. } | ProtocolEvent::DeliveryFailure { .. } => {}
            }
        }
    }

    #[test]
    fn actions_drain_in_push_order() {
        let mut out: Actions<Ping> = Actions::new();
        out.record("a", 1.0);
        out.send(NodeId(3), Ping(9));
        out.observe("h", 2.0);
        assert_eq!(out.len(), 3);
        let drained: Vec<_> = out.drain().collect();
        assert!(matches!(
            drained[0],
            ProtocolAction::Record { label: "a", .. }
        ));
        assert!(matches!(
            drained[1],
            ProtocolAction::Send {
                to: NodeId(3),
                msg: Ping(9)
            }
        ));
        assert!(matches!(
            drained[2],
            ProtocolAction::Observe { label: "h", .. }
        ));
        assert!(out.is_empty());
    }

    #[test]
    fn adapter_round_trips_through_a_simulation() {
        use dfl_netsim::engine::{LinkSpec, Simulation};
        let mut sim: Simulation<Ping> = Simulation::new();
        let link = LinkSpec::symmetric_mbps(10, SimDuration::from_millis(1));
        let echo = sim.add_node(NetsimAdapter::new(Echo { timer_token: 0 }), link);

        struct Driver {
            echo: NodeId,
        }
        impl Actor<Ping> for Driver {
            fn on_start(&mut self, ctx: &mut Context<'_, Ping>) {
                // Give the echo node's start timer (1 ms) room to fire first.
                ctx.set_timer(SimDuration::from_millis(5), 0);
            }
            fn on_timer(&mut self, ctx: &mut Context<'_, Ping>, _token: u64) {
                ctx.send(self.echo, 8, Ping(35));
            }
            fn on_message(&mut self, _ctx: &mut Context<'_, Ping>, _from: NodeId, _msg: Ping) {}
        }
        sim.add_node(Driver { echo }, link);
        sim.run();
        let trace = sim.into_trace();
        // The echo core saw its start timer (token 7) before the ping.
        assert_eq!(trace.counter("echoed"), 1);
    }
}
