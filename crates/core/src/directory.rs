//! The directory service (§III-C) — run by the trusted bootstrapper.
//!
//! Maintains the map from addressing tuples to CIDs, accumulates Pedersen
//! commitments per partition and per aggregator slot (§IV-B), verifies
//! registered updates against the accumulated commitments, answers
//! participant queries, and drives the round schedule.

use std::collections::{HashMap, HashSet};
use std::rc::Rc;

use dfl_ipfs::{Cid, IpfsWire};
use dfl_netsim::{Actor, Context, NodeId, SimDuration};

use dfl_crypto::schnorr::{Signature, SigningKey, VerifyingKey};

use crate::config::Topology;
use crate::gradient::{verify_blob, ProtocolCommitment, ProtocolCurve, ProtocolKey};
use crate::labels;
use crate::messages::{batch_registration_message, registration_message, Msg};

/// Timer token kinds (high 32 bits of the token).
const TK_VERIFY: u64 = 1 << 32;

/// A pending update verification: the blob arrived, the virtual compute
/// time is being charged before the verdict applies.
struct PendingVerify {
    partition: usize,
    iter: u64,
    aggregator: usize,
    cid: Cid,
    from: NodeId,
    verdict: bool,
}

/// Directory + bootstrapper actor.
pub struct Directory {
    topo: Rc<Topology>,
    key: Option<Rc<ProtocolKey>>,
    /// Gradient registrations: (partition, iter) → (trainer → cid).
    gradients: HashMap<(usize, u64), HashMap<usize, Cid>>,
    /// Individual gradient commitments: (partition, iter) → trainer → C.
    commitments: HashMap<(usize, u64), HashMap<usize, ProtocolCommitment>>,
    /// Accepted global updates: (partition, iter) → cid.
    updates: HashMap<(usize, u64), Cid>,
    /// In-flight update verifications keyed by storage request id.
    fetching: HashMap<u64, PendingVerify>,
    verifying: HashMap<u64, PendingVerify>,
    /// Trainers that reported the round done.
    done: HashMap<u64, HashSet<usize>>,
    /// Rounds whose first gradient hash has been recorded.
    first_hash_seen: HashSet<u64>,
    /// Rounds already announced.
    announced: HashSet<u64>,
    /// Rounds already recorded complete (quorum completion would otherwise
    /// re-fire on each late `TrainerDone`).
    completed: HashSet<u64>,
    next_req: u64,
    next_verify: u64,
    /// Count of rejected updates (exposed for tests/reports via trace too).
    rejected: usize,
    /// Trainer verifying keys (authenticated mode).
    trainer_keys: Vec<VerifyingKey<ProtocolCurve>>,
}

impl Directory {
    /// Creates the directory actor. `key` must be `Some` exactly when the
    /// task runs in verifiable mode.
    pub fn new(topo: Rc<Topology>, key: Option<Rc<ProtocolKey>>) -> Directory {
        assert_eq!(
            key.is_some(),
            topo.config().verifiable,
            "commitment key must match the verifiable flag"
        );
        let trainer_keys = if topo.config().authenticate {
            let seed = topo.config().seed.to_be_bytes();
            (0..topo.config().trainers)
                .map(|t| SigningKey::<ProtocolCurve>::derive(&seed, t as u64).verifying_key())
                .collect()
        } else {
            Vec::new()
        };
        Directory {
            topo,
            key,
            gradients: HashMap::new(),
            commitments: HashMap::new(),
            updates: HashMap::new(),
            fetching: HashMap::new(),
            verifying: HashMap::new(),
            done: HashMap::new(),
            first_hash_seen: HashSet::new(),
            announced: HashSet::new(),
            completed: HashSet::new(),
            next_req: 0,
            next_verify: 0,
            rejected: 0,
            trainer_keys,
        }
    }

    /// Authenticates a registration; `true` when valid (or when the task
    /// does not require authentication).
    fn registration_authentic(
        &self,
        trainer: usize,
        partition: usize,
        iter: u64,
        cid: &dfl_ipfs::Cid,
        commitment: &Option<[u8; 33]>,
        signature: &Option<[u8; 65]>,
    ) -> bool {
        if !self.topo.config().authenticate {
            return true;
        }
        let Some(vk) = self.trainer_keys.get(trainer) else {
            return false;
        };
        let Some(sig_bytes) = signature else {
            return false;
        };
        let Some(sig) = Signature::<ProtocolCurve>::from_bytes(sig_bytes) else {
            return false;
        };
        let message = registration_message(trainer, partition, iter, cid, commitment);
        vk.verify(&message, &sig)
    }

    fn broadcast_round(&mut self, ctx: &mut Context<'_, Msg>, iter: u64) {
        if !self.announced.insert(iter) {
            return;
        }
        ctx.record(labels::ROUND_START, iter as f64);
        let msg = Msg::StartRound { iter };
        for g in 0..self.topo.config().total_aggregators() {
            ctx.send(self.topo.aggregator(g), msg.wire_bytes(), msg.clone());
        }
        for t in 0..self.topo.config().trainers {
            ctx.send(self.topo.trainer(t), msg.wire_bytes(), msg.clone());
        }
    }

    fn accumulated_for_slot(
        &self,
        partition: usize,
        iter: u64,
        agg_j: usize,
    ) -> Option<ProtocolCommitment> {
        let commits = self.commitments.get(&(partition, iter))?;
        let trainers = self.topo.trainer_set(partition, agg_j);
        let mut acc = ProtocolCommitment::identity();
        for t in &trainers {
            acc = acc.combine(commits.get(t)?);
        }
        Some(acc)
    }

    /// Accumulated commitment over *all* trainers of a partition — what a
    /// global update must open (§IV-B).
    fn accumulated_total(&self, partition: usize, iter: u64) -> Option<ProtocolCommitment> {
        let commits = self.commitments.get(&(partition, iter))?;
        if commits.len() != self.topo.config().trainers {
            return None;
        }
        Some(ProtocolCommitment::accumulate(commits.values()))
    }

    fn on_register_update(
        &mut self,
        ctx: &mut Context<'_, Msg>,
        from: NodeId,
        aggregator: usize,
        partition: usize,
        iter: u64,
        cid: Cid,
    ) {
        if self.updates.contains_key(&(partition, iter)) {
            // Someone already registered a valid update; only the first
            // counts (§IV-B).
            return;
        }
        if self.key.is_some() {
            // Fetch the update blob from storage, then verify.
            self.next_req += 1;
            let req_id = self.next_req;
            self.fetching.insert(
                req_id,
                PendingVerify {
                    partition,
                    iter,
                    aggregator,
                    cid,
                    from,
                    verdict: false,
                },
            );
            let get = IpfsWire::Get { cid, req_id };
            ctx.send(self.topo.ipfs_node(0), get.wire_bytes(), Msg::Ipfs(get));
        } else {
            self.accept_update(ctx, partition, iter, cid);
        }
    }

    fn accept_update(&mut self, ctx: &mut Context<'_, Msg>, partition: usize, iter: u64, cid: Cid) {
        self.updates.insert((partition, iter), cid);
        ctx.record(labels::UPDATE_REGISTERED, partition as f64);
    }

    fn reject_update(&mut self, ctx: &mut Context<'_, Msg>, pv: &PendingVerify) {
        self.rejected += 1;
        ctx.record(labels::VERIFICATION_FAILED, pv.partition as f64);
        // A second event keyed by the offender, for forensic reports.
        ctx.record("verification_failed_by", pv.aggregator as f64);
        let msg = Msg::UpdateRejected {
            partition: pv.partition,
            iter: pv.iter,
            reason: "update does not open the accumulated commitment".to_string(),
        };
        ctx.send(pv.from, msg.wire_bytes(), msg);
    }

    fn on_update_blob(&mut self, ctx: &mut Context<'_, Msg>, req_id: u64, data: &[u8], ok: bool) {
        let Some(mut pv) = self.fetching.remove(&req_id) else {
            return;
        };
        let key = self.key.as_ref().expect("verifiable mode").clone();
        let verdict = ok
            && match self.accumulated_total(pv.partition, pv.iter) {
                Some(acc) => verify_blob(&key, data, &acc),
                None => false, // not all gradients registered: incomplete
            };
        pv.verdict = verdict;
        // Charge the virtual verification time, then apply the verdict.
        let elements = (data.len() / 8).max(1) as u64;
        let us = self.topo.config().commit_us_per_element * elements;
        self.next_verify += 1;
        let token = TK_VERIFY | self.next_verify;
        self.verifying.insert(self.next_verify, pv);
        ctx.set_timer(SimDuration::from_micros(us), token);
    }

    fn maybe_finish_round(&mut self, ctx: &mut Context<'_, Msg>, iter: u64) {
        // With a quorum configured, the round completes once that many
        // trainers report done: a crashed trainer must not stall the task.
        let needed = self
            .topo
            .config()
            .min_quorum
            .unwrap_or(self.topo.config().trainers);
        let enough = self.done.get(&iter).is_some_and(|set| set.len() >= needed);
        if !enough || !self.completed.insert(iter) {
            return;
        }
        ctx.record(labels::ROUND_COMPLETE, iter as f64);
        if iter + 1 < self.topo.config().rounds {
            self.broadcast_round(ctx, iter + 1);
        } else {
            ctx.record(labels::TASK_COMPLETE, self.topo.config().rounds as f64);
        }
    }
}

impl Actor<Msg> for Directory {
    fn on_start(&mut self, ctx: &mut Context<'_, Msg>) {
        self.broadcast_round(ctx, 0);
    }

    fn on_timer(&mut self, ctx: &mut Context<'_, Msg>, token: u64) {
        if token & TK_VERIFY != 0 {
            let Some(pv) = self.verifying.remove(&(token & 0xFFFF_FFFF)) else {
                return;
            };
            if self.updates.contains_key(&(pv.partition, pv.iter)) {
                return; // raced with an earlier valid registration
            }
            if pv.verdict {
                self.accept_update(ctx, pv.partition, pv.iter, pv.cid);
            } else {
                self.reject_update(ctx, &pv);
            }
        }
    }

    fn on_message(&mut self, ctx: &mut Context<'_, Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::RegisterGradientBatch {
                trainer,
                iter,
                entries,
                signature,
            } => {
                let authentic = if self.topo.config().authenticate {
                    let msg_bytes = batch_registration_message(trainer, iter, &entries);
                    self.trainer_keys.get(trainer).is_some_and(|vk| {
                        signature
                            .and_then(|b| Signature::<ProtocolCurve>::from_bytes(&b))
                            .is_some_and(|sig| vk.verify(&msg_bytes, &sig))
                    })
                } else {
                    true
                };
                if !authentic {
                    ctx.record(labels::FORGED_REGISTRATION, trainer as f64);
                    return;
                }
                if self.first_hash_seen.insert(iter) {
                    ctx.record(labels::FIRST_GRADIENT_HASH, iter as f64);
                }
                for (partition, cid, commitment) in entries {
                    self.gradients
                        .entry((partition, iter))
                        .or_default()
                        .insert(trainer, cid);
                    if let Some(bytes) = commitment {
                        if let Some(c) = ProtocolCommitment::from_bytes(&bytes) {
                            self.commitments
                                .entry((partition, iter))
                                .or_default()
                                .insert(trainer, c);
                        }
                    }
                }
            }
            Msg::RegisterGradient {
                trainer,
                partition,
                iter,
                cid,
                commitment,
                signature,
            } => {
                if !self.registration_authentic(
                    trainer,
                    partition,
                    iter,
                    &cid,
                    &commitment,
                    &signature,
                ) {
                    // Forged or unsigned registration: discard and flag.
                    ctx.record(labels::FORGED_REGISTRATION, trainer as f64);
                    return;
                }
                if self.first_hash_seen.insert(iter) {
                    ctx.record(labels::FIRST_GRADIENT_HASH, iter as f64);
                }
                self.gradients
                    .entry((partition, iter))
                    .or_default()
                    .insert(trainer, cid);
                if let Some(bytes) = commitment {
                    if let Some(c) = ProtocolCommitment::from_bytes(&bytes) {
                        self.commitments
                            .entry((partition, iter))
                            .or_default()
                            .insert(trainer, c);
                    }
                }
            }
            Msg::QueryGradients {
                partition,
                agg_j,
                iter,
            } => {
                let trainers = self.topo.trainer_set(partition, agg_j);
                let registered = self.gradients.get(&(partition, iter));
                let commits = self.commitments.get(&(partition, iter));
                let entries: Vec<(usize, Cid, Option<[u8; 33]>)> = trainers
                    .into_iter()
                    .filter_map(|t| {
                        let cid = registered.and_then(|m| m.get(&t))?;
                        let commitment = commits.and_then(|m| m.get(&t)).map(|c| c.to_bytes());
                        Some((t, *cid, commitment))
                    })
                    .collect();
                let reply = Msg::GradientList {
                    partition,
                    iter,
                    entries,
                };
                ctx.send(from, reply.wire_bytes(), reply);
            }
            Msg::QueryAccumulators { partition, iter } => {
                let accumulated: Vec<Option<[u8; 33]>> =
                    (0..self.topo.config().aggregators_per_partition)
                        .map(|j| {
                            self.accumulated_for_slot(partition, iter, j)
                                .map(|c| c.to_bytes())
                        })
                        .collect();
                let reply = Msg::Accumulators {
                    partition,
                    iter,
                    accumulated,
                };
                ctx.send(from, reply.wire_bytes(), reply);
            }
            Msg::RegisterUpdate {
                aggregator,
                partition,
                iter,
                cid,
            } => {
                self.on_register_update(ctx, from, aggregator, partition, iter, cid);
            }
            Msg::QueryTotalAccumulator { partition, iter } => {
                let accumulated = self
                    .accumulated_total(partition, iter)
                    .map(|c| c.to_bytes());
                let reply = Msg::TotalAccumulator {
                    partition,
                    iter,
                    accumulated,
                };
                ctx.send(from, reply.wire_bytes(), reply);
            }
            Msg::QueryUpdate { partition, iter } => {
                let cid = self.updates.get(&(partition, iter)).copied();
                let reply = Msg::UpdateInfo {
                    partition,
                    iter,
                    cid,
                };
                ctx.send(from, reply.wire_bytes(), reply);
            }
            Msg::TrainerDone { trainer, iter } => {
                self.done.entry(iter).or_default().insert(trainer);
                self.maybe_finish_round(ctx, iter);
            }
            Msg::Ipfs(IpfsWire::GetOk { data, req_id, .. }) => {
                let data = data.to_vec();
                self.on_update_blob(ctx, req_id, &data, true);
            }
            Msg::Ipfs(IpfsWire::GetErr { req_id, .. }) => {
                self.on_update_blob(ctx, req_id, &[], false);
            }
            // Other storage responses (acks for nothing we sent) and
            // protocol messages not addressed to the directory are ignored.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaskConfig;

    fn topo(verifiable: bool) -> Rc<Topology> {
        let cfg = TaskConfig {
            trainers: 4,
            partitions: 2,
            aggregators_per_partition: 2,
            ipfs_nodes: 2,
            verifiable,
            ..TaskConfig::default()
        };
        Rc::new(Topology::new(cfg, 8).unwrap())
    }

    #[test]
    fn key_flag_mismatch_panics() {
        let result = std::panic::catch_unwind(|| Directory::new(topo(true), None));
        assert!(result.is_err());
    }

    #[test]
    fn accumulators_require_full_trainer_set() {
        use crate::gradient::{commit_blob, derive_key};
        let topo = topo(true);
        let key = Rc::new(derive_key(topo.max_partition_len(), 0, true));
        let mut dir = Directory::new(topo.clone(), Some(key.clone()));

        // Register commitments for trainers 0 and 2 (slot j=0 of |A_i|=2).
        let blob = crate::gradient::build_blob(&[1.0; 4]);
        let c = commit_blob(&key, &blob);
        for t in [0usize, 2] {
            dir.commitments.entry((0, 0)).or_default().insert(t, c);
        }
        // Slot 0 (T_00 = {0, 2}) is complete; slot 1 (T_01 = {1, 3}) is not.
        assert!(dir.accumulated_for_slot(0, 0, 0).is_some());
        assert!(dir.accumulated_for_slot(0, 0, 1).is_none());
        // Total accumulation needs all 4 trainers.
        assert!(dir.accumulated_total(0, 0).is_none());
        for t in [1usize, 3] {
            dir.commitments.entry((0, 0)).or_default().insert(t, c);
        }
        assert!(dir.accumulated_total(0, 0).is_some());
    }
}
