//! The directory service (§III-C) — run by the trusted bootstrapper.
//!
//! Maintains the map from addressing tuples to CIDs, accumulates Pedersen
//! commitments per partition and per aggregator slot (§IV-B), verifies
//! registered updates against the accumulated commitments, answers
//! participant queries, and drives the round schedule.
//!
//! With `accountability` on, the directory is also the eviction authority:
//! a registered update that fails verification under the aggregator's own
//! signature becomes a [`Misbehavior`] proof (the directory signs it as
//! detector [`DIRECTORY_DETECTOR`] and gossips it on the evidence topic),
//! and peer-reported evidence is independently re-verified before the
//! offender is evicted — evicted aggregators' registrations are dropped.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use bytes::Bytes;

use dfl_ipfs::{Cid, IpfsWire};
use dfl_netsim::{NodeId, SimDuration, SimTime};

use dfl_crypto::schnorr::{Signature, SigningKey, VerifyingKey};

use crate::accountability::{
    agg_verifying_key, directory_signing_key, Misbehavior, MisbehaviorKind, DIRECTORY_DETECTOR,
    EVIDENCE_TOPIC,
};
use crate::chunked::{ChunkProgress, ChunkedClient, ManifestOutcome};
use crate::config::Topology;
use crate::gradient::{
    verify_blob_timed, verify_blobs_timed, ProtocolCommitment, ProtocolCurve, ProtocolKey,
};
use crate::labels;
use crate::messages::{
    batch_registration_message, registration_message, update_message, Msg, SignatureBytes,
};
use crate::protocol::{Actions, ProtocolCore, ProtocolEvent};

/// Timer token kinds (high 32 bits of the token).
const TK_VERIFY: u64 = 1 << 32;

/// A pending update verification: the blob arrived, the virtual compute
/// time is being charged before the verdict applies.
struct PendingVerify {
    partition: usize,
    iter: u64,
    aggregator: usize,
    cid: Cid,
    from: NodeId,
    verdict: bool,
    /// Claimed contributor set (quorum-degraded updates; `None` = full).
    contributors: Option<Vec<u32>>,
    /// The registrant's signature (accountability mode) — what turns a
    /// failed verification into transferable evidence.
    signature: Option<SignatureBytes>,
    /// The fetched update blob, kept for the evidence record.
    blob: Vec<u8>,
}

/// Directory + bootstrapper actor.
pub struct Directory {
    topo: Arc<Topology>,
    key: Option<Arc<ProtocolKey>>,
    /// Gradient registrations: (partition, iter) → (trainer → cid).
    gradients: HashMap<(usize, u64), HashMap<usize, Cid>>,
    /// Individual gradient commitments: (partition, iter) → trainer → C.
    commitments: HashMap<(usize, u64), HashMap<usize, ProtocolCommitment>>,
    /// Accepted global updates: (partition, iter) → cid.
    updates: HashMap<(usize, u64), Cid>,
    /// In-flight update verifications keyed by storage request id.
    fetching: HashMap<u64, PendingVerify>,
    verifying: HashMap<u64, PendingVerify>,
    /// Trainers that reported the round done.
    done: HashMap<u64, HashSet<usize>>,
    /// Rounds whose first gradient hash has been recorded.
    first_hash_seen: HashSet<u64>,
    /// Rounds already announced.
    announced: HashSet<u64>,
    /// Rounds already recorded complete (quorum completion would otherwise
    /// re-fire on each late `TrainerDone`).
    completed: HashSet<u64>,
    next_req: u64,
    next_verify: u64,
    /// Count of rejected updates (exposed for tests/reports via trace too).
    rejected: usize,
    /// Trainer verifying keys (authenticated mode).
    trainer_keys: Vec<VerifyingKey<ProtocolCurve>>,
    /// Evicted aggregators (global indices); their registrations are
    /// dropped for the rest of the task.
    evicted: HashSet<usize>,
    /// `(offender, iter)` pairs evidence was already issued for.
    evidence_issued: HashSet<(usize, u64)>,
    /// Contributor sets of accepted quorum-degraded updates, so
    /// `QueryTotalAccumulator` answers with the accumulator the accepted
    /// update actually opens.
    accepted_contributors: HashMap<(usize, u64), Vec<u32>>,
    /// Chunked-storage download planner: update CIDs address manifests, so
    /// audit fetches must reassemble before verifying
    /// (`TaskConfig::chunked_storage`).
    chunked: Option<ChunkedClient>,
}

impl Directory {
    /// Creates the directory actor. `key` must be `Some` exactly when the
    /// task runs in verifiable mode.
    pub fn new(topo: Arc<Topology>, key: Option<Arc<ProtocolKey>>) -> Directory {
        assert_eq!(
            key.is_some(),
            topo.config().verifiable,
            "commitment key must match the verifiable flag"
        );
        let trainer_keys = if topo.config().authenticate {
            let seed = topo.config().seed.to_be_bytes();
            (0..topo.config().trainers)
                .map(|t| SigningKey::<ProtocolCurve>::derive(&seed, t as u64).verifying_key())
                .collect()
        } else {
            Vec::new()
        };
        let (chunked_storage, chunk_size) =
            (topo.config().chunked_storage, topo.config().chunk_size);
        Directory {
            topo,
            key,
            gradients: HashMap::new(),
            commitments: HashMap::new(),
            updates: HashMap::new(),
            fetching: HashMap::new(),
            verifying: HashMap::new(),
            done: HashMap::new(),
            first_hash_seen: HashSet::new(),
            announced: HashSet::new(),
            completed: HashSet::new(),
            next_req: 0,
            next_verify: 0,
            rejected: 0,
            trainer_keys,
            evicted: HashSet::new(),
            evidence_issued: HashSet::new(),
            accepted_contributors: HashMap::new(),
            chunked: chunked_storage.then(|| ChunkedClient::new(chunk_size)),
        }
    }

    /// Authenticates a registration; `true` when valid (or when the task
    /// does not require authentication).
    fn registration_authentic(
        &self,
        trainer: usize,
        partition: usize,
        iter: u64,
        cid: &dfl_ipfs::Cid,
        commitment: &Option<[u8; 33]>,
        signature: &Option<[u8; 65]>,
    ) -> bool {
        if !self.topo.config().authenticate {
            return true;
        }
        let Some(vk) = self.trainer_keys.get(trainer) else {
            return false;
        };
        let Some(sig_bytes) = signature else {
            return false;
        };
        let Some(sig) = Signature::<ProtocolCurve>::from_bytes(sig_bytes) else {
            return false;
        };
        let message = registration_message(trainer, partition, iter, cid, commitment);
        vk.verify(&message, &sig)
    }

    fn broadcast_round(&mut self, out: &mut Actions<Msg>, iter: u64) {
        if !self.announced.insert(iter) {
            return;
        }
        out.record(labels::ROUND_START, iter as f64);
        let msg = Msg::StartRound { iter };
        for g in 0..self.topo.config().total_aggregators() {
            out.send(self.topo.aggregator(g), msg.clone());
        }
        for t in 0..self.topo.config().trainers {
            out.send(self.topo.trainer(t), msg.clone());
        }
    }

    fn accumulated_for_slot(
        &self,
        partition: usize,
        iter: u64,
        agg_j: usize,
    ) -> Option<ProtocolCommitment> {
        let commits = self.commitments.get(&(partition, iter))?;
        let trainers = self.topo.trainer_set(partition, agg_j);
        let mut acc = ProtocolCommitment::identity();
        for t in &trainers {
            acc = acc.combine(commits.get(t)?);
        }
        Some(acc)
    }

    /// Accumulated commitment over *all* trainers of a partition — what a
    /// full-membership global update must open (§IV-B).
    fn accumulated_total(&self, partition: usize, iter: u64) -> Option<ProtocolCommitment> {
        let commits = self.commitments.get(&(partition, iter))?;
        if commits.len() != self.topo.config().trainers {
            return None;
        }
        // Unordered map iteration is safe here: commitment accumulation is
        // an exact group operation, so the product is order-independent.
        Some(ProtocolCommitment::accumulate(commits.values()))
    }

    /// Product of the registered commitments of an explicit trainer subset
    /// (quorum-degraded verification). `None` when any member's commitment
    /// has not been registered.
    fn accumulated_subset(
        &self,
        partition: usize,
        iter: u64,
        trainers: &[u32],
    ) -> Option<ProtocolCommitment> {
        let commits = self.commitments.get(&(partition, iter))?;
        let mut acc = ProtocolCommitment::identity();
        for t in trainers {
            acc = acc.combine(commits.get(&(*t as usize))?);
        }
        Some(acc)
    }

    /// What an update claiming `contributors` must open: the full total
    /// when `None`, the per-member subset product otherwise.
    fn expected_for_update(
        &self,
        partition: usize,
        iter: u64,
        contributors: &Option<Vec<u32>>,
    ) -> Option<ProtocolCommitment> {
        match contributors {
            None => self.accumulated_total(partition, iter),
            Some(set) => self.accumulated_subset(partition, iter, set),
        }
    }

    /// Whether a claimed contributor set is even admissible: only under a
    /// configured quorum, well-formed (strictly ascending, in range), and
    /// at least the quorum large.
    fn contributors_admissible(&self, contributors: &Option<Vec<u32>>) -> bool {
        let Some(set) = contributors else {
            return true;
        };
        let Some(q) = self.topo.config().min_quorum else {
            return false; // no quorum configured: only full-set updates
        };
        set.len() >= q
            && set.windows(2).all(|w| w[0] < w[1])
            && set
                .last()
                .is_none_or(|&t| (t as usize) < self.topo.config().trainers)
    }

    #[allow(clippy::too_many_arguments)]
    fn on_register_update(
        &mut self,
        out: &mut Actions<Msg>,
        from: NodeId,
        aggregator: usize,
        partition: usize,
        iter: u64,
        cid: Cid,
        contributors: Option<Vec<u32>>,
        signature: Option<SignatureBytes>,
    ) {
        if self.evicted.contains(&aggregator) {
            // Evicted aggregators are out of the protocol: their
            // registrations are dropped unconditionally.
            out.record(labels::EVICTED_REJECTED, aggregator as f64);
            return;
        }
        if self.topo.config().accountability {
            // Accountability requires the registration to be signed by the
            // aggregator's identity key — the signature is what makes a
            // failed verification attributable (and evictable).
            let message = update_message(aggregator, partition, iter, &cid, &contributors);
            let authentic = signature
                .and_then(|b| Signature::<ProtocolCurve>::from_bytes(&b))
                .is_some_and(|sig| {
                    agg_verifying_key(self.topo.config().seed, aggregator).verify(&message, &sig)
                });
            if !authentic {
                out.record(labels::FORGED_REGISTRATION, aggregator as f64);
                return;
            }
        }
        if let Some(accepted) = self.updates.get(&(partition, iter)) {
            // Someone already registered a valid update; only the first
            // counts (§IV-B). But under accountability a *conflicting*
            // registration (different bits for the same slot) is still
            // audited: if the loser's blob fails verification, that is
            // provable misbehavior even though the round already has its
            // update — without the audit an attacker who loses the race
            // escapes detection forever.
            let audit = self.topo.config().accountability && self.key.is_some() && *accepted != cid;
            if !audit {
                return;
            }
        }
        if !self.contributors_admissible(&contributors) {
            let pv = PendingVerify {
                partition,
                iter,
                aggregator,
                cid,
                from,
                verdict: false,
                contributors,
                signature,
                blob: Vec::new(),
            };
            self.reject_update(out, &pv);
            return;
        }
        if self.key.is_some() {
            // Fetch the update blob from storage, then verify.
            self.next_req += 1;
            let req_id = self.next_req;
            self.fetching.insert(
                req_id,
                PendingVerify {
                    partition,
                    iter,
                    aggregator,
                    cid,
                    from,
                    verdict: false,
                    contributors,
                    signature,
                    blob: Vec::new(),
                },
            );
            let get = IpfsWire::Get { cid, req_id };
            out.send(self.topo.ipfs_node(0), Msg::Ipfs(get));
        } else {
            self.accept_update(out, partition, iter, cid, contributors);
        }
    }

    fn accept_update(
        &mut self,
        out: &mut Actions<Msg>,
        partition: usize,
        iter: u64,
        cid: Cid,
        contributors: Option<Vec<u32>>,
    ) {
        self.updates.insert((partition, iter), cid);
        if let Some(set) = contributors {
            self.accepted_contributors.insert((partition, iter), set);
        }
        out.record(labels::UPDATE_REGISTERED, partition as f64);
    }

    fn reject_update(&mut self, out: &mut Actions<Msg>, pv: &PendingVerify) {
        self.rejected += 1;
        out.record(labels::VERIFICATION_FAILED, pv.partition as f64);
        // A second event keyed by the offender, for forensic reports.
        out.record("verification_failed_by", pv.aggregator as f64);
        if !pv.blob.is_empty() {
            out.record(labels::WASTED_BYTES, pv.blob.len() as f64);
        }
        self.maybe_issue_evidence(out, pv);
        let msg = Msg::UpdateRejected {
            partition: pv.partition,
            iter: pv.iter,
            reason: "update does not open the accumulated commitment".to_string(),
        };
        out.send(pv.from, msg);
    }

    /// Turns a failed, *signed* update verification into a transferable
    /// `BadUpdate` proof: the directory evicts the offender directly (it
    /// verified first-hand) and gossips the evidence so peer aggregators
    /// blacklist the slot too.
    fn maybe_issue_evidence(&mut self, out: &mut Actions<Msg>, pv: &PendingVerify) {
        if !self.topo.config().accountability || pv.blob.is_empty() {
            return;
        }
        let Some(offender_sig) = pv.signature else {
            return;
        };
        let Some(expected) = self.expected_for_update(pv.partition, pv.iter, &pv.contributors)
        else {
            return; // commitments incomplete: nothing provable
        };
        if !self.evidence_issued.insert((pv.aggregator, pv.iter)) {
            return;
        }
        out.record(labels::MISBEHAVIOR_DETECTED, pv.aggregator as f64);
        let slots = self.topo.config().aggregators_per_partition;
        let mut record = Misbehavior {
            kind: MisbehaviorKind::BadUpdate,
            partition: pv.partition,
            agg_j: pv.aggregator % slots,
            iter: pv.iter,
            cid: pv.cid,
            contributors: pv.contributors.clone().unwrap_or_default(),
            accumulator: expected.to_bytes(),
            blob: pv.blob.clone(),
            offender_sig,
            detector: 0,
            detector_sig: [0u8; 65],
        };
        let sk = directory_signing_key(self.topo.config().seed);
        record.sign_as_detector(DIRECTORY_DETECTOR, &sk);
        self.evict(out, pv.aggregator);
        let publish = IpfsWire::Publish {
            topic: EVIDENCE_TOPIC.to_string(),
            data: Bytes::from(record.encode()),
        };
        out.send(self.topo.ipfs_node(0), Msg::Ipfs(publish));
    }

    fn evict(&mut self, out: &mut Actions<Msg>, offender: usize) {
        if self.evicted.insert(offender) {
            out.record(labels::EVICTED, offender as f64);
        }
    }

    /// Independently re-verifies peer-reported evidence and evicts the
    /// offender when the proof holds. The expected accumulator is derived
    /// from the directory's own registered commitments — never taken from
    /// the report.
    fn on_report(&mut self, out: &mut Actions<Msg>, record_bytes: &[u8]) {
        if !self.topo.config().accountability {
            return;
        }
        let Some(record) = Misbehavior::decode(record_bytes) else {
            return;
        };
        let slots = self.topo.config().aggregators_per_partition;
        let offender = record.offender(slots);
        if offender >= self.topo.config().total_aggregators() || self.evicted.contains(&offender) {
            return;
        }
        let expected = match record.kind {
            MisbehaviorKind::BadPartial => {
                let set = self.topo.trainer_set(record.partition, record.agg_j);
                let full_claim =
                    record.contributors.is_empty() || record.contributors.len() == set.len();
                if self.topo.config().min_quorum.is_none() || full_claim {
                    self.accumulated_for_slot(record.partition, record.iter, record.agg_j)
                } else {
                    let ranks: Option<Vec<u32>> = record
                        .contributors
                        .iter()
                        .map(|&r| set.get(r as usize).map(|&t| t as u32))
                        .collect();
                    ranks.and_then(|ts| self.accumulated_subset(record.partition, record.iter, &ts))
                }
            }
            MisbehaviorKind::BadUpdate => {
                let contributors = if record.contributors.is_empty() {
                    None
                } else {
                    Some(record.contributors.clone())
                };
                self.expected_for_update(record.partition, record.iter, &contributors)
            }
        };
        let (Some(expected), Some(key)) = (expected, self.key.as_ref()) else {
            return;
        };
        let chunk_size = self
            .topo
            .config()
            .chunked_storage
            .then(|| self.topo.config().chunk_size);
        if record.verify(key, self.topo.config().seed, slots, &expected, chunk_size) {
            self.evict(out, offender);
        }
    }

    fn on_update_blob(&mut self, out: &mut Actions<Msg>, req_id: u64, data: &[u8], ok: bool) {
        let Some(mut pv) = self.fetching.remove(&req_id) else {
            return;
        };
        // An update blob reply reaching the verification path without a
        // commitment key means a storage frame was spoofed or misrouted
        // into a non-verifiable task
        // ([`IplsError::MissingCommitKey`](crate::IplsError)): book it and
        // drop the reply instead of panicking.
        let Some(key) = self.key.clone() else {
            out.incr(labels::MISSING_COMMIT_KEY, 1);
            return;
        };
        let verdict = ok
            && match self.expected_for_update(pv.partition, pv.iter, &pv.contributors) {
                // Audited updates arrive one storage reply at a time, so
                // batch mode sees them as singleton batches; the ledger
                // and the virtual TK_VERIFY charge below are unchanged.
                Some(acc) if self.topo.config().batch_verify => {
                    verify_blobs_timed(out, &key, &[(data, &acc)]).is_empty()
                }
                Some(acc) => verify_blob_timed(out, &key, data, &acc),
                None => false, // not all gradients registered: incomplete
            };
        pv.verdict = verdict;
        pv.blob = data.to_vec();
        // Charge the virtual verification time, then apply the verdict.
        let elements = (data.len() / 8).max(1) as u64;
        let us = self.topo.config().commit_us_per_element * elements;
        self.next_verify += 1;
        let token = TK_VERIFY | self.next_verify;
        self.verifying.insert(self.next_verify, pv);
        out.set_timer(SimDuration::from_micros(us), token);
    }

    /// Chunked-mode `GetOk` routing for audit fetches: a reply under a
    /// `fetching` request id is the update's manifest (the registered CID
    /// addresses it); anything else is a chunk. Chunk downloads stripe
    /// across the storage nodes by slot index.
    fn on_chunked_get_ok(&mut self, out: &mut Actions<Msg>, req_id: u64, data: &Bytes) {
        if self.fetching.contains_key(&req_id) {
            let planner = self
                .chunked
                .as_mut()
                .expect("chunked mode checked by caller");
            match planner.on_manifest(req_id, req_id, data) {
                Ok(ManifestOutcome::Done { blob, .. }) => {
                    self.on_update_blob(out, req_id, &blob, true);
                }
                Ok(ManifestOutcome::Requests(requests)) => {
                    let nodes = self.topo.config().ipfs_nodes;
                    for (index, cid) in requests {
                        self.next_req += 1;
                        let chunk_req = self.next_req;
                        let k = index % nodes;
                        let to = self.topo.ipfs_node(k);
                        self.chunked
                            .as_mut()
                            .expect("chunked mode checked by caller")
                            .register_chunk_req(chunk_req, req_id, index, to, cid);
                        out.record(labels::CHUNK_STRIPE, k as f64);
                        let get = IpfsWire::GetChunk {
                            cid,
                            req_id: chunk_req,
                        };
                        out.send(to, Msg::Ipfs(get));
                    }
                }
                Err(_) => {
                    out.incr(labels::CHUNK_DECODE_FAILED, 1);
                    self.on_update_blob(out, req_id, &[], false);
                }
            }
        } else if let Some(planner) = &mut self.chunked {
            match planner.chunk_received(req_id, data) {
                ChunkProgress::NotMine | ChunkProgress::Progress => {}
                ChunkProgress::Done {
                    manifest_req, blob, ..
                } => self.on_update_blob(out, manifest_req, &blob, true),
                ChunkProgress::Corrupt { manifest_req, .. } => {
                    out.incr(labels::CHUNK_DECODE_FAILED, 1);
                    self.on_update_blob(out, manifest_req, &[], false);
                }
            }
        }
    }

    /// Chunked-mode `GetErr` routing: a failed manifest fetch fails the
    /// audit outright; a failed chunk abandons the whole reassembly and
    /// fails the owning audit (its tag is the manifest request id).
    fn on_chunked_get_err(&mut self, out: &mut Actions<Msg>, req_id: u64) {
        if self.fetching.contains_key(&req_id) {
            self.on_update_blob(out, req_id, &[], false);
        } else {
            let failed = self
                .chunked
                .as_mut()
                .and_then(|planner| planner.chunk_failed(req_id));
            if let Some((manifest_req, _)) = failed {
                self.on_update_blob(out, manifest_req, &[], false);
            }
        }
    }

    fn maybe_finish_round(&mut self, out: &mut Actions<Msg>, iter: u64) {
        // With a quorum configured, the round completes once that many
        // trainers report done: a crashed trainer must not stall the task.
        let needed = self
            .topo
            .config()
            .min_quorum
            .unwrap_or(self.topo.config().trainers);
        let enough = self.done.get(&iter).is_some_and(|set| set.len() >= needed);
        if !enough || !self.completed.insert(iter) {
            return;
        }
        out.record(labels::ROUND_COMPLETE, iter as f64);
        if iter + 1 < self.topo.config().rounds {
            self.broadcast_round(out, iter + 1);
        } else {
            out.record(labels::TASK_COMPLETE, self.topo.config().rounds as f64);
        }
    }
}

impl ProtocolCore for Directory {
    type Msg = Msg;

    fn handle(&mut self, _now: SimTime, event: ProtocolEvent<Msg>, out: &mut Actions<Msg>) {
        let (from, msg) = match event {
            ProtocolEvent::Start => {
                self.broadcast_round(out, 0);
                return;
            }
            ProtocolEvent::Timer { token } => {
                self.on_timer(out, token);
                return;
            }
            ProtocolEvent::Fault { .. } => return,
            ProtocolEvent::DeliveryFailure { .. } => {
                out.incr(labels::DELIVERY_FAILED, 1);
                return;
            }
            ProtocolEvent::Message { from, msg } => (from, msg),
        };
        self.on_message(out, from, msg);
    }
}

impl Directory {
    fn on_timer(&mut self, out: &mut Actions<Msg>, token: u64) {
        if token & TK_VERIFY != 0 {
            let Some(pv) = self.verifying.remove(&(token & 0xFFFF_FFFF)) else {
                return;
            };
            if pv.verdict {
                if !self.updates.contains_key(&(pv.partition, pv.iter)) {
                    let contributors = pv.contributors.clone();
                    self.accept_update(out, pv.partition, pv.iter, pv.cid, contributors);
                }
                // else: raced with an earlier valid registration; the
                // audited blob verified, so there is nothing to report.
            } else {
                self.reject_update(out, &pv);
            }
        }
    }

    fn on_message(&mut self, out: &mut Actions<Msg>, from: NodeId, msg: Msg) {
        match msg {
            Msg::RegisterGradientBatch {
                trainer,
                iter,
                entries,
                signature,
            } => {
                let authentic = if self.topo.config().authenticate {
                    let msg_bytes = batch_registration_message(trainer, iter, &entries);
                    self.trainer_keys.get(trainer).is_some_and(|vk| {
                        signature
                            .and_then(|b| Signature::<ProtocolCurve>::from_bytes(&b))
                            .is_some_and(|sig| vk.verify(&msg_bytes, &sig))
                    })
                } else {
                    true
                };
                if !authentic {
                    out.record(labels::FORGED_REGISTRATION, trainer as f64);
                    return;
                }
                if self.first_hash_seen.insert(iter) {
                    out.record(labels::FIRST_GRADIENT_HASH, iter as f64);
                }
                for (partition, cid, commitment) in entries {
                    self.gradients
                        .entry((partition, iter))
                        .or_default()
                        .insert(trainer, cid);
                    if let Some(bytes) = commitment {
                        if let Some(c) = ProtocolCommitment::from_bytes(&bytes) {
                            self.commitments
                                .entry((partition, iter))
                                .or_default()
                                .insert(trainer, c);
                        }
                    }
                }
            }
            Msg::RegisterGradient {
                trainer,
                partition,
                iter,
                cid,
                commitment,
                signature,
            } => {
                if !self.registration_authentic(
                    trainer,
                    partition,
                    iter,
                    &cid,
                    &commitment,
                    &signature,
                ) {
                    // Forged or unsigned registration: discard and flag.
                    out.record(labels::FORGED_REGISTRATION, trainer as f64);
                    return;
                }
                if self.first_hash_seen.insert(iter) {
                    out.record(labels::FIRST_GRADIENT_HASH, iter as f64);
                }
                self.gradients
                    .entry((partition, iter))
                    .or_default()
                    .insert(trainer, cid);
                if let Some(bytes) = commitment {
                    if let Some(c) = ProtocolCommitment::from_bytes(&bytes) {
                        self.commitments
                            .entry((partition, iter))
                            .or_default()
                            .insert(trainer, c);
                    }
                }
            }
            Msg::QueryGradients {
                partition,
                agg_j,
                iter,
            } => {
                let trainers = self.topo.trainer_set(partition, agg_j);
                let registered = self.gradients.get(&(partition, iter));
                let commits = self.commitments.get(&(partition, iter));
                let entries: Vec<(usize, Cid, Option<[u8; 33]>)> = trainers
                    .into_iter()
                    .filter_map(|t| {
                        let cid = registered.and_then(|m| m.get(&t))?;
                        let commitment = commits.and_then(|m| m.get(&t)).map(|c| c.to_bytes());
                        Some((t, *cid, commitment))
                    })
                    .collect();
                let reply = Msg::GradientList {
                    partition,
                    iter,
                    entries,
                };
                out.send(from, reply);
            }
            Msg::QueryAccumulators { partition, iter } => {
                let accumulated: Vec<Option<[u8; 33]>> =
                    (0..self.topo.config().aggregators_per_partition)
                        .map(|j| {
                            self.accumulated_for_slot(partition, iter, j)
                                .map(|c| c.to_bytes())
                        })
                        .collect();
                let reply = Msg::Accumulators {
                    partition,
                    iter,
                    accumulated,
                };
                out.send(from, reply);
            }
            Msg::RegisterUpdate {
                aggregator,
                partition,
                iter,
                cid,
                contributors,
                signature,
            } => {
                self.on_register_update(
                    out,
                    from,
                    aggregator,
                    partition,
                    iter,
                    cid,
                    contributors,
                    signature,
                );
            }
            Msg::ReportMisbehavior { record } => {
                self.on_report(out, &record);
            }
            Msg::QueryTotalAccumulator { partition, iter } => {
                // After a quorum-degraded round the accepted update opens
                // the product over its contributor set, not the full total
                // — answer with what the accepted update actually opens.
                let accumulated = match self.accepted_contributors.get(&(partition, iter)) {
                    Some(set) => self.accumulated_subset(partition, iter, set),
                    None => self.accumulated_total(partition, iter),
                }
                .map(|c| c.to_bytes());
                let reply = Msg::TotalAccumulator {
                    partition,
                    iter,
                    accumulated,
                };
                out.send(from, reply);
            }
            Msg::QueryUpdate { partition, iter } => {
                let cid = self.updates.get(&(partition, iter)).copied();
                let reply = Msg::UpdateInfo {
                    partition,
                    iter,
                    cid,
                };
                out.send(from, reply);
            }
            Msg::TrainerDone { trainer, iter } => {
                self.done.entry(iter).or_default().insert(trainer);
                self.maybe_finish_round(out, iter);
            }
            Msg::Ipfs(IpfsWire::GetOk { data, req_id, .. }) => {
                if self.chunked.is_some() {
                    self.on_chunked_get_ok(out, req_id, &data);
                } else {
                    let data = data.to_vec();
                    self.on_update_blob(out, req_id, &data, true);
                }
            }
            Msg::Ipfs(IpfsWire::GetErr { req_id, .. }) => {
                if self.chunked.is_some() {
                    self.on_chunked_get_err(out, req_id);
                } else {
                    self.on_update_blob(out, req_id, &[], false);
                }
            }
            // Other storage responses (acks for nothing we sent) and
            // protocol messages not addressed to the directory are ignored.
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TaskConfig;

    fn topo(verifiable: bool) -> Arc<Topology> {
        let cfg = TaskConfig {
            trainers: 4,
            partitions: 2,
            aggregators_per_partition: 2,
            ipfs_nodes: 2,
            verifiable,
            ..TaskConfig::default()
        };
        Arc::new(Topology::new(cfg, 8).unwrap())
    }

    #[test]
    fn key_flag_mismatch_panics() {
        let result = std::panic::catch_unwind(|| Directory::new(topo(true), None));
        assert!(result.is_err());
    }

    #[test]
    fn accumulators_require_full_trainer_set() {
        use crate::gradient::{commit_blob, derive_key};
        let topo = topo(true);
        let key = Arc::new(derive_key(topo.max_partition_len(), 0, true));
        let mut dir = Directory::new(topo.clone(), Some(key.clone()));

        // Register commitments for trainers 0 and 2 (slot j=0 of |A_i|=2).
        let blob = crate::gradient::build_blob(&[1.0; 4]);
        let c = commit_blob(&key, &blob).unwrap();
        for t in [0usize, 2] {
            dir.commitments.entry((0, 0)).or_default().insert(t, c);
        }
        // Slot 0 (T_00 = {0, 2}) is complete; slot 1 (T_01 = {1, 3}) is not.
        assert!(dir.accumulated_for_slot(0, 0, 0).is_some());
        assert!(dir.accumulated_for_slot(0, 0, 1).is_none());
        // Total accumulation needs all 4 trainers.
        assert!(dir.accumulated_total(0, 0).is_none());
        for t in [1usize, 3] {
            dir.commitments.entry((0, 0)).or_default().insert(t, c);
        }
        assert!(dir.accumulated_total(0, 0).is_some());
    }

    /// Regression: a storage reply reaching the update-verification path
    /// in a non-verifiable task (spoofed or misrouted frame) must be
    /// booked ([`IplsError::MissingCommitKey`](crate::IplsError)) and
    /// dropped — it used to kill the directory via
    /// `.expect("verifiable mode")`.
    #[test]
    fn update_blob_without_commit_key_is_booked_not_fatal() {
        use crate::protocol::{Actions, ProtocolAction};
        let mut dir = Directory::new(topo(false), None);
        dir.fetching.insert(
            5,
            PendingVerify {
                partition: 0,
                iter: 0,
                aggregator: 0,
                cid: Cid::of(b"u"),
                from: NodeId(1),
                verdict: false,
                contributors: None,
                signature: None,
                blob: Vec::new(),
            },
        );
        let mut out = Actions::new();
        dir.on_update_blob(&mut out, 5, b"update-bytes", true);
        let booked = out.drain().any(|a| {
            matches!(a, ProtocolAction::Incr { label, .. } if label == labels::MISSING_COMMIT_KEY)
        });
        assert!(booked, "missing commit key must increment the counter");
        assert!(
            dir.verifying.is_empty(),
            "nothing must reach the verdict stage"
        );
    }
}
